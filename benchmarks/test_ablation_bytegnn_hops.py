"""Ablation: ByteGNN's block depth (r-hop BFS radius).

ByteGNN grows blocks via r-hop BFS around training vertices, with r set
to the number of GNN layers. This ablation sweeps r and measures the
locality it buys (edge-cut, remote inputs of an actual sampled epoch).
"""

from helpers import emit_table, once

from repro.distdgl import DistDglEngine
from repro.partitioning import ByteGnnPartitioner, edge_cut_ratio

HOPS = (1, 2, 3)


def compute(graphs, splits):
    graph = graphs["OR"]
    split = splits["OR"]
    rows = []
    for hops in HOPS:
        partitioner = ByteGnnPartitioner(
            train_vertices=split.train, num_hops=hops
        )
        partition = partitioner.partition(graph, 8, seed=0)
        engine = DistDglEngine(
            partition, split, feature_size=64, hidden_dim=64,
            num_layers=3, global_batch_size=64, seed=0,
        )
        report = engine.run_epoch()
        rows.append(
            (
                hops,
                edge_cut_ratio(partition),
                report.remote_input_vertices,
                partitioner.last_partitioning_seconds,
            )
        )
    return rows


def test_ablation_bytegnn_hops(graphs, splits, benchmark):
    rows = once(benchmark, lambda: compute(graphs, splits))
    emit_table(
        "ablation_bytegnn_hops",
        ["hops", "edge-cut", "remote inputs/epoch", "seconds"],
        rows,
        "Ablation (OR, 8 partitions): ByteGNN block depth",
    )
    # Deeper blocks change the locality structure measurably and never
    # degenerate; the partition stays valid at every depth.
    cuts = [cut for _, cut, _, _ in rows]
    assert all(0 < cut < 1 for cut in cuts)
    remotes = [r for _, _, r, _ in rows]
    assert max(remotes) > 0
    # The depth knob must actually do something.
    assert len(set(round(c, 3) for c in cuts)) > 1
