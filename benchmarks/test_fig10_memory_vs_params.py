"""Figure 10: memory footprint (% of Random) vs GNN hyper-parameters,
OR on 8 machines.

Paper shapes:
(a) larger feature size -> partitioners more effective (lower %);
(b) larger hidden dimension -> more effective;
(c) more layers amplify effectiveness when hidden is large and features
    small, and leave it flat when features are large and hidden small.
"""

from helpers import EDGE_PARTITIONERS, emit_series, once

from repro.experiments import TrainingParams, run_distgnn

FEATURES = (16, 64, 512)
HIDDEN = (16, 64, 512)
LAYERS = (2, 3, 4)


def pct_of_random(graph, name, k, params):
    mine = run_distgnn(graph, name, k, params).total_memory_bytes
    base = run_distgnn(graph, "random", k, params).total_memory_bytes
    return 100.0 * mine / base


def compute(graphs):
    graph = graphs["OR"]
    # Keep the non-varied parameters at the low end so the fixed
    # graph-structure share is visible - the mechanism the paper names
    # ("a fixed amount of memory is needed, e.g., for storing the graph
    # structure").
    by_feature = {
        name: [
            pct_of_random(
                graph, name, 8,
                TrainingParams(feature_size=f, hidden_dim=16, num_layers=2),
            )
            for f in FEATURES
        ]
        for name in EDGE_PARTITIONERS
        if name != "random"
    }
    by_hidden = {
        name: [
            pct_of_random(
                graph, name, 8,
                TrainingParams(feature_size=16, hidden_dim=h, num_layers=3),
            )
            for h in HIDDEN
        ]
        for name in EDGE_PARTITIONERS
        if name != "random"
    }
    layers_big_hidden = [
        pct_of_random(
            graph, "hep100", 8,
            TrainingParams(feature_size=16, hidden_dim=512, num_layers=n),
        )
        for n in LAYERS
    ]
    layers_big_feature = [
        pct_of_random(
            graph, "hep100", 8,
            TrainingParams(feature_size=512, hidden_dim=16, num_layers=n),
        )
        for n in LAYERS
    ]
    return by_feature, by_hidden, layers_big_hidden, layers_big_feature


def test_fig10_memory_vs_params(graphs, benchmark):
    by_feature, by_hidden, big_hidden, big_feature = once(
        benchmark, lambda: compute(graphs)
    )
    emit_series(
        "fig10a", "Figure 10a (OR, 8 machines): memory % of Random vs "
        "feature size", by_feature, FEATURES, unit="%",
    )
    emit_series(
        "fig10b", "Figure 10b: memory % of Random vs hidden dimension",
        by_hidden, HIDDEN, unit="%",
    )
    emit_series(
        "fig10c", "Figure 10c: memory % of Random vs #layers (HEP100)",
        {"hidden=512,f=16": big_hidden, "hidden=16,f=512": big_feature},
        LAYERS, unit="%",
    )
    for name, values in by_feature.items():
        assert values[-1] < values[0], name  # larger features help
    for name, values in by_hidden.items():
        assert values[-1] < values[0], name  # larger hidden helps
    # Layers amplify effectiveness when hidden dominates the state...
    assert big_hidden[-1] < big_hidden[0]
    # ...and leave it nearly flat when features dominate.
    assert abs(big_feature[-1] - big_feature[0]) < 6.0
