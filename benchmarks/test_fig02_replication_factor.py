"""Figure 2: replication factors per vertex-cut partitioner and graph.

Paper shape: HEP100 lowest, Random highest, RF grows with the number of
partitions (e.g. OR at 32 partitions: HEP100 2.52 vs Random 22.2).
"""

from helpers import EDGE_PARTITIONERS, emit_series, once

from repro.experiments import cached_edge_partition
from repro.partitioning import replication_factor

MACHINES = (4, 8, 16, 32)


def compute(graphs):
    results = {}
    for key, graph in graphs.items():
        series = {
            name: [
                replication_factor(
                    cached_edge_partition(graph, name, k)[0]
                )
                for k in MACHINES
            ]
            for name in EDGE_PARTITIONERS
        }
        results[key] = series
    return results


def test_fig02_replication_factor(graphs, benchmark):
    results = once(benchmark, lambda: compute(graphs))
    for key, series in results.items():
        emit_series(
            f"fig02_{key}",
            f"Figure 2 ({key}): replication factor vs #partitions",
            series,
            MACHINES,
        )
    for key, series in results.items():
        for name, values in series.items():
            # RF grows with the number of partitions.
            assert values[0] <= values[-1] + 0.05, (key, name)
        for i, k in enumerate(MACHINES):
            # HEP100 best, Random worst (paper Figure 2).
            assert series["hep100"][i] <= series["hdrf"][i] + 0.1
            assert all(
                series[name][i] <= series["random"][i] + 0.05
                for name in EDGE_PARTITIONERS
            )
