"""Figure 3: replication factor vs network communication on OR.

Paper shape: strong linear correlation (R^2 >= 0.98) between replication
factor and network traffic, across machine counts and layer counts.
"""

from helpers import EDGE_PARTITIONERS, emit_table, once

from repro.experiments import (
    TrainingParams,
    r_squared,
    run_distgnn,
)

MACHINES = (8, 16, 32)
LAYERS = (2, 4)


def compute(graphs):
    rows = []
    for k in MACHINES:
        for layers in LAYERS:
            params = TrainingParams(num_layers=layers)
            records = [
                run_distgnn(graphs["OR"], name, k, params)
                for name in EDGE_PARTITIONERS
            ]
            rf = [r.replication_factor for r in records]
            traffic = [r.network_bytes for r in records]
            rows.append(
                (k, layers, r_squared(rf, traffic))
            )
    return rows


def test_fig03_rf_vs_traffic(graphs, benchmark):
    rows = once(benchmark, lambda: compute(graphs))
    emit_table(
        "fig03",
        ["machines", "layers", "R^2(RF, traffic)"],
        rows,
        "Figure 3 (OR): replication factor vs network communication",
    )
    for _, _, r2 in rows:
        assert r2 >= 0.95  # paper: >= 0.98
