"""Ablation: fabric model (bisection overlap vs pure per-port straggler).

DESIGN.md calls out one modelling choice: communication phases are
floored at the fabric's aggregate-bandwidth (bisection) bound, because
concurrent transfers overlap on a real cluster. Under a pure per-port
model, a vertex-imbalanced partitioner's busiest port alone would set the
phase time and HEP's quality advantage would be understated relative to
the paper. This ablation measures the effect of the choice.
"""

import dataclasses

from helpers import emit_table, once

from repro.costmodel import DEFAULT_COST_MODEL
from repro.distgnn import DistGnnEngine
from repro.experiments import cached_edge_partition


def speedup(graph, fabric_model):
    cost_model = dataclasses.replace(
        DEFAULT_COST_MODEL, fabric_model=fabric_model
    )
    times = {}
    for name in ("random", "hdrf", "hep100"):
        partition, _ = cached_edge_partition(graph, name, 16)
        engine = DistGnnEngine(
            partition, 64, 64, 3, cost_model=cost_model
        )
        times[name] = engine.simulate_epoch().epoch_seconds
    return (
        times["random"] / times["hdrf"],
        times["random"] / times["hep100"],
    )


def compute(graphs):
    rows = []
    for fabric in ("bisection", "port"):
        hdrf, hep = speedup(graphs["OR"], fabric)
        rows.append((fabric, hdrf, hep))
    return rows


def test_ablation_comm_model(graphs, benchmark):
    rows = once(benchmark, lambda: compute(graphs))
    emit_table(
        "ablation_comm_model",
        ["fabric model", "HDRF speedup", "HEP100 speedup"],
        rows,
        "Ablation (OR, 16 machines): communication model",
    )
    by_model = {fabric: (hdrf, hep) for fabric, hdrf, hep in rows}
    # Under the bisection model HEP100's RF advantage dominates (as in
    # the paper)...
    assert by_model["bisection"][1] > by_model["bisection"][0]
    # ...while the per-port model punishes HEP's vertex imbalance.
    assert (
        by_model["port"][1] - by_model["port"][0]
        < by_model["bisection"][1] - by_model["bisection"][0]
    )
