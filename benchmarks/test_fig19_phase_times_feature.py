"""Figure 19: phase times vs feature size (3-layer GraphSage, hidden 64,
4 machines) on EU and DI.

Paper shapes: on EU, feature fetching grows with the feature size while
sampling stays constant, and at 512 fetching dominates sampling by a lot;
on the road network DI, sampling always exceeds fetching (tiny, low-skew
mini-batches).
"""

from helpers import emit_series, once

from repro.experiments import TrainingParams, run_distdgl

FEATURES = (16, 64, 512)


def phases_for(graph, split, fs):
    params = TrainingParams(
        feature_size=fs, hidden_dim=64, num_layers=3, global_batch_size=64
    )
    record = run_distdgl(graph, "metis", 4, params, split=split)
    return record.phase_seconds


def compute(graphs, splits):
    return {
        key: [phases_for(graphs[key], splits[key], fs) for fs in FEATURES]
        for key in ("EU", "DI")
    }


def test_fig19_phase_times_feature(graphs, splits, benchmark):
    results = once(benchmark, lambda: compute(graphs, splits))
    for key, phase_list in results.items():
        series = {
            phase: [p[phase] * 1e3 for p in phase_list]
            for phase in ("sample", "fetch", "forward", "backward")
        }
        emit_series(
            f"fig19_{key}",
            f"Figure 19 ({key}): phase milliseconds vs feature size "
            "(METIS, 4 machines)",
            series,
            FEATURES,
            unit="ms",
        )
    eu = results["EU"]
    # Fetch grows with feature size; sampling stays constant.
    assert eu[-1]["fetch"] > 3 * eu[0]["fetch"]
    assert abs(eu[-1]["sample"] - eu[0]["sample"]) < 0.35 * eu[0]["sample"]
    # For small features (<= 64) sampling exceeds fetching on EU...
    assert eu[0]["sample"] > eu[0]["fetch"]
    # At feature size 512, fetching dominates sampling on EU...
    assert eu[-1]["fetch"] > eu[-1]["sample"]
    # ...while on the road network sampling wins for small/medium
    # features. (The paper sees this at 512 too because its DI edge-cut
    # is <0.001; our scaled-down DI cuts ~0.04, so at 512 fetch catches
    # up — we only require it stays comparable.)
    for phases in results["DI"][:2]:
        assert phases["sample"] > phases["fetch"]
    di_large = results["DI"][-1]
    assert di_large["fetch"] < 2.0 * di_large["sample"]
    # Forward/backward grow with feature size (more layer-0 compute).
    assert eu[-1]["forward"] > eu[0]["forward"]
