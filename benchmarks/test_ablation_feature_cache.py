"""Ablation: static feature caching vs partitioning quality.

A PaGraph-style degree-ordered feature cache is the other standard lever
against DistDGL's feature-fetch bottleneck. This ablation sweeps the
cache budget and shows the interaction the literature reports: caching
cuts everyone's fetch traffic, and because it helps the *bad* layout
(Random) relatively more, it narrows the gap the partitioner buys.
"""

from helpers import emit_table, once

from repro.distdgl import DistDglEngine
from repro.experiments import cached_vertex_partition

CACHE_FRACTIONS = (0.0, 0.05, 0.2)


def run(graph, split, name, cache_fraction):
    partition, _ = cached_vertex_partition(graph, name, 8)
    engine = DistDglEngine(
        partition, split,
        feature_size=512, hidden_dim=64, num_layers=3,
        global_batch_size=64, seed=0, cache_fraction=cache_fraction,
    )
    return engine.run_epoch()


def compute(graphs, splits):
    graph, split = graphs["OR"], splits["OR"]
    rows = []
    for fraction in CACHE_FRACTIONS:
        random_report = run(graph, split, "random", fraction)
        metis_report = run(graph, split, "metis", fraction)
        rows.append(
            (
                fraction,
                metis_report.cache_hit_rate,
                random_report.epoch_seconds / metis_report.epoch_seconds,
                random_report.network_bytes / 1e6,
                metis_report.network_bytes / 1e6,
            )
        )
    return rows


def test_ablation_feature_cache(graphs, splits, benchmark):
    rows = once(benchmark, lambda: compute(graphs, splits))
    emit_table(
        "ablation_feature_cache",
        ["cache fraction", "hit rate (metis)", "metis speedup",
         "random MB", "metis MB"],
        rows,
        "Ablation (OR, 8 machines, f=512): static feature cache",
    )
    # More cache -> less traffic for both layouts.
    assert rows[-1][3] < rows[0][3]
    assert rows[-1][4] < rows[0][4]
    # Hit rate grows with the budget.
    assert rows[-1][1] > rows[1][1] > 0.0
    # Caching substitutes for partitioning: the partitioner's relative
    # advantage shrinks as the cache grows.
    assert rows[-1][2] < rows[0][2] + 0.02
