"""Shared fixtures for the figure/table reproduction benchmarks.

Every file in this directory regenerates one evaluation artifact of the
paper (Figures 2-26, Tables 4-5). Graphs are the 'small'-scale stand-ins;
partitions are cached process-wide, so later benchmarks reuse the
partitioning work of earlier ones.

Run with ``pytest benchmarks/ --benchmark-only`` (add ``-s`` to see the
reproduced tables inline; they are always written to
``benchmarks/results/``).
"""

from __future__ import annotations

import pytest

from repro.graph import load_dataset, random_split

GRAPH_KEYS = ("HW", "DI", "EN", "EU", "OR")
SCALE = "small"
SEED = 0


@pytest.fixture(scope="session")
def graphs():
    return {key: load_dataset(key, SCALE, seed=SEED) for key in GRAPH_KEYS}


@pytest.fixture(scope="session")
def splits(graphs):
    return {
        key: random_split(graph, seed=7) for key, graph in graphs.items()
    }
