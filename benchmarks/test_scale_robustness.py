"""Scale robustness: the key orderings survive a 3x larger graph.

All other benchmarks run at the 'small' dataset scale. This one re-checks
the study's two headline orderings at 'medium' scale (3x vertices, ~3x
edges) to demonstrate the conclusions aren't an artifact of one size:

* DistGNN: speedup(HEP100) > speedup(HDRF) > speedup(DBH) > 1;
* DistDGL: METIS beats Random and its cut stays below LDG's.
"""

from helpers import emit_table, once

from repro.distgnn import DistGnnEngine
from repro.experiments import TrainingParams, run_distdgl
from repro.graph import load_dataset, random_split
from repro.partitioning import (
    edge_cut_ratio,
    make_edge_partitioner,
    make_vertex_partitioner,
    replication_factor,
)


def compute():
    graph = load_dataset("OR", "medium")
    split = random_split(graph, seed=7)
    rows = []

    times = {}
    for name in ("random", "dbh", "hdrf", "hep100"):
        partition = make_edge_partitioner(name).partition(graph, 16, seed=0)
        engine = DistGnnEngine(partition, 64, 64, 3)
        times[name] = engine.simulate_epoch().epoch_seconds
        rows.append(
            (
                "distgnn", name,
                replication_factor(partition),
                times["random"] / times[name] if name in times else 0.0,
            )
        )

    params = TrainingParams(
        feature_size=256, hidden_dim=64, num_layers=3, global_batch_size=128
    )
    cuts = {}
    epoch = {}
    for name in ("random", "ldg", "metis"):
        record = run_distdgl(graph, name, 8, params, split=split)
        partition = make_vertex_partitioner(name).partition(
            graph, 8, seed=0
        )
        cuts[name] = edge_cut_ratio(partition)
        epoch[name] = record.epoch_seconds
        rows.append(("distdgl", name, cuts[name], epoch[name]))
    return rows, times, cuts, epoch


def test_scale_robustness(benchmark):
    rows, times, cuts, epoch = once(benchmark, compute)
    emit_table(
        "scale_robustness",
        ["system", "partitioner", "quality", "value"],
        rows,
        "Medium-scale (3x) check of the headline orderings (OR)",
    )
    # DistGNN ordering at medium scale.
    assert times["hep100"] < times["hdrf"] < times["dbh"] < times["random"]
    # DistDGL ordering at medium scale.
    assert cuts["metis"] < cuts["ldg"] < cuts["random"]
    assert epoch["metis"] < epoch["random"]
