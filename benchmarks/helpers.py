"""Helpers shared by the reproduction benchmarks."""

from __future__ import annotations

import os
from typing import Dict, Sequence

from repro.experiments import format_series, format_table

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

EDGE_PARTITIONERS = ("random", "dbh", "hdrf", "2ps-l", "hep10", "hep100")
VERTEX_PARTITIONERS = ("random", "ldg", "spinner", "metis", "bytegnn", "kahip")


def emit(artifact: str, text: str) -> None:
    """Print a reproduced table/series and persist it under results/."""
    banner = f"\n=== {artifact} ===\n{text}\n"
    print(banner)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{artifact}.txt")
    with open(path, "w") as handle:
        handle.write(banner)


def emit_table(
    artifact: str,
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str = "",
) -> None:
    emit(artifact, format_table(headers, rows, title))


def emit_series(
    artifact: str,
    title: str,
    series: Dict[str, Sequence[float]],
    xs: Sequence,
    unit: str = "",
) -> None:
    lines = [title]
    for name, ys in series.items():
        lines.append(format_series(name, xs, ys, unit))
    emit(artifact, "\n".join(lines))


def once(benchmark, fn):
    """Run the (expensive) experiment exactly once under the benchmark
    fixture so ``--benchmark-only`` times it without repetition."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)
