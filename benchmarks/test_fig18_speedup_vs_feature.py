"""Figure 18: DistDGL speedup vs feature size (4 and 32 machines).

Paper shape: partitioning effectiveness increases with feature size
(e.g. KaHIP 1.23 -> 1.52 from feature size 16 to 512 on 4 machines).
"""

from helpers import VERTEX_PARTITIONERS, emit_series, once

from repro.experiments import TrainingParams, run_distdgl

FEATURES = (16, 64, 512)
MACHINES = (4, 32)


def compute(graphs, splits):
    results = {}
    for k in MACHINES:
        series = {}
        for name in VERTEX_PARTITIONERS:
            if name == "random":
                continue
            values = []
            for fs in FEATURES:
                params = TrainingParams(
                    feature_size=fs, hidden_dim=64, num_layers=3,
                    global_batch_size=64,
                )
                mine = run_distdgl(
                    graphs["OR"], name, k, params, split=splits["OR"]
                ).epoch_seconds
                base = run_distdgl(
                    graphs["OR"], "random", k, params, split=splits["OR"]
                ).epoch_seconds
                values.append(base / mine)
            series[name] = values
        results[k] = series
    return results


def test_fig18_speedup_vs_feature(graphs, splits, benchmark):
    results = once(benchmark, lambda: compute(graphs, splits))
    for k, series in results.items():
        emit_series(
            f"fig18_{k}machines",
            f"Figure 18 (OR, {k} machines): speedup vs feature size",
            series,
            FEATURES,
            unit="x",
        )
    for k, series in results.items():
        for name in ("metis", "kahip", "spinner"):
            values = series[name]
            # Larger features -> higher effectiveness.
            assert values[-1] > values[0] * 0.97, (k, name)
        assert series["kahip"][-1] > 1.0
        assert series["metis"][-1] > 1.0
