"""Reproduction of the paper's out-of-memory observation on DI.

Paper, Section 4.3: "in all cases, DI can not be processed if random
partitioning is applied, but in contrast, the more advanced partitioners
enable the processing in many cases." We reproduce the mechanism: with a
memory budget between HEP's and Random's per-machine peak, Random runs
out of memory while HEP fits.
"""

import dataclasses

import pytest
from helpers import emit_table, once

from repro.cluster import OutOfMemoryError
from repro.costmodel import DEFAULT_COST_MODEL
from repro.distgnn import DistGnnEngine
from repro.experiments import cached_edge_partition


def compute(graphs):
    graph = graphs["DI"]
    peaks = {}
    for name in ("random", "hep100"):
        partition, _ = cached_edge_partition(graph, name, 8)
        engine = DistGnnEngine(
            partition, feature_size=512, hidden_dim=512, num_layers=4
        )
        peaks[name] = float(engine.memory_per_machine().max())
    return peaks


def test_ablation_oom_di(graphs, benchmark):
    peaks = once(benchmark, lambda: compute(graphs))
    emit_table(
        "ablation_oom",
        ["partitioner", "peak MB per machine"],
        [(name, peak / 1e6) for name, peak in peaks.items()],
        "DI, 8 machines, f=512 h=512 L=4: per-machine peak memory",
    )
    # There must be real headroom between the two partitioners...
    assert peaks["hep100"] < 0.9 * peaks["random"]
    # ...so a budget in between reproduces the paper's OOM asymmetry.
    budget = (peaks["hep100"] + peaks["random"]) / 2
    cost_model = dataclasses.replace(
        DEFAULT_COST_MODEL, memory_budget_bytes=budget
    )
    graph = graphs["DI"]
    random_partition, _ = cached_edge_partition(graph, "random", 8)
    hep_partition, _ = cached_edge_partition(graph, "hep100", 8)
    random_engine = DistGnnEngine(
        random_partition, 512, 512, 4, cost_model=cost_model
    )
    hep_engine = DistGnnEngine(
        hep_partition, 512, 512, 4, cost_model=cost_model
    )
    with pytest.raises(OutOfMemoryError):
        random_engine.check_memory_budget()
    hep_engine.check_memory_budget()  # fits
