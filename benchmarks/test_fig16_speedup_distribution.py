"""Figure 16: DistDGL speedup distribution over Random (GraphSage).

Paper shape: KaHIP and METIS lead; speedups are moderate (up to ~3.5,
far below DistGNN's); there is visible spread across GNN parameters
(effectiveness depends on them, unlike DistGNN).
"""

import numpy as np
from helpers import VERTEX_PARTITIONERS, emit_table, once

from repro.experiments import (
    TrainingParams,
    run_distdgl_grid,
    speedup_vs_random,
)

MACHINES = (4, 16, 32)
GRAPHS = ("OR", "EU", "DI")
GRID = [
    TrainingParams(feature_size=64, hidden_dim=64, num_layers=3,
                   global_batch_size=64),
    TrainingParams(feature_size=512, hidden_dim=64, num_layers=3,
                   global_batch_size=64),
    TrainingParams(feature_size=512, hidden_dim=16, num_layers=2,
                   global_batch_size=64),
]


def compute(graphs, splits):
    stats = {}
    for key in GRAPHS:
        records = run_distdgl_grid(
            graphs[key], VERTEX_PARTITIONERS, MACHINES, GRID,
            split=splits[key],
        )
        for cell, value in speedup_vs_random(records).items():
            g, name, k, _params = cell
            stats.setdefault((g, name, k), []).append(value)
    return {
        cell: (float(np.mean(v)), float(np.min(v)), float(np.max(v)))
        for cell, v in stats.items()
    }


def test_fig16_speedup_distribution(graphs, splits, benchmark):
    stats = once(benchmark, lambda: compute(graphs, splits))
    rows = [
        (g, name, k, mean, lo, hi)
        for (g, name, k), (mean, lo, hi) in sorted(stats.items())
    ]
    emit_table(
        "fig16",
        ["graph", "partitioner", "machines", "mean", "min", "max"],
        rows,
        "Figure 16: DistDGL speedup over Random (GraphSage)",
    )
    for key in GRAPHS:
        for k in MACHINES:
            # The multilevel partitioners beat Random everywhere.
            assert stats[(key, "metis", k)][0] > 1.0, (key, k)
            assert stats[(key, "kahip", k)][0] > 1.0, (key, k)
            # Speedups stay moderate (mini-batch regime, paper <= ~3.5).
            assert stats[(key, "kahip", k)][2] < 4.0, (key, k)
    # Visible spread across GNN parameters (paper Figure 16's variance).
    spreads = [
        stats[(key, "kahip", 4)][2] - stats[(key, "kahip", 4)][1]
        for key in GRAPHS
    ]
    assert max(spreads) > 0.02
