"""Figure 14: balance of mini-batch input vertices (GraphSage).

Paper shape: even with balanced training vertices, the *input vertices*
of the sampled mini-batches are imbalanced, and the imbalance grows with
the number of partitions.
"""

from helpers import emit_series, once

from repro.distdgl import DistDglEngine
from repro.experiments import cached_vertex_partition

MACHINES = (4, 8, 16, 32)
PARTITIONERS = ("random", "metis", "kahip")


def compute(graphs, splits):
    results = {}
    for key in ("OR", "EU"):
        series = {}
        for name in PARTITIONERS:
            values = []
            for k in MACHINES:
                partition, _ = cached_vertex_partition(graphs[key], name, k)
                engine = DistDglEngine(
                    partition,
                    splits[key],
                    feature_size=64,
                    hidden_dim=64,
                    num_layers=3,
                    global_batch_size=64,
                    seed=0,
                )
                values.append(engine.run_epoch().mean_input_vertex_balance)
            series[name] = values
        results[key] = series
    return results


def test_fig14_input_vertex_balance(graphs, splits, benchmark):
    results = once(benchmark, lambda: compute(graphs, splits))
    for key, series in results.items():
        emit_series(
            f"fig14_{key}",
            f"Figure 14 ({key}): mini-batch input vertex balance",
            series,
            MACHINES,
        )
    for key, series in results.items():
        for name, values in series.items():
            assert all(v >= 1.0 for v in values), (key, name)
            # Imbalance grows as the number of partitions grows.
            assert values[-1] > values[0], (key, name)
            # And it is a *real* imbalance, not a rounding artifact.
            assert values[-1] > 1.1, (key, name)
