"""Figure 4: vertex balance of the vertex-cut partitioners.

Paper shape: 2PS-L, HEP10 and HEP100 show large vertex imbalances
(1.18-1.89 on 4 machines, up to 2.44 on 32); Random/DBH/HDRF stay near 1.
"""

from helpers import EDGE_PARTITIONERS, emit_series, once

from repro.experiments import cached_edge_partition
from repro.partitioning import vertex_balance_vertex_cut

MACHINES = (4, 32)


def compute(graphs):
    return {
        key: {
            name: [
                vertex_balance_vertex_cut(
                    cached_edge_partition(graph, name, k)[0]
                )
                for k in MACHINES
            ]
            for name in EDGE_PARTITIONERS
        }
        for key, graph in graphs.items()
    }


def test_fig04_vertex_balance(graphs, benchmark):
    results = once(benchmark, lambda: compute(graphs))
    for key, series in results.items():
        emit_series(
            f"fig04_{key}",
            f"Figure 4 ({key}): vertex balance at 4 and 32 partitions",
            series,
            MACHINES,
        )
    # The clustering-based partitioners imbalance vertices; the
    # hashing/scoring ones stay balanced (paper Figure 4).
    skewed = ("2ps-l", "hep10", "hep100")
    for key in ("OR", "HW", "EN", "EU"):
        series = results[key]
        worst_skewed = max(max(series[name]) for name in skewed)
        assert worst_skewed > 1.15, key
        assert max(series["random"]) < 1.2, key
        assert max(series["dbh"]) < 1.35, key
