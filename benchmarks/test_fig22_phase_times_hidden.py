"""Figure 22: phase times vs hidden dimension (3-layer GraphSage,
feature 64, 4 machines, OR).

Paper shape: sampling and feature loading stay constant; only the
neural-network phases grow with the hidden dimension.
"""

from helpers import emit_series, once

from repro.experiments import TrainingParams, run_distdgl

HIDDEN = (16, 64, 512)


def compute(graphs, splits):
    phase_list = []
    for hd in HIDDEN:
        params = TrainingParams(
            feature_size=64, hidden_dim=hd, num_layers=3,
            global_batch_size=64,
        )
        phase_list.append(
            run_distdgl(
                graphs["OR"], "metis", 4, params, split=splits["OR"]
            ).phase_seconds
        )
    return phase_list


def test_fig22_phase_times_hidden(graphs, splits, benchmark):
    phase_list = once(benchmark, lambda: compute(graphs, splits))
    series = {
        phase: [p[phase] * 1e3 for p in phase_list]
        for phase in ("sample", "fetch", "forward", "backward")
    }
    emit_series(
        "fig22",
        "Figure 22 (OR, 4 machines, METIS): phase ms vs hidden dimension",
        series,
        HIDDEN,
        unit="ms",
    )
    # Compute grows strongly with the hidden dimension...
    assert phase_list[-1]["forward"] > 3 * phase_list[0]["forward"]
    assert phase_list[-1]["backward"] > 3 * phase_list[0]["backward"]
    # ...while the data phases stay flat.
    assert (
        abs(phase_list[-1]["sample"] - phase_list[0]["sample"])
        < 0.35 * phase_list[0]["sample"]
    )
    assert (
        abs(phase_list[-1]["fetch"] - phase_list[0]["fetch"])
        < 0.35 * phase_list[0]["fetch"]
    )
