"""Figure 20: DistDGL speedup vs hidden dimension (4 and 32 machines).

Paper shape: partitioning becomes *less* crucial as the hidden dimension
grows (KaHIP 1.38 -> 1.19, METIS 1.31 -> 1.15 from hidden 16 to 512):
compute starts to dominate the communication the partitioners reduce.
"""

from helpers import emit_series, once

from repro.experiments import TrainingParams, run_distdgl

HIDDEN = (16, 64, 512)
MACHINES = (4, 32)
PARTITIONERS = ("metis", "kahip", "spinner", "ldg")


def compute(graphs, splits):
    results = {}
    for k in MACHINES:
        series = {}
        for name in PARTITIONERS:
            values = []
            for hd in HIDDEN:
                params = TrainingParams(
                    feature_size=64, hidden_dim=hd, num_layers=3,
                    global_batch_size=64,
                )
                mine = run_distdgl(
                    graphs["OR"], name, k, params, split=splits["OR"]
                ).epoch_seconds
                base = run_distdgl(
                    graphs["OR"], "random", k, params, split=splits["OR"]
                ).epoch_seconds
                values.append(base / mine)
            series[name] = values
        results[k] = series
    return results


def test_fig20_speedup_vs_hidden(graphs, splits, benchmark):
    results = once(benchmark, lambda: compute(graphs, splits))
    for k, series in results.items():
        emit_series(
            f"fig20_{k}machines",
            f"Figure 20 (OR, {k} machines): speedup vs hidden dimension",
            series,
            HIDDEN,
            unit="x",
        )
    for k, series in results.items():
        for name in ("metis", "kahip"):
            values = series[name]
            # Larger hidden dimension -> lower effectiveness.
            assert values[-1] < values[0], (k, name)
            assert values[0] > 1.0, (k, name)
