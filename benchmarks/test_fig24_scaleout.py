"""Figure 24: DistDGL effectiveness when scaling from 4 to 32 machines.

Paper shapes: (a) on most graphs the speedup slightly *decreases* with
more machines (DI is the exception: it increases); (b) the partitioners'
remote-vertex counts relative to Random increase with the machine count;
(c) so does their relative edge-cut.
"""

import numpy as np
from helpers import emit_series, once

from repro.experiments import TrainingParams, run_distdgl

MACHINES = (4, 8, 16, 32)
PARTITIONERS = ("metis", "kahip", "ldg")
POWER_LAW_GRAPHS = ("OR", "EU")

PARAMS = TrainingParams(
    feature_size=512, hidden_dim=64, num_layers=3, global_batch_size=64
)


def compute(graphs, splits):
    speedup = {name: [] for name in PARTITIONERS}
    speedup_di = {name: [] for name in PARTITIONERS}
    remote_pct = {name: [] for name in PARTITIONERS}
    cut_pct = {name: [] for name in PARTITIONERS}
    for k in MACHINES:
        records = {
            (key, name): run_distdgl(
                graphs[key], name, k, PARAMS, split=splits[key]
            )
            for key in POWER_LAW_GRAPHS + ("DI",)
            for name in PARTITIONERS + ("random",)
        }
        for name in PARTITIONERS:
            speedup[name].append(
                float(np.mean([
                    records[(key, "random")].epoch_seconds
                    / records[(key, name)].epoch_seconds
                    for key in POWER_LAW_GRAPHS
                ]))
            )
            speedup_di[name].append(
                records[("DI", "random")].epoch_seconds
                / records[("DI", name)].epoch_seconds
            )
            remote_pct[name].append(
                float(np.mean([
                    100.0 * records[(key, name)].remote_input_vertices
                    / max(records[(key, "random")].remote_input_vertices, 1)
                    for key in POWER_LAW_GRAPHS
                ]))
            )
            cut_pct[name].append(
                float(np.mean([
                    100.0 * records[(key, name)].edge_cut
                    / records[(key, "random")].edge_cut
                    for key in POWER_LAW_GRAPHS
                ]))
            )
    return speedup, speedup_di, remote_pct, cut_pct


def test_fig24_scaleout(graphs, splits, benchmark):
    speedup, speedup_di, remote_pct, cut_pct = once(
        benchmark, lambda: compute(graphs, splits)
    )
    emit_series(
        "fig24a", "Figure 24a: mean speedup (power-law graphs) vs machines",
        speedup, MACHINES, unit="x",
    )
    emit_series(
        "fig24a_DI", "Figure 24a (DI): speedup vs machines",
        speedup_di, MACHINES, unit="x",
    )
    emit_series(
        "fig24b", "Figure 24b: remote vertices in % of Random",
        remote_pct, MACHINES, unit="%",
    )
    emit_series(
        "fig24c", "Figure 24c: edge-cut in % of Random",
        cut_pct, MACHINES, unit="%",
    )
    for name in ("metis", "kahip"):
        # On power-law graphs, scaling out erodes the advantage...
        assert speedup[name][-1] < speedup[name][0] + 0.05, name
        # ...because the relative partitioning metrics degrade.
        assert remote_pct[name][-1] > remote_pct[name][0], name
        assert cut_pct[name][-1] > cut_pct[name][0], name
        # DI is the exception: its speedup does not erode.
        assert speedup_di[name][-1] > speedup_di[name][0] - 0.1, name
