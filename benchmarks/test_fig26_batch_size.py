"""Figure 26: batch-size sweep (3-layer GraphSage, hidden 64, feature
512, OR, 16 machines).

Paper shapes: as the global batch size grows, (b) the partitioners'
network traffic relative to Random falls and (c) so do their remote
vertices — larger batches overlap more, so good partitions keep more of
each batch local; (a) with large features this raises the speedup.

Batch sizes are the paper's divided by BATCH_SIZE_SCALE; the sweep stops
at paper-8192 (scaled 128) because beyond that the scaled batch covers
most of our 400-vertex training set — a saturation regime the paper's
300k-training-vertex graphs never enter.
"""

from helpers import emit_series, once

from repro.experiments import (
    PAPER_BATCH_SIZES,
    TrainingParams,
    run_distdgl,
    scaled_batch_size,
)

PARTITIONERS = ("metis", "kahip", "spinner")
SWEPT_PAPER_SIZES = PAPER_BATCH_SIZES[:5]  # 512 .. 8192
BATCHES = [scaled_batch_size(b) for b in SWEPT_PAPER_SIZES]


def compute(graphs, splits):
    speedup = {name: [] for name in PARTITIONERS}
    traffic_pct = {name: [] for name in PARTITIONERS}
    remote_pct = {name: [] for name in PARTITIONERS}
    for gbs in BATCHES:
        params = TrainingParams(
            feature_size=512, hidden_dim=64, num_layers=3,
            global_batch_size=gbs,
        )
        base = run_distdgl(
            graphs["OR"], "random", 16, params, split=splits["OR"]
        )
        for name in PARTITIONERS:
            record = run_distdgl(
                graphs["OR"], name, 16, params, split=splits["OR"]
            )
            speedup[name].append(base.epoch_seconds / record.epoch_seconds)
            traffic_pct[name].append(
                100.0 * record.network_bytes / base.network_bytes
            )
            remote_pct[name].append(
                100.0 * record.remote_input_vertices
                / max(base.remote_input_vertices, 1)
            )
    return speedup, traffic_pct, remote_pct


def test_fig26_batch_size(graphs, splits, benchmark):
    speedup, traffic_pct, remote_pct = once(
        benchmark, lambda: compute(graphs, splits)
    )
    labels = [f"{p}({s})" for p, s in zip(SWEPT_PAPER_SIZES, BATCHES)]
    emit_series(
        "fig26a", "Figure 26a (OR, 16 machines, f=512): speedup vs "
        "batch size paper(scaled)", speedup, labels, unit="x",
    )
    emit_series(
        "fig26b", "Figure 26b: network traffic in % of Random",
        traffic_pct, labels, unit="%",
    )
    emit_series(
        "fig26c", "Figure 26c: remote vertices in % of Random",
        remote_pct, labels, unit="%",
    )
    for name in PARTITIONERS:
        # Larger batches -> relatively less traffic and fewer remote
        # vertices than Random (batch overlap rewards locality).
        assert traffic_pct[name][-1] < traffic_pct[name][0], name
        assert remote_pct[name][-1] < remote_pct[name][0], name
    # With large features the effectiveness rises with the batch size.
    for name in ("metis", "kahip"):
        assert speedup[name][-1] > speedup[name][0] * 0.98, name
