"""Figure 23: DistDGL speedup vs #layers (4 and 32 machines).

Paper shape: the effectiveness of the partitioners remains relatively
unaffected by the layer count (no clear trend; much weaker influence than
feature size or hidden dimension), and partitioners keep beating Random
even for deep models.
"""

from helpers import emit_series, once

from repro.experiments import TrainingParams, run_distdgl

LAYERS = (2, 3, 4)
MACHINES = (4, 32)
PARTITIONERS = ("metis", "kahip")


def compute(graphs, splits):
    results = {}
    for k in MACHINES:
        series = {}
        for name in PARTITIONERS:
            values = []
            for layers in LAYERS:
                params = TrainingParams(
                    feature_size=64, hidden_dim=64, num_layers=layers,
                    global_batch_size=64,
                )
                mine = run_distdgl(
                    graphs["OR"], name, k, params, split=splits["OR"]
                ).epoch_seconds
                base = run_distdgl(
                    graphs["OR"], "random", k, params, split=splits["OR"]
                ).epoch_seconds
                values.append(base / mine)
            series[name] = values
        results[k] = series
    return results


def test_fig23_speedup_vs_layers(graphs, splits, benchmark):
    results = once(benchmark, lambda: compute(graphs, splits))
    for k, series in results.items():
        emit_series(
            f"fig23_{k}machines",
            f"Figure 23 (OR, {k} machines): speedup vs #layers",
            series,
            LAYERS,
            unit="x",
        )
    for k, series in results.items():
        for name, values in series.items():
            # Partitioners beat Random at every depth...
            assert min(values) > 0.95, (k, name)
            # ...and the layer influence is much weaker than the ~30%+
            # swings feature size and hidden dimension cause.
            assert max(values) - min(values) < 0.5 * min(values), (k, name)
