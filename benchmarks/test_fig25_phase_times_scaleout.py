"""Figure 25: phase times vs scale-out for 3-layer GAT and GraphSage
(feature 512, hidden 64, OR).

Paper shapes: the feature-fetching phase scales down sharply with more
machines; GAT's compute phases are heavier than GraphSage's.
"""

from helpers import emit_series, once

from repro.experiments import TrainingParams, run_distdgl

MACHINES = (4, 8, 16, 32)


def compute(graphs, splits):
    out = {}
    for arch in ("sage", "gat"):
        phase_list = []
        for k in MACHINES:
            params = TrainingParams(
                feature_size=512, hidden_dim=64, num_layers=3,
                arch=arch, global_batch_size=64,
            )
            phase_list.append(
                run_distdgl(
                    graphs["OR"], "metis", k, params, split=splits["OR"]
                ).phase_seconds
            )
        out[arch] = phase_list
    return out


def test_fig25_phase_times_scaleout(graphs, splits, benchmark):
    results = once(benchmark, lambda: compute(graphs, splits))
    for arch, phase_list in results.items():
        series = {
            phase: [p[phase] * 1e3 for p in phase_list]
            for phase in ("sample", "fetch", "forward", "backward")
        }
        emit_series(
            f"fig25_{arch}",
            f"Figure 25 ({arch}, OR, METIS): phase ms vs machines",
            series,
            MACHINES,
            unit="ms",
        )
    for arch, phase_list in results.items():
        # Feature fetching scales down markedly with more machines
        # ("the feature loading phase scales really well").
        assert phase_list[-1]["fetch"] < 0.65 * phase_list[0]["fetch"], arch
    # GAT is computationally heavier than GraphSage at every scale.
    for sage_p, gat_p in zip(results["sage"], results["gat"]):
        assert gat_p["forward"] > sage_p["forward"]
