"""Figure 11: DistGNN effectiveness vs scale-out factor (4 -> 32).

Paper shapes: (a) speedups grow with machine count, HEP sharply;
(b) memory savings grow with machine count; (c) the partitioners'
replication factor relative to Random shrinks as machines increase.
"""

import numpy as np
from helpers import EDGE_PARTITIONERS, emit_series, once

from repro.experiments import (
    TrainingParams,
    run_distgnn,
)

MACHINES = (4, 8, 16, 32)
GRAPHS = ("HW", "EN", "EU", "OR")


def compute(graphs):
    params = TrainingParams(feature_size=64, hidden_dim=64, num_layers=3)
    speedup = {name: [] for name in EDGE_PARTITIONERS if name != "random"}
    memory_pct = {name: [] for name in speedup}
    rf_pct = {name: [] for name in speedup}
    for k in MACHINES:
        per_graph = {
            key: {
                name: run_distgnn(graphs[key], name, k, params)
                for name in EDGE_PARTITIONERS
            }
            for key in GRAPHS
        }
        for name in speedup:
            speedup[name].append(
                float(np.mean([
                    per_graph[key]["random"].epoch_seconds
                    / per_graph[key][name].epoch_seconds
                    for key in GRAPHS
                ]))
            )
            memory_pct[name].append(
                float(np.mean([
                    100.0 * per_graph[key][name].total_memory_bytes
                    / per_graph[key]["random"].total_memory_bytes
                    for key in GRAPHS
                ]))
            )
            rf_pct[name].append(
                float(np.mean([
                    100.0 * per_graph[key][name].replication_factor
                    / per_graph[key]["random"].replication_factor
                    for key in GRAPHS
                ]))
            )
    return speedup, memory_pct, rf_pct


def test_fig11_scaleout(graphs, benchmark):
    speedup, memory_pct, rf_pct = once(benchmark, lambda: compute(graphs))
    emit_series(
        "fig11a", "Figure 11a: mean speedup vs scale-out",
        speedup, MACHINES, unit="x",
    )
    emit_series(
        "fig11b", "Figure 11b: memory in % of Random vs scale-out",
        memory_pct, MACHINES, unit="%",
    )
    emit_series(
        "fig11c", "Figure 11c: RF in % of Random vs scale-out",
        rf_pct, MACHINES, unit="%",
    )
    for name in speedup:
        # Effectiveness increases with the scale-out factor.
        assert speedup[name][-1] > speedup[name][0], name
        assert memory_pct[name][-1] < memory_pct[name][0], name
        assert rf_pct[name][-1] < rf_pct[name][0] + 1.0, name
    # HEP's speedup rises more sharply than the streaming partitioners'.
    hep_gain = speedup["hep100"][-1] - speedup["hep100"][0]
    dbh_gain = speedup["dbh"][-1] - speedup["dbh"][0]
    assert hep_gain > dbh_gain
