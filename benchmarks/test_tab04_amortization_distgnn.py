"""Table 4: epochs until partitioning time amortizes (DistGNN).

Paper shape: every partitioner amortizes within a handful of epochs on
most graphs (DBH fastest: 1.4-3.8 epochs; HEP100 4.3-12), because
full-batch training is typically run for hundreds of epochs.
"""

from helpers import EDGE_PARTITIONERS, emit_table, once

from repro.experiments import (
    amortization_table,
    reduced_grid,
    run_distgnn_grid,
)

GRAPHS = ("HW", "EN", "EU", "OR")
MACHINES = (8, 32)


def compute(graphs):
    records = []
    grid = list(reduced_grid())[:4]
    for key in GRAPHS:
        records.extend(
            run_distgnn_grid(
                graphs[key], EDGE_PARTITIONERS, MACHINES, grid
            )
        )
    return amortization_table(records)


def test_tab04_amortization(graphs, benchmark):
    table = once(benchmark, lambda: compute(graphs))
    partitioners = [n for n in EDGE_PARTITIONERS if n != "random"]
    rows = [
        [key] + [table[key][name].formatted() for name in partitioners]
        for key in GRAPHS
    ]
    emit_table(
        "tab04",
        ["graph"] + list(partitioners),
        rows,
        "Table 4: epochs until partitioning amortizes (DistGNN)",
    )
    for key in GRAPHS:
        # The high-quality partitioners always amortize...
        assert table[key]["hep100"].epochs is not None, key
        # ...within the few-epochs regime the paper reports (full-batch
        # training runs for hundreds of epochs).
        assert table[key]["hep100"].epochs < 300, key
        # The cheap streaming partitioner amortizes fastest.
        dbh = table[key]["dbh"].epochs
        hep = table[key]["hep100"].epochs
        assert dbh is not None and dbh <= hep * 1.5, key
