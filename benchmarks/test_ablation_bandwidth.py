"""Ablation: cost-model sensitivity to network bandwidth.

The study's headline numbers live in the commodity-Ethernet regime. This
ablation sweeps the bandwidth an order of magnitude in both directions
and shows the expected monotonic effect: the slower the network, the more
partitioning matters (and vice versa) — evidence that the reproduced
*orderings* are robust to the exact calibration constant.
"""

import dataclasses

from helpers import emit_series, once

from repro.costmodel import DEFAULT_COST_MODEL
from repro.distgnn import DistGnnEngine
from repro.experiments import cached_edge_partition

BANDWIDTH_FACTORS = (0.1, 1.0, 10.0)


def compute(graphs):
    speedups = []
    for factor in BANDWIDTH_FACTORS:
        cost_model = dataclasses.replace(
            DEFAULT_COST_MODEL,
            network_bandwidth=DEFAULT_COST_MODEL.network_bandwidth * factor,
        )
        times = {}
        for name in ("random", "hep100"):
            partition, _ = cached_edge_partition(graphs["OR"], name, 16)
            engine = DistGnnEngine(
                partition, 64, 64, 3, cost_model=cost_model
            )
            times[name] = engine.simulate_epoch().epoch_seconds
        speedups.append(times["random"] / times["hep100"])
    return speedups


def test_ablation_bandwidth(graphs, benchmark):
    speedups = once(benchmark, lambda: compute(graphs))
    emit_series(
        "ablation_bandwidth",
        "Ablation (OR, 16 machines): HEP100 speedup vs bandwidth factor",
        {"hep100": speedups},
        BANDWIDTH_FACTORS,
        unit="x",
    )
    # Slower network -> partitioning more valuable; the ordering (HEP
    # beats Random) survives the full sweep.
    assert speedups[0] > speedups[1] > speedups[2]
    assert speedups[-1] >= 1.0
