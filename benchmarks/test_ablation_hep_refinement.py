"""Ablation: the in-memory refinement inside HEP/NE.

DESIGN.md documents that our HEP implementation adds a replica-reducing
refinement pass to the neighbourhood-expansion core (affordable because
that part of the graph is in memory). This ablation quantifies what the
pass buys: the replication factor with and without refinement.
"""

from helpers import emit_table, once

from repro.partitioning import NePartitioner, replication_factor


def compute(graphs):
    rows = []
    for key in ("OR", "HW", "EU"):
        for k in (8, 32):
            raw = NePartitioner(refine=False).partition(
                graphs[key], k, seed=0
            )
            refined = NePartitioner(refine=True).partition(
                graphs[key], k, seed=0
            )
            rows.append(
                (
                    key,
                    k,
                    replication_factor(raw),
                    replication_factor(refined),
                )
            )
    return rows


def test_ablation_hep_refinement(graphs, benchmark):
    rows = once(benchmark, lambda: compute(graphs))
    emit_table(
        "ablation_hep_refinement",
        ["graph", "k", "RF (no refine)", "RF (refined)"],
        rows,
        "Ablation: NE/HEP in-memory refinement",
    )
    improvements = [(raw - ref) / raw for _, _, raw, ref in rows]
    # Refinement never hurts and helps somewhere measurably.
    assert all(ref <= raw + 1e-9 for _, _, raw, ref in rows)
    assert max(improvements) > 0.03
