"""Figure 6: partitioning time of the vertex-cut partitioners (4 vs 32).

Paper shape: streaming partitioners (Random, DBH, 2PS-L) barely depend on
the partition count; HDRF's scoring is O(k) per edge, so its time grows
with more partitions.
"""

from helpers import EDGE_PARTITIONERS, emit_series, once

from repro.experiments import cached_edge_partition

MACHINES = (4, 32)


def compute(graphs):
    return {
        key: {
            name: [
                cached_edge_partition(graph, name, k)[1] for k in MACHINES
            ]
            for name in EDGE_PARTITIONERS
        }
        for key, graph in graphs.items()
    }


def test_fig06_partitioning_time(graphs, benchmark):
    results = once(benchmark, lambda: compute(graphs))
    for key, series in results.items():
        emit_series(
            f"fig06_{key}",
            f"Figure 6 ({key}): partitioning seconds at 4 and 32 partitions",
            series,
            MACHINES,
            unit="s",
        )
    for key, series in results.items():
        # HDRF's O(k) scoring slows it down with more partitions on the
        # dense graphs (on sparse DI the effect drowns in noise).
        if key in ("HW", "OR"):
            assert series["hdrf"][1] > series["hdrf"][0] * 0.8, key
        # Stateless streaming stays roughly flat in the partition count
        # (generous slack: these runs are fractions of a millisecond).
        assert series["random"][1] < series["random"][0] * 5 + 0.2, key
        assert series["dbh"][1] < series["dbh"][0] * 5 + 0.2, key
        # In-memory/hybrid partitioning costs the most (paper Figure 6).
        assert series["hep100"][1] > series["dbh"][1], key
