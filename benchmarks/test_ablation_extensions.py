"""Ablation: extension partitioners vs the studied Table 2 set.

The paper's conclusion hopes for "even more effective graph partitioning
algorithms". This benchmark places three such algorithms (Fennel, reLDG,
NE — all from the paper's related-work universe) next to the studied set.
"""

from helpers import emit_table, once

from repro.experiments import cached_vertex_partition
from repro.partitioning import (
    NePartitioner,
    edge_cut_ratio,
    make_extension_partitioner,
    replication_factor,
)
from repro.experiments import cached_edge_partition


def compute(graphs):
    graph = graphs["OR"]
    cut_rows = []
    for name in ("random", "ldg", "metis"):
        partition, seconds = cached_vertex_partition(graph, name, 16)
        cut_rows.append((name, edge_cut_ratio(partition), seconds))
    for name in ("fennel", "reldg"):
        partitioner = make_extension_partitioner(name)
        partition = partitioner.partition(graph, 16, seed=0)
        cut_rows.append(
            (
                partitioner.name,
                edge_cut_ratio(partition),
                partitioner.last_partitioning_seconds,
            )
        )
    rf_rows = []
    for name in ("random", "hdrf", "hep100"):
        partition, seconds = cached_edge_partition(graph, name, 16)
        rf_rows.append((name, replication_factor(partition), seconds))
    ne = NePartitioner()
    partition = ne.partition(graph, 16, seed=0)
    rf_rows.append(
        ("NE", replication_factor(partition), ne.last_partitioning_seconds)
    )
    return cut_rows, rf_rows


def test_ablation_extensions(graphs, benchmark):
    cut_rows, rf_rows = once(benchmark, lambda: compute(graphs))
    emit_table(
        "ablation_extensions_cut",
        ["partitioner", "edge-cut", "seconds"],
        cut_rows,
        "Extensions vs studied set (OR, 16 partitions): edge-cut",
    )
    emit_table(
        "ablation_extensions_rf",
        ["partitioner", "replication factor", "seconds"],
        rf_rows,
        "Extensions vs studied set (OR, 16 partitions): RF",
    )
    cuts = {name: cut for name, cut, _ in cut_rows}
    # The streaming extensions land between Random and multilevel.
    assert cuts["Fennel"] < cuts["random"]
    assert cuts["reLDG"] <= cuts["ldg"] + 0.02
    assert cuts["metis"] <= cuts["Fennel"] + 0.05
    rfs = {name: rf for name, rf, _ in rf_rows}
    # NE performs in HEP's league, far better than streaming HDRF.
    assert rfs["NE"] < rfs["hdrf"]
