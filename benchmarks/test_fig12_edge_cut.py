"""Figure 12: edge-cut ratio per edge-cut partitioner, graph, #partitions.

Paper shape: KaHIP/METIS achieve the lowest cut, Random the highest; the
cut grows with the partition count; the road network (DI) admits far
lower cuts than the power-law graphs.
"""

from helpers import VERTEX_PARTITIONERS, emit_series, once

from repro.experiments import cached_vertex_partition
from repro.partitioning import edge_cut_ratio

MACHINES = (4, 8, 16, 32)


def compute(graphs):
    return {
        key: {
            name: [
                edge_cut_ratio(
                    cached_vertex_partition(graph, name, k)[0]
                )
                for k in MACHINES
            ]
            for name in VERTEX_PARTITIONERS
        }
        for key, graph in graphs.items()
    }


def test_fig12_edge_cut(graphs, benchmark):
    results = once(benchmark, lambda: compute(graphs))
    for key, series in results.items():
        emit_series(
            f"fig12_{key}",
            f"Figure 12 ({key}): edge-cut ratio vs #partitions",
            series,
            MACHINES,
        )
    for key, series in results.items():
        for name, values in series.items():
            assert all(0.0 <= v <= 1.0 for v in values), (key, name)
            # More partitions -> larger cut.
            assert values[-1] >= values[0] - 0.02, (key, name)
            # Random is the worst.
            if name != "random":
                assert values[-1] < series["random"][-1], (key, name)
    # Multilevel partitioners lead (paper: KaHIP lowest in most cases).
    for key in ("OR", "EU", "DI"):
        best_multilevel = min(
            results[key]["kahip"][-1], results[key]["metis"][-1]
        )
        assert best_multilevel <= results[key]["ldg"][-1] + 0.02, key
    # The road network cuts far lower than the social graph.
    assert results["DI"]["metis"][-1] < 0.5 * results["OR"]["metis"][-1]
