"""Figure 17: balance of per-worker training time.

Paper shape: every partitioner shows noticeable training-time imbalance —
balancing training vertices does not balance computation time, because
mini-batch sizes (input vertices) differ per worker.
"""

from helpers import VERTEX_PARTITIONERS, emit_table, once

from repro.distdgl import DistDglEngine
from repro.experiments import cached_vertex_partition


def compute(graphs, splits):
    rows = []
    for key in ("OR", "EU"):
        for name in VERTEX_PARTITIONERS:
            partition, _ = cached_vertex_partition(graphs[key], name, 8)
            engine = DistDglEngine(
                partition,
                splits[key],
                feature_size=64,
                hidden_dim=64,
                num_layers=3,
                global_batch_size=64,
                seed=0,
            )
            report = engine.run_epoch()
            rows.append((key, name, report.training_time_balance()))
    return rows


def test_fig17_training_time_balance(graphs, splits, benchmark):
    rows = once(benchmark, lambda: compute(graphs, splits))
    emit_table(
        "fig17",
        ["graph", "partitioner", "training time balance"],
        rows,
        "Figure 17: per-worker training time balance (8 machines)",
    )
    imbalances = [v for _, _, v in rows]
    # All partitioners show real imbalance (paper: "interestingly, all
    # partitioners lead to large imbalances"; at our reduced batch sizes
    # the magnitude is smaller but the phenomenon is universal).
    assert all(v >= 1.0 for v in imbalances)
    assert max(imbalances) > 1.05
    assert sum(v > 1.02 for v in imbalances) >= len(imbalances) // 2
