"""Figure 8: replication factor vs speedup on EN, with vertex balance.

Paper shape: lower RF -> higher speedup; when RFs are close, the
vertex-imbalanced partitioner (2PS-L) falls behind its balanced peers.
"""

from helpers import EDGE_PARTITIONERS, emit_table, once

from repro.experiments import (
    TrainingParams,
    run_distgnn,
)


def compute(graphs):
    params = TrainingParams(feature_size=64, hidden_dim=64, num_layers=3)
    records = {
        name: run_distgnn(graphs["EN"], name, 16, params)
        for name in EDGE_PARTITIONERS
    }
    base = records["random"].epoch_seconds
    return {
        name: (
            r.replication_factor,
            base / r.epoch_seconds,
            r.vertex_balance,
        )
        for name, r in records.items()
    }


def test_fig08_rf_vs_speedup(graphs, benchmark):
    rows = once(benchmark, lambda: compute(graphs))
    emit_table(
        "fig08",
        ["partitioner", "RF", "speedup", "vertex balance"],
        [(name,) + vals for name, vals in rows.items()],
        "Figure 8 (EN, 16 machines): RF vs speedup "
        "(vertex balance in last column)",
    )
    # Lower RF -> at least as high speedup for the balanced partitioners.
    balanced = ["random", "dbh", "hdrf"]
    ordered = sorted(balanced, key=lambda n: rows[n][0])
    speeds = [rows[n][1] for n in ordered]
    assert speeds == sorted(speeds, reverse=True)
    # 2PS-L is clearly more vertex-imbalanced than HDRF...
    assert rows["2ps-l"][2] > rows["hdrf"][2] + 0.1
    # ...which costs it speedup relative to its RF advantage.
    assert rows["hep100"][1] == max(v[1] for v in rows.values())
