"""Table 5: epochs until partitioning time amortizes (DistDGL).

Paper shape: mini-batch epochs save far less than full-batch epochs, so
expensive partitioners amortize much more slowly than in Table 4 — KaHIP
needs hundreds to thousands of epochs on the power-law graphs (it only
pays off quickly on DI), while the cheap streaming partitioners (LDG)
amortize almost immediately and METIS within tens of epochs.
"""

from helpers import emit_table, once

from repro.experiments import (
    TrainingParams,
    amortization_table,
    run_distdgl_grid,
)

GRAPHS = ("DI", "EN", "EU", "OR")
PARTITIONERS = ("random", "bytegnn", "kahip", "ldg", "spinner", "metis")
GRID = [
    TrainingParams(feature_size=512, hidden_dim=64, num_layers=3,
                   global_batch_size=64),
    TrainingParams(feature_size=64, hidden_dim=64, num_layers=3,
                   global_batch_size=64),
]


def compute(graphs, splits):
    records = []
    for key in GRAPHS:
        records.extend(
            run_distdgl_grid(
                graphs[key], PARTITIONERS, (16,), GRID, split=splits[key]
            )
        )
    return amortization_table(records)


def test_tab05_amortization(graphs, splits, benchmark):
    table = once(benchmark, lambda: compute(graphs, splits))
    shown = [n for n in PARTITIONERS if n != "random"]
    rows = [
        [key] + [table[key][name].formatted() for name in shown]
        for key in GRAPHS
    ]
    emit_table(
        "tab05",
        ["graph"] + shown,
        rows,
        "Table 5: epochs until partitioning amortizes (DistDGL)",
    )
    for key in GRAPHS:
        ldg = table[key]["ldg"].epochs
        metis = table[key]["metis"].epochs
        kahip = table[key]["kahip"].epochs
        # On the power-law graphs, the cheap streaming partitioner
        # amortizes faster than multilevel partitioning (on DI, LDG's
        # quality advantage over Random is too small for that).
        if key != "DI" and ldg is not None and metis is not None:
            assert ldg < metis, key
        # METIS amortizes on every graph (paper Table 5).
        assert metis is not None, key
        # KaHIP's huge partitioning cost slows its payback dramatically
        # compared to METIS on the power-law graphs.
        if key != "DI" and kahip is not None:
            assert kahip > metis, key
