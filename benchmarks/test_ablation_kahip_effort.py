"""Ablation: KaHIP's extra effort (repetitions) vs cut and time.

KaHIP buys the study's lowest edge-cut with repeated multilevel V-cycles.
This ablation sweeps the repetition count to expose the quality/time
trade-off that drives Table 5's slow amortization.
"""

from helpers import emit_table, once

from repro.partitioning import KahipPartitioner, edge_cut_ratio

REPETITIONS = (1, 2, 4)


def compute(graphs):
    rows = []
    for reps in REPETITIONS:
        partitioner = KahipPartitioner(repetitions=reps)
        partition = partitioner.partition(graphs["OR"], 16, seed=0)
        rows.append(
            (
                reps,
                edge_cut_ratio(partition),
                partitioner.last_partitioning_seconds,
            )
        )
    return rows


def test_ablation_kahip_effort(graphs, benchmark):
    rows = once(benchmark, lambda: compute(graphs))
    emit_table(
        "ablation_kahip_effort",
        ["repetitions", "edge-cut", "seconds"],
        rows,
        "Ablation (OR, 16 partitions): KaHIP repetitions",
    )
    cuts = [cut for _, cut, _ in rows]
    seconds = [s for _, _, s in rows]
    # More repetitions: cut never worse, time strictly growing.
    assert cuts[-1] <= cuts[0] + 1e-9
    assert seconds[-1] > 2 * seconds[0]
