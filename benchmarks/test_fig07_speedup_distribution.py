"""Figure 7: DistGNN speedup distribution over Random, 4-32 machines.

Paper shape: all partitioners speed training up; HEP100/HEP10 lead by a
wide margin; effectiveness grows with the machine count; the spread over
GNN parameters is small (speedups are parameter-insensitive).
"""

import numpy as np
from helpers import EDGE_PARTITIONERS, emit_table, once

from repro.experiments import (
    reduced_grid,
    run_distgnn_grid,
    speedup_vs_random,
)

MACHINES = (4, 8, 16, 32)
GRAPHS = ("HW", "EN", "EU", "OR")  # the paper's Fig.7 graphs


def compute(graphs):
    grid = list(reduced_grid())
    stats = {}
    for key in GRAPHS:
        records = run_distgnn_grid(
            graphs[key], EDGE_PARTITIONERS, MACHINES, grid
        )
        speedups = speedup_vs_random(records)
        for (g, name, k, _params), value in speedups.items():
            stats.setdefault((g, name, k), []).append(value)
    return {
        cell: (float(np.mean(vals)), float(np.min(vals)), float(np.max(vals)))
        for cell, vals in stats.items()
    }


def test_fig07_speedup_distribution(graphs, benchmark):
    stats = once(benchmark, lambda: compute(graphs))
    rows = [
        (g, name, k, mean, lo, hi)
        for (g, name, k), (mean, lo, hi) in sorted(stats.items())
    ]
    emit_table(
        "fig07",
        ["graph", "partitioner", "machines", "mean", "min", "max"],
        rows,
        "Figure 7: DistGNN speedup over Random "
        "(all sweep configurations)",
    )
    for key in GRAPHS:
        # HEP dominates the streaming partitioners at scale.
        assert (
            stats[(key, "hep100", 32)][0] > stats[(key, "dbh", 32)][0]
        ), key
        # Effectiveness grows with the scale-out factor.
        assert (
            stats[(key, "hep100", 32)][0] > stats[(key, "hep100", 4)][0]
        ), key
        # Small spread: speedups are insensitive to GNN parameters.
        mean, lo, hi = stats[(key, "hep100", 16)]
        assert hi - lo < 0.6 * mean, key
