"""Figure 15: partitioning time of the edge-cut partitioners (log scale).

Paper shape: KaHIP — the best partitioner by edge-cut — is by far the
slowest; streaming (Random, LDG) is orders of magnitude faster.
"""

from helpers import VERTEX_PARTITIONERS, emit_series, once

from repro.experiments import cached_vertex_partition

MACHINES = (4, 32)


def compute(graphs):
    return {
        key: {
            name: [
                cached_vertex_partition(graph, name, k)[1]
                for k in MACHINES
            ]
            for name in VERTEX_PARTITIONERS
        }
        for key, graph in graphs.items()
    }


def test_fig15_partitioning_time(graphs, benchmark):
    results = once(benchmark, lambda: compute(graphs))
    for key, series in results.items():
        emit_series(
            f"fig15_{key}",
            f"Figure 15 ({key}): partitioning seconds (log scale in paper)",
            series,
            MACHINES,
            unit="s",
        )
    for key, series in results.items():
        # KaHIP costs the most of all partitioners...
        for name in VERTEX_PARTITIONERS:
            if name != "kahip":
                assert series["kahip"][1] >= series[name][1], (key, name)
        # ...and streaming is at least 10x cheaper than KaHIP.
        assert series["random"][1] < series["kahip"][1] / 10, key
        assert series["ldg"][1] < series["kahip"][1], key
