"""Figure 5: memory utilization balance across machines (4 machines).

Paper shape: memory-utilization imbalance tracks vertex imbalance
("vertex imbalance perfectly correlates with memory utilization
imbalance").
"""

from helpers import EDGE_PARTITIONERS, emit_table, once

from repro.experiments import TrainingParams, r_squared, run_distgnn


def compute(graphs):
    params = TrainingParams(feature_size=64, hidden_dim=64, num_layers=3)
    rows = []
    vertex_balances = []
    memory_balances = []
    for key, graph in graphs.items():
        for name in EDGE_PARTITIONERS:
            record = run_distgnn(graph, name, 4, params)
            rows.append(
                (key, name, record.vertex_balance, record.memory_balance)
            )
            vertex_balances.append(record.vertex_balance)
            memory_balances.append(record.memory_balance)
    return rows, r_squared(vertex_balances, memory_balances)


def test_fig05_memory_balance(graphs, benchmark):
    rows, r2 = once(benchmark, lambda: compute(graphs))
    emit_table(
        "fig05",
        ["graph", "partitioner", "vertex balance", "memory balance"],
        rows,
        f"Figure 5: memory utilization balance, 4 machines "
        f"(R^2 vs vertex balance = {r2:.3f})",
    )
    # Memory balance must track vertex balance tightly.
    assert r2 > 0.9
    for _, name, vb, mb in rows:
        assert mb >= 1.0
