"""Ablation: partitioner effectiveness across GNN architectures.

The paper selects GAT, GraphSage and GCN as representative architectures
(Section 5.1) but reports speedup distributions for GraphSage (Figure
16) and phase times for GAT (Figure 25). This ablation completes the
matrix: METIS' speedup over Random for all three architectures, showing
the mechanism generalises — heavier compute (GAT) dilutes the relative
gain exactly as a larger hidden dimension does.
"""

from helpers import emit_table, once

from repro.experiments import TrainingParams, run_distdgl

ARCHS = ("sage", "gcn", "gat")


def compute(graphs, splits):
    rows = []
    for arch in ARCHS:
        params = TrainingParams(
            feature_size=256, hidden_dim=64, num_layers=3,
            arch=arch, global_batch_size=64,
        )
        base = run_distdgl(
            graphs["OR"], "random", 8, params, split=splits["OR"]
        )
        mine = run_distdgl(
            graphs["OR"], "metis", 8, params, split=splits["OR"]
        )
        compute_share = (
            mine.phase_seconds["forward"] + mine.phase_seconds["backward"]
        ) / mine.epoch_seconds
        rows.append(
            (
                arch,
                base.epoch_seconds / mine.epoch_seconds,
                compute_share,
            )
        )
    return rows


def test_ablation_architectures(graphs, splits, benchmark):
    rows = once(benchmark, lambda: compute(graphs, splits))
    emit_table(
        "ablation_architectures",
        ["architecture", "METIS speedup", "compute share"],
        rows,
        "Ablation (OR, 8 machines, f=256): architecture sensitivity",
    )
    by_arch = {arch: (speedup, share) for arch, speedup, share in rows}
    # Partitioning helps every architecture...
    for arch in ARCHS:
        assert by_arch[arch][0] > 1.0, arch
    # ...and GAT's heavier compute dilutes the relative benefit below
    # the lighter GCN's.
    assert by_arch["gat"][1] > by_arch["gcn"][1]
    assert by_arch["gat"][0] <= by_arch["gcn"][0] + 0.05
