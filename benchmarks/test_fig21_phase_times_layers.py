"""Figure 21: phase times vs #layers (GraphSage, hidden 64, feature 64,
4 machines, OR).

Paper shape: every phase grows with the layer count (larger computation
graphs); for 3-4 layers most of the partitioner speedup comes from
sampling + fetching.
"""

from helpers import emit_series, once

from repro.experiments import TrainingParams, run_distdgl

LAYERS = (2, 3, 4)


def compute(graphs, splits):
    out = {}
    for name in ("random", "metis"):
        phase_list = []
        for layers in LAYERS:
            params = TrainingParams(
                feature_size=64, hidden_dim=64, num_layers=layers,
                global_batch_size=64,
            )
            phase_list.append(
                run_distdgl(
                    graphs["OR"], name, 4, params, split=splits["OR"]
                ).phase_seconds
            )
        out[name] = phase_list
    return out


def test_fig21_phase_times_layers(graphs, splits, benchmark):
    results = once(benchmark, lambda: compute(graphs, splits))
    for name, phase_list in results.items():
        series = {
            phase: [p[phase] * 1e3 for p in phase_list]
            for phase in ("sample", "fetch", "forward", "backward")
        }
        emit_series(
            f"fig21_{name}",
            f"Figure 21 (OR, 4 machines, {name}): phase ms vs #layers",
            series,
            LAYERS,
            unit="ms",
        )
    for name, phase_list in results.items():
        for phase in ("sample", "fetch", "forward", "backward"):
            # Every phase grows in run-time with the number of layers.
            assert phase_list[-1][phase] > phase_list[0][phase], (
                name, phase,
            )
    # For deep models the partitioner's gain concentrates in the data
    # phases (sampling + fetching), not in the compute phases.
    rnd, met = results["random"][-1], results["metis"][-1]
    data_gain = (rnd["sample"] + rnd["fetch"]) - (
        met["sample"] + met["fetch"]
    )
    compute_gain = (rnd["forward"] + rnd["backward"]) - (
        met["forward"] + met["backward"]
    )
    assert data_gain > compute_gain
