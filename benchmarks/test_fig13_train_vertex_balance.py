"""Figure 13: training-vertex balance at 8 partitions.

Paper shape: with a uniform random 10% training split, hash-based and
balanced partitioners keep training vertices near-balanced; block/cluster
based partitioners (ByteGNN explicitly balances them) stay bounded too.
"""

from helpers import VERTEX_PARTITIONERS, emit_table, once

from repro.experiments import cached_vertex_partition
from repro.partitioning import training_vertex_balance


def compute(graphs, splits):
    rows = []
    for key, graph in graphs.items():
        for name in VERTEX_PARTITIONERS:
            partition, _ = cached_vertex_partition(graph, name, 8)
            rows.append(
                (
                    key,
                    name,
                    training_vertex_balance(
                        partition, splits[key].train
                    ),
                )
            )
    return rows


def test_fig13_train_vertex_balance(graphs, splits, benchmark):
    rows = once(benchmark, lambda: compute(graphs, splits))
    emit_table(
        "fig13",
        ["graph", "partitioner", "train vertex balance"],
        rows,
        "Figure 13: training vertex balance (8 partitions)",
    )
    by_cell = {(g, n): v for g, n, v in rows}
    for key in graphs:
        # Random's uniform assignment keeps training vertices balanced.
        assert by_cell[(key, "random")] < 1.35, key
        # ByteGNN balances training vertices by construction.
        assert by_cell[(key, "bytegnn")] < 1.35, key
        # Nothing degenerates (every partition gets training vertices).
        for name in VERTEX_PARTITIONERS:
            assert by_cell[(key, name)] < 3.0, (key, name)
