"""Figure 9: memory footprint distribution in % of Random (4 vs 32).

Paper shape: HEP10/HEP100 far more effective than the streaming
partitioners; the spread over GNN parameters is wide (unlike the speedup
distribution); RF correlates with memory at R^2 >= 0.99.
"""

import numpy as np
from helpers import EDGE_PARTITIONERS, emit_table, once

from repro.experiments import (
    r_squared,
    reduced_grid,
    run_distgnn_grid,
)

MACHINES = (4, 32)
GRAPHS = ("HW", "EN", "EU", "OR")


def compute(graphs):
    grid = list(reduced_grid())
    cells = {}
    per_config = {}
    for key in GRAPHS:
        records = run_distgnn_grid(
            graphs[key], EDGE_PARTITIONERS, MACHINES, grid
        )
        base = {
            (r.num_machines, r.params): r.total_memory_bytes
            for r in records
            if r.partitioner == "random"
        }
        for r in records:
            per_config.setdefault(
                (key, r.num_machines, r.params), []
            ).append((r.replication_factor, r.total_memory_bytes))
            pct = 100.0 * r.total_memory_bytes / base[
                (r.num_machines, r.params)
            ]
            cells.setdefault((key, r.partitioner, r.num_machines), []).append(
                pct
            )
    stats = {
        cell: (float(np.mean(v)), float(np.min(v)), float(np.max(v)))
        for cell, v in cells.items()
    }
    # The paper's R^2 compares partitioners within one configuration
    # (same graph, machine count, hyper-parameters).
    r2_values = [
        r_squared([p[0] for p in points], [p[1] for p in points])
        for points in per_config.values()
    ]
    return stats, float(np.min(r2_values))


def test_fig09_memory_footprint(graphs, benchmark):
    stats, r2 = once(benchmark, lambda: compute(graphs))
    rows = [
        (g, name, k, mean, lo, hi)
        for (g, name, k), (mean, lo, hi) in sorted(stats.items())
    ]
    emit_table(
        "fig09",
        ["graph", "partitioner", "machines", "mean %", "min %", "max %"],
        rows,
        f"Figure 9: memory footprint in % of Random "
        f"(min per-config R^2 RF vs memory = {r2:.3f})",
    )
    assert r2 > 0.9  # paper: >= 0.99
    for key in GRAPHS:
        # HEP saves much more memory than DBH.
        assert (
            stats[(key, "hep100", 32)][0] < stats[(key, "dbh", 32)][0]
        ), key
        # Large savings at scale (paper: up to 85% less).
        assert stats[(key, "hep100", 32)][0] < 70.0, key
        # Wide spread: effectiveness depends on the GNN parameters.
        mean, lo, hi = stats[(key, "hep100", 32)]
        assert hi - lo > 1.0, key
