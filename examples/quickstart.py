"""Quickstart: partition a graph and simulate distributed GNN training.

Runs the core pipeline of the study end to end:

1. generate the Orkut-like social graph (the paper's ``OR``),
2. partition it with two algorithms from each family,
3. report the partitioning quality metrics of Section 2.1,
4. simulate a full-batch DistGNN epoch and a mini-batch DistDGL epoch,
   and show how much the better partitioning saves.

Usage::

    python examples/quickstart.py
"""

from repro.distdgl import DistDglEngine
from repro.distgnn import DistGnnEngine
from repro.graph import load_dataset, random_split
from repro.partitioning import (
    edge_partition_quality,
    make_edge_partitioner,
    make_vertex_partitioner,
    vertex_partition_quality,
)

NUM_MACHINES = 8


def main() -> None:
    graph = load_dataset("OR", scale="small")
    split = random_split(graph, seed=7)
    print(f"Graph: {graph}")
    print(f"Split: {len(split.train)} train / {len(split.valid)} valid "
          f"/ {len(split.test)} test\n")

    print("--- Edge partitioning (vertex-cut), DistGNN full-batch ---")
    epoch_times = {}
    for name in ("random", "hep100"):
        partition = make_edge_partitioner(name).partition(
            graph, NUM_MACHINES, seed=0
        )
        quality = edge_partition_quality(partition)
        engine = DistGnnEngine(
            partition, feature_size=64, hidden_dim=64, num_layers=3
        )
        breakdown = engine.simulate_epoch()
        epoch_times[name] = breakdown.epoch_seconds
        print(
            f"{name:>8s}: {quality.as_row()}  "
            f"epoch={breakdown.epoch_seconds * 1e3:7.2f} ms  "
            f"traffic={breakdown.network_bytes / 1e6:6.1f} MB  "
            f"memory={engine.total_memory() / 1e6:6.1f} MB"
        )
    print(
        f"HEP100 speedup over Random: "
        f"{epoch_times['random'] / epoch_times['hep100']:.2f}x\n"
    )

    print("--- Vertex partitioning (edge-cut), DistDGL mini-batch ---")
    epoch_times = {}
    for name in ("random", "metis"):
        partition = make_vertex_partitioner(name).partition(
            graph, NUM_MACHINES, seed=0
        )
        quality = vertex_partition_quality(partition, split.train)
        engine = DistDglEngine(
            partition,
            split,
            feature_size=256,
            hidden_dim=64,
            num_layers=3,
            global_batch_size=64,
            seed=0,
        )
        report = engine.run_epoch()
        epoch_times[name] = report.epoch_seconds
        phases = ", ".join(
            f"{phase}={seconds * 1e3:.1f}ms"
            for phase, seconds in report.phase_seconds().items()
        )
        print(f"{name:>8s}: {quality.as_row()}")
        print(f"          {phases}")
        print(
            f"          remote inputs/epoch: "
            f"{report.remote_input_vertices}"
        )
    print(
        f"METIS speedup over Random: "
        f"{epoch_times['random'] / epoch_times['metis']:.2f}x"
    )


if __name__ == "__main__":
    main()
