"""Mini-batch distributed training with neighbourhood sampling (DistDGL).

Reproduces the paper's DistDGL workflow on the web-crawl stand-in (EU):
every worker samples seeds from its own partition, fetches remote
features, and trains a shared GraphSAGE replica. The script contrasts
partitioners along the axes the paper measures:

* phase breakdown (sampling / fetching / compute),
* remote input vertices,
* real training convergence (identical task, different data layout).

Usage::

    python examples/minibatch_sampling_study.py
"""

import numpy as np

from repro.distdgl import DistDglEngine, DistributedMiniBatchTrainer
from repro.graph import load_dataset, random_split
from repro.partitioning import make_vertex_partitioner, vertex_partition_quality

NUM_MACHINES = 8
FEATURE_SIZE = 64
NUM_CLASSES = 6


def main() -> None:
    graph = load_dataset("EU", scale="small")
    split = random_split(graph, seed=11)
    rng = np.random.default_rng(0)
    labels = rng.integers(0, NUM_CLASSES, size=graph.num_vertices)
    features = rng.normal(0.0, 0.5, size=(graph.num_vertices, FEATURE_SIZE))
    features[np.arange(graph.num_vertices), labels] += 1.8

    print(f"DistDGL-style training on {graph}, {NUM_MACHINES} workers\n")
    header = (
        f"{'partitioner':>12s} {'cut':>6s} {'sample':>8s} {'fetch':>8s} "
        f"{'fwd':>8s} {'bwd':>8s} {'remote':>7s} {'testacc':>8s}"
    )
    print(header)
    for name in ("random", "ldg", "metis", "bytegnn"):
        partition = make_vertex_partitioner(name).partition(
            graph, NUM_MACHINES, seed=0
        )
        quality = vertex_partition_quality(partition, split.train)

        engine = DistDglEngine(
            partition, split,
            feature_size=FEATURE_SIZE, hidden_dim=32, num_layers=2,
            global_batch_size=64, seed=0,
        )
        report = engine.run_epoch()
        phases = report.phase_seconds()

        trainer = DistributedMiniBatchTrainer(
            partition, split, features, labels,
            hidden_dim=32, num_layers=2, global_batch_size=64,
            learning_rate=0.01, seed=1,
        )
        trainer.train(6)
        accuracy = trainer.evaluate(split.test)

        print(
            f"{name:>12s} {quality.edge_cut:6.3f} "
            f"{phases['sample'] * 1e3:7.1f}ms {phases['fetch'] * 1e3:7.1f}ms "
            f"{phases['forward'] * 1e3:7.1f}ms "
            f"{phases['backward'] * 1e3:7.1f}ms "
            f"{report.remote_input_vertices:7d} {accuracy:8.3f}"
        )

    print(
        "\nLower edge-cut -> fewer remote inputs -> cheaper sampling and "
        "fetching; accuracy is layout-independent."
    )


if __name__ == "__main__":
    main()
