"""Tour of the telemetry analysis layer (``repro.obs.analysis``).

Runs a tiny sweep with telemetry on, then walks the diagnosis pipeline:

1. **attribution** — where does a run's wall time go?  Phase mix,
   compute-vs-skew decomposition and straggler charging straight from a
   :class:`~repro.cluster.Timeline`;
2. **analysis report** — fold sweep records into an
   :class:`~repro.obs.analysis.AnalysisReport` with typed, severity-
   ranked findings, and print the terminal summary;
3. **dashboard** — render the same report as a self-contained HTML file
   (inline CSS/JS, embedded JSON, opens offline from disk);
4. **diffing** — compare two runs; a run diffed against itself must be
   clean, and a changed configuration shows up as typed cell changes.

Usage::

    PYTHONPATH=src python examples/diagnosis_tour.py
"""

import os
import tempfile

import numpy as np

from repro import obs
from repro.cluster import Timeline
from repro.experiments import TrainingParams, run_distgnn
from repro.graph import load_dataset
from repro.obs.analysis import (
    attribute_timeline,
    build_analysis_report,
    diff_runs,
    render_dashboard,
    render_report_text,
)
from repro.obs.analysis.load import RunData


def main() -> None:
    """Run the tour (tiny graph, a few seconds)."""
    graph = load_dataset("OR", "tiny")
    params = TrainingParams(feature_size=32, hidden_dim=32, num_layers=2)

    # -- 1. Attribution on a hand-built timeline: machine 2 straggles.
    timeline = Timeline()
    for _ in range(3):
        timeline.add_phase("forward", np.array([1.0, 1.0, 1.6]))
        timeline.add_phase("backward", np.array([2.0, 2.0, 2.9]))
    attribution = attribute_timeline(timeline)
    print(f"attribution: total {attribution.total_seconds:.1f}s = "
          f"{attribution.compute_seconds:.1f}s compute + "
          f"{attribution.skew_seconds:.1f}s skew "
          f"({attribution.skew_fraction:.0%} lost to stragglers)")
    worst = max(attribution.machines, key=lambda m: m.straggler_count)
    print(f"attribution: machine {worst.machine} bound "
          f"{worst.straggler_count} of {len(timeline.records)} barriers")

    # -- 2. Records -> analysis report with findings.
    obs.enable("metrics")
    records = [
        run_distgnn(graph, name, 4, params, seed=0)
        for name in ("random", "hdrf", "dbh")
    ]
    obs.reset()
    obs.disable()
    report = build_analysis_report(
        RunData(label="tour", records=records)
    )
    print()
    print(render_report_text(report.to_dict()))

    # -- 3. The same report as a single offline HTML file.
    out = os.path.join(tempfile.mkdtemp(prefix="repro-tour-"),
                       "dashboard.html")
    with open(out, "w", encoding="utf-8") as handle:
        handle.write(render_dashboard(report.to_dict()))
    print(f"dashboard: wrote {out} "
          f"({os.path.getsize(out) / 1024:.0f} KiB, no network needed)")

    # -- 4. Diffing: self-diff is clean; a changed config is typed.
    run = RunData(label="tour", records=records)
    assert diff_runs(run, run).clean
    print("diff:      run vs itself -> clean (zero regressions)")

    bigger = RunData(
        label="k8",
        records=[run_distgnn(graph, "hdrf", 8, params, seed=0)],
    )
    diff = diff_runs(run, bigger)
    print(f"diff:      tour vs k8  -> clean={diff.clean}, "
          f"{len(diff.added_cells)} cells added, "
          f"{len(diff.removed_cells)} removed")


if __name__ == "__main__":
    main()
