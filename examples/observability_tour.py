"""Tour of the observability layer (``repro.obs``).

Walks the three telemetry levels end to end:

1. ``off`` (the default) — every hook is a no-op;
2. ``metrics`` — run a partitioner and one DistGNN epoch and inspect
   the counters/histograms the instrumentation collected;
3. ``trace`` — re-run with spans and instant events streaming into an
   in-memory sink, then show the event stream;

and finishes by folding a pair of experiment records (with their
deterministic ``obs_metrics`` summaries) into the consolidated run
report from :func:`repro.experiments.build_run_report`.

Usage::

    PYTHONPATH=src python examples/observability_tour.py
"""

from repro import obs
from repro.distgnn import DistGnnEngine
from repro.experiments import TrainingParams, build_run_report, run_distgnn
from repro.graph import load_dataset
from repro.partitioning import make_edge_partitioner


def main() -> None:
    """Run the tour (tiny graph, a few seconds)."""
    graph = load_dataset("OR", "tiny")

    # -- Level off: hooks cost one integer comparison and collect nothing.
    assert not obs.enabled()
    make_edge_partitioner("dbh").partition(graph, 4)
    assert len(obs.get_registry()) == 0
    print("off:      no instruments created")

    # -- Level metrics: the registry accumulates catalog-declared series.
    obs.enable("metrics")
    partition = make_edge_partitioner("hdrf").partition(graph, 4)
    engine = DistGnnEngine(
        partition, feature_size=32, hidden_dim=32, num_layers=2
    )
    engine.simulate_epoch()

    with obs.span("tour-block"):
        pass  # wall time of this block lands in obs.span_seconds

    snapshot = obs.snapshot()
    print(f"metrics:  {len(snapshot)} series collected, e.g.")
    for entry in snapshot:
        if entry["name"] in (
            "partitioner.runs",
            "partitioner.edges_assigned",
            "cluster.phase_seconds",
            "distgnn.epochs",
        ):
            print(f"  {entry['name']:32s} {entry['labels']}")
    obs.reset()

    # -- Level trace: spans/events additionally stream to a sink.
    sink = obs.MemorySink()
    obs.configure("trace", sink)
    with obs.span("epoch", machine=0):
        engine.simulate_epoch()
    obs.disable()
    kinds = {}
    for event in sink.events:
        kinds[event["kind"]] = kinds.get(event["kind"], 0) + 1
    print(f"trace:    {len(sink.events)} events -> "
          + ", ".join(f"{k}={n}" for k, n in sorted(kinds.items())))

    # -- Records + run report: obs_metrics is simulated-only and rides
    # on every record produced while telemetry is enabled.
    obs.enable("metrics")
    params = TrainingParams(feature_size=32, hidden_dim=32, num_layers=2)
    records = [
        run_distgnn(graph, "random", 4, params),
        run_distgnn(graph, "hdrf", 4, params),
    ]
    obs.reset()
    obs.disable()
    assert records[1].obs_metrics is not None
    markdown, report = build_run_report(records)
    print(f"report:   {report['num_records']} records, "
          f"speedup rows: {len(report['speedups'])}, "
          f"phase totals: {len(report['obs']['phase_seconds'])}")
    print()
    print(markdown)


if __name__ == "__main__":
    main()
