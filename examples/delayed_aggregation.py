"""DistGNN's cd-r delayed aggregation: traffic vs convergence trade-off.

The real DistGNN reduces halo-synchronisation traffic by letting each
machine reuse *stale* remote partial aggregates for up to ``r`` epochs
(its cd-r variants). The paper under reproduction benchmarks the
synchronous variant; this example runs our executable implementation of
both on the same task and shows the trade the optimisation makes:

* r = 1: exact synchronous training (the reproduced baseline),
* r > 1: ~(r-1)/r of the halo traffic avoided, slightly noisier loss.

It also writes a Chrome trace of a simulated epoch timeline to
``/tmp/distgnn_epoch_trace.json`` (open in chrome://tracing).

Usage::

    python examples/delayed_aggregation.py
"""

from repro.cluster import save_chrome_trace
from repro.distgnn import (
    DelayedAggregationTrainer,
    DistGnnEngine,
    DistributedFullBatchTrainer,
)
from repro.graph import load_dataset, planted_community_task, random_split
from repro.partitioning import make_edge_partitioner

NUM_MACHINES = 8
EPOCHS = 25


def main() -> None:
    graph = load_dataset("OR", scale="small")
    split = random_split(graph, seed=3)
    task = planted_community_task(
        graph, num_classes=8, feature_size=16, seed=0
    )
    mask = split.train_mask(graph.num_vertices)
    partition = make_edge_partitioner("hdrf").partition(
        graph, NUM_MACHINES, seed=0
    )

    print(f"cd-r delayed aggregation on {graph}, {NUM_MACHINES} machines\n")
    sync = DistributedFullBatchTrainer(
        partition, task.features, task.labels, mask,
        hidden_dim=32, num_layers=2, seed=1,
    )
    sync_losses = sync.train(EPOCHS)
    print(
        f"{'r=1 (sync)':>12s}: loss {sync_losses[0]:.3f} -> "
        f"{sync_losses[-1]:.3f}, traffic saved:   0%"
    )
    for interval in (2, 4):
        delayed = DelayedAggregationTrainer(
            partition, task.features, task.labels, mask,
            refresh_interval=interval, hidden_dim=32, num_layers=2, seed=1,
        )
        losses = delayed.train(EPOCHS)
        print(
            f"{f'r={interval}':>12s}: loss {losses[0]:.3f} -> "
            f"{losses[-1]:.3f}, traffic saved: "
            f"{100 * delayed.communication_saving:3.0f}%"
        )

    engine = DistGnnEngine(partition, 16, 32, 2, num_classes=8)
    engine.simulate_epoch()
    trace_path = "/tmp/distgnn_epoch_trace.json"
    save_chrome_trace(engine.cluster.timeline, trace_path)
    print(
        f"\nSimulated epoch timeline written to {trace_path} "
        "(open in chrome://tracing)"
    )


if __name__ == "__main__":
    main()
