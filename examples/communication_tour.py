"""Tour of the communication-reduction axis (docs/communication.md).

Network traffic dominates distributed GNN training, so the library
models three orthogonal ways to shrink it — compression codecs on the
hot exchanges, DistGNN's cd-r delayed aggregation, and DistDGL's
static feature cache — each priced through the cost model with a
deterministic accuracy-proxy error. This tour walks all three:

1. the codec catalogue (ratio / error / codec-time model),
2. a DistGNN codec ladder: wire bytes vs accuracy proxy per codec,
3. cd-r staleness: traffic saved by refreshing halos every r epochs,
4. DistDGL feature caching: hit rate and fetch bytes avoided,
5. the sweep-level traffic-vs-accuracy Pareto frontier.

Usage::

    python examples/communication_tour.py
"""

from repro.comm import CODEC_NAMES, CommConfig, make_codec
from repro.costmodel import DEFAULT_COST_MODEL
from repro.distdgl import DistDglEngine
from repro.distgnn import DistGnnEngine
from repro.experiments import reduced_grid, run_distgnn
from repro.graph import load_dataset, random_split
from repro.obs.analysis import traffic_accuracy_tradeoff
from repro.partitioning import make_edge_partitioner, make_vertex_partitioner

NUM_MACHINES = 8


def codec_catalogue() -> None:
    print("1. the codec catalogue (per 1 MB of payload)")
    raw = 1e6
    for name in CODEC_NAMES:
        codec = make_codec(name)
        micros = 1e6 * codec.codec_seconds(raw, DEFAULT_COST_MODEL)
        print(
            f"   {name:>5s}: {codec.wire_bytes(raw) / 1e3:6.0f} KB on "
            f"the wire, error proxy {codec.error_per_value:.2e}, "
            f"codec time {micros:5.1f} us"
        )
    print()


def distgnn_codec_ladder(graph, partition) -> None:
    print("2. DistGNN halo + gradient exchanges, one epoch per codec")
    for name in CODEC_NAMES:
        engine = DistGnnEngine(
            partition, feature_size=32, hidden_dim=32, num_layers=2,
            compression=name,
        )
        report = engine.simulate_epoch()
        comm = engine.comm_summary()
        print(
            f"   {name:>5s}: {report.network_bytes / 1e6:7.1f} MB wire "
            f"({comm.saved_bytes / 1e6:6.1f} MB saved), "
            f"accuracy proxy {comm.accuracy_proxy_error:.2e}"
        )
    print()


def delayed_aggregation(graph, partition) -> None:
    print("3. cd-r: halos refreshed every r epochs (4 epochs each)")
    for interval in (1, 2, 4):
        engine = DistGnnEngine(
            partition, feature_size=32, hidden_dim=32, num_layers=2,
            refresh_interval=interval,
        )
        for _ in range(4):
            engine.simulate_epoch()
        comm = engine.comm_summary()
        saved = comm.saved_bytes / (comm.raw_bytes or 1.0)
        print(
            f"   r={interval}: {comm.stale_epochs}/4 stale epochs, "
            f"{100 * saved:3.0f}% of halo+gradient bytes saved, "
            f"accuracy proxy {comm.accuracy_proxy_error:.3f}"
        )
    print()


def feature_cache(graph, split) -> None:
    print("4. DistDGL static feature cache (one epoch each)")
    partition = make_vertex_partitioner("metis").partition(
        graph, NUM_MACHINES, seed=0
    )
    for fraction in (0.0, 0.2, 0.5):
        engine = DistDglEngine(
            partition, split, feature_size=32, hidden_dim=32,
            num_layers=2, global_batch_size=64, seed=0,
            cache_fraction=fraction,
        )
        report = engine.run_epoch()
        comm = engine.comm_summary()
        print(
            f"   cache {fraction:3.0%}: hit rate "
            f"{comm.cache_hit_rate:5.1%}, "
            f"{report.network_bytes / 1e6:6.1f} MB fetched"
        )
    print()


def pareto_frontier(graph) -> None:
    print("5. sweep-level traffic-vs-accuracy frontier (hdrf, k=4)")
    params = next(iter(reduced_grid()))
    records = []
    for comm in (
        None,
        CommConfig(compression="fp16"),
        CommConfig(compression="fp16", refresh_interval=2),
        CommConfig(compression="int8"),
        CommConfig(compression="topk"),
    ):
        records.append(
            run_distgnn(
                graph, "hdrf", 4, params, num_epochs=2, comm_config=comm
            )
        )
    points = traffic_accuracy_tradeoff(records)["distgnn"]["hdrf"]
    for point in points:
        star = "*" if point["on_frontier"] else " "
        print(
            f"   {star} {point['comm']:>12s}: "
            f"{point['wire_bytes'] / 1e6:6.1f} MB/epoch wire "
            f"({point['saved_fraction']:5.1%} saved), "
            f"error {point['accuracy_proxy_error']:.3f}"
        )
    print("   (* = Pareto frontier: no config moves fewer bytes at")
    print("    no worse accuracy)")


def main() -> None:
    graph = load_dataset("OR", scale="tiny")
    split = random_split(graph, seed=3)
    partition = make_edge_partitioner("hdrf").partition(
        graph, NUM_MACHINES, seed=0
    )
    print(f"communication-reduction tour on {graph}\n")
    codec_catalogue()
    distgnn_codec_ladder(graph, partition)
    delayed_aggregation(graph, partition)
    feature_cache(graph, split)
    pareto_frontier(graph)


if __name__ == "__main__":
    main()
