"""Full-batch distributed GraphSAGE on a social network (DistGNN-style).

Trains a *real* numpy GraphSAGE model over an edge partition using
DistGNN's communication pattern (per-machine partial aggregates reduced
across replicas), on a synthetic community-detection task: each vertex's
label is its planted community, features are a noisy one-hot encoding.

The script demonstrates two facts from the paper:

* distributed full-batch training is numerically identical to centralized
  training regardless of the partitioner (correctness), and
* the partitioner decides the *cost*: the simulated epoch time and memory
  differ sharply between Random and HEP (performance).

Usage::

    python examples/social_network_full_batch.py
"""

import numpy as np

from repro.distgnn import DistGnnEngine, DistributedFullBatchTrainer
from repro.graph import load_dataset, random_split
from repro.partitioning import make_edge_partitioner

NUM_MACHINES = 8
NUM_CLASSES = 8
FEATURE_SIZE = 16
EPOCHS = 40


def make_task(graph, rng):
    """Labels = coarse community id; features = noisy one-hot labels."""
    labels = (np.arange(graph.num_vertices) * NUM_CLASSES
              // graph.num_vertices)
    features = rng.normal(0.0, 0.6, size=(graph.num_vertices, FEATURE_SIZE))
    features[np.arange(graph.num_vertices), labels] += 1.5
    return features, labels


def main() -> None:
    graph = load_dataset("OR", scale="small")
    split = random_split(graph, seed=3)
    rng = np.random.default_rng(0)
    features, labels = make_task(graph, rng)
    train_mask = split.train_mask(graph.num_vertices)

    print(f"Training 2-layer GraphSAGE on {graph} "
          f"({NUM_MACHINES} simulated machines)\n")

    final_losses = {}
    for name in ("random", "hdrf", "hep100"):
        partition = make_edge_partitioner(name).partition(
            graph, NUM_MACHINES, seed=0
        )
        trainer = DistributedFullBatchTrainer(
            partition, features, labels, train_mask,
            hidden_dim=32, num_layers=2, learning_rate=0.01, seed=1,
        )
        losses = trainer.train(EPOCHS)
        accuracy = trainer.evaluate(split.test)
        final_losses[name] = losses[-1]

        engine = DistGnnEngine(
            partition, FEATURE_SIZE, 32, 2, num_classes=NUM_CLASSES
        )
        breakdown = engine.simulate_epoch()
        print(
            f"{name:>8s}: loss {losses[0]:.3f} -> {losses[-1]:.3f}, "
            f"test acc {accuracy:.3f} | simulated epoch "
            f"{breakdown.epoch_seconds * 1e3:6.2f} ms, "
            f"memory {engine.total_memory() / 1e6:5.1f} MB"
        )

    spread = max(final_losses.values()) - min(final_losses.values())
    print(
        f"\nFinal-loss spread across partitioners: {spread:.2e} "
        "(training math is partition-independent; only cost changes)"
    )


if __name__ == "__main__":
    main()
