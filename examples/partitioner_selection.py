"""Partitioner selection: amortization-aware recommendation (paper RQ-5).

Given a graph, a cluster size and a planned number of training epochs,
this script simulates every partitioner of the study and recommends the
one minimising *total* time — partitioning investment plus training —
reproducing the paper's amortization reasoning (Tables 4/5): a slow,
high-quality partitioner only pays off if training runs long enough.

Usage::

    python examples/partitioner_selection.py [GRAPH] [MACHINES] [EPOCHS]

e.g. ``python examples/partitioner_selection.py EN 16 100``.
"""

import sys

from repro.costmodel import DEFAULT_COST_MODEL
from repro.experiments import TrainingParams, run_distgnn
from repro.graph import load_dataset
from repro.partitioning import EDGE_PARTITIONER_NAMES


def total_seconds(record, epochs: int) -> float:
    scale = DEFAULT_COST_MODEL.partitioning_time_scale
    return (
        record.partitioning_seconds * scale
        + epochs * record.epoch_seconds
    )


def main() -> None:
    graph_key = sys.argv[1] if len(sys.argv) > 1 else "OR"
    machines = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    epochs = int(sys.argv[3]) if len(sys.argv) > 3 else 100

    graph = load_dataset(graph_key, scale="small")
    params = TrainingParams(feature_size=64, hidden_dim=64, num_layers=3)
    print(
        f"Selecting a vertex-cut partitioner for {graph} on "
        f"{machines} machines, {epochs} full-batch epochs\n"
    )

    results = []
    for name in EDGE_PARTITIONER_NAMES:
        record = run_distgnn(graph, name, machines, params)
        results.append((name, record))

    baseline = next(r for n, r in results if n == "random")
    print(
        f"{'partitioner':>12s} {'part s':>8s} {'epoch ms':>9s} "
        f"{'speedup':>8s} {'total s':>9s}"
    )
    best_name, best_total = None, float("inf")
    for name, record in results:
        total = total_seconds(record, epochs)
        if total < best_total:
            best_name, best_total = name, total
        print(
            f"{name:>12s} {record.partitioning_seconds:8.2f} "
            f"{record.epoch_seconds * 1e3:9.2f} "
            f"{baseline.epoch_seconds / record.epoch_seconds:8.2f} "
            f"{total:9.2f}"
        )
    print(
        f"\nRecommendation for {epochs} epochs: {best_name} "
        f"(total {best_total:.2f}s)"
    )
    print(
        "Try a small epoch budget (e.g. 3) to see the cheap streaming "
        "partitioners win, and a large one (e.g. 500) for HEP."
    )


if __name__ == "__main__":
    main()
