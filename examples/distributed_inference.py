"""Distributed layer-wise inference after mini-batch training.

Trains a GraphSAGE model DistDGL-style, then evaluates it over the whole
graph with DistDGL's layer-wise distributed inference: every machine
computes its owned vertices per layer, fetching halo states from its
peers. The example verifies the distributed result matches centralized
inference exactly and shows how the partitioner controls the halo
traffic.

Usage::

    python examples/distributed_inference.py
"""

import numpy as np

from repro.distdgl import DistributedInference, DistributedMiniBatchTrainer
from repro.gnn import accuracy, full_graph_block
from repro.graph import load_dataset, random_split
from repro.partitioning import (
    halo_statistics,
    make_vertex_partitioner,
)

NUM_MACHINES = 8
FEATURE_SIZE = 16
NUM_CLASSES = 5


def main() -> None:
    graph = load_dataset("EN", scale="small")
    split = random_split(graph, seed=5)
    rng = np.random.default_rng(0)
    labels = rng.integers(0, NUM_CLASSES, size=graph.num_vertices)
    features = rng.normal(0.0, 0.4, size=(graph.num_vertices, FEATURE_SIZE))
    features[np.arange(graph.num_vertices), labels] += 1.6

    # Train once (the model is shared; partitioning is a layout choice).
    train_partition = make_vertex_partitioner("metis").partition(
        graph, NUM_MACHINES, seed=0
    )
    trainer = DistributedMiniBatchTrainer(
        train_partition, split, features, labels,
        hidden_dim=32, num_layers=2, global_batch_size=64, seed=1,
    )
    losses = trainer.train(8)
    print(
        f"Trained 2-layer GraphSAGE on {graph}: "
        f"loss {losses[0]:.3f} -> {losses[-1]:.3f}\n"
    )
    model = trainer.model

    # Reference: centralized inference.
    block = full_graph_block(graph)
    reference = model.forward([block, block], features)

    print(f"{'partitioner':>12s} {'halo/inner':>11s} {'fetch MB':>9s} "
          f"{'infer ms':>9s} {'==central':>10s} {'test acc':>9s}")
    for name in ("random", "metis", "kahip"):
        partition = make_vertex_partitioner(name).partition(
            graph, NUM_MACHINES, seed=0
        )
        halo = halo_statistics(partition)
        inference = DistributedInference(partition, model)
        logits, report = inference.run(features)
        matches = bool(np.allclose(logits, reference, atol=1e-9))
        acc = accuracy(logits[split.test], labels[split.test])
        print(
            f"{name:>12s} {halo.halo_ratio().mean():11.2f} "
            f"{report.total_fetch_bytes / 1e6:9.2f} "
            f"{report.total_seconds * 1e3:9.2f} {str(matches):>10s} "
            f"{acc:9.3f}"
        )

    print(
        "\nInference results are identical for every layout; a better "
        "partition simply fetches a smaller halo."
    )


if __name__ == "__main__":
    main()
