"""Reproduction of "An Experimental Comparison of Partitioning Strategies
for Distributed Graph Neural Network Training" (Merkel, Stoll, Mayer,
Jacobsen; EDBT/PVLDB).

The package contains every layer of the study, built from scratch:

- :mod:`repro.graph` -- graph storage, synthetic stand-ins for the paper's
  five datasets, splits and IO;
- :mod:`repro.partitioning` -- all 12 partitioning algorithms of Table 2
  plus the quality metrics of Section 2.1;
- :mod:`repro.cluster` / :mod:`repro.costmodel` -- the simulated cluster
  and its calibrated cost model;
- :mod:`repro.gnn` -- numpy GraphSAGE/GCN/GAT with real forward/backward,
  optimizers and DGL-style neighbourhood sampling;
- :mod:`repro.distgnn` -- full-batch training over edge partitions
  (DistGNN), both cost-accounted and actually executed;
- :mod:`repro.distdgl` -- mini-batch training over vertex partitions
  (DistDGL), with executed sampling;
- :mod:`repro.experiments` -- the sweep harness behind every figure and
  table of the paper (see ``benchmarks/``);
- :mod:`repro.obs` -- the observability layer: catalog-driven metrics
  registry, profiling spans and structured-event sinks (off by default;
  see ``docs/observability.md``).

Quickstart::

    from repro.graph import load_dataset, random_split
    from repro.partitioning import make_vertex_partitioner
    from repro.distdgl import DistDglEngine

    graph = load_dataset("OR")
    split = random_split(graph)
    partition = make_vertex_partitioner("metis").partition(graph, 4)
    engine = DistDglEngine(partition, split)
    report = engine.run_epoch()
    print(report.epoch_seconds, report.phase_seconds())
"""

__version__ = "1.0.0"

from . import (  # noqa: F401
    cluster,
    costmodel,
    distdgl,
    distgnn,
    experiments,
    gnn,
    graph,
    obs,
    partitioning,
)

__all__ = [
    "graph",
    "partitioning",
    "cluster",
    "costmodel",
    "gnn",
    "distgnn",
    "distdgl",
    "experiments",
    "obs",
]
