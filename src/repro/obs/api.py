"""Process-global observability state and the fast-path emission API.

The library is instrumented with module-level helpers (:func:`count`,
:func:`gauge`, :func:`observe`, :func:`span`, :func:`event`) that check a
single integer level before doing anything. Observability is **off by
default**; at the default level every hook is one attribute load and one
integer comparison, which keeps the instrumented hot paths within the
perf gate's budget.

Levels (``--obs-level`` on the CLI and sweep runner):

* ``off`` — every hook is a no-op (the default);
* ``metrics`` — counters/gauges/histograms/timers accumulate in the
  global :class:`~.registry.MetricsRegistry`;
* ``trace`` — additionally, spans and instant events stream to the
  configured sink as structured JSONL records.

All state is per process. The process-parallel grid runners re-apply the
coordinator's level inside each worker and ship deterministic metric
summaries back embedded in the result records, so serial and parallel
sweeps stay record-identical (see :mod:`repro.experiments.parallel`).
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional

from .registry import MetricsRegistry
from .sink import EventSink

__all__ = [
    "LEVELS",
    "configure",
    "enable",
    "disable",
    "enabled",
    "tracing",
    "level",
    "get_registry",
    "set_sink",
    "get_sink",
    "reset",
    "count",
    "gauge",
    "observe",
    "event",
    "span",
    "record_span",
    "snapshot",
    "save_metrics",
    "set_trace_context",
    "get_trace_context",
    "clear_trace_context",
]

#: Recognised observability levels, in increasing verbosity.
LEVELS = ("off", "metrics", "trace")

_OFF, _METRICS, _TRACE = 0, 1, 2

_level: int = _OFF
_registry = MetricsRegistry()
_sink: Optional[EventSink] = None
#: Ambient trace context merged into every emitted event (e.g. the
#: serve daemon's ``job``/``tenant`` attribution — see
#: :func:`set_trace_context`). Empty by default.
_context: Dict[str, object] = {}
#: perf_counter origin for event timestamps (relative, so traces from
#: one run are comparable regardless of process start time).
_epoch = time.perf_counter()


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
def configure(
    level: str = "off", sink: Optional[EventSink] = None
) -> None:
    """Set the global observability level (and optionally the sink).

    ``level`` is one of :data:`LEVELS`. Passing ``sink`` replaces (and
    closes) the current sink; passing ``None`` leaves it untouched.
    """
    global _level
    if level not in LEVELS:
        raise ValueError(
            f"unknown obs level {level!r}; expected one of {LEVELS}"
        )
    _level = LEVELS.index(level)
    if sink is not None:
        set_sink(sink)


def enable(level: str = "metrics") -> None:
    """Turn observability on at ``level`` (default: metrics only)."""
    configure(level)


def disable() -> None:
    """Turn every hook back into a no-op (the default state)."""
    configure("off")


def enabled() -> bool:
    """True when metrics are being collected (level >= metrics)."""
    return _level >= _METRICS


def tracing() -> bool:
    """True when structured events are being emitted (level == trace)."""
    return _level >= _TRACE


def level() -> str:
    """The current level name (``off`` / ``metrics`` / ``trace``)."""
    return LEVELS[_level]


def get_registry() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _registry


def set_sink(sink: Optional[EventSink]) -> None:
    """Install (or, with ``None``, remove) the event sink."""
    global _sink
    if _sink is not None and _sink is not sink:
        _sink.close()
    _sink = sink


def get_sink() -> Optional[EventSink]:
    """The currently installed event sink, if any."""
    return _sink


def reset() -> None:
    """Clear collected metrics and detach the sink (level unchanged).

    Used between runs (and by tests) so one run's telemetry never bleeds
    into the next.
    """
    _registry.clear()
    set_sink(None)
    clear_trace_context()


# ----------------------------------------------------------------------
# Trace context
# ----------------------------------------------------------------------
def set_trace_context(**fields: object) -> None:
    """Merge ``fields`` into the ambient trace context.

    Every subsequent :func:`event` (spans included) carries these
    fields, so a whole execution scope can be attributed without
    threading identifiers through every call site — the serve daemon
    stamps ``job`` and ``tenant`` here before running a cell, and the
    engine's phase events inherit them. Explicit event fields of the
    same name win. A ``None`` value removes the key.
    """
    for key, value in fields.items():
        if value is None:
            _context.pop(key, None)
        else:
            _context[key] = value


def get_trace_context() -> Dict[str, object]:
    """A copy of the ambient trace context."""
    return dict(_context)


def clear_trace_context() -> None:
    """Drop every ambient trace-context field."""
    _context.clear()


# ----------------------------------------------------------------------
# Fast-path emission
# ----------------------------------------------------------------------
def count(name: str, amount: float = 1.0, **labels) -> None:
    """Add ``amount`` to the counter ``name`` (no-op when disabled)."""
    if _level == _OFF:
        return
    _registry.counter(name, **labels).add(amount)


def gauge(name: str, value: float, **labels) -> None:
    """Set the gauge ``name`` to ``value`` (no-op when disabled)."""
    if _level == _OFF:
        return
    _registry.gauge(name, **labels).set(value)


def observe(name: str, value: float, **labels) -> None:
    """Record one histogram/timer observation (no-op when disabled)."""
    if _level == _OFF:
        return
    _registry.observe(name, value, **labels)


def event(kind: str, name: str, /, **fields) -> None:
    """Emit one structured event to the sink (trace level only).

    ``kind`` and ``name`` are positional-only so fields with those
    names (e.g. a fault's ``kind``) can still ride along; such a field
    overrides the positional value in the emitted record.
    """
    if _level < _TRACE or _sink is None:
        return
    payload: Dict[str, object] = {
        "kind": kind,
        "name": name,
        "t": round(time.perf_counter() - _epoch, 9),
    }
    if _context:
        payload.update(_context)
    payload.update(fields)
    _sink.emit(payload)


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
class _NullSpan:
    """The span returned while observability is off: does nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """A live profiling span: times its block and reports on exit."""

    __slots__ = ("name", "labels", "start")

    def __init__(self, name: str, labels: Dict[str, object]) -> None:
        self.name = name
        self.labels = labels
        self.start = 0.0

    def __enter__(self) -> "_Span":
        self.start = time.perf_counter()
        if _level >= _TRACE:
            event("span-begin", self.name, **self.labels)
        return self

    def __exit__(self, *exc) -> None:
        seconds = time.perf_counter() - self.start
        if _level >= _METRICS:
            _registry.timer("obs.span_seconds", span=self.name).observe(
                seconds
            )
        if _level >= _TRACE:
            event(
                "span-end", self.name, seconds=round(seconds, 9),
                **self.labels,
            )
        return None


def span(name: str, **labels):
    """Scoped profiling hook: ``with obs.span("gather", machine=3):``.

    Returns a context manager. Off: a shared no-op object (no
    allocation beyond the call). Metrics: the block's wall-clock
    duration is observed into the ``obs.span_seconds`` timer under the
    span ``name`` label; extra keyword labels ride along on trace
    events only. Trace: begin/end events stream to the sink.
    """
    if _level == _OFF:
        return _NULL_SPAN
    return _Span(name, labels)


def record_span(name: str, seconds: float, **labels) -> None:
    """Report an externally measured duration as a span observation.

    For *simulated* durations (cluster seconds), which must not be
    remeasured with a wall clock.
    """
    if _level == _OFF:
        return
    _registry.timer("obs.span_seconds", span=name).observe(seconds)
    event("span", name, seconds=seconds, **labels)


# ----------------------------------------------------------------------
# Export
# ----------------------------------------------------------------------
def snapshot() -> List[Dict[str, object]]:
    """Serializable dump of every collected metric (catalog order)."""
    return _registry.snapshot()


def save_metrics(path: str) -> None:
    """Write :func:`snapshot` as pretty-printed JSON to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot(), handle, indent=2, sort_keys=True)
        handle.write("\n")
