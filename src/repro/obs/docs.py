"""Render the metric reference (``docs/observability.md``) from the catalog.

The generated document is the *only* human-facing metric reference; it is
produced from :data:`repro.obs.catalog.CATALOG` by
``scripts/gen_metric_docs.py`` and a CI gate re-renders and compares it,
so the reference cannot drift from the code. Do not edit the generated
file by hand — edit the catalog entries instead.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .catalog import CATALOG, MetricSpec

__all__ = ["render_metric_docs"]

_HEADER = """\
# Observability reference

> **Generated file — do not edit.** This document is rendered from
> `repro.obs.catalog.CATALOG` by `scripts/gen_metric_docs.py`; CI fails
> if it drifts from the code. Regenerate with:
>
> ```bash
> PYTHONPATH=src python scripts/gen_metric_docs.py
> ```

The library is instrumented with a central metrics registry
(`repro.obs`). Telemetry is **off by default** and costs one integer
comparison per hook when disabled. Three levels are available via
`repro.obs.configure(level)` or the `--obs-level` CLI flag:

| Level | Effect |
|---|---|
| `off` | every hook is a no-op (default) |
| `metrics` | counters / gauges / histograms / timers accumulate in the process-global registry |
| `trace` | additionally, spans and instant events stream to a JSONL sink (`--obs-out`) |

Metric names follow `<subsystem>.<metric>`, where the subsystem matches
the emitting package. Every metric below is declared exactly once in the
catalog; the registry rejects undeclared names and mismatched label
sets, so instrumentation and this reference stay in lock-step.

Units marked *simulated* are model-derived cluster seconds (straggler
phase times under the cost model), not wall-clock measurements; *wall*
units are measured with a monotonic clock on the host running the
simulation.
"""

#: Section title per subsystem prefix, in catalog order.
_SECTION_TITLES: Dict[str, str] = {
    "cluster": "Cluster and timeline",
    "distgnn": "DistGNN engine (full-batch)",
    "distdgl": "DistDGL engine (mini-batch)",
    "partitioner": "Partitioners",
    "chunkstore": "Out-of-core chunk store",
    "partition_cache": "Partition cache",
    "comm": "Communication reduction",
    "serve": "Serve daemon",
    "experiments": "Experiment runner",
    "obs": "Observability layer",
}

_ENDPOINTS = """\
## Daemon endpoints

The `serve.*` metrics are collected by the `repro serve` daemon when it
runs with `--obs-level metrics` (or `trace`) and are exposed over HTTP:

| Endpoint | Content |
|---|---|
| `GET /metrics` | Prometheus text exposition of every `serve.*` metric below (names are mangled `serve.http_requests` → `repro_serve_http_requests`) |
| `GET /healthz` | JSON readiness/liveness: scheduler start state, last runner-heartbeat age, queue saturation — works at every obs level |

`repro obs top <url>` renders these live in a terminal;
`repro.obs.parse_prometheus_totals` turns the exposition back into the
`{metric-name: total}` mapping the alert-rule engine
(`repro.obs.live.rules`) evaluates. At `--obs-level trace` the daemon
additionally writes per-job trace JSONL (`<data-dir>/<job>/trace*.jsonl`)
whose spans carry `job` and `tenant` fields end to end: HTTP admission →
scheduler dispatch → engine phases.
"""


def _subsystem(spec: MetricSpec) -> str:
    return spec.name.split(".", 1)[0]


def _spec_rows(specs: List[MetricSpec]) -> List[str]:
    rows = [
        "| Metric | Kind | Unit | Labels | Description |",
        "|---|---|---|---|---|",
    ]
    for spec in specs:
        labels = ", ".join(f"`{lab}`" for lab in spec.labels) or "—"
        help_text = " ".join(spec.help.split())
        rows.append(
            f"| `{spec.name}` | {spec.kind} | {spec.unit} | {labels} "
            f"| {help_text} |"
        )
    return rows


def _bucket_rows(specs: List[MetricSpec]) -> List[str]:
    rows = [
        "| Metric | Bucket upper bounds |",
        "|---|---|",
    ]
    for spec in specs:
        bounds = ", ".join(f"{b:g}" for b in spec.buckets or ())
        rows.append(f"| `{spec.name}` | {bounds}, +inf |")
    return rows


def render_metric_docs() -> str:
    """The full ``docs/observability.md`` markdown text."""
    grouped: Dict[str, List[MetricSpec]] = {}
    order: List[str] = []
    for spec in CATALOG:
        key = _subsystem(spec)
        if key not in grouped:
            grouped[key] = []
            order.append(key)
        grouped[key].append(spec)

    lines: List[str] = [_HEADER]
    for key in order:
        title = _SECTION_TITLES.get(key, key)
        lines.append(f"## {title}")
        lines.append("")
        lines.extend(_spec_rows(grouped[key]))
        lines.append("")

    lines.append(_ENDPOINTS)

    bucketed = [spec for spec in CATALOG if spec.buckets]
    if bucketed:
        lines.append("## Histogram buckets")
        lines.append("")
        lines.append(
            "Cumulative bucket upper bounds for every histogram/timer "
            "(an implicit `+inf` overflow bucket always exists):"
        )
        lines.append("")
        lines.extend(_bucket_rows(bucketed))
        lines.append("")

    counts: Tuple[int, int] = (
        len(CATALOG),
        len({_subsystem(s) for s in CATALOG}),
    )
    lines.append(
        f"*{counts[0]} metrics across {counts[1]} subsystems.*"
    )
    lines.append("")
    return "\n".join(lines)
