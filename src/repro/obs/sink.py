"""Structured event sinks: where trace-level events go.

At ``trace`` level every span, timeline mark and fault event is emitted
as one structured record. :class:`JsonlSink` appends them to a file as
JSON Lines (one compact object per line — the format every log pipeline
ingests); :class:`MemorySink` keeps them in a list for tests and
interactive inspection.

Events carry a monotonically increasing ``seq`` (assigned by the sink,
so a file is totally ordered even across sources) plus whatever fields
the emitter attached. Sinks never raise into the instrumented code path:
a closed sink silently drops.
"""

from __future__ import annotations

import json
from typing import Dict, List

__all__ = ["EventSink", "MemorySink", "JsonlSink"]


class EventSink:
    """Interface: sequence numbering plus an ``emit`` hook."""

    def __init__(self) -> None:
        self._seq = 0

    def emit(self, event: Dict[str, object]) -> None:
        """Stamp ``seq`` onto ``event`` and hand it to :meth:`write`."""
        event = dict(event)
        event["seq"] = self._seq
        self._seq += 1
        self.write(event)

    def write(self, event: Dict[str, object]) -> None:
        """Persist one stamped event (subclass hook)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; further emits are dropped."""


class MemorySink(EventSink):
    """Keeps events in :attr:`events` (tests, notebooks)."""

    def __init__(self) -> None:
        super().__init__()
        self.events: List[Dict[str, object]] = []

    def write(self, event: Dict[str, object]) -> None:
        """Append the event to the in-memory list."""
        self.events.append(event)


class JsonlSink(EventSink):
    """Appends one compact JSON object per line to ``path``.

    The file is opened lazily on the first event and written in UTF-8.
    The handle is *line-buffered*: each event reaches the OS as a single
    append of one complete newline-terminated line, so multiple
    processes appending to the same file (the telemetry bus does this
    per worker; a shared file also works on POSIX ``O_APPEND``
    semantics) never interleave partial lines. :meth:`close` flushes and
    further events are dropped (never raised).
    """

    def __init__(self, path: str) -> None:
        super().__init__()
        self.path = path
        self._handle = None
        self._closed = False

    def write(self, event: Dict[str, object]) -> None:
        """Serialize and append the event; drops silently once closed."""
        if self._closed:
            return
        if self._handle is None:
            self._handle = open(
                self.path, "a", buffering=1, encoding="utf-8"
            )
        self._handle.write(
            json.dumps(event, separators=(",", ":"), sort_keys=True) + "\n"
        )

    def close(self) -> None:
        """Flush and close the file; subsequent events are dropped."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._closed = True


def read_jsonl(path: str, return_skipped: bool = False):
    """Load a JSONL event file back into a list of dicts.

    A process crashing mid-write leaves a truncated final line (and a
    killed writer can leave one mid-file); such undecodable lines are
    *skipped* rather than raised on, so one partial record never loses
    the whole trace. With ``return_skipped=True`` the result is
    ``(events, skipped_count)`` so callers can surface how many lines
    were dropped.
    """
    events: List[Dict[str, object]] = []
    skipped = 0
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                skipped += 1
    if return_skipped:
        return events, skipped
    return events


__all__.append("read_jsonl")
