"""Operational metrics for the ``repro serve`` daemon.

The engines use the process-global obs API because each cell process
owns its telemetry; the daemon cannot — runner threads and HTTP handler
threads share one process with the inline cell path, and the per-cell
deterministic ``obs_metrics`` summaries embedded in records must never
absorb daemon-side series. So :class:`ServeMetrics` owns a *private*
:class:`~repro.obs.registry.MetricsRegistry` (still validated against
the shared catalog — every ``serve.*`` name is declared there), guarded
by one lock, with every hook an early-return no-op when the daemon runs
with observability off.

The module also owns the Prometheus text exposition the daemon's
``GET /metrics`` serves (:func:`render_prometheus`), its inverse for
scrapers (:func:`parse_prometheus_totals` — the ``repro obs top``
monitor evaluates alert rules over scraped totals), and the bucket
quantile estimator behind the SLO gauge
``serve.admission_to_first_record_p95_seconds``.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from .catalog import find_spec, metric_names
from .registry import Histogram, MetricsRegistry
from .sink import EventSink

__all__ = [
    "ServeMetrics",
    "histogram_quantile",
    "render_prometheus",
    "parse_prometheus_totals",
    "prometheus_name",
]

#: Prefix for exposed metric names (``serve.http_requests`` becomes
#: ``repro_serve_http_requests``).
_PROM_PREFIX = "repro_"


def prometheus_name(name: str) -> str:
    """The exposition name for a catalog metric name."""
    return _PROM_PREFIX + name.replace(".", "_")


class ServeMetrics:
    """Thread-safe daemon telemetry over a private registry.

    ``enabled=False`` (the daemon default) turns every hook into one
    boolean test; the scheduler and HTTP layer call them
    unconditionally. ``sink`` receives structured request events
    (``http-request`` / ``http-log``) when set — the daemon's request
    log, replacing the stderr lines ``BaseHTTPRequestHandler`` would
    print.
    """

    def __init__(
        self,
        enabled: bool = False,
        sink: Optional[EventSink] = None,
    ) -> None:
        self.enabled = enabled
        self.sink = sink
        self.registry = MetricsRegistry()
        self._lock = threading.Lock()
        self._started_at = time.time()
        self._last_heartbeat: Optional[float] = None

    # ------------------------------------------------------------ HTTP
    def request_started(self) -> None:
        """A request entered dispatch (in-flight gauge up)."""
        if not self.enabled:
            return
        with self._lock:
            gauge = self.registry.gauge("serve.http_inflight")
            gauge.set(gauge.value + 1)

    def request_finished(
        self,
        method: str,
        route: str,
        status: int,
        seconds: float,
        tenant: Optional[str] = None,
    ) -> None:
        """A response was written: count, time, and log the request."""
        if not self.enabled:
            return
        with self._lock:
            gauge = self.registry.gauge("serve.http_inflight")
            gauge.set(max(gauge.value - 1, 0.0))
            self.registry.counter(
                "serve.http_requests",
                method=method, route=route, status=status,
            ).add(1)
            self.registry.observe(
                "serve.http_request_seconds", seconds, route=route
            )
        self._emit(
            "http-request", route,
            method=method, status=int(status),
            seconds=round(seconds, 9),
            **({"tenant": tenant} if tenant else {}),
        )

    def log(self, message: str) -> None:
        """An ``http.server`` log line, routed to the sink."""
        self._emit("http-log", "server", message=message)

    # ------------------------------------------------------- admission
    def job_admitted(self, tenant: str) -> None:
        """A job passed admission control."""
        self._count("serve.jobs_admitted", tenant=tenant)

    def job_finished(self, state: str) -> None:
        """A job reached a terminal state."""
        self._count("serve.jobs_finished", state=state)

    def admission_rejected(self, reason: str) -> None:
        """A submission was refused (queue-full or invalid-spec)."""
        self._count("serve.admission_rejected", reason=reason)

    def dedup_hit(self, tenant: str) -> None:
        """A submitted cell was satisfied without fresh compute."""
        self._count("serve.dedup_hits", tenant=tenant)

    def dedup_miss(self, tenant: str) -> None:
        """A submitted cell needs fresh compute."""
        self._count("serve.dedup_misses", tenant=tenant)

    # ------------------------------------------------------- execution
    def cell_finished(
        self, engine: str, wait_seconds: float, service_seconds: float
    ) -> None:
        """A cell executed: queue wait + service time, by engine."""
        if not self.enabled:
            return
        with self._lock:
            self.registry.counter(
                "serve.cells_computed", engine=engine
            ).add(1)
            self.registry.observe(
                "serve.cell_wait_seconds", max(wait_seconds, 0.0),
                engine=engine,
            )
            self.registry.observe(
                "serve.cell_service_seconds", max(service_seconds, 0.0),
                engine=engine,
            )

    def cell_served(self, tenant: str) -> None:
        """One cell result was delivered to one subscriber job."""
        self._count("serve.tenant_cells_served", tenant=tenant)

    def first_record(self, seconds: float) -> None:
        """A job's first cell result landed ``seconds`` after admission."""
        if not self.enabled:
            return
        with self._lock:
            self.registry.observe(
                "serve.admission_to_first_record_seconds",
                max(seconds, 0.0),
            )

    def cache_evicted(self, count: int = 1) -> None:
        """The dedup LRU dropped ``count`` completed-cell results."""
        if count:
            self._count("serve.cell_cache_evictions", count)

    def job_evicted(self, count: int = 1) -> None:
        """The retention bound dropped ``count`` finished jobs."""
        if count:
            self._count("serve.job_evictions", count)

    def heartbeat(self, now: Optional[float] = None) -> None:
        """A runner thread is alive (tracked even when disabled —
        /healthz reports the age regardless of the obs level)."""
        self._last_heartbeat = time.time() if now is None else now

    def heartbeat_age(self, now: Optional[float] = None) -> Optional[float]:
        """Seconds since the last runner heartbeat (None before one)."""
        if self._last_heartbeat is None:
            return None
        now = time.time() if now is None else now
        return max(now - self._last_heartbeat, 0.0)

    def uptime(self, now: Optional[float] = None) -> float:
        """Seconds since this metrics scope (the daemon) was created."""
        now = time.time() if now is None else now
        return max(now - self._started_at, 0.0)

    # ----------------------------------------------------- state gauges
    def refresh_queue(
        self,
        depth: Mapping[Tuple[str, int], int],
        total: int,
        capacity: int,
        running: int,
        cached_cells: int,
        jobs_retained: int,
    ) -> None:
        """Overwrite every scheduler-state gauge from a live snapshot.

        Existing ``serve.queue_depth`` series not present in ``depth``
        are zeroed (a drained tenant's gauge must not hold its last
        value forever).
        """
        if not self.enabled:
            return
        with self._lock:
            for instrument in self.registry.instruments():
                if instrument.spec.name == "serve.queue_depth":
                    instrument.set(0.0)  # type: ignore[attr-defined]
            for (tenant, priority), cells in depth.items():
                self.registry.gauge(
                    "serve.queue_depth",
                    tenant=tenant, priority=priority,
                ).set(cells)
            self.registry.gauge("serve.queue_depth_total").set(total)
            self.registry.gauge("serve.queue_capacity").set(capacity)
            self.registry.gauge("serve.running_cells").set(running)
            self.registry.gauge("serve.cell_cache_size").set(cached_cells)
            self.registry.gauge("serve.jobs_retained").set(jobs_retained)

    # --------------------------------------------------------- export
    def snapshot(
        self, now: Optional[float] = None
    ) -> List[Dict[str, object]]:
        """The registry snapshot, with the derived SLO gauges refreshed
        (heartbeat age and the first-record p95) so rules and scrapers
        see them as ordinary catalog series."""
        if not self.enabled:
            return []
        with self._lock:
            age = self.heartbeat_age(now)
            if age is not None:
                self.registry.gauge(
                    "serve.scheduler_heartbeat_age_seconds"
                ).set(age)
            latency = next(
                (
                    inst for inst in self.registry.instruments()
                    if inst.spec.name
                    == "serve.admission_to_first_record_seconds"
                ),
                None,
            )
            if isinstance(latency, Histogram) and latency.count:
                self.registry.gauge(
                    "serve.admission_to_first_record_p95_seconds"
                ).set(histogram_quantile(latency, 0.95))
            return self.registry.snapshot()

    def totals(
        self, entries: Optional[List[Dict[str, object]]] = None
    ) -> Dict[str, float]:
        """Rule-ready totals: one number per metric name.

        Counters and gauges sum across label sets; histograms/timers
        contribute their observation sum. This is the mapping
        :meth:`~repro.obs.live.rules.RuleSet.evaluate` consumes, and
        :func:`parse_prometheus_totals` reconstructs the same mapping
        from the text exposition on the scraper side.
        """
        if entries is None:
            entries = self.snapshot()
        return _entry_totals(entries)

    # --------------------------------------------------------- private
    def _count(self, name: str, amount: float = 1.0, **labels) -> None:
        if not self.enabled:
            return
        with self._lock:
            self.registry.counter(name, **labels).add(amount)

    def _emit(self, kind: str, name: str, **fields) -> None:
        sink = self.sink
        if sink is None:
            return
        payload: Dict[str, object] = {
            "kind": kind, "name": name, "t_wall": round(time.time(), 6),
        }
        payload.update(fields)
        with self._lock:
            sink.emit(payload)

    def close(self) -> None:
        """Flush and close the request-log sink, if any."""
        sink, self.sink = self.sink, None
        if sink is not None:
            sink.close()


def _entry_totals(entries: Iterable[Mapping[str, object]]) -> Dict[str, float]:
    """Fold snapshot entries to per-name totals (see ``totals``)."""
    totals: Dict[str, float] = {}
    for entry in entries:
        name = str(entry.get("name"))
        if "sum" in entry:  # histogram / timer
            value = float(entry["sum"])
        else:
            value = float(entry.get("value", 0.0))
        totals[name] = totals.get(name, 0.0) + value
    return totals


def histogram_quantile(histogram: Histogram, q: float) -> float:
    """Estimate the ``q`` quantile from a histogram's buckets.

    Linear interpolation inside the bucket holding the target rank
    (Prometheus ``histogram_quantile`` semantics, with the first bucket
    interpolated from zero); the overflow bucket is clamped to the
    tracked maximum, which a single process knows exactly.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if histogram.count == 0:
        return 0.0
    rank = q * histogram.count
    bounds = list(histogram.spec.buckets or ())
    cumulative = 0
    for i, in_bucket in enumerate(histogram.bucket_counts):
        if cumulative + in_bucket >= rank and in_bucket > 0:
            if i >= len(bounds):  # overflow bucket
                return histogram.max
            lower = bounds[i - 1] if i > 0 else 0.0
            fraction = (rank - cumulative) / in_bucket
            return lower + (bounds[i] - lower) * min(fraction, 1.0)
        cumulative += in_bucket
    return histogram.max


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _escape(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")
    )


def _label_str(labels: Mapping[str, object]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(entries: List[Dict[str, object]]) -> str:
    """Render snapshot entries as Prometheus text exposition.

    Counters and gauges render one sample per label set; histograms and
    timers render cumulative ``_bucket{le=...}`` samples plus ``_sum``
    and ``_count``, exactly the shape ``histogram_quantile`` expects on
    a real Prometheus server.
    """
    lines: List[str] = []
    seen_help: set = set()
    for entry in entries:
        name = str(entry["name"])
        spec = find_spec(name)
        prom = prometheus_name(name)
        labels = dict(entry.get("labels", {}))
        if name not in seen_help:
            seen_help.add(name)
            prom_type = (
                "histogram" if spec.kind in ("histogram", "timer")
                else spec.kind
            )
            lines.append(f"# HELP {prom} {' '.join(spec.help.split())}")
            lines.append(f"# TYPE {prom} {prom_type}")
        if spec.kind in ("histogram", "timer"):
            cumulative = 0.0
            for bound, in_bucket in dict(entry["buckets"]).items():
                cumulative += float(in_bucket)
                le = "+Inf" if bound == "+inf" else bound
                lines.append(
                    f"{prom}_bucket{_label_str({**labels, 'le': le})} "
                    f"{_format(cumulative)}"
                )
            lines.append(
                f"{prom}_sum{_label_str(labels)} "
                f"{_format(float(entry['sum']))}"
            )
            lines.append(
                f"{prom}_count{_label_str(labels)} "
                f"{_format(float(entry['count']))}"
            )
        else:
            lines.append(
                f"{prom}{_label_str(labels)} "
                f"{_format(float(entry['value']))}"
            )
    return "\n".join(lines) + "\n"


def _reverse_map() -> Dict[str, str]:
    """Exposition base name -> catalog name, for every declared metric."""
    return {prometheus_name(name): name for name in metric_names()}


def parse_prometheus_totals(text: str) -> Dict[str, float]:
    """Fold a text exposition back into rule-ready per-name totals.

    The inverse of :func:`render_prometheus` composed with
    :meth:`ServeMetrics.totals`: counters and gauges sum across label
    sets, histograms contribute their ``_sum``. Unknown names and
    malformed lines are skipped (a scraper must tolerate a newer
    server).
    """
    reverse = _reverse_map()
    totals: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        sample = line.split("{", 1)[0].split(" ", 1)[0]
        try:
            value = float(line.rsplit(" ", 1)[1])
        except (IndexError, ValueError):
            continue
        name = reverse.get(sample)
        if name is None and sample.endswith("_sum"):
            name = reverse.get(sample[: -len("_sum")])
        elif name is None:
            continue  # _bucket / _count / foreign samples
        if name is None:
            continue
        totals[name] = totals.get(name, 0.0) + value
    return totals
