"""Peak-memory measurement for the out-of-core pipeline.

The bounded-memory claim of the chunk-store pipeline ("peak memory is
a function of the chunk size, not the edge count") needs a measurement
primitive that can be reset between phases of one process. Two signals
are combined:

``tracemalloc``
    Tracks the Python-heap high-water mark exactly and is resettable
    (:func:`tracemalloc.reset_peak`), at the price of slowing
    allocation — so memory runs are kept separate from timing runs.

resident set size (RSS)
    ``VmHWM`` from ``/proc/self/status`` reports the process-wide
    high-water mark, including numpy buffer allocations that bypass the
    Python allocator only when tracemalloc hooks are absent (numpy
    routes through PyMem, so tracemalloc does see its buffers) and any
    mmap'd pages actually touched. On Linux it can be *reset* by
    writing ``5`` to ``/proc/self/clear_refs``; elsewhere the
    non-resettable ``ru_maxrss`` is reported as an upper bound with
    ``rss_resettable=False`` so gates know not to trust deltas.

:class:`PeakMemoryTracker` is a context manager snapshotting both::

    with PeakMemoryTracker() as tracker:
        run_pipeline()
    print(tracker.traced_peak_bytes, tracker.rss_peak_bytes)
"""

from __future__ import annotations

import os
import tracemalloc
from typing import Optional

__all__ = [
    "PeakMemoryTracker",
    "read_rss_high_water",
    "reset_rss_high_water",
]

_PROC_STATUS = "/proc/self/status"
_CLEAR_REFS = "/proc/self/clear_refs"


def read_rss_high_water() -> Optional[int]:
    """Current RSS high-water mark in bytes, or ``None`` off-Linux."""
    try:
        with open(_PROC_STATUS) as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    try:
        import resource
    except ImportError:  # pragma: no cover - resource is POSIX-only
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF)
    # ru_maxrss is kilobytes on Linux, bytes on macOS.
    scale = 1 if os.uname().sysname == "Darwin" else 1024
    return usage.ru_maxrss * scale


def reset_rss_high_water() -> bool:
    """Reset ``VmHWM`` to the current RSS; ``True`` if it worked."""
    try:
        with open(_CLEAR_REFS, "w") as handle:
            handle.write("5")
        return True
    except OSError:
        return False


class PeakMemoryTracker:
    """Measure the peak memory of a code block.

    After ``__exit__``:

    ``traced_peak_bytes``
        Python-heap high-water mark over the block (tracemalloc). This
        is the gate-worthy number: it is exact and always resettable.
    ``rss_peak_bytes``
        Process RSS high-water mark in bytes; covers the block only
        when ``rss_resettable`` is ``True``, otherwise it is a
        process-lifetime upper bound (or ``None`` when unavailable).
    """

    def __init__(self) -> None:
        self.traced_peak_bytes: int = 0
        self.rss_peak_bytes: Optional[int] = None
        self.rss_resettable: bool = False
        self._started_tracing = False

    def __enter__(self) -> "PeakMemoryTracker":
        self.rss_resettable = reset_rss_high_water()
        if tracemalloc.is_tracing():
            tracemalloc.reset_peak()
        else:
            self._started_tracing = True
            tracemalloc.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        _, peak = tracemalloc.get_traced_memory()
        self.traced_peak_bytes = peak
        if self._started_tracing:
            tracemalloc.stop()
            self._started_tracing = False
        self.rss_peak_bytes = read_rss_high_water()

    def as_dict(self) -> dict:
        """JSON-ready summary (used by bench reports)."""
        return {
            "traced_peak_bytes": self.traced_peak_bytes,
            "rss_peak_bytes": self.rss_peak_bytes,
            "rss_resettable": self.rss_resettable,
        }
