"""Declarative metric catalog: the single source of truth for telemetry.

Every metric the library can emit is declared here exactly once, with its
kind, unit, label schema and help text. The registry refuses to create an
instrument whose name is not in the catalog, so code and catalog cannot
drift apart; ``docs/observability.md`` is rendered *from* this module
(``scripts/gen_metric_docs.py``), so the documentation cannot drift
either — a CI gate regenerates and compares it.

Naming convention: ``<subsystem>.<metric>`` with the subsystem matching
the package that emits it (``cluster``, ``distgnn``, ``distdgl``,
``partitioner``, ``partition_cache``, ``comm``, ``serve``,
``experiments``, ``obs``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = ["MetricSpec", "CATALOG", "find_spec", "metric_names"]

#: Valid instrument kinds.
KINDS = ("counter", "gauge", "histogram", "timer")


@dataclass(frozen=True)
class MetricSpec:
    """One catalog entry: the declaration of a metric.

    ``labels`` is the exact set of label keys every emission must carry
    (e.g. ``("machine",)``); ``buckets`` (histograms/timers only) are the
    upper bounds of the cumulative distribution buckets.
    """

    name: str
    kind: str
    unit: str
    help: str
    labels: Tuple[str, ...] = ()
    buckets: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown metric kind {self.kind!r}")
        if self.buckets is not None and self.kind not in (
            "histogram", "timer"
        ):
            raise ValueError(
                f"{self.name}: only histograms/timers take buckets"
            )
        if self.buckets is not None and list(self.buckets) != sorted(
            self.buckets
        ):
            raise ValueError(f"{self.name}: buckets must be ascending")


#: Default bucket bounds for wall-clock timers (seconds).
_TIME_BUCKETS = (1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0)
#: Default bucket bounds for per-chunk edge/vertex counts.
_SIZE_BUCKETS = (64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0)

#: Every metric the library emits. Grouped by subsystem; order is the
#: order the generated reference documents them in.
CATALOG: Tuple[MetricSpec, ...] = (
    # ------------------------------------------------------------- cluster
    MetricSpec(
        "cluster.phase_seconds", "timer", "seconds (simulated)",
        "Straggler duration of each barrier-separated phase recorded on "
        "the BSP timeline, labelled with the phase name "
        "(forward-l0, fetch, checkpoint, replay:*, ...).",
        labels=("phase",), buckets=_TIME_BUCKETS,
    ),
    MetricSpec(
        "cluster.machine_busy_seconds", "counter", "seconds (simulated)",
        "Per-machine busy time summed over all recorded phases; the "
        "balance analyses (paper Figures 5/14/17) derive from its skew.",
        labels=("machine",),
    ),
    MetricSpec(
        "cluster.bytes_sent", "counter", "bytes",
        "Bytes sent per machine port across all communication phases.",
        labels=("machine",),
    ),
    MetricSpec(
        "cluster.bytes_received", "counter", "bytes",
        "Bytes received per machine port across all communication phases.",
        labels=("machine",),
    ),
    MetricSpec(
        "cluster.lost_messages", "counter", "count",
        "Injected lost messages charged to a machine's port by the fault "
        "layer.",
        labels=("machine",),
    ),
    MetricSpec(
        "cluster.memory_peak_bytes", "gauge", "bytes",
        "Peak of the per-machine memory ledger (structure, features, "
        "activations, caches, communication buffers).",
        labels=("machine",),
    ),
    MetricSpec(
        "cluster.memory_category_peak_bytes", "gauge", "bytes",
        "Per-machine peak of one memory-ledger category (structure, "
        "features, activations, feature-cache, comm-buffers); the "
        "footprint breakdown behind cluster.memory_peak_bytes.",
        labels=("machine", "category"),
    ),
    MetricSpec(
        "cluster.memory_watermark_bytes", "gauge", "bytes",
        "Per-phase memory watermark: the highest per-machine ledger "
        "total observed while the named phase ran (flat when all "
        "allocations happen at engine construction).",
        labels=("machine", "phase"),
    ),
    MetricSpec(
        "cluster.traffic_matrix_bytes", "counter", "bytes",
        "Pairwise traffic attribution: bytes machine ``src`` sent "
        "directly to machine ``dst`` across all communication phases "
        "(the dashboard's traffic-matrix heatmap).",
        labels=("src", "dst"),
    ),
    MetricSpec(
        "cluster.marks", "counter", "count",
        "Instant timeline events by kind: fault, recovery, checkpoint.",
        labels=("kind",),
    ),
    # ------------------------------------------------------------- distgnn
    MetricSpec(
        "distgnn.epochs", "counter", "count",
        "Full-batch epochs simulated (replayed recovery epochs included).",
    ),
    MetricSpec(
        "distgnn.epoch_seconds", "timer", "seconds (simulated)",
        "Simulated duration of each full-batch epoch (sum of straggler "
        "phase times).",
        buckets=_TIME_BUCKETS,
    ),
    MetricSpec(
        "distgnn.network_bytes", "counter", "bytes",
        "Total traffic per epoch: halo synchronisation in both "
        "directions plus the gradient all-reduce.",
    ),
    MetricSpec(
        "distgnn.fault_events", "counter", "count",
        "Injected fault events handled by the full-batch engine, by kind "
        "(crash, slowdown, lost-message).",
        labels=("kind",),
    ),
    MetricSpec(
        "distgnn.checkpoints", "counter", "count",
        "Checkpoints written at epoch boundaries.",
    ),
    MetricSpec(
        "distgnn.replayed_epochs", "counter", "count",
        "Epochs re-executed after a crash restore (epoch mod "
        "checkpoint_every at the crash point).",
    ),
    # ------------------------------------------------------------- distdgl
    MetricSpec(
        "distdgl.steps", "counter", "count",
        "Global mini-batch training steps executed.",
    ),
    MetricSpec(
        "distdgl.step_seconds", "timer", "seconds (simulated)",
        "Simulated duration of each global step (sample + fetch + "
        "forward + backward + update, straggler per phase).",
        buckets=_TIME_BUCKETS,
    ),
    MetricSpec(
        "distdgl.network_bytes", "counter", "bytes",
        "Traffic per step: shipped edge lists, remote feature fetches, "
        "retransmits and the gradient all-reduce.",
    ),
    MetricSpec(
        "distdgl.sampled_edges", "counter", "count",
        "Edges drawn by the executed k-hop sampler across all workers.",
    ),
    MetricSpec(
        "distdgl.local_input_vertices", "counter", "count",
        "Input vertices whose features were already local to the worker.",
    ),
    MetricSpec(
        "distdgl.remote_input_vertices", "counter", "count",
        "Input vertices fetched from a remote owner (the feature-loading "
        "traffic the paper attributes to the edge-cut).",
    ),
    MetricSpec(
        "distdgl.cache_hits", "counter", "count",
        "Remote input vertices served by the static degree-based feature "
        "cache instead of the network.",
    ),
    MetricSpec(
        "distdgl.degraded_steps", "counter", "count",
        "Steps executed with fewer than all workers (graceful "
        "degradation after a crash).",
    ),
    MetricSpec(
        "distdgl.fault_events", "counter", "count",
        "Injected fault events handled by the mini-batch engine, by kind "
        "(crash, slowdown, lost-message).",
        labels=("kind",),
    ),
    # --------------------------------------------------------- partitioner
    MetricSpec(
        "partitioner.runs", "counter", "count",
        "Completed partitioner invocations, labelled with the algorithm "
        "name (hdrf, metis, ...).",
        labels=("algorithm",),
    ),
    MetricSpec(
        "partitioner.seconds", "timer", "seconds (wall)",
        "Measured wall-clock partitioning time per run — the quantity "
        "the amortization analyses (paper Tables 4/5) consume.",
        labels=("algorithm",), buckets=_TIME_BUCKETS,
    ),
    MetricSpec(
        "partitioner.edges_assigned", "counter", "count",
        "Edges assigned by vertex-cut (edge partitioning) runs.",
        labels=("algorithm",),
    ),
    MetricSpec(
        "partitioner.vertices_assigned", "counter", "count",
        "Vertices assigned by edge-cut (vertex partitioning) runs.",
        labels=("algorithm",),
    ),
    MetricSpec(
        "partitioner.chunk_items", "histogram", "count",
        "Items (edges or vertices) per streamed chunk of the vectorised "
        "kernels, labelled with the kernel (hdrf, ldg, fennel).",
        labels=("kernel",), buckets=_SIZE_BUCKETS,
    ),
    MetricSpec(
        "partitioner.chunk_seconds", "timer", "seconds (wall)",
        "Wall-clock time per streamed chunk of the vectorised kernels; "
        "together with partitioner.chunk_items this gives per-chunk "
        "throughput.",
        labels=("kernel",), buckets=_TIME_BUCKETS,
    ),
    MetricSpec(
        "partitioner.stream_passes", "counter", "count",
        "Full passes over the on-disk edge stream made by an out-of-core "
        "partitioning run (degree pass, clustering passes, placement), "
        "labelled with the algorithm name.",
        labels=("algorithm",),
    ),
    # ----------------------------------------------------------- chunkstore
    MetricSpec(
        "chunkstore.chunks_written", "counter", "count",
        "Edge chunks flushed to an on-disk store, labelled with the "
        "store role (spool for primary edge spools, bucket for shuffle "
        "outputs).",
        labels=("role",),
    ),
    MetricSpec(
        "chunkstore.bytes_written", "counter", "bytes",
        "Raw edge bytes flushed to an on-disk store, by store role.",
        labels=("role",),
    ),
    MetricSpec(
        "chunkstore.chunks_read", "counter", "count",
        "Edge chunks loaded back from an on-disk store, by store role.",
        labels=("role",),
    ),
    MetricSpec(
        "chunkstore.bytes_read", "counter", "bytes",
        "Raw edge bytes loaded back from an on-disk store, by store "
        "role.",
        labels=("role",),
    ),
    MetricSpec(
        "chunkstore.spills", "counter", "count",
        "Pending-edge buffers spilled from a GraphBuilder to an on-disk "
        "store.",
    ),
    # ----------------------------------------------------- partition cache
    MetricSpec(
        "partition_cache.hits", "counter", "count",
        "Partition requests served from the process-wide LRU cache.",
    ),
    MetricSpec(
        "partition_cache.misses", "counter", "count",
        "Partition requests that had to run the partitioner.",
    ),
    MetricSpec(
        "partition_cache.evictions", "counter", "count",
        "Entries evicted by the LRU bound.",
    ),
    # ---------------------------------------------------------------- comm
    MetricSpec(
        "comm.raw_bytes", "counter", "bytes (simulated)",
        "Bytes the run's exchanges would have moved with no "
        "communication reduction (uncompressed, no skipped syncs), "
        "labelled with the codec in effect.",
        labels=("codec",),
    ),
    MetricSpec(
        "comm.wire_bytes", "counter", "bytes (simulated)",
        "Bytes that actually hit the fabric after compression and "
        "delayed aggregation, labelled with the codec in effect.",
        labels=("codec",),
    ),
    MetricSpec(
        "comm.saved_bytes", "counter", "bytes (simulated)",
        "raw_bytes - wire_bytes: traffic kept off the fabric by the "
        "run's communication-reduction settings.",
        labels=("codec",),
    ),
    MetricSpec(
        "comm.codec_seconds", "counter", "seconds (simulated)",
        "Simulated encode+decode time charged by the codec across the "
        "run (a compute phase at memory bandwidth).",
        labels=("codec",),
    ),
    MetricSpec(
        "comm.stale_epochs", "counter", "count",
        "DistGNN epochs that computed on stale halo aggregates under "
        "cd-r delayed aggregation (refresh_interval > 1).",
    ),
    MetricSpec(
        "comm.cache_hit_rate", "gauge", "ratio",
        "Fraction of would-be remote feature fetches served by the "
        "DistDGL static feature cache over the run.",
    ),
    # ---------------------------------------------------------------- serve
    MetricSpec(
        "serve.http_requests", "counter", "count",
        "HTTP requests served by the daemon, labelled with the method, "
        "the normalised route template (e.g. /jobs/{id}) and the "
        "response status code.",
        labels=("method", "route", "status"),
    ),
    MetricSpec(
        "serve.http_request_seconds", "timer", "seconds (wall)",
        "Wall-clock latency of each HTTP request, from dispatch to the "
        "response being written, per normalised route.",
        labels=("route",), buckets=_TIME_BUCKETS,
    ),
    MetricSpec(
        "serve.http_inflight", "gauge", "count",
        "Requests currently being handled (incremented at dispatch, "
        "decremented when the response is written).",
    ),
    MetricSpec(
        "serve.jobs_admitted", "counter", "count",
        "Sweep jobs accepted by admission control, per tenant.",
        labels=("tenant",),
    ),
    MetricSpec(
        "serve.jobs_finished", "counter", "count",
        "Jobs that reached a terminal state, labelled with that state "
        "(done, failed, cancelled, aborted).",
        labels=("state",),
    ),
    MetricSpec(
        "serve.admission_rejected", "counter", "count",
        "Job submissions refused at admission, by reason: queue-full "
        "(the 429 path) or invalid-spec (the 400 path).",
        labels=("reason",),
    ),
    MetricSpec(
        "serve.queue_depth", "gauge", "count",
        "Pending (queued, not yet running) cells per tenant and "
        "priority class.",
        labels=("tenant", "priority"),
    ),
    MetricSpec(
        "serve.queue_depth_total", "gauge", "count",
        "Pending cells across all tenants and priorities — the "
        "admission-control fill level.",
    ),
    MetricSpec(
        "serve.queue_capacity", "gauge", "count",
        "The admission bound (max_pending_cells); queue_depth_total / "
        "queue_capacity is the saturation ratio /healthz reports.",
    ),
    MetricSpec(
        "serve.running_cells", "gauge", "count",
        "Cells currently executing on runner threads.",
    ),
    MetricSpec(
        "serve.cell_wait_seconds", "timer", "seconds (wall)",
        "Queue wait per executed cell: enqueue to dispatch, by engine.",
        labels=("engine",), buckets=_TIME_BUCKETS,
    ),
    MetricSpec(
        "serve.cell_service_seconds", "timer", "seconds (wall)",
        "Execution time per cell: dispatch to result, by engine.",
        labels=("engine",), buckets=_TIME_BUCKETS,
    ),
    MetricSpec(
        "serve.admission_to_first_record_seconds", "timer",
        "seconds (wall)",
        "Per job: admission (POST /jobs accepted) to the first cell "
        "result landing — the user-visible time to first record.",
        buckets=_TIME_BUCKETS,
    ),
    MetricSpec(
        "serve.admission_to_first_record_p95_seconds", "gauge",
        "seconds (wall)",
        "The p95 of serve.admission_to_first_record_seconds, "
        "interpolated from its buckets at snapshot time so threshold "
        "alert rules can target a latency SLO directly.",
    ),
    MetricSpec(
        "serve.dedup_hits", "counter", "count",
        "Cells satisfied by an identical in-flight or cached cell "
        "instead of fresh compute, per requesting tenant.",
        labels=("tenant",),
    ),
    MetricSpec(
        "serve.dedup_misses", "counter", "count",
        "Cells that required fresh compute (no identical cell in "
        "flight or cached), per requesting tenant.",
        labels=("tenant",),
    ),
    MetricSpec(
        "serve.cells_computed", "counter", "count",
        "Cells actually executed (after dedup), by engine.",
        labels=("engine",),
    ),
    MetricSpec(
        "serve.cell_cache_size", "gauge", "count",
        "Completed-cell results currently held by the dedup LRU.",
    ),
    MetricSpec(
        "serve.cell_cache_evictions", "counter", "count",
        "Completed-cell results evicted by the dedup LRU bound "
        "(max_cached_cells).",
    ),
    MetricSpec(
        "serve.jobs_retained", "gauge", "count",
        "Jobs currently retained (queryable) by the scheduler.",
    ),
    MetricSpec(
        "serve.job_evictions", "counter", "count",
        "Finished jobs evicted by the retention bound "
        "(max_finished_jobs), oldest first.",
    ),
    MetricSpec(
        "serve.tenant_cells_served", "counter", "count",
        "Cell results delivered to jobs, per tenant — fresh compute "
        "and dedup fan-out both count, so this is each tenant's "
        "fair-share consumption.",
        labels=("tenant",),
    ),
    MetricSpec(
        "serve.scheduler_heartbeat_age_seconds", "gauge",
        "seconds (wall)",
        "Seconds since a runner thread last reported alive; /healthz "
        "degrades when this grows past a few poll intervals.",
    ),
    # --------------------------------------------------------- experiments
    MetricSpec(
        "experiments.runs", "counter", "count",
        "Experiment cells executed, labelled with the engine "
        "(distgnn, distdgl).",
        labels=("engine",),
    ),
    MetricSpec(
        "experiments.run_seconds", "timer", "seconds (wall)",
        "Wall-clock time per experiment cell (partitioning via cache + "
        "engine construction + simulation).",
        labels=("engine",), buckets=_TIME_BUCKETS,
    ),
    MetricSpec(
        "experiments.oom_runs", "counter", "count",
        "Runs whose memory check exceeded the per-machine budget "
        "(the paper's untrainable configurations).",
    ),
    # ----------------------------------------------------------------- obs
    MetricSpec(
        "obs.span_seconds", "timer", "seconds (wall)",
        "Wall-clock duration of user-scoped profiling spans "
        "(``with obs.span(name):``), labelled with the span name.",
        labels=("span",), buckets=_TIME_BUCKETS,
    ),
    # ----------------------------------------------------------- profiling
    MetricSpec(
        "profiling.captures", "counter", "count",
        "Finished cProfile captures (explicit ``capture`` blocks and "
        "enabled ``profile_scope`` hooks), labelled with the capture "
        "scope name.",
        labels=("scope",),
    ),
    MetricSpec(
        "profiling.capture_seconds", "timer", "seconds (wall)",
        "Wall-clock duration of each cProfile capture window (the "
        "profiled block itself, tracing overhead included), per "
        "scope.",
        labels=("scope",), buckets=_TIME_BUCKETS,
    ),
    MetricSpec(
        "profiling.samples", "counter", "count",
        "Thread-stack snapshots folded by the serve daemon's "
        "wall-clock sampler across POST /profile windows.",
    ),
)

_BY_NAME: Dict[str, MetricSpec] = {spec.name: spec for spec in CATALOG}
if len(_BY_NAME) != len(CATALOG):  # pragma: no cover - authoring error
    raise RuntimeError("duplicate metric names in CATALOG")


def find_spec(name: str) -> MetricSpec:
    """Return the catalog entry for ``name``; raise KeyError if absent."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"metric {name!r} is not declared in repro.obs.catalog.CATALOG"
        ) from None


def metric_names() -> Tuple[str, ...]:
    """All declared metric names, in catalog order."""
    return tuple(spec.name for spec in CATALOG)
