"""Metric instruments and the registry that owns them.

Four instrument kinds, matching the catalog declarations:

* :class:`Counter` — monotonically increasing total (``add``);
* :class:`Gauge` — last-written value with a high-watermark (``set``);
* :class:`Histogram` — count/sum/min/max plus cumulative bucket counts
  (``observe``);
* :class:`Timer` — a histogram whose unit is seconds.

Instruments are keyed by ``(name, sorted labels)``; the registry
get-or-creates them lazily and validates every access against
:mod:`.catalog` — an undeclared metric name or a label set that does not
match the declared schema raises immediately, so instrumentation bugs
surface at the call site rather than as silently missing series.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .catalog import MetricSpec, find_spec

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
]

LabelItems = Tuple[Tuple[str, str], ...]


class _Instrument:
    """Shared bookkeeping: the spec and the concrete label values."""

    __slots__ = ("spec", "labels")

    def __init__(self, spec: MetricSpec, labels: LabelItems) -> None:
        self.spec = spec
        self.labels = labels

    def value_dict(self) -> Dict[str, object]:
        """The instrument's current value(s) as plain JSON-able data."""
        raise NotImplementedError


class Counter(_Instrument):
    """Monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self, spec: MetricSpec, labels: LabelItems) -> None:
        super().__init__(spec, labels)
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        """Increase the counter; negative increments are rejected."""
        if amount < 0:
            raise ValueError(
                f"{self.spec.name}: counters only go up (got {amount})"
            )
        self.value += amount

    def value_dict(self) -> Dict[str, object]:
        """``{"value": total}``."""
        return {"value": self.value}


class Gauge(_Instrument):
    """Last-written value, with the maximum ever written alongside."""

    __slots__ = ("value", "max_value")

    def __init__(self, spec: MetricSpec, labels: LabelItems) -> None:
        super().__init__(spec, labels)
        self.value = 0.0
        self.max_value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge; the high-watermark updates automatically."""
        self.value = float(value)
        if value > self.max_value:
            self.max_value = float(value)

    def value_dict(self) -> Dict[str, object]:
        """``{"value": last, "max": high_watermark}``."""
        return {"value": self.value, "max": self.max_value}


class Histogram(_Instrument):
    """count/sum/min/max summary plus cumulative bucket counts."""

    __slots__ = ("count", "total", "min", "max", "bucket_counts")

    def __init__(self, spec: MetricSpec, labels: LabelItems) -> None:
        super().__init__(spec, labels)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        bounds = spec.buckets or ()
        self.bucket_counts = [0] * (len(bounds) + 1)  # +inf overflow

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        bounds = self.spec.buckets or ()
        for i, bound in enumerate(bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        """Mean observation (0.0 before the first one)."""
        return self.total / self.count if self.count else 0.0

    def value_dict(self) -> Dict[str, object]:
        """Summary stats plus per-bucket counts keyed by upper bound."""
        bounds = [str(b) for b in (self.spec.buckets or ())] + ["+inf"]
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            "buckets": dict(zip(bounds, self.bucket_counts)),
        }


class Timer(Histogram):
    """A histogram of durations in seconds."""

    __slots__ = ()


_KIND_CLASSES = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": Histogram,
    "timer": Timer,
}


class MetricsRegistry:
    """Owns every instrument created in this process (or scope).

    Access methods (:meth:`counter`, :meth:`gauge`, :meth:`histogram`,
    :meth:`timer`) validate the name against the catalog and the label
    keys against the declared schema, then get-or-create the instrument
    for that exact label combination.
    """

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, LabelItems], _Instrument] = {}

    # ------------------------------------------------------------------
    # Instrument access
    # ------------------------------------------------------------------
    def _get(self, name: str, kind: str, labels: Dict) -> _Instrument:
        spec = find_spec(name)
        if spec.kind != kind:
            raise TypeError(
                f"metric {name!r} is a {spec.kind}, accessed as {kind}"
            )
        if tuple(sorted(labels)) != tuple(sorted(spec.labels)):
            raise ValueError(
                f"metric {name!r} takes labels {sorted(spec.labels)}, "
                f"got {sorted(labels)}"
            )
        items: LabelItems = tuple(
            sorted((k, str(v)) for k, v in labels.items())
        )
        key = (name, items)
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = _KIND_CLASSES[kind](spec, items)
            self._instruments[key] = instrument
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        """The :class:`Counter` registered as ``name`` for ``labels``."""
        return self._get(name, "counter", labels)  # type: ignore[return-value]

    def gauge(self, name: str, **labels) -> Gauge:
        """The :class:`Gauge` registered as ``name`` for ``labels``."""
        return self._get(name, "gauge", labels)  # type: ignore[return-value]

    def histogram(self, name: str, **labels) -> Histogram:
        """The :class:`Histogram` registered as ``name`` for ``labels``."""
        return self._get(name, "histogram", labels)  # type: ignore[return-value]

    def timer(self, name: str, **labels) -> Timer:
        """The :class:`Timer` registered as ``name`` for ``labels``."""
        return self._get(name, "timer", labels)  # type: ignore[return-value]

    def observe(self, name: str, value: float, **labels) -> None:
        """Record an observation on the histogram *or* timer ``name``."""
        kind = find_spec(name).kind
        if kind not in ("histogram", "timer"):
            raise TypeError(
                f"metric {name!r} is a {kind}; observe() needs a "
                "histogram or timer"
            )
        self._get(name, kind, labels).observe(value)  # type: ignore[union-attr]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._instruments)

    def instruments(self) -> List[_Instrument]:
        """All live instruments, in deterministic (name, labels) order."""
        return [
            self._instruments[key] for key in sorted(self._instruments)
        ]

    def snapshot(self) -> List[Dict[str, object]]:
        """Serializable dump: one entry per instrument with its values."""
        entries = []
        for instrument in self.instruments():
            spec = instrument.spec
            entries.append(
                {
                    "name": spec.name,
                    "kind": spec.kind,
                    "unit": spec.unit,
                    "labels": dict(instrument.labels),
                    **instrument.value_dict(),
                }
            )
        return entries

    def clear(self) -> None:
        """Drop every instrument (a fresh scope for the next run)."""
        self._instruments.clear()
