"""Unified observability layer: metric registry, spans, and event sinks.

Usage::

    from repro import obs

    obs.enable("metrics")              # off by default
    obs.count("distgnn.epochs")
    with obs.span("gather", machine=3):
        ...                            # timed into obs.span_seconds
    print(obs.snapshot())

Every metric is declared once in :mod:`repro.obs.catalog`; the registry
(:mod:`repro.obs.registry`) validates names and label schemas against it,
and ``docs/observability.md`` is rendered from it
(:mod:`repro.obs.docs`), so code and documentation cannot drift. Trace
level additionally streams structured JSONL events to a sink
(:mod:`repro.obs.sink`).
"""

from .api import (
    LEVELS,
    clear_trace_context,
    configure,
    count,
    disable,
    enable,
    enabled,
    event,
    gauge,
    get_registry,
    get_sink,
    get_trace_context,
    level,
    observe,
    record_span,
    reset,
    save_metrics,
    set_sink,
    set_trace_context,
    snapshot,
    span,
    tracing,
)
from .catalog import CATALOG, MetricSpec, find_spec, metric_names
from .docs import render_metric_docs
from .profiling import (
    Profile,
    ThreadSampler,
    profile_diff,
    profile_scope,
    render_flamegraph,
)
from .memory import (
    PeakMemoryTracker,
    read_rss_high_water,
    reset_rss_high_water,
)
from .registry import Counter, Gauge, Histogram, MetricsRegistry, Timer
from .serve_metrics import (
    ServeMetrics,
    histogram_quantile,
    parse_prometheus_totals,
    prometheus_name,
    render_prometheus,
)
from .sink import EventSink, JsonlSink, MemorySink, read_jsonl

__all__ = [
    # api
    "LEVELS",
    "configure",
    "enable",
    "disable",
    "enabled",
    "tracing",
    "level",
    "get_registry",
    "set_sink",
    "get_sink",
    "reset",
    "count",
    "gauge",
    "observe",
    "event",
    "span",
    "record_span",
    "snapshot",
    "save_metrics",
    "set_trace_context",
    "get_trace_context",
    "clear_trace_context",
    # serve metrics
    "ServeMetrics",
    "histogram_quantile",
    "render_prometheus",
    "parse_prometheus_totals",
    "prometheus_name",
    # catalog
    "CATALOG",
    "MetricSpec",
    "find_spec",
    "metric_names",
    # registry
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    # sink
    "EventSink",
    "MemorySink",
    "JsonlSink",
    "read_jsonl",
    # profiling
    "Profile",
    "ThreadSampler",
    "profile_diff",
    "profile_scope",
    "render_flamegraph",
    # docs
    "render_metric_docs",
    # memory
    "PeakMemoryTracker",
    "read_rss_high_water",
    "reset_rss_high_water",
]
