"""End-to-end report building: RunData in, AnalysisReport out.

This is the orchestration the CLI (``repro obs analyze``), the sweep
runner (``--analysis-out``) and the run report all share: fold whatever
artifacts a run left behind — sweep records, metric snapshots, JSONL
traces — through the attribution and anomaly layers into one
:class:`~.findings.AnalysisReport`.

Only simulated quantities enter the report (phase totals, busy seconds,
traffic, counts) — never wall-clock measurements — so the report for a
given config is byte-identical across serial and parallel sweeps and
across repeated invocations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .anomaly import (
    AnomalyThresholds,
    detect_record_anomalies,
    detect_series_anomalies,
    detect_snapshot_anomalies,
)
from .attribution import attribute_phase_totals
from .findings import AnalysisReport
from .load import RunData
from .tradeoff import traffic_accuracy_tradeoff

__all__ = [
    "build_analysis_report",
    "per_partitioner_breakdown",
    "resource_depth",
]


def _engine_of(record) -> str:
    """Engine tag for a sweep record (duck-typed)."""
    return "distdgl" if hasattr(record, "degraded_steps") else "distgnn"


def _record_phase_breakdown(record) -> Dict[str, float]:
    """Per-phase seconds of one record's mean epoch.

    Prefers the engine's own phase table (DistDGL records carry one);
    full-batch records decompose into forward/backward/sync. These are
    per-epoch means, which is what the paper's stacked-bar figures
    (19/21/22/25) plot.
    """
    phases = getattr(record, "phase_seconds", None)
    if isinstance(phases, dict) and phases:
        return {str(k): float(v) for k, v in phases.items()}
    return {
        "forward": float(getattr(record, "forward_seconds", 0.0)),
        "backward": float(getattr(record, "backward_seconds", 0.0)),
        "sync": float(getattr(record, "sync_seconds", 0.0)),
    }


def per_partitioner_breakdown(
    records: Sequence,
) -> Dict[str, Dict[str, object]]:
    """Per-engine, per-partitioner mean epoch-time phase breakdown.

    ``{engine: {partitioner: {cells, mean_epoch_seconds,
    phase_seconds, phase_fractions}}}`` — the data behind the paper's
    phase-stacked bars and this package's dashboard.
    """
    accumulator: Dict[str, Dict[str, Dict[str, object]]] = {}
    for record in records:
        engine = _engine_of(record)
        entry = accumulator.setdefault(engine, {}).setdefault(
            record.partitioner,
            {"cells": 0, "epoch_seconds": 0.0, "phases": {}},
        )
        entry["cells"] += 1
        entry["epoch_seconds"] += float(record.epoch_seconds)
        for phase, seconds in _record_phase_breakdown(record).items():
            entry["phases"][phase] = (
                entry["phases"].get(phase, 0.0) + seconds
            )

    result: Dict[str, Dict[str, object]] = {}
    for engine in sorted(accumulator):
        result[engine] = {}
        for partitioner in sorted(accumulator[engine]):
            entry = accumulator[engine][partitioner]
            cells = entry["cells"]
            phases = {
                name: seconds / cells
                for name, seconds in sorted(entry["phases"].items())
            }
            total = sum(phases.values())
            result[engine][partitioner] = {
                "cells": cells,
                "mean_epoch_seconds": entry["epoch_seconds"] / cells,
                "phase_seconds": phases,
                "phase_fractions": {
                    name: seconds / total if total else 0.0
                    for name, seconds in phases.items()
                },
            }
    return result


def resource_depth(records: Sequence) -> Dict[str, Dict[str, object]]:
    """Per-engine traffic-matrix and memory depth at the largest k.

    For each engine, aggregates the records at that engine's largest
    machine count whose ``obs_metrics`` carry the resource-depth fields
    (PR 5): the ``src x dst`` traffic matrix summed over partitioners
    and parameter configs, the per-category memory peaks and the
    per-phase memory watermark (both elementwise max over records, so
    they stay *peaks*). Everything is a simulated quantity, so the
    result is identical for serial and parallel sweeps.
    """
    by_engine: Dict[str, List] = {}
    for record in records:
        metrics = getattr(record, "obs_metrics", None) or {}
        if "traffic_matrix" in metrics:
            by_engine.setdefault(_engine_of(record), []).append(record)

    result: Dict[str, Dict[str, object]] = {}
    for engine in sorted(by_engine):
        group = by_engine[engine]
        top_k = max(r.num_machines for r in group)
        group = [r for r in group if r.num_machines == top_k]
        matrix = [[0.0] * top_k for _ in range(top_k)]
        peaks: Dict[str, List[float]] = {}
        timeline: Dict[str, List[float]] = {}
        for record in group:
            metrics = record.obs_metrics
            for i, row in enumerate(metrics["traffic_matrix"]):
                for j, value in enumerate(row):
                    matrix[i][j] += float(value)
            for table, source in (
                (peaks, metrics.get("memory_category_peaks", {})),
                (timeline, metrics.get("memory_timeline", {})),
            ):
                for key, values in source.items():
                    if key not in table:
                        table[key] = [float(v) for v in values]
                    else:
                        table[key] = [
                            max(old, float(new))
                            for old, new in zip(table[key], values)
                        ]
        result[engine] = {
            "k": top_k,
            "cells": len(group),
            "traffic_matrix": matrix,
            "memory_category_peaks": {
                category: peaks[category]
                for category in sorted(peaks)
            },
            "memory_timeline": timeline,
        }
    return result


def _machine_table(
    snapshot: Sequence[Dict[str, object]]
) -> List[Dict[str, object]]:
    """Per-machine simulated totals from a metrics snapshot.

    Rows are machines; columns the per-machine ``cluster.*`` series
    (busy seconds, traffic, lost messages, memory peak). This is the
    dashboard's heatmap source and is all-simulated, so deterministic.
    """
    per_machine: Dict[int, Dict[str, float]] = {}
    columns = {
        "cluster.machine_busy_seconds": "busy_seconds",
        "cluster.bytes_sent": "bytes_sent",
        "cluster.bytes_received": "bytes_received",
        "cluster.lost_messages": "lost_messages",
        "cluster.memory_peak_bytes": "memory_peak_bytes",
    }
    for entry in snapshot:
        column = columns.get(str(entry.get("name")))
        if column is None:
            continue
        machine = int(entry.get("labels", {}).get("machine", 0))
        row = per_machine.setdefault(machine, {})
        row[column] = row.get(column, 0.0) + float(
            entry.get("value", 0.0)
        )
    return [
        {"machine": machine, **per_machine[machine]}
        for machine in sorted(per_machine)
    ]


def _aggregate_phase_totals(run: RunData) -> Dict[str, float]:
    """Total per-phase seconds across everything the run recorded.

    Record ``obs_metrics`` totals win (they cover every cell); the
    snapshot's ``cluster.phase_seconds`` series is the fallback.
    """
    totals: Dict[str, float] = {}
    for record in run.records:
        metrics = getattr(record, "obs_metrics", None) or {}
        for phase, seconds in metrics.get("phase_seconds", {}).items():
            totals[phase] = totals.get(phase, 0.0) + float(seconds)
    if totals:
        return totals
    for entry in run.metrics:
        if entry.get("name") != "cluster.phase_seconds":
            continue
        phase = str(entry.get("labels", {}).get("phase", ""))
        totals[phase] = totals.get(phase, 0.0) + float(
            entry.get("sum", 0.0)
        )
    return totals


def _trace_phase_findings(
    run: RunData, thresholds: AnomalyThresholds
) -> List:
    """Anomaly findings over the trace's phase-duration event series."""
    series: Dict[str, List[float]] = {}
    for event in run.events:
        if event.get("kind") != "phase":
            continue
        series.setdefault(str(event.get("name", "")), []).append(
            float(event.get("seconds", 0.0))
        )
    findings = []
    for name in sorted(series):
        findings.extend(
            detect_series_anomalies(
                f"trace-phase:{name}",
                series[name],
                thresholds,
                kind="phase-duration-spike",
                unit="s",
            )
        )
    return findings


def build_analysis_report(
    run: RunData,
    thresholds: Optional[AnomalyThresholds] = None,
) -> AnalysisReport:
    """Diagnose one loaded run into an :class:`AnalysisReport`."""
    thresholds = thresholds or AnomalyThresholds()

    phase_totals = _aggregate_phase_totals(run)
    phase_mix = attribute_phase_totals(phase_totals)
    breakdown = per_partitioner_breakdown(run.records)
    machines = _machine_table(run.metrics)

    findings = []
    findings.extend(detect_record_anomalies(run.records, thresholds))
    findings.extend(detect_snapshot_anomalies(run.metrics, thresholds))
    findings.extend(_trace_phase_findings(run, thresholds))
    if run.skipped_lines:
        from .findings import Finding

        findings.append(
            Finding(
                kind="trace-truncated",
                severity="info",
                subject=run.label,
                message=(
                    f"{run.skipped_lines} truncated/corrupt JSONL "
                    "line(s) were skipped while loading traces"
                ),
                value=float(run.skipped_lines),
            )
        )

    dominant = phase_mix["phases"][0]["name"] if phase_mix["phases"] else None
    engines = sorted(
        {_engine_of(record) for record in run.records}
    )
    summary: Dict[str, object] = {
        "engines": engines,
        "total_phase_seconds": phase_mix["total_seconds"],
        "recovery_fraction": phase_mix["recovery_fraction"],
        "dominant_phase": dominant,
        "thresholds": thresholds.to_dict(),
    }

    return AnalysisReport(
        source=run.source_dict(),
        summary=summary,
        attribution={
            "phase_mix": phase_mix,
            "per_partitioner": breakdown,
            "machines": machines,
            "resources": resource_depth(run.records),
            "comm_tradeoff": traffic_accuracy_tradeoff(run.records),
        },
        findings=findings,
    )
