"""Flexible loading of run telemetry artifacts.

A "run" leaves up to three kinds of artifact behind: sweep record JSON
(``save_records``), metric snapshot JSON (``obs.save_metrics``), and
JSONL traces (``JsonlSink`` / ``--obs-out``, whose final record is a
metrics snapshot). :func:`load_run_inputs` sniffs any mix of those by
content, folds them into one :class:`RunData`, and is what the CLI
``repro obs analyze | diff | dashboard`` commands feed the analyzers
with.

Only basenames are recorded into reports — never absolute paths — so
analyses of identical telemetry written to different directories stay
byte-identical.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Union

from ..sink import read_jsonl

__all__ = ["RunData", "load_run_inputs"]

PathLike = Union[str, "os.PathLike[str]"]


@dataclass
class RunData:
    """Everything loaded for one run: records, metrics, trace events."""

    label: str = ""
    records: List = field(default_factory=list)
    metrics: List[Dict[str, object]] = field(default_factory=list)
    events: List[Dict[str, object]] = field(default_factory=list)
    #: JSONL lines skipped as truncated/corrupt while loading traces.
    skipped_lines: int = 0

    def source_dict(self) -> Dict[str, object]:
        """Summary of what was loaded (embedded in reports)."""
        return {
            "label": self.label,
            "num_records": len(self.records),
            "num_metrics": len(self.metrics),
            "num_events": len(self.events),
            "skipped_lines": self.skipped_lines,
        }


def _looks_like_records(payload: object) -> bool:
    """True for ``save_records`` output: [{"kind": ..., "data": ...}]."""
    return (
        isinstance(payload, list)
        and bool(payload)
        and all(
            isinstance(entry, dict) and set(entry) == {"kind", "data"}
            for entry in payload
        )
    )


def _looks_like_snapshot(payload: object) -> bool:
    """True for ``obs.snapshot()`` output: [{"name","kind","labels",...}]."""
    return (
        isinstance(payload, list)
        and bool(payload)
        and all(
            isinstance(entry, dict)
            and "name" in entry
            and "kind" in entry
            and "labels" in entry
            for entry in payload
        )
    )


def _load_json_file(run: RunData, path: str) -> None:
    """Classify one ``.json`` artifact by content and absorb it."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if _looks_like_records(payload):
        # Lazy import: experiments.runreport imports this package, so a
        # module-level import here would be a cycle.
        from ...experiments.export import load_records

        run.records.extend(load_records(path))
    elif _looks_like_snapshot(payload):
        run.metrics.extend(payload)
    elif isinstance(payload, list) and not payload:
        pass  # an empty sweep — nothing to absorb
    else:
        raise ValueError(
            f"{path}: not a sweep record file or a metrics snapshot "
            "(expected save_records or obs.save_metrics output)"
        )


def _load_jsonl_file(run: RunData, path: str) -> None:
    """Absorb a JSONL trace: events plus any embedded metrics snapshot."""
    events, skipped = read_jsonl(path, return_skipped=True)
    run.skipped_lines += skipped
    for event in events:
        if event.get("kind") == "metrics-snapshot":
            run.metrics.extend(event.get("metrics", []))
        else:
            run.events.append(event)


def load_run_inputs(
    paths: Sequence[PathLike], label: str = ""
) -> RunData:
    """Load any mix of record/snapshot/trace artifacts into a RunData.

    ``.jsonl`` files are read as traces (tolerating a truncated final
    line; the skip count is carried on the result); ``.json`` files are
    classified by content. ``label`` defaults to the sorted basenames.
    """
    run = RunData()
    names = []
    for path in paths:
        path = os.fspath(path)
        names.append(os.path.basename(path))
        if path.endswith(".jsonl"):
            _load_jsonl_file(run, path)
        else:
            _load_json_file(run, path)
    run.label = label or "+".join(sorted(names))
    return run
