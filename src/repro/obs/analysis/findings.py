"""Typed findings and the analysis report container.

A :class:`Finding` is one diagnosed fact — a straggler outlier, a
recovery-overhead spike, a metric regression — with a severity, the
subject it is about, the measured value and the threshold it crossed.
Detectors return lists of findings; :class:`AnalysisReport` bundles them
with the attribution tables and serializes canonically (sorted keys,
stable ordering), so the same telemetry always produces byte-identical
JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["SEVERITIES", "Finding", "AnalysisReport", "sort_findings"]

#: Recognised severities, in increasing order of urgency.
SEVERITIES = ("info", "warning", "critical")

_SEVERITY_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}


@dataclass(frozen=True)
class Finding:
    """One diagnosed fact about a run.

    ``kind`` is a stable machine-readable tag (``straggler-outlier``,
    ``recovery-spike``, ``cache-collapse``, ``phase-duration-spike``,
    ``epoch-time-outlier``, ``machine-imbalance``, ``metric-regression``,
    ``metric-added``, ``metric-removed``, ``phase-mix-shift``);
    ``subject`` names what it is about (a sweep cell, a machine, a
    metric series); ``value``/``threshold`` record the measurement that
    triggered it; ``context`` carries detector-specific detail.
    """

    kind: str
    severity: str
    subject: str
    message: str
    value: float = 0.0
    threshold: float = 0.0
    context: Dict[str, object] = field(default_factory=dict, hash=False)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {self.severity!r}; "
                f"expected one of {SEVERITIES}"
            )

    def to_dict(self) -> Dict[str, object]:
        """Plain JSON-able dict (context keys sorted for determinism)."""
        return {
            "kind": self.kind,
            "severity": self.severity,
            "subject": self.subject,
            "message": self.message,
            "value": self.value,
            "threshold": self.threshold,
            "context": dict(sorted(self.context.items())),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Finding":
        """Rebuild a finding from :meth:`to_dict` output."""
        return cls(
            kind=str(data["kind"]),
            severity=str(data["severity"]),
            subject=str(data["subject"]),
            message=str(data["message"]),
            value=float(data.get("value", 0.0)),
            threshold=float(data.get("threshold", 0.0)),
            context=dict(data.get("context", {})),
        )


def sort_findings(findings: Sequence[Finding]) -> List[Finding]:
    """Deterministic presentation order: most severe first, then by
    kind, subject and message (ties broken textually, never by input
    order, so serial and parallel analyses sort identically)."""
    return sorted(
        findings,
        key=lambda f: (
            -_SEVERITY_RANK[f.severity],
            f.kind,
            f.subject,
            f.message,
        ),
    )


@dataclass
class AnalysisReport:
    """Findings plus attribution for one analyzed run.

    ``source`` describes what was analyzed (record/event/metric counts,
    input basenames — never absolute paths, so reports from different
    working directories stay comparable); ``attribution`` holds the
    critical-path tables (see :mod:`.attribution`); ``summary`` the
    headline numbers the renderers lead with.
    """

    source: Dict[str, object] = field(default_factory=dict)
    summary: Dict[str, object] = field(default_factory=dict)
    attribution: Dict[str, object] = field(default_factory=dict)
    findings: List[Finding] = field(default_factory=list)

    #: Serialization format version.
    SCHEMA = 1

    def severity_counts(self) -> Dict[str, int]:
        """``{severity: count}`` over every declared severity."""
        counts = {name: 0 for name in SEVERITIES}
        for finding in self.findings:
            counts[finding.severity] += 1
        return counts

    def worst_severity(self) -> Optional[str]:
        """The most urgent severity present, or None with no findings."""
        worst = None
        for finding in self.findings:
            if worst is None or (
                _SEVERITY_RANK[finding.severity] > _SEVERITY_RANK[worst]
            ):
                worst = finding.severity
        return worst

    def to_dict(self) -> Dict[str, object]:
        """Plain JSON-able dict with findings in canonical order."""
        return {
            "schema": self.SCHEMA,
            "source": self.source,
            "summary": {
                **self.summary,
                "num_findings": len(self.findings),
                "by_severity": self.severity_counts(),
            },
            "attribution": self.attribution,
            "findings": [
                finding.to_dict()
                for finding in sort_findings(self.findings)
            ],
        }

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, 2-space indent, trailing
        newline — byte-identical for identical telemetry."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "AnalysisReport":
        """Rebuild a report from :meth:`to_dict` output."""
        summary = dict(data.get("summary", {}))
        summary.pop("num_findings", None)
        summary.pop("by_severity", None)
        return cls(
            source=dict(data.get("source", {})),
            summary=summary,
            attribution=dict(data.get("attribution", {})),
            findings=[
                Finding.from_dict(entry)
                for entry in data.get("findings", [])
            ],
        )

    def save(self, path: str) -> None:
        """Write :meth:`to_json` to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
