"""Critical-path, straggler and imbalance attribution.

The paper's headline analyses are attributions: which phase dominates
epoch time per partitioner (Figs. 19/21/22/25) and which machines bound
the barriers (Figs. 5/14/17). Under barrier semantics every phase lasts
as long as its slowest worker, so from the recorded per-machine vectors
the makespan decomposes exactly::

    duration = mean(per_machine) + (max(per_machine) - mean(per_machine))
             = compute share       + skew share

summed over occurrences. :func:`attribute_timeline` computes that
decomposition — plus per-machine straggler frequency/severity and the
recovery/checkpoint shares — from a live
:class:`~repro.cluster.timeline.Timeline`;
:func:`attribute_phase_totals` produces the coarser phase-mix table
from the scalar phase totals that sweep records carry in
``obs_metrics`` (no per-machine vectors there, so no skew split).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

import numpy as np

from ...cluster.timeline import RECOVERY_PHASE_PREFIXES

__all__ = [
    "PhaseAttribution",
    "MachineAttribution",
    "TimelineAttribution",
    "attribute_timeline",
    "attribute_phase_totals",
    "is_recovery_phase",
]

#: Phase name carrying checkpoint-write time (see cluster.timeline).
CHECKPOINT_PHASE = "checkpoint"


def is_recovery_phase(name: str) -> bool:
    """True for phases that are pure recovery overhead (fault handling
    and post-restore replay)."""
    return name.startswith(RECOVERY_PHASE_PREFIXES)


@dataclass(frozen=True)
class PhaseAttribution:
    """Aggregated contribution of one phase name to the makespan."""

    name: str
    occurrences: int
    total_seconds: float
    #: Share of the timeline's total (straggler) seconds.
    fraction: float
    #: Sum over occurrences of the per-machine mean — the work a
    #: perfectly balanced cluster would still have paid.
    compute_seconds: float
    #: Sum over occurrences of (straggler - mean) — pure skew cost.
    skew_seconds: float
    #: total_seconds / compute_seconds (1.0 = perfectly balanced).
    imbalance: float
    interrupted_occurrences: int = 0

    def to_dict(self) -> Dict[str, object]:
        """Plain JSON-able dict."""
        return {
            "name": self.name,
            "occurrences": self.occurrences,
            "total_seconds": self.total_seconds,
            "fraction": self.fraction,
            "compute_seconds": self.compute_seconds,
            "skew_seconds": self.skew_seconds,
            "imbalance": self.imbalance,
            "interrupted_occurrences": self.interrupted_occurrences,
            "recovery": is_recovery_phase(self.name),
        }


@dataclass(frozen=True)
class MachineAttribution:
    """One machine's busy time and how often it bound the barriers."""

    machine: int
    busy_seconds: float
    #: busy_seconds / mean busy seconds across machines.
    busy_ratio: float
    #: Occurrences in which this machine was the (first) straggler.
    straggler_count: int
    #: straggler_count / total phase occurrences.
    straggler_fraction: float
    #: Mean, over occurrences it bound, of (its time - occurrence mean)
    #: / occurrence mean — how much slower than the pack it ran.
    straggler_severity: float

    def to_dict(self) -> Dict[str, object]:
        """Plain JSON-able dict."""
        return {
            "machine": self.machine,
            "busy_seconds": self.busy_seconds,
            "busy_ratio": self.busy_ratio,
            "straggler_count": self.straggler_count,
            "straggler_fraction": self.straggler_fraction,
            "straggler_severity": self.straggler_severity,
        }


@dataclass(frozen=True)
class TimelineAttribution:
    """Full decomposition of one timeline's simulated wall time."""

    total_seconds: float
    compute_seconds: float
    skew_seconds: float
    recovery_seconds: float
    checkpoint_seconds: float
    num_machines: int
    num_occurrences: int
    #: Per phase name, sorted by total seconds descending (the critical
    #: path reads top-down).
    phases: List[PhaseAttribution]
    #: Per machine, in machine order.
    machines: List[MachineAttribution]

    @property
    def skew_fraction(self) -> float:
        """Share of wall time attributable to load skew."""
        return self.skew_seconds / self.total_seconds if self.total_seconds else 0.0

    @property
    def recovery_fraction(self) -> float:
        """Share of wall time spent on failure handling and replay."""
        return (
            self.recovery_seconds / self.total_seconds
            if self.total_seconds
            else 0.0
        )

    def to_dict(self) -> Dict[str, object]:
        """Plain JSON-able dict."""
        return {
            "total_seconds": self.total_seconds,
            "compute_seconds": self.compute_seconds,
            "skew_seconds": self.skew_seconds,
            "skew_fraction": self.skew_fraction,
            "recovery_seconds": self.recovery_seconds,
            "recovery_fraction": self.recovery_fraction,
            "checkpoint_seconds": self.checkpoint_seconds,
            "num_machines": self.num_machines,
            "num_occurrences": self.num_occurrences,
            "phases": [phase.to_dict() for phase in self.phases],
            "machines": [machine.to_dict() for machine in self.machines],
        }


def attribute_timeline(timeline) -> TimelineAttribution:
    """Decompose a :class:`~repro.cluster.timeline.Timeline`.

    ``timeline`` is duck-typed (needs ``records`` of
    :class:`~repro.cluster.timeline.PhaseRecord`), so replayed or
    synthetic timelines analyze the same way as live ones. Ties for the
    straggler go to the lowest machine index (``argmax`` semantics), so
    the attribution is deterministic.
    """
    records = list(timeline.records)
    num_machines = max(
        (record.per_machine_seconds.size for record in records), default=0
    )

    per_phase: Dict[str, Dict[str, float]] = {}
    busy = np.zeros(num_machines)
    straggler_count = np.zeros(num_machines, dtype=np.int64)
    severity_sum = np.zeros(num_machines)
    total = compute = skew = checkpoint = recovery = 0.0

    for record in records:
        vector = record.per_machine_seconds
        duration = float(vector.max())
        mean = float(vector.mean())
        stats = per_phase.setdefault(
            record.name,
            {
                "occurrences": 0,
                "total": 0.0,
                "compute": 0.0,
                "skew": 0.0,
                "interrupted": 0,
            },
        )
        stats["occurrences"] += 1
        stats["total"] += duration
        stats["compute"] += mean
        stats["skew"] += duration - mean
        if record.interrupted:
            stats["interrupted"] += 1

        total += duration
        compute += mean
        skew += duration - mean
        if record.name == CHECKPOINT_PHASE:
            checkpoint += duration
        if is_recovery_phase(record.name):
            recovery += duration

        busy[: vector.size] += vector
        bound_by = int(vector.argmax())
        straggler_count[bound_by] += 1
        if mean > 0:
            severity_sum[bound_by] += (duration - mean) / mean

    phases = [
        PhaseAttribution(
            name=name,
            occurrences=int(stats["occurrences"]),
            total_seconds=stats["total"],
            fraction=stats["total"] / total if total else 0.0,
            compute_seconds=stats["compute"],
            skew_seconds=stats["skew"],
            imbalance=(
                stats["total"] / stats["compute"]
                if stats["compute"]
                else 1.0
            ),
            interrupted_occurrences=int(stats["interrupted"]),
        )
        for name, stats in per_phase.items()
    ]
    phases.sort(key=lambda p: (-p.total_seconds, p.name))

    mean_busy = float(busy.mean()) if num_machines else 0.0
    occurrences = len(records)
    machines = [
        MachineAttribution(
            machine=m,
            busy_seconds=float(busy[m]),
            busy_ratio=float(busy[m]) / mean_busy if mean_busy else 1.0,
            straggler_count=int(straggler_count[m]),
            straggler_fraction=(
                int(straggler_count[m]) / occurrences if occurrences else 0.0
            ),
            straggler_severity=(
                float(severity_sum[m]) / int(straggler_count[m])
                if straggler_count[m]
                else 0.0
            ),
        )
        for m in range(num_machines)
    ]

    return TimelineAttribution(
        total_seconds=total,
        compute_seconds=compute,
        skew_seconds=skew,
        recovery_seconds=recovery,
        checkpoint_seconds=checkpoint,
        num_machines=num_machines,
        num_occurrences=occurrences,
        phases=phases,
        machines=machines,
    )


def attribute_phase_totals(
    phase_totals: Mapping[str, float]
) -> Dict[str, object]:
    """Phase-mix table from scalar phase totals (record ``obs_metrics``).

    The coarse sibling of :func:`attribute_timeline` for inputs that
    carry no per-machine vectors: total seconds, per-phase fractions
    sorted by contribution, and the recovery/checkpoint shares.
    """
    total = float(sum(phase_totals.values()))
    phases = [
        {
            "name": name,
            "total_seconds": float(seconds),
            "fraction": float(seconds) / total if total else 0.0,
            "recovery": is_recovery_phase(name),
        }
        for name, seconds in phase_totals.items()
    ]
    phases.sort(key=lambda p: (-p["total_seconds"], p["name"]))
    recovery = sum(
        p["total_seconds"] for p in phases if p["recovery"]
    )
    checkpoint = float(phase_totals.get(CHECKPOINT_PHASE, 0.0))
    return {
        "total_seconds": total,
        "recovery_seconds": recovery,
        "recovery_fraction": recovery / total if total else 0.0,
        "checkpoint_seconds": checkpoint,
        "phases": phases,
    }
