"""Traffic-vs-accuracy tradeoff extraction for comm sweeps.

A communication-reduction sweep (``docs/communication.md``) runs the
same grid once per :class:`~repro.experiments.CommConfig`; every record
then carries wire traffic *and* a deterministic accuracy-proxy error.
This module folds those records into per-partitioner tradeoff points
and marks the Pareto frontier — the configs for which no other config
of the same engine+partitioner moves fewer bytes at no worse accuracy.

Everything is computed from record fields alone (no snapshots, no
wall clock), so serial and parallel sweeps yield byte-identical
tradeoff tables.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["traffic_accuracy_tradeoff"]


def _engine_of(record) -> str:
    return "distdgl" if hasattr(record, "degraded_steps") else "distgnn"


def _comm_label(record) -> str:
    comm = getattr(record, "comm_config", None)
    return comm.label() if comm is not None else "baseline"


def _dominates(a: Dict[str, object], b: Dict[str, object]) -> bool:
    """True when ``a`` is at least as good as ``b`` on both axes and
    strictly better on one (minimizing wire bytes and proxy error)."""
    wire_a, wire_b = a["wire_bytes"], b["wire_bytes"]
    err_a, err_b = a["accuracy_proxy_error"], b["accuracy_proxy_error"]
    return (
        wire_a <= wire_b
        and err_a <= err_b
        and (wire_a < wire_b or err_a < err_b)
    )


def traffic_accuracy_tradeoff(
    records: Sequence,
) -> Dict[str, Dict[str, List[Dict[str, object]]]]:
    """Per-engine, per-partitioner traffic-vs-accuracy points.

    ``{engine: {partitioner: [point, ...]}}`` where each point is one
    comm configuration aggregated over that partitioner's cells:
    mean wire bytes per epoch, mean bytes saved per epoch, the saved
    fraction, mean codec seconds and the worst accuracy-proxy error,
    plus ``on_frontier`` marking Pareto-optimal configs. Points are
    sorted by descending wire bytes (the raw baseline first), so the
    list reads as a frontier walk. Empty when no record carries a
    ``comm_config`` — a pre-comm sweep produces no tradeoff section.
    """
    groups: Dict[tuple, Dict[str, object]] = {}
    swept = False
    for record in records:
        comm = getattr(record, "comm_config", None)
        if comm is not None:
            swept = True
        key = (_engine_of(record), record.partitioner, _comm_label(record))
        entry = groups.setdefault(
            key,
            {
                "cells": 0,
                "wire": 0.0,
                "saved": 0.0,
                "codec": 0.0,
                "error": 0.0,
                "comm": comm,
            },
        )
        entry["cells"] += 1
        entry["wire"] += float(record.network_bytes)
        entry["saved"] += float(
            getattr(record, "traffic_saved_bytes", 0.0)
        )
        entry["codec"] += float(getattr(record, "codec_seconds", 0.0))
        entry["error"] = max(
            entry["error"],
            float(getattr(record, "accuracy_proxy_error", 0.0)),
        )

    if not swept:
        return {}

    result: Dict[str, Dict[str, List[Dict[str, object]]]] = {}
    for engine, partitioner, label in sorted(groups):
        entry = groups[(engine, partitioner, label)]
        cells = entry["cells"]
        wire = entry["wire"] / cells
        saved = entry["saved"] / cells
        raw = wire + saved
        comm = entry["comm"]
        point = {
            "comm": label,
            "compression": comm.compression if comm else "none",
            "refresh_interval": comm.refresh_interval if comm else 1,
            "cache_fraction": comm.cache_fraction if comm else 0.0,
            "cells": cells,
            "wire_bytes": wire,
            "saved_bytes": saved,
            "saved_fraction": saved / raw if raw else 0.0,
            "codec_seconds": entry["codec"] / cells,
            "accuracy_proxy_error": entry["error"],
        }
        result.setdefault(engine, {}).setdefault(
            partitioner, []
        ).append(point)

    for engine in result:
        for partitioner, points in result[engine].items():
            for point in points:
                point["on_frontier"] = not any(
                    _dominates(other, point)
                    for other in points
                    if other is not point
                )
            points.sort(
                key=lambda p: (-p["wire_bytes"], p["comm"])
            )
    return result
