"""Terminal renderers for analysis reports and run diffs.

Plain fixed-width text (no ANSI), deterministic line order — suitable
for CI logs and for eyeballing a sweep's diagnosis without opening the
HTML dashboard.
"""

from __future__ import annotations

from typing import Dict, List

__all__ = ["render_report_text", "render_diff_text"]

_SEVERITY_TAGS = {"critical": "CRIT", "warning": "WARN", "info": "info"}


def _format_seconds(value: float) -> str:
    """Compact seconds formatting for tables."""
    return f"{value:.4g}s"


def render_report_text(report: Dict[str, object]) -> str:
    """Render an :class:`~.findings.AnalysisReport` dict for the
    terminal."""
    lines: List[str] = []
    source = report.get("source", {})
    summary = report.get("summary", {})
    attribution = report.get("attribution", {})
    findings = report.get("findings", [])

    lines.append(f"analysis: {source.get('label', '?')}")
    lines.append(
        f"  inputs: {source.get('num_records', 0)} records, "
        f"{source.get('num_metrics', 0)} metric series, "
        f"{source.get('num_events', 0)} trace events"
    )
    if source.get("skipped_lines"):
        lines.append(
            f"  (skipped {source['skipped_lines']} truncated JSONL "
            "line(s))"
        )

    phase_mix = attribution.get("phase_mix", {})
    phases = phase_mix.get("phases", [])
    if phases:
        lines.append("")
        lines.append(
            f"critical path ({_format_seconds(phase_mix['total_seconds'])}"
            " total phase time):"
        )
        for phase in phases[:10]:
            marker = " [recovery]" if phase.get("recovery") else ""
            lines.append(
                f"  {phase['fraction']:6.1%}  {phase['name']}"
                f" ({_format_seconds(phase['total_seconds'])})"
                f"{marker}"
            )
        if len(phases) > 10:
            lines.append(f"  ... and {len(phases) - 10} more phases")
        if phase_mix.get("recovery_seconds", 0.0) > 0:
            lines.append(
                f"  recovery overhead: "
                f"{phase_mix['recovery_fraction']:.1%} of phase time"
            )

    per_partitioner = attribution.get("per_partitioner", {})
    for engine in sorted(per_partitioner):
        lines.append("")
        lines.append(f"{engine}: mean epoch seconds by partitioner")
        table = per_partitioner[engine]
        for partitioner in sorted(
            table, key=lambda p: table[p]["mean_epoch_seconds"]
        ):
            entry = table[partitioner]
            top = max(
                entry["phase_fractions"].items(),
                key=lambda item: (item[1], item[0]),
                default=("-", 0.0),
            )
            lines.append(
                f"  {partitioner:>10s}  "
                f"{entry['mean_epoch_seconds']:9.4f}s  "
                f"({entry['cells']} cells, top phase: {top[0]} "
                f"{top[1]:.0%})"
            )

    machines = attribution.get("machines", [])
    if machines:
        busy = [row.get("busy_seconds", 0.0) for row in machines]
        mean_busy = sum(busy) / len(busy) if busy else 0.0
        lines.append("")
        lines.append(f"machines ({len(machines)}):")
        for row in machines:
            ratio = (
                row.get("busy_seconds", 0.0) / mean_busy
                if mean_busy
                else 0.0
            )
            lines.append(
                f"  machine-{row['machine']:<3d} "
                f"busy {_format_seconds(row.get('busy_seconds', 0.0)):>10s} "
                f"({ratio:4.2f}x mean)"
            )

    lines.append("")
    if findings:
        by_severity = report.get("summary", {}).get("by_severity", {})
        lines.append(
            f"findings: {len(findings)} "
            f"({by_severity.get('critical', 0)} critical, "
            f"{by_severity.get('warning', 0)} warning, "
            f"{by_severity.get('info', 0)} info)"
        )
        for finding in findings:
            tag = _SEVERITY_TAGS.get(finding["severity"], "????")
            lines.append(
                f"  [{tag}] {finding['kind']}: {finding['message']}"
            )
    else:
        lines.append("findings: none — nothing anomalous detected")
    lines.append("")
    return "\n".join(lines)


def render_diff_text(diff: Dict[str, object]) -> str:
    """Render a :class:`~.diff.RunDiff` dict for the terminal."""
    lines: List[str] = []
    lines.append(
        f"diff: {diff.get('label_a', 'a')} -> {diff.get('label_b', 'b')}"
    )
    if diff.get("clean"):
        lines.append("  clean — no regressions beyond tolerance")
        lines.append("")
        return "\n".join(lines)

    for title, key in (
        ("metrics only in b", "added_metrics"),
        ("metrics vanished", "removed_metrics"),
        ("cells only in b", "added_cells"),
        ("cells vanished", "removed_cells"),
    ):
        entries = diff.get(key, [])
        if entries:
            lines.append(f"  {title} ({len(entries)}):")
            for name in entries[:20]:
                lines.append(f"    {name}")
            if len(entries) > 20:
                lines.append(f"    ... and {len(entries) - 20} more")

    for title, key, label in (
        ("metric deltas beyond tolerance", "changed_metrics", "metric"),
        ("cell deltas beyond tolerance", "changed_cells", "cell"),
    ):
        changes = diff.get(key, [])
        if changes:
            lines.append(f"  {title} ({len(changes)}):")
            for change in changes[:20]:
                lines.append(
                    f"    {change[label]} {change['field']}: "
                    f"{change['a']:.6g} -> {change['b']:.6g} "
                    f"({change['rel_delta']:.2%})"
                )
            if len(changes) > 20:
                lines.append(f"    ... and {len(changes) - 20} more")

    phase_mix = diff.get("phase_mix", {})
    if phase_mix.get("shifted"):
        lines.append(
            f"  phase-mix shift: {phase_mix['l1_shift']:.2%} L1 "
            f"(threshold {phase_mix['threshold']:.2%})"
        )
        table = phase_mix.get("phases", {})
        moved = sorted(
            table.items(),
            key=lambda item: -abs(
                item[1]["b_fraction"] - item[1]["a_fraction"]
            ),
        )
        for phase, row in moved[:8]:
            lines.append(
                f"    {phase}: {row['a_fraction']:.1%} -> "
                f"{row['b_fraction']:.1%}"
            )
    lines.append("")
    return "\n".join(lines)
