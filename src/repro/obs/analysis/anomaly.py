"""Deterministic anomaly detection over telemetry series.

All detectors are seed-free and wall-clock-free: they consume simulated
quantities and use robust rolling statistics (median / MAD z-scores), so
the same telemetry always yields the same findings — serial and parallel
sweeps of one config diagnose identically, and repeated invocations are
byte-stable.

The MAD is floored at a fraction of the local median
(:attr:`AnomalyThresholds.mad_floor_fraction`), so an exactly-constant
series — common in a deterministic simulator — still flags genuine
departures without amplifying float noise into false positives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from .attribution import attribute_timeline, is_recovery_phase
from .findings import Finding

__all__ = [
    "AnomalyThresholds",
    "rolling_mad_zscores",
    "detect_series_anomalies",
    "detect_timeline_anomalies",
    "detect_record_anomalies",
    "detect_snapshot_anomalies",
]

#: Scale factor making the MAD consistent with a normal sigma.
_MAD_TO_SIGMA = 0.6745


@dataclass(frozen=True)
class AnomalyThresholds:
    """Seedable, explicit thresholds for every detector.

    Defaults are conservative; pass a customised instance to tighten or
    relax a sweep gate. All detectors take the thresholds explicitly so
    two analyses with equal thresholds are bit-for-bit reproducible.
    """

    #: Robust z-score above which a series point is anomalous.
    z_threshold: float = 3.5
    #: Trailing window length for rolling median/MAD.
    window: int = 8
    #: Minimum prior points before a z-score is computed at all.
    min_points: int = 4
    #: MAD is floored at this fraction of the local median (noise floor).
    mad_floor_fraction: float = 0.05
    #: Recovery share of wall time that warrants a warning / critical.
    recovery_fraction_warn: float = 0.10
    recovery_fraction_critical: float = 0.25
    #: A machine bounding at least this fraction of barriers, at least
    #: this much slower than the pack, is a straggler machine.
    straggler_fraction_warn: float = 0.5
    straggler_severity_warn: float = 0.2
    #: Cache hit rate below this (with enough traffic) is a collapse.
    cache_hit_rate_floor: float = 0.5
    cache_min_requests: int = 100
    #: Busiest/mean machine busy-time ratio that flags imbalance.
    busy_ratio_warn: float = 1.5
    #: A single phase above this share of wall time dominates the run.
    phase_dominance_fraction: float = 0.75

    def to_dict(self) -> Dict[str, float]:
        """Plain dict (recorded into reports for reproducibility)."""
        return {
            "z_threshold": self.z_threshold,
            "window": self.window,
            "min_points": self.min_points,
            "mad_floor_fraction": self.mad_floor_fraction,
            "recovery_fraction_warn": self.recovery_fraction_warn,
            "recovery_fraction_critical": self.recovery_fraction_critical,
            "straggler_fraction_warn": self.straggler_fraction_warn,
            "straggler_severity_warn": self.straggler_severity_warn,
            "cache_hit_rate_floor": self.cache_hit_rate_floor,
            "cache_min_requests": self.cache_min_requests,
            "busy_ratio_warn": self.busy_ratio_warn,
            "phase_dominance_fraction": self.phase_dominance_fraction,
        }


def rolling_mad_zscores(
    values: Sequence[float],
    window: int = 8,
    min_points: int = 4,
    mad_floor_fraction: float = 0.05,
) -> np.ndarray:
    """Robust z-score of each point against its trailing window.

    Point ``i`` is scored against the median/MAD of the up-to-``window``
    points *before* it (never including itself, so a level shift scores
    on arrival); the first ``min_points`` points score 0. The MAD is
    floored at ``mad_floor_fraction * |median|`` so constant series flag
    genuine departures without dividing by zero.
    """
    values = np.asarray(values, dtype=np.float64)
    scores = np.zeros(values.size)
    for i in range(values.size):
        prior = values[max(0, i - window): i]
        if prior.size < min_points:
            continue
        median = float(np.median(prior))
        mad = float(np.median(np.abs(prior - median)))
        mad = max(mad, mad_floor_fraction * abs(median), 1e-12)
        scores[i] = _MAD_TO_SIGMA * (values[i] - median) / mad
    return scores


def detect_series_anomalies(
    name: str,
    values: Sequence[float],
    thresholds: AnomalyThresholds = AnomalyThresholds(),
    kind: str = "series-anomaly",
    unit: str = "",
) -> List[Finding]:
    """Flag points whose rolling MAD z-score exceeds the threshold."""
    values = np.asarray(values, dtype=np.float64)
    scores = rolling_mad_zscores(
        values,
        window=thresholds.window,
        min_points=thresholds.min_points,
        mad_floor_fraction=thresholds.mad_floor_fraction,
    )
    findings = []
    for i in np.flatnonzero(np.abs(scores) >= thresholds.z_threshold):
        i = int(i)
        direction = "above" if scores[i] > 0 else "below"
        findings.append(
            Finding(
                kind=kind,
                severity="warning",
                subject=name,
                message=(
                    f"{name}[{i}] = {values[i]:.6g}{unit} is {direction} "
                    f"its trailing window "
                    f"(robust z = {scores[i]:.2f})"
                ),
                value=float(abs(scores[i])),
                threshold=thresholds.z_threshold,
                context={
                    "index": i,
                    "observed": float(values[i]),
                    "zscore": float(scores[i]),
                },
            )
        )
    return findings


def detect_timeline_anomalies(
    timeline,
    thresholds: AnomalyThresholds = AnomalyThresholds(),
) -> List[Finding]:
    """Diagnose one timeline: phase-duration spikes, straggler
    machines, and recovery-overhead share.

    ``timeline`` is duck-typed like :func:`.attribution.attribute_timeline`.
    """
    findings: List[Finding] = []

    # Phase-duration series, per phase name, in occurrence order.
    series: Dict[str, List[float]] = {}
    for record in timeline.records:
        series.setdefault(record.name, []).append(
            float(record.per_machine_seconds.max())
        )
    for name in sorted(series):
        findings.extend(
            detect_series_anomalies(
                f"phase:{name}",
                series[name],
                thresholds,
                kind="phase-duration-spike",
                unit="s",
            )
        )

    attribution = attribute_timeline(timeline)
    for machine in attribution.machines:
        if (
            machine.straggler_fraction
            >= thresholds.straggler_fraction_warn
            and machine.straggler_severity
            >= thresholds.straggler_severity_warn
        ):
            findings.append(
                Finding(
                    kind="straggler-machine",
                    severity="warning",
                    subject=f"machine-{machine.machine}",
                    message=(
                        f"machine {machine.machine} bound "
                        f"{machine.straggler_fraction:.0%} of barriers, "
                        f"running {machine.straggler_severity:.0%} "
                        "slower than the pack when it did"
                    ),
                    value=machine.straggler_fraction,
                    threshold=thresholds.straggler_fraction_warn,
                    context={
                        "straggler_count": machine.straggler_count,
                        "straggler_severity": machine.straggler_severity,
                        "busy_ratio": machine.busy_ratio,
                    },
                )
            )

    findings.extend(
        _recovery_findings(
            "timeline",
            attribution.recovery_seconds,
            attribution.total_seconds,
            thresholds,
        )
    )
    return findings


def _recovery_findings(
    subject: str,
    recovery_seconds: float,
    total_seconds: float,
    thresholds: AnomalyThresholds,
) -> List[Finding]:
    """Recovery-share finding for one run/cell, if above the bar."""
    if total_seconds <= 0:
        return []
    fraction = recovery_seconds / total_seconds
    if fraction < thresholds.recovery_fraction_warn:
        return []
    severity = (
        "critical"
        if fraction >= thresholds.recovery_fraction_critical
        else "warning"
    )
    return [
        Finding(
            kind="recovery-spike",
            severity=severity,
            subject=subject,
            message=(
                f"{subject}: {fraction:.1%} of wall time is recovery "
                f"overhead ({recovery_seconds:.4g}s of "
                f"{total_seconds:.4g}s)"
            ),
            value=fraction,
            threshold=thresholds.recovery_fraction_warn,
            context={
                "recovery_seconds": recovery_seconds,
                "total_seconds": total_seconds,
            },
        )
    ]


def _engine_of(record) -> str:
    """Engine tag for a sweep record (duck-typed, no experiments import)."""
    return "distdgl" if hasattr(record, "degraded_steps") else "distgnn"


def _cell_of(record) -> str:
    """Stable subject string for one sweep cell."""
    return (
        f"{_engine_of(record)}/{record.graph}/{record.partitioner}"
        f"/k={record.num_machines}/{record.params.label()}"
    )


def detect_record_anomalies(
    records: Sequence,
    thresholds: AnomalyThresholds = AnomalyThresholds(),
) -> List[Finding]:
    """Diagnose a set of sweep records.

    Flags epoch-time outliers across the partitioners of each
    (engine, graph, machines, params) group, per-cell recovery spikes,
    and cells whose telemetry shows one phase dominating wall time.
    """
    findings: List[Finding] = []

    groups: Dict[tuple, List] = {}
    for record in records:
        key = (
            _engine_of(record),
            record.graph,
            record.num_machines,
            record.params.label(),
        )
        groups.setdefault(key, []).append(record)

    for key in sorted(groups):
        group = sorted(groups[key], key=lambda r: r.partitioner)
        if len(group) >= max(3, thresholds.min_points):
            times = np.array([r.epoch_seconds for r in group])
            median = float(np.median(times))
            mad = float(np.median(np.abs(times - median)))
            mad = max(
                mad, thresholds.mad_floor_fraction * abs(median), 1e-12
            )
            scores = _MAD_TO_SIGMA * (times - median) / mad
            for record, score in zip(group, scores):
                if abs(score) < thresholds.z_threshold:
                    continue
                direction = "slower" if score > 0 else "faster"
                findings.append(
                    Finding(
                        kind="epoch-time-outlier",
                        severity="warning",
                        subject=_cell_of(record),
                        message=(
                            f"{record.partitioner} is an epoch-time "
                            f"outlier ({record.epoch_seconds:.4g}s, "
                            f"robust z = {score:.2f}, {direction} than "
                            f"the {len(group)}-partitioner group "
                            f"median {median:.4g}s)"
                        ),
                        value=float(abs(score)),
                        threshold=thresholds.z_threshold,
                        context={
                            "epoch_seconds": record.epoch_seconds,
                            "group_median_seconds": median,
                            "zscore": float(score),
                        },
                    )
                )

    for record in records:
        makespan = getattr(record, "makespan_seconds", 0.0)
        findings.extend(
            _recovery_findings(
                _cell_of(record),
                getattr(record, "recovery_seconds", 0.0),
                makespan,
                thresholds,
            )
        )
        metrics = getattr(record, "obs_metrics", None)
        if metrics:
            phase_totals = metrics.get("phase_seconds", {})
            total = sum(phase_totals.values())
            for name in sorted(phase_totals):
                seconds = phase_totals[name]
                fraction = seconds / total if total else 0.0
                if (
                    fraction >= thresholds.phase_dominance_fraction
                    and not is_recovery_phase(name)
                ):
                    findings.append(
                        Finding(
                            kind="phase-dominance",
                            severity="info",
                            subject=_cell_of(record),
                            message=(
                                f"{_cell_of(record)}: phase {name!r} "
                                f"accounts for {fraction:.1%} of "
                                "recorded phase time"
                            ),
                            value=fraction,
                            threshold=(
                                thresholds.phase_dominance_fraction
                            ),
                            context={
                                "phase": name,
                                "phase_seconds": seconds,
                                "total_seconds": total,
                            },
                        )
                    )
    return findings


def _snapshot_value(entry: Dict[str, object]) -> float:
    """The comparable scalar of one snapshot entry (sum for
    histograms/timers, value otherwise)."""
    if entry.get("kind") in ("histogram", "timer"):
        return float(entry.get("sum", 0.0))
    return float(entry.get("value", 0.0))


def detect_snapshot_anomalies(
    snapshot: Sequence[Dict[str, object]],
    thresholds: AnomalyThresholds = AnomalyThresholds(),
) -> List[Finding]:
    """Diagnose a metrics snapshot (``obs.snapshot()`` output).

    Flags cache-hit-rate collapses (feature cache and partition cache)
    and per-machine busy-time imbalance.
    """
    findings: List[Finding] = []
    totals: Dict[str, float] = {}
    busy: Dict[int, float] = {}
    for entry in snapshot:
        name = str(entry.get("name", ""))
        totals[name] = totals.get(name, 0.0) + _snapshot_value(entry)
        if name == "cluster.machine_busy_seconds":
            machine = int(entry.get("labels", {}).get("machine", 0))
            busy[machine] = busy.get(machine, 0.0) + float(
                entry.get("value", 0.0)
            )

    # The feature-cache hit counter is emitted even when no cache is
    # configured (it just stays 0), so zero hits there means "no cache",
    # not a collapse — it needs at least one hit as evidence a cache
    # exists. The partition cache's counters only appear when it runs,
    # so a zero hit rate there is a genuine collapse.
    for label, hits, total_requests, requires_hits in (
        (
            "feature-cache",
            totals.get("distdgl.cache_hits", 0.0),
            totals.get("distdgl.cache_hits", 0.0)
            + totals.get("distdgl.remote_input_vertices", 0.0),
            True,
        ),
        (
            "partition-cache",
            totals.get("partition_cache.hits", 0.0),
            totals.get("partition_cache.hits", 0.0)
            + totals.get("partition_cache.misses", 0.0),
            False,
        ),
    ):
        if total_requests < thresholds.cache_min_requests:
            continue
        if requires_hits and hits <= 0:
            continue
        rate = hits / total_requests
        if rate < thresholds.cache_hit_rate_floor:
            findings.append(
                Finding(
                    kind="cache-collapse",
                    severity="warning",
                    subject=label,
                    message=(
                        f"{label} hit rate collapsed to {rate:.1%} "
                        f"({hits:.0f} of {total_requests:.0f} requests; "
                        f"floor {thresholds.cache_hit_rate_floor:.0%})"
                    ),
                    value=rate,
                    threshold=thresholds.cache_hit_rate_floor,
                    context={
                        "hits": hits,
                        "requests": total_requests,
                    },
                )
            )

    if busy:
        values = np.array([busy[m] for m in sorted(busy)])
        mean = float(values.mean())
        if mean > 0:
            ratio = float(values.max()) / mean
            worst = int(sorted(busy)[int(values.argmax())])
            if ratio >= thresholds.busy_ratio_warn:
                findings.append(
                    Finding(
                        kind="machine-imbalance",
                        severity="warning",
                        subject=f"machine-{worst}",
                        message=(
                            f"machine {worst} is {ratio:.2f}x the mean "
                            "busy time across machines "
                            f"(threshold {thresholds.busy_ratio_warn}x)"
                        ),
                        value=ratio,
                        threshold=thresholds.busy_ratio_warn,
                        context={
                            "busy_seconds": float(values.max()),
                            "mean_busy_seconds": mean,
                            "num_machines": int(values.size),
                        },
                    )
                )

    lost = totals.get("cluster.lost_messages", 0.0)
    if lost > 0:
        findings.append(
            Finding(
                kind="lost-messages",
                severity="info",
                subject="cluster",
                message=(
                    f"{lost:.0f} injected lost messages were charged "
                    "to machine ports during the run"
                ),
                value=lost,
                threshold=0.0,
                context={"lost_messages": lost},
            )
        )
    return findings
