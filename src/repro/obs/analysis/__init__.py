"""Telemetry analysis & diagnosis: turn recorded telemetry into answers.

The obs layer (PR 3) *collects* — metric snapshots, JSONL traces,
timeline phase records. This package *diagnoses*: it consumes those
artifacts and produces structured findings the paper's analyses are
made of — which phase dominates epoch time per partitioner, who the
stragglers are, how much wall-time skew vs. compute vs. recovery costs,
and how two runs differ.

Four stages, composable or driven end-to-end by the CLI
(``repro obs analyze | diff | dashboard``):

* :mod:`.attribution` — critical-path & straggler attribution from
  :class:`~repro.cluster.timeline.Timeline` phase vectors and from
  sweep-record phase totals;
* :mod:`.anomaly` — deterministic rolling median/MAD outlier detection
  over phase-duration series, metric streams and sweep records;
* :mod:`.diff` — cross-run regression diffing of metric snapshots,
  traces and record sets;
* :mod:`.render` / :mod:`.dashboard` — a terminal summary and a
  self-contained single-file HTML dashboard (inline CSS/JS, embedded
  JSON, no network).

Everything here is deterministic: inputs are simulated quantities, the
detectors use seed-free robust statistics, and reports serialize with
sorted keys — analyzing the records of a serial sweep and of a parallel
sweep of the same config yields byte-identical JSON.

This subpackage is imported explicitly (``from repro.obs import
analysis``); ``repro.obs`` itself does not import it, so the obs fast
path stays import-light and free of cycles with ``repro.cluster``.
"""

from .anomaly import (
    AnomalyThresholds,
    detect_record_anomalies,
    detect_snapshot_anomalies,
    detect_timeline_anomalies,
    rolling_mad_zscores,
)
from .attribution import (
    MachineAttribution,
    PhaseAttribution,
    TimelineAttribution,
    attribute_phase_totals,
    attribute_timeline,
)
from .dashboard import render_dashboard
from .diff import RunDiff, diff_records, diff_runs, diff_snapshots
from .findings import SEVERITIES, AnalysisReport, Finding, sort_findings
from .load import RunData, load_run_inputs
from .report import build_analysis_report, per_partitioner_breakdown
from .render import render_diff_text, render_report_text
from .tradeoff import traffic_accuracy_tradeoff

__all__ = [
    # findings
    "SEVERITIES",
    "Finding",
    "AnalysisReport",
    "sort_findings",
    # attribution
    "PhaseAttribution",
    "MachineAttribution",
    "TimelineAttribution",
    "attribute_timeline",
    "attribute_phase_totals",
    # anomaly
    "AnomalyThresholds",
    "rolling_mad_zscores",
    "detect_timeline_anomalies",
    "detect_record_anomalies",
    "detect_snapshot_anomalies",
    # diff
    "RunDiff",
    "diff_snapshots",
    "diff_records",
    "diff_runs",
    # io + orchestration
    "RunData",
    "load_run_inputs",
    "build_analysis_report",
    "per_partitioner_breakdown",
    "traffic_accuracy_tradeoff",
    # renderers
    "render_report_text",
    "render_diff_text",
    "render_dashboard",
]
