"""Self-contained single-file HTML dashboard for analysis reports.

:func:`render_dashboard` turns an :class:`~.findings.AnalysisReport`
dict into one HTML file with inline CSS/JS and the report JSON embedded
in a ``<script type="application/json">`` block — no network requests,
no external assets, openable from disk. The output is deterministic:
identical reports render byte-identical HTML.

Views: stat tiles (headline numbers), phase-stacked epoch-time bars per
partitioner (the paper's Figs. 19/21/22 shape), a per-machine heatmap
(busy time, traffic, memory — the straggler/balance view), per-engine
resource depth (the ``src x dst`` traffic-matrix heatmap, per-category
memory peaks and the per-phase memory-watermark timeline), the
traffic-vs-accuracy tradeoff table for comm sweeps (wire bytes, saved
fraction and accuracy-proxy error per comm config, Pareto-frontier
rows marked), the findings list, and a plain-table fallback of every
chart's data.

The palette follows the repo's chart conventions: a fixed-order
categorical palette for phase identity (9th phase onward folds into
"other"), a single-hue sequential ramp for heatmap magnitude, reserved
status colors (with icon + text label, never color alone) for finding
severities, and light/dark variants selected via CSS custom properties.
"""

from __future__ import annotations

import json
from typing import Dict

__all__ = ["render_dashboard"]

#: Fixed categorical slot order (light, dark) — assigned to phases by
#: first appearance, never cycled; overflow folds into "other".
_CATEGORICAL = [
    ("#2a78d6", "#3987e5"),  # blue
    ("#eb6834", "#d95926"),  # orange
    ("#1baf7a", "#199e70"),  # aqua
    ("#eda100", "#c98500"),  # yellow
    ("#e87ba4", "#d55181"),  # magenta
    ("#008300", "#008300"),  # green
    ("#4a3aa7", "#9085e9"),  # violet
    ("#e34948", "#e66767"),  # red
]

#: Single-hue sequential ramp (blue), light -> dark, for heatmap cells.
_SEQUENTIAL = [
    "#cde2fb", "#9ec5f4", "#6da7ec", "#3987e5",
    "#256abf", "#184f95", "#0d366b",
]

_CSS = """
:root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --text-muted: #898781;
  --grid: #e1e0d9;
  --baseline: #c3c2b7;
  --border: rgba(11, 11, 11, 0.10);
  --status-critical: #d03b3b;
  --status-warning: #fab219;
  --status-good: #0ca30c;
}
:root[data-theme="dark"] {
  color-scheme: dark;
  --surface-1: #1a1a19;
  --page: #0d0d0d;
  --text-primary: #ffffff;
  --text-secondary: #c3c2b7;
  --text-muted: #898781;
  --grid: #2c2c2a;
  --baseline: #383835;
  --border: rgba(255, 255, 255, 0.10);
}
@media (prefers-color-scheme: dark) {
  :root:not([data-theme="light"]) {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted: #898781;
    --grid: #2c2c2a;
    --baseline: #383835;
    --border: rgba(255, 255, 255, 0.10);
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px;
  background: var(--page); color: var(--text-primary);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  font-size: 14px; line-height: 1.45;
}
main { max-width: 1080px; margin: 0 auto; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 0 0 12px; }
.subtitle { color: var(--text-secondary); margin: 0 0 20px; }
.card {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 10px; padding: 16px 18px; margin: 0 0 18px;
}
.tiles { display: flex; flex-wrap: wrap; gap: 18px; }
.tile { min-width: 150px; flex: 1; }
.tile .label { color: var(--text-secondary); font-size: 12px; }
.tile .value { font-size: 26px; font-weight: 600; margin-top: 2px; }
.tile .note { color: var(--text-muted); font-size: 12px; margin-top: 2px; }
.row { display: flex; align-items: center; gap: 10px; margin: 0 0 8px; }
.row .name {
  width: 110px; text-align: right; color: var(--text-secondary);
  font-size: 12px; overflow: hidden; text-overflow: ellipsis;
  white-space: nowrap; flex: none;
}
.row .bar {
  flex: 1; display: flex; height: 20px; gap: 2px;
  background: transparent;
}
.row .seg { height: 100%; }
.row .seg:last-child { border-radius: 0 4px 4px 0; }
.row .total {
  width: 78px; color: var(--text-muted); font-size: 12px; flex: none;
  font-variant-numeric: tabular-nums;
}
.legend {
  display: flex; flex-wrap: wrap; gap: 12px; margin: 10px 0 0;
  color: var(--text-secondary); font-size: 12px;
}
.legend .key { display: flex; align-items: center; gap: 5px; }
.legend .swatch {
  width: 10px; height: 10px; border-radius: 3px; display: inline-block;
}
table { border-collapse: collapse; width: 100%; font-size: 13px; }
th {
  text-align: left; color: var(--text-secondary); font-weight: 500;
  border-bottom: 1px solid var(--baseline); padding: 4px 8px;
}
td {
  padding: 4px 8px; border-bottom: 1px solid var(--grid);
  font-variant-numeric: tabular-nums;
}
td.cell { text-align: center; border-radius: 3px; }
.finding { display: flex; gap: 10px; padding: 7px 0; align-items: baseline;
  border-bottom: 1px solid var(--grid); }
.finding:last-child { border-bottom: none; }
.sev {
  font-size: 11px; font-weight: 600; flex: none; width: 86px;
  white-space: nowrap;
}
.sev.critical { color: var(--status-critical); }
.sev.warning { color: var(--status-warning); }
.sev.info { color: var(--text-muted); }
.finding .kind { color: var(--text-secondary); flex: none; width: 160px;
  font-size: 12px; overflow: hidden; text-overflow: ellipsis; }
.finding .msg { flex: 1; }
.empty { color: var(--text-muted); font-style: italic; }
details summary { cursor: pointer; color: var(--text-secondary);
  font-size: 13px; margin-bottom: 8px; }
#tooltip {
  position: fixed; pointer-events: none; display: none; z-index: 10;
  background: var(--surface-1); color: var(--text-primary);
  border: 1px solid var(--border); border-radius: 6px;
  padding: 6px 9px; font-size: 12px; max-width: 320px;
  box-shadow: 0 2px 10px rgba(0, 0, 0, 0.18);
}
#theme-toggle {
  float: right; background: var(--surface-1); color: var(--text-secondary);
  border: 1px solid var(--border); border-radius: 6px; padding: 4px 10px;
  cursor: pointer; font-size: 12px;
}
"""

_JS = """
'use strict';
var report = JSON.parse(
  document.getElementById('report-data').textContent);
var CATEGORICAL = JSON.parse(
  document.getElementById('palette-data').textContent);
var SEQUENTIAL = JSON.parse(
  document.getElementById('ramp-data').textContent);

function isDark() {
  var forced = document.documentElement.getAttribute('data-theme');
  if (forced) return forced === 'dark';
  return window.matchMedia &&
    window.matchMedia('(prefers-color-scheme: dark)').matches;
}
function seriesColor(slot) {
  return CATEGORICAL[slot][isDark() ? 1 : 0];
}

var tooltip = document.getElementById('tooltip');
function showTip(evt, text) {
  tooltip.textContent = text;
  tooltip.style.display = 'block';
  var x = Math.min(evt.clientX + 14, window.innerWidth - 330);
  tooltip.style.left = x + 'px';
  tooltip.style.top = (evt.clientY + 14) + 'px';
}
function hideTip() { tooltip.style.display = 'none'; }
function hover(el, textFn) {
  el.addEventListener('mousemove', function (evt) {
    showTip(evt, textFn());
  });
  el.addEventListener('mouseleave', hideTip);
}

function el(tag, cls, parent) {
  var node = document.createElement(tag);
  if (cls) node.className = cls;
  if (parent) parent.appendChild(node);
  return node;
}
function fmtSeconds(v) { return v.toPrecision(4) + 's'; }
function fmtPct(v) { return (100 * v).toFixed(1) + '%'; }

// Global phase -> slot assignment: fixed order of first appearance
// across every engine chart; past the palette, phases fold to "other".
function assignPhaseSlots() {
  var perPartitioner = report.attribution.per_partitioner || {};
  var order = [];
  Object.keys(perPartitioner).sort().forEach(function (engine) {
    var table = perPartitioner[engine];
    Object.keys(table).sort().forEach(function (partitioner) {
      Object.keys(table[partitioner].phase_seconds).forEach(
        function (phase) {
          if (order.indexOf(phase) < 0) order.push(phase);
        });
    });
  });
  var slots = {};
  order.forEach(function (phase, i) {
    slots[phase] = i < CATEGORICAL.length - 1
      ? i : CATEGORICAL.length - 1;  // last slot doubles as "other"
  });
  return { order: order, slots: slots };
}

function renderStacks() {
  var host = document.getElementById('stacks');
  var perPartitioner = report.attribution.per_partitioner || {};
  var engines = Object.keys(perPartitioner).sort();
  if (!engines.length) {
    el('p', 'empty', host).textContent =
      'No sweep records loaded - stacked phase bars need record JSON.';
    return;
  }
  var assignment = assignPhaseSlots();
  engines.forEach(function (engine) {
    var table = perPartitioner[engine];
    var card = el('div', 'card', host);
    el('h2', null, card).textContent =
      engine + ' - mean epoch seconds by partitioner, stacked by phase';
    var names = Object.keys(table).sort(function (a, b) {
      return table[a].mean_epoch_seconds - table[b].mean_epoch_seconds;
    });
    var maxTotal = 0;
    names.forEach(function (name) {
      maxTotal = Math.max(maxTotal, table[name].mean_epoch_seconds);
    });
    names.forEach(function (name) {
      var entry = table[name];
      var row = el('div', 'row', card);
      el('div', 'name', row).textContent = name;
      var bar = el('div', 'bar', row);
      var phases = Object.keys(entry.phase_seconds).sort(
        function (a, b) {
          return assignment.order.indexOf(a) -
            assignment.order.indexOf(b);
        });
      phases.forEach(function (phase) {
        var seconds = entry.phase_seconds[phase];
        if (seconds <= 0) return;
        var seg = el('div', 'seg', bar);
        seg.style.width =
          (100 * seconds / (maxTotal || 1)) + '%';
        seg.style.background =
          seriesColor(assignment.slots[phase]);
        hover(seg, function () {
          return name + ' / ' + phase + ': ' + fmtSeconds(seconds) +
            ' (' + fmtPct(entry.phase_fractions[phase] || 0) +
            ' of epoch, ' + entry.cells + ' cells)';
        });
      });
      el('div', 'total', row).textContent =
        fmtSeconds(entry.mean_epoch_seconds);
    });
    var legend = el('div', 'legend', card);
    assignment.order.forEach(function (phase) {
      var inEngine = names.some(function (name) {
        return phase in table[name].phase_seconds;
      });
      if (!inEngine) return;
      var key = el('span', 'key', legend);
      var swatch = el('span', 'swatch', key);
      swatch.style.background = seriesColor(assignment.slots[phase]);
      key.appendChild(document.createTextNode(phase));
    });
  });
}

var HEAT_COLUMNS = [
  ['busy_seconds', 'busy s'],
  ['bytes_sent', 'sent bytes'],
  ['bytes_received', 'received bytes'],
  ['lost_messages', 'lost msgs'],
  ['memory_peak_bytes', 'peak mem bytes'],
];

function heatColor(fraction) {
  var steps = SEQUENTIAL.length;
  var i = Math.min(steps - 1, Math.floor(fraction * steps));
  return SEQUENTIAL[i];
}

function renderHeatmap() {
  var host = document.getElementById('heatmap');
  var machines = report.attribution.machines || [];
  if (!machines.length) {
    el('p', 'empty', host).textContent =
      'No per-machine metrics loaded - the straggler heatmap needs a ' +
      'metrics snapshot (run with --obs-level metrics and an obs out).';
    return;
  }
  var columns = HEAT_COLUMNS.filter(function (col) {
    return machines.some(function (row) { return col[0] in row; });
  });
  var table = el('table', null, host);
  var head = el('tr', null, el('thead', null, table));
  el('th', null, head).textContent = 'machine';
  columns.forEach(function (col) {
    el('th', null, head).textContent = col[1];
  });
  var maxima = {};
  columns.forEach(function (col) {
    maxima[col[0]] = Math.max.apply(null, machines.map(function (row) {
      return row[col[0]] || 0;
    }));
  });
  var body = el('tbody', null, table);
  machines.forEach(function (row) {
    var tr = el('tr', null, body);
    el('td', null, tr).textContent = 'machine-' + row.machine;
    columns.forEach(function (col) {
      var value = row[col[0]] || 0;
      var fraction = maxima[col[0]] ? value / maxima[col[0]] : 0;
      var td = el('td', 'cell', tr);
      td.style.background = heatColor(fraction);
      td.style.color = fraction > 0.45 ? '#ffffff' : '#0b0b0b';
      td.textContent = value.toPrecision(3);
      hover(td, function () {
        return 'machine-' + row.machine + ' ' + col[1] + ': ' +
          value.toPrecision(6) + ' (' + fmtPct(fraction) +
          ' of busiest)';
      });
    });
  });
}

function fmtBytes(v) {
  if (v >= 1e9) return (v / 1e9).toPrecision(3) + ' GB';
  if (v >= 1e6) return (v / 1e6).toPrecision(3) + ' MB';
  if (v >= 1e3) return (v / 1e3).toPrecision(3) + ' kB';
  return v.toPrecision(3) + ' B';
}

// Generic heat table: rows x cols of magnitudes on the sequential
// ramp, each cell tooltipped with its exact value.
function heatTable(host, rowLabels, colLabels, values, cellText) {
  var table = el('table', null, host);
  var head = el('tr', null, el('thead', null, table));
  el('th', null, head).textContent = '';
  colLabels.forEach(function (label) {
    el('th', null, head).textContent = label;
  });
  var max = 0;
  values.forEach(function (row) {
    row.forEach(function (v) { max = Math.max(max, v); });
  });
  var body = el('tbody', null, table);
  rowLabels.forEach(function (label, i) {
    var tr = el('tr', null, body);
    el('td', null, tr).textContent = label;
    values[i].forEach(function (value, j) {
      var fraction = max ? value / max : 0;
      var td = el('td', 'cell', tr);
      td.style.background = value > 0 ? heatColor(fraction)
        : 'transparent';
      td.style.color = fraction > 0.45 ? '#ffffff'
        : 'var(--text-primary)';
      td.textContent = value > 0 ? cellText(value) : '\\u00b7';
      hover(td, function () {
        return label + ' \\u2192 ' + colLabels[j] + ': ' +
          cellText(value) + ' (' + fmtPct(fraction) + ' of max)';
      });
    });
  });
}

function renderResources() {
  var host = document.getElementById('resources');
  var resources = report.attribution.resources || {};
  var engines = Object.keys(resources).sort();
  if (!engines.length) {
    el('p', 'empty', host).textContent =
      'No resource-depth telemetry loaded - the traffic matrix and ' +
      'memory timeline need records swept with --obs-level metrics.';
    return;
  }
  engines.forEach(function (engine) {
    var entry = resources[engine];
    var machineLabels = [];
    for (var m = 0; m < entry.k; m++) machineLabels.push('m' + m);

    var card = el('div', 'card', host);
    el('h2', null, card).textContent = engine +
      ' - traffic matrix, bytes src \\u2192 dst (k=' + entry.k +
      ', summed over ' + entry.cells + ' cells)';
    heatTable(card, machineLabels, machineLabels,
      entry.traffic_matrix, fmtBytes);

    var categories = Object.keys(entry.memory_category_peaks || {});
    if (categories.length) {
      card = el('div', 'card', host);
      el('h2', null, card).textContent = engine +
        ' - per-machine memory peaks by ledger category (k=' +
        entry.k + ')';
      heatTable(card, categories, machineLabels,
        categories.map(function (c) {
          return entry.memory_category_peaks[c];
        }), fmtBytes);
    }

    var phases = Object.keys(entry.memory_timeline || {});
    if (phases.length) {
      card = el('div', 'card', host);
      el('h2', null, card).textContent = engine +
        ' - memory watermark by phase (k=' + entry.k +
        '; flat when all allocation happens at construction)';
      heatTable(card, phases, machineLabels,
        phases.map(function (p) { return entry.memory_timeline[p]; }),
        fmtBytes);
    }
  });
}

function renderTradeoff() {
  var host = document.getElementById('tradeoff');
  var tradeoff = report.attribution.comm_tradeoff || {};
  var engines = Object.keys(tradeoff).sort();
  if (!engines.length) {
    el('p', 'empty', host).textContent =
      'No comm sweep loaded - the traffic-vs-accuracy tradeoff needs ' +
      'records swept over --compression / --refresh-interval / ' +
      '--cache-fraction.';
    return;
  }
  engines.forEach(function (engine) {
    var byPartitioner = tradeoff[engine];
    var card = el('div', 'card', host);
    el('h2', null, card).textContent = engine +
      ' - traffic vs accuracy proxy by comm config ' +
      '(\\u2605 = Pareto frontier)';
    var table = el('table', null, card);
    var head = el('tr', null, el('thead', null, table));
    ['partitioner', 'comm config', 'wire/epoch', 'saved',
     'codec s/epoch', 'accuracy error', 'frontier'].forEach(
      function (title) { el('th', null, head).textContent = title; });
    var maxWire = 0;
    Object.keys(byPartitioner).forEach(function (name) {
      byPartitioner[name].forEach(function (point) {
        maxWire = Math.max(maxWire, point.wire_bytes);
      });
    });
    var body = el('tbody', null, table);
    Object.keys(byPartitioner).sort().forEach(function (name) {
      byPartitioner[name].forEach(function (point) {
        var tr = el('tr', null, body);
        el('td', null, tr).textContent = name;
        el('td', null, tr).textContent = point.comm;
        var wire = el('td', 'cell', tr);
        var fraction = maxWire ? point.wire_bytes / maxWire : 0;
        wire.style.background = point.wire_bytes > 0
          ? heatColor(fraction) : 'transparent';
        wire.style.color = fraction > 0.45 ? '#ffffff'
          : 'var(--text-primary)';
        wire.textContent = fmtBytes(point.wire_bytes);
        el('td', null, tr).textContent = fmtPct(point.saved_fraction);
        el('td', null, tr).textContent =
          point.codec_seconds.toPrecision(3);
        el('td', null, tr).textContent =
          point.accuracy_proxy_error.toPrecision(3);
        el('td', null, tr).textContent =
          point.on_frontier ? '\\u2605 yes' : '';
        hover(tr, function () {
          return name + ' [' + point.comm + ']: ' +
            fmtBytes(point.wire_bytes) + ' on the wire, ' +
            fmtBytes(point.saved_bytes) + ' saved per epoch over ' +
            point.cells + ' cells';
        });
      });
    });
  });
}

var SEVERITY_ICONS = { critical: '\\u25b2', warning: '\\u25c6',
  info: '\\u25cb' };

function renderFindings() {
  var host = document.getElementById('findings');
  var findings = report.findings || [];
  if (!findings.length) {
    el('p', 'empty', host).textContent =
      'No findings - nothing anomalous detected.';
    return;
  }
  findings.forEach(function (finding) {
    var row = el('div', 'finding', host);
    var sev = el('span', 'sev ' + finding.severity, row);
    sev.textContent = SEVERITY_ICONS[finding.severity] + ' ' +
      finding.severity.toUpperCase();
    el('span', 'kind', row).textContent = finding.kind;
    el('span', 'msg', row).textContent = finding.message;
    hover(row, function () {
      return finding.subject + ' - value ' + finding.value +
        (finding.threshold ? ', threshold ' + finding.threshold : '');
    });
  });
}

function renderPhaseTable() {
  var host = document.getElementById('phase-table');
  var phases = (report.attribution.phase_mix || {}).phases || [];
  if (!phases.length) {
    el('p', 'empty', host).textContent = 'No phase telemetry loaded.';
    return;
  }
  var table = el('table', null, host);
  var head = el('tr', null, el('thead', null, table));
  ['phase', 'total s', 'share', 'recovery'].forEach(function (title) {
    el('th', null, head).textContent = title;
  });
  var body = el('tbody', null, table);
  phases.forEach(function (phase) {
    var tr = el('tr', null, body);
    el('td', null, tr).textContent = phase.name;
    el('td', null, tr).textContent = phase.total_seconds.toPrecision(5);
    el('td', null, tr).textContent = fmtPct(phase.fraction);
    el('td', null, tr).textContent = phase.recovery ? 'yes' : '';
  });
}

function renderTiles() {
  var host = document.getElementById('tiles');
  var summary = report.summary || {};
  var source = report.source || {};
  var tiles = [
    ['records analyzed', String(source.num_records || 0),
     (source.num_metrics || 0) + ' metric series, ' +
     (source.num_events || 0) + ' trace events'],
    ['total phase time',
     fmtSeconds(summary.total_phase_seconds || 0), 'simulated'],
    ['recovery share', fmtPct(summary.recovery_fraction || 0),
     'of phase time'],
    ['findings', String(summary.num_findings || 0),
     (summary.by_severity || {}).critical + ' critical, ' +
     (summary.by_severity || {}).warning + ' warning'],
  ];
  tiles.forEach(function (spec) {
    var tile = el('div', 'tile', host);
    el('div', 'label', tile).textContent = spec[0];
    el('div', 'value', tile).textContent = spec[1];
    el('div', 'note', tile).textContent = spec[2];
  });
}

document.getElementById('theme-toggle').addEventListener(
  'click', function () {
    var root = document.documentElement;
    var next = isDark() ? 'light' : 'dark';
    root.setAttribute('data-theme', next);
    rerender();
  });

function rerender() {
  ['stacks', 'heatmap', 'resources', 'tradeoff', 'findings',
   'phase-table', 'tiles'].forEach(
    function (id) { document.getElementById(id).innerHTML = ''; });
  renderTiles();
  renderStacks();
  renderHeatmap();
  renderResources();
  renderTradeoff();
  renderFindings();
  renderPhaseTable();
}
rerender();
if (window.matchMedia) {
  window.matchMedia('(prefers-color-scheme: dark)')
    .addEventListener('change', rerender);
}
"""


def _embed_json(payload: object) -> str:
    """Canonical JSON safe for inline ``<script>`` embedding."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return text.replace("</", "<\\/")


def render_dashboard(
    report: Dict[str, object], title: str = "Telemetry analysis"
) -> str:
    """Render an analysis-report dict as one self-contained HTML page."""
    source = report.get("source", {})
    label = str(source.get("label", ""))
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{title}</title>
<style>{_CSS}</style>
</head>
<body>
<main>
  <button id="theme-toggle" type="button">light/dark</button>
  <h1>{title}</h1>
  <p class="subtitle">{label}</p>
  <div class="card tiles" id="tiles"></div>
  <div id="stacks"></div>
  <div class="card">
    <h2>Per-machine balance heatmap (straggler view)</h2>
    <div id="heatmap"></div>
  </div>
  <div id="resources"></div>
  <div id="tradeoff"></div>
  <div class="card">
    <h2>Findings</h2>
    <div id="findings"></div>
  </div>
  <div class="card">
    <details open>
      <summary>Phase table (all data, no color required)</summary>
      <div id="phase-table"></div>
    </details>
  </div>
</main>
<div id="tooltip" role="status"></div>
<script type="application/json" id="report-data">{_embed_json(report)}</script>
<script type="application/json" id="palette-data">{_embed_json(_CATEGORICAL)}</script>
<script type="application/json" id="ramp-data">{_embed_json(_SEQUENTIAL)}</script>
<script>{_JS}</script>
</body>
</html>
"""
