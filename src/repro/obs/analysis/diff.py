"""Cross-run regression diffing.

Compares two runs' telemetry — metric snapshots, sweep records, trace
event mixes — and emits a structured diff: metrics that appeared or
vanished, values that moved beyond configurable tolerances, and shifts
in the phase mix. Two uses, same machinery:

* **comparing partitioners / configs** (the paper's primary question):
  diff a METIS sweep against a Random sweep and read where the time
  went;
* **gating refactors**: a serial sweep diffed against a parallel sweep
  of the same config — or any run against itself — must diff *clean*
  (no regressions), which the CLI ``repro obs diff`` checks.

The simulator is deterministic, so for equal configs any delta beyond
float tolerance is a real behaviour change, not noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from .findings import Finding
from .load import RunData

__all__ = ["DiffTolerances", "RunDiff", "diff_snapshots", "diff_records", "diff_runs"]


@dataclass(frozen=True)
class DiffTolerances:
    """Relative tolerances for value comparisons.

    ``rel`` is the relative delta (against the larger magnitude) below
    which a change is ignored; ``abs_floor`` ignores absolute drift in
    values that are essentially zero on both sides.
    """

    rel: float = 1e-9
    abs_floor: float = 1e-12
    #: L1 distance between phase-mix fraction vectors that counts as a
    #: phase-mix shift worth flagging.
    phase_mix_shift: float = 0.02

    def exceeded(self, a: float, b: float) -> bool:
        """True when ``a -> b`` moves beyond the tolerances."""
        delta = abs(b - a)
        if delta <= self.abs_floor:
            return False
        scale = max(abs(a), abs(b))
        return delta > self.rel * scale


def _rel_delta(a: float, b: float) -> float:
    """Relative delta of ``a -> b`` against the larger magnitude."""
    scale = max(abs(a), abs(b))
    return abs(b - a) / scale if scale else 0.0


@dataclass
class RunDiff:
    """Structured result of diffing run ``a`` against run ``b``."""

    label_a: str = "a"
    label_b: str = "b"
    #: Metric series present only in b / only in a (sorted key strings).
    added_metrics: List[str] = field(default_factory=list)
    removed_metrics: List[str] = field(default_factory=list)
    #: Value moves beyond tolerance: {metric, field, a, b, rel_delta}.
    changed_metrics: List[Dict[str, object]] = field(default_factory=list)
    #: Phase-mix comparison: per-phase fractions plus the L1 shift.
    phase_mix: Dict[str, object] = field(default_factory=dict)
    #: Sweep cells present only in one run / changed beyond tolerance.
    added_cells: List[str] = field(default_factory=list)
    removed_cells: List[str] = field(default_factory=list)
    changed_cells: List[Dict[str, object]] = field(default_factory=list)
    #: Trace event-count mix per event kind, when both runs had traces.
    event_mix: Dict[str, object] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        """True when nothing regressed: no added/removed/changed series,
        no cell drift, no phase-mix shift beyond tolerance."""
        return not (
            self.added_metrics
            or self.removed_metrics
            or self.changed_metrics
            or self.added_cells
            or self.removed_cells
            or self.changed_cells
            or self.phase_mix.get("shifted", False)
        )

    def findings(self) -> List[Finding]:
        """The diff re-expressed as typed findings (for reports)."""
        results: List[Finding] = []
        for name in self.added_metrics:
            results.append(
                Finding(
                    kind="metric-added",
                    severity="info",
                    subject=name,
                    message=f"metric series {name} only in {self.label_b}",
                )
            )
        for name in self.removed_metrics:
            results.append(
                Finding(
                    kind="metric-removed",
                    severity="warning",
                    subject=name,
                    message=(
                        f"metric series {name} vanished "
                        f"({self.label_a} -> {self.label_b})"
                    ),
                )
            )
        for change in self.changed_metrics:
            results.append(
                Finding(
                    kind="metric-regression",
                    severity="warning",
                    subject=str(change["metric"]),
                    message=(
                        f"{change['metric']} {change['field']}: "
                        f"{change['a']:.6g} -> {change['b']:.6g} "
                        f"({change['rel_delta']:.2%} relative change)"
                    ),
                    value=float(change["rel_delta"]),
                    context=dict(change),
                )
            )
        for change in self.changed_cells:
            results.append(
                Finding(
                    kind="cell-regression",
                    severity="warning",
                    subject=str(change["cell"]),
                    message=(
                        f"{change['cell']} {change['field']}: "
                        f"{change['a']:.6g} -> {change['b']:.6g} "
                        f"({change['rel_delta']:.2%} relative change)"
                    ),
                    value=float(change["rel_delta"]),
                    context=dict(change),
                )
            )
        for cell in self.added_cells:
            results.append(
                Finding(
                    kind="cell-added",
                    severity="info",
                    subject=cell,
                    message=f"sweep cell only in {self.label_b}: {cell}",
                )
            )
        for cell in self.removed_cells:
            results.append(
                Finding(
                    kind="cell-removed",
                    severity="warning",
                    subject=cell,
                    message=f"sweep cell vanished: {cell}",
                )
            )
        if self.phase_mix.get("shifted", False):
            results.append(
                Finding(
                    kind="phase-mix-shift",
                    severity="warning",
                    subject="phase-mix",
                    message=(
                        "phase mix shifted by "
                        f"{self.phase_mix['l1_shift']:.2%} (L1) between "
                        f"{self.label_a} and {self.label_b}"
                    ),
                    value=float(self.phase_mix["l1_shift"]),
                    threshold=float(self.phase_mix["threshold"]),
                )
            )
        return results

    def to_dict(self) -> Dict[str, object]:
        """Plain JSON-able dict (canonical ordering)."""
        return {
            "label_a": self.label_a,
            "label_b": self.label_b,
            "clean": self.clean,
            "added_metrics": sorted(self.added_metrics),
            "removed_metrics": sorted(self.removed_metrics),
            "changed_metrics": self.changed_metrics,
            "phase_mix": self.phase_mix,
            "added_cells": sorted(self.added_cells),
            "removed_cells": sorted(self.removed_cells),
            "changed_cells": self.changed_cells,
            "event_mix": self.event_mix,
        }


def _metric_key(entry: Dict[str, object]) -> str:
    """Stable series key: ``name{label=value,...}``."""
    labels = entry.get("labels", {}) or {}
    if not labels:
        return str(entry["name"])
    inner = ",".join(
        f"{k}={v}" for k, v in sorted(labels.items())
    )
    return f"{entry['name']}{{{inner}}}"


#: Which value fields are compared, per instrument kind.
_COMPARED_FIELDS = {
    "counter": ("value",),
    "gauge": ("value", "max"),
    "histogram": ("count", "sum"),
    "timer": ("count", "sum"),
}


def _index_snapshot(
    snapshot: Sequence[Dict[str, object]]
) -> Dict[str, Dict[str, object]]:
    """Index snapshot entries by series key."""
    return {_metric_key(entry): entry for entry in snapshot}


def _phase_fractions(
    snapshot: Sequence[Dict[str, object]]
) -> Dict[str, float]:
    """Phase-name -> fraction of total phase seconds, from the
    ``cluster.phase_seconds`` series of a snapshot."""
    totals: Dict[str, float] = {}
    for entry in snapshot:
        if entry.get("name") != "cluster.phase_seconds":
            continue
        phase = str(entry.get("labels", {}).get("phase", ""))
        totals[phase] = totals.get(phase, 0.0) + float(
            entry.get("sum", 0.0)
        )
    total = sum(totals.values())
    if not total:
        return {}
    return {phase: seconds / total for phase, seconds in totals.items()}


def _diff_phase_mix(
    fractions_a: Dict[str, float],
    fractions_b: Dict[str, float],
    tolerances: DiffTolerances,
) -> Dict[str, object]:
    """Per-phase fraction comparison plus the L1 shift."""
    if not fractions_a and not fractions_b:
        return {}
    phases = sorted(set(fractions_a) | set(fractions_b))
    table = {
        phase: {
            "a_fraction": fractions_a.get(phase, 0.0),
            "b_fraction": fractions_b.get(phase, 0.0),
        }
        for phase in phases
    }
    l1 = sum(
        abs(row["b_fraction"] - row["a_fraction"])
        for row in table.values()
    )
    return {
        "phases": table,
        "l1_shift": l1,
        "threshold": tolerances.phase_mix_shift,
        "shifted": l1 > tolerances.phase_mix_shift,
    }


def diff_snapshots(
    snapshot_a: Sequence[Dict[str, object]],
    snapshot_b: Sequence[Dict[str, object]],
    tolerances: DiffTolerances = DiffTolerances(),
    label_a: str = "a",
    label_b: str = "b",
) -> RunDiff:
    """Diff two metric snapshots (``obs.snapshot()`` output)."""
    diff = RunDiff(label_a=label_a, label_b=label_b)
    index_a = _index_snapshot(snapshot_a)
    index_b = _index_snapshot(snapshot_b)
    diff.added_metrics = sorted(set(index_b) - set(index_a))
    diff.removed_metrics = sorted(set(index_a) - set(index_b))
    for key in sorted(set(index_a) & set(index_b)):
        entry_a, entry_b = index_a[key], index_b[key]
        for fieldname in _COMPARED_FIELDS.get(
            str(entry_a.get("kind")), ("value",)
        ):
            a = float(entry_a.get(fieldname, 0.0))
            b = float(entry_b.get(fieldname, 0.0))
            if tolerances.exceeded(a, b):
                diff.changed_metrics.append(
                    {
                        "metric": key,
                        "field": fieldname,
                        "a": a,
                        "b": b,
                        "rel_delta": _rel_delta(a, b),
                    }
                )
    diff.phase_mix = _diff_phase_mix(
        _phase_fractions(snapshot_a),
        _phase_fractions(snapshot_b),
        tolerances,
    )
    return diff


#: Record fields compared per sweep cell (both engines share these).
#: ``partitioning_seconds`` is deliberately absent: it is a wall-clock
#: measurement and never comparable across runs.
_CELL_FIELDS = (
    "epoch_seconds",
    "network_bytes",
    "makespan_seconds",
    "recovery_seconds",
)


def _cell_key(record) -> str:
    """Stable identity of one sweep cell across runs."""
    engine = "distdgl" if hasattr(record, "degraded_steps") else "distgnn"
    return (
        f"{engine}/{record.graph}/{record.partitioner}"
        f"/k={record.num_machines}/{record.params.label()}"
    )


def diff_records(
    records_a: Sequence,
    records_b: Sequence,
    tolerances: DiffTolerances = DiffTolerances(),
    label_a: str = "a",
    label_b: str = "b",
) -> RunDiff:
    """Diff two sweep record sets, cell by cell."""
    diff = RunDiff(label_a=label_a, label_b=label_b)
    index_a = {_cell_key(r): r for r in records_a}
    index_b = {_cell_key(r): r for r in records_b}
    diff.added_cells = sorted(set(index_b) - set(index_a))
    diff.removed_cells = sorted(set(index_a) - set(index_b))
    for key in sorted(set(index_a) & set(index_b)):
        record_a, record_b = index_a[key], index_b[key]
        for fieldname in _CELL_FIELDS:
            a = float(getattr(record_a, fieldname, 0.0) or 0.0)
            b = float(getattr(record_b, fieldname, 0.0) or 0.0)
            if tolerances.exceeded(a, b):
                diff.changed_cells.append(
                    {
                        "cell": key,
                        "field": fieldname,
                        "a": a,
                        "b": b,
                        "rel_delta": _rel_delta(a, b),
                    }
                )

    fractions = []
    for records in (records_a, records_b):
        totals: Dict[str, float] = {}
        for record in records:
            metrics = getattr(record, "obs_metrics", None) or {}
            for phase, seconds in metrics.get(
                "phase_seconds", {}
            ).items():
                totals[phase] = totals.get(phase, 0.0) + float(seconds)
        total = sum(totals.values())
        fractions.append(
            {p: s / total for p, s in totals.items()} if total else {}
        )
    diff.phase_mix = _diff_phase_mix(
        fractions[0], fractions[1], tolerances
    )
    return diff


def _event_counts(events: Sequence[Dict[str, object]]) -> Dict[str, int]:
    """Event count per event kind."""
    counts: Dict[str, int] = {}
    for event in events:
        kind = str(event.get("kind", ""))
        counts[kind] = counts.get(kind, 0) + 1
    return counts


def diff_runs(
    run_a: RunData,
    run_b: RunData,
    tolerances: DiffTolerances = DiffTolerances(),
) -> RunDiff:
    """Diff two loaded runs across every artifact both sides carry."""
    label_a = run_a.label or "a"
    label_b = run_b.label or "b"
    parts: List[Tuple[RunDiff, bool]] = []
    if run_a.metrics or run_b.metrics:
        parts.append(
            (
                diff_snapshots(
                    run_a.metrics, run_b.metrics, tolerances,
                    label_a, label_b,
                ),
                True,
            )
        )
    if run_a.records or run_b.records:
        parts.append(
            (
                diff_records(
                    run_a.records, run_b.records, tolerances,
                    label_a, label_b,
                ),
                not any(p[1] for p in parts),
            )
        )

    merged = RunDiff(label_a=label_a, label_b=label_b)
    for part, use_phase_mix in parts:
        merged.added_metrics.extend(part.added_metrics)
        merged.removed_metrics.extend(part.removed_metrics)
        merged.changed_metrics.extend(part.changed_metrics)
        merged.added_cells.extend(part.added_cells)
        merged.removed_cells.extend(part.removed_cells)
        merged.changed_cells.extend(part.changed_cells)
        # Snapshot phase mix wins (finer-grained); records are the
        # fallback when no snapshot was loaded.
        if part.phase_mix and (use_phase_mix or not merged.phase_mix):
            merged.phase_mix = part.phase_mix

    if run_a.events and run_b.events:
        counts_a = _event_counts(run_a.events)
        counts_b = _event_counts(run_b.events)
        merged.event_mix = {
            kind: {
                "a": counts_a.get(kind, 0),
                "b": counts_b.get(kind, 0),
            }
            for kind in sorted(set(counts_a) | set(counts_b))
        }
    return merged
