"""The normalized ``Profile`` artifact shared by every capture mode.

A :class:`Profile` is what the deterministic ``cProfile`` captures
(:mod:`.capture`), the serve daemon's wall-clock sampler
(:mod:`.sampler`) and the artifact tooling (:mod:`.diff`,
:mod:`.flamegraph`) all speak. It holds two views of one capture:

* ``functions`` — per-function rollups (ncalls / primitive calls /
  tottime / cumtime), the granularity :func:`~.diff.profile_diff`
  compares; and
* ``stacks`` — collapsed call stacks (``a;b;c`` folded keys mapping to
  seconds), the flamegraph's input and the classic ``flamegraph.pl``
  interchange format (:meth:`Profile.collapsed`).

Determinism contract: function identifiers are *normalized* —
filesystem paths are relativized against the repo source tree (then
the interpreter prefix, then the cwd) and rendered with POSIX
separators, so the same code produces the same identifiers on any
checkout. :meth:`Profile.identity` then projects a capture onto its
timing-free fields (the stack-key set, and per-function call counts);
two captures of the same seeded run must have equal identities even
though their seconds differ. Tests and the perf gate compare
identities, never raw timings.
"""

from __future__ import annotations

import dataclasses
import json
import os
import re
import sys
import sysconfig
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "FunctionStat",
    "Profile",
    "normalize_func",
    "load_profile",
    "save_profile",
]

#: Profile artifact schema version (bump on incompatible changes).
SCHEMA = 1


def _source_roots() -> List[str]:
    """Path prefixes to strip, longest first, when relativizing."""
    roots = []
    here = os.path.dirname(os.path.abspath(__file__))
    # .../src/repro/obs/profiling -> .../src
    src = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    roots.append(src)
    try:
        stdlib = sysconfig.get_paths()["stdlib"]
        roots.append(stdlib)
    except (KeyError, OSError):  # pragma: no cover - exotic layouts
        pass
    roots.append(sys.prefix)
    roots.append(os.getcwd())
    return sorted({os.path.abspath(r) for r in roots}, key=len,
                  reverse=True)


_ROOTS = _source_roots()

#: Memory addresses embedded in builtin reprs (``<built-in method
#: __new__ of type object at 0x7f...>``) — per-process noise that must
#: never reach a normalized identifier.
_ADDRESS = re.compile(r" at 0x[0-9a-fA-F]+")


def normalize_func(func: Tuple[str, int, str]) -> str:
    """Render one ``cProfile`` function key as a stable identifier.

    ``func`` is the ``(filename, lineno, name)`` triple ``pstats``
    uses. Built-ins (filename ``~``) collapse to their bare name with
    any embedded memory address stripped; real files become
    ``relative/posix/path.py:lineno:name`` with the path relativized
    against the repo source tree, the interpreter prefix or the cwd
    (whichever matches first, longest root wins) — absolute,
    machine-specific prefixes and per-process addresses never leak
    into artifacts.
    """
    filename, lineno, name = func
    if filename == "~" or not filename:
        return _ADDRESS.sub("", name)
    path = os.path.abspath(filename)
    for root in _ROOTS:
        if path.startswith(root + os.sep):
            path = path[len(root) + 1:]
            break
    else:
        path = os.path.basename(path)
    return f"{path.replace(os.sep, '/')}:{lineno}:{name}"


@dataclasses.dataclass(frozen=True)
class FunctionStat:
    """One function's rollup within a capture."""

    func: str
    ncalls: int
    primitive_calls: int
    tottime: float
    cumtime: float

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view of this function's stats."""
        return {
            "func": self.func,
            "ncalls": self.ncalls,
            "primitive_calls": self.primitive_calls,
            "tottime": round(self.tottime, 9),
            "cumtime": round(self.cumtime, 9),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FunctionStat":
        """Rebuild a stat row from its :meth:`to_dict` form."""
        return cls(
            func=str(data["func"]),
            ncalls=int(data.get("ncalls", 0)),
            primitive_calls=int(data.get("primitive_calls", 0)),
            tottime=float(data.get("tottime", 0.0)),
            cumtime=float(data.get("cumtime", 0.0)),
        )


@dataclasses.dataclass
class Profile:
    """A normalized capture: function rollups + collapsed stacks.

    ``mode`` is ``"cprofile"`` (deterministic tracing capture) or
    ``"sample"`` (wall-clock thread sampler); for samples the stack
    weights are sample *counts* scaled by the sampling interval and
    per-function stats carry counts in ``ncalls``.
    """

    name: str
    mode: str = "cprofile"
    seconds: float = 0.0
    functions: List[FunctionStat] = dataclasses.field(
        default_factory=list
    )
    stacks: Dict[str, float] = dataclasses.field(default_factory=dict)
    meta: Dict[str, object] = dataclasses.field(default_factory=dict)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def function_index(self) -> Dict[str, FunctionStat]:
        """Function id -> rollup (for diffing)."""
        return {stat.func: stat for stat in self.functions}

    def top_functions(
        self, n: int = 10, key: str = "cumtime"
    ) -> List[FunctionStat]:
        """The ``n`` hottest functions by ``cumtime`` or ``tottime``."""
        if key not in ("cumtime", "tottime"):
            raise ValueError(f"unknown sort key {key!r}")
        ranked = sorted(
            self.functions,
            key=lambda s: (-getattr(s, key), s.func),
        )
        return ranked[:n]

    def top_table(self, n: int = 10, key: str = "cumtime") -> str:
        """Plain-text hotspot table (the ``obs profile`` terminal view)."""
        rows = self.top_functions(n, key=key)
        lines = [
            f"profile {self.name} ({self.mode}, "
            f"{self.seconds:.3f}s wall)",
            f"{'cumtime':>10} {'tottime':>10} {'ncalls':>8}  function",
        ]
        for stat in rows:
            lines.append(
                f"{stat.cumtime:>10.4f} {stat.tottime:>10.4f} "
                f"{stat.ncalls:>8d}  {stat.func}"
            )
        return "\n".join(lines)

    def collapsed(self, unit: str = "usec") -> str:
        """Folded-stack text (``a;b;c <weight>`` per line, sorted).

        ``unit="usec"`` weights stacks in integer microseconds (the
        flamegraph.pl convention); ``unit="seconds"`` keeps float
        seconds. Line *set and order* are timing-free (sorted keys);
        only the weights vary run to run.
        """
        lines = []
        for stack in sorted(self.stacks):
            seconds = self.stacks[stack]
            if unit == "usec":
                weight = str(int(round(seconds * 1e6)))
            else:
                weight = f"{seconds:.9f}"
            lines.append(f"{stack} {weight}")
        return "\n".join(lines) + ("\n" if lines else "")

    def identity(self) -> Dict[str, object]:
        """The timing-free projection two same-seed runs must share.

        Covers the capture name/mode, the sorted collapsed-stack key
        set, and per-function ``(func, ncalls, primitive_calls)``
        triples — everything except wall-clock weights. ``"sample"``
        profiles have no deterministic identity (sampling is
        wall-clock driven); their identity covers name/mode only.
        """
        if self.mode != "cprofile":
            return {"name": self.name, "mode": self.mode}
        return {
            "name": self.name,
            "mode": self.mode,
            "stacks": sorted(self.stacks),
            "functions": sorted(
                (s.func, s.ncalls, s.primitive_calls)
                for s in self.functions
            ),
        }

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON form (sorted stacks, rounded weights)."""
        return {
            "schema": SCHEMA,
            "name": self.name,
            "mode": self.mode,
            "seconds": round(self.seconds, 9),
            "functions": [s.to_dict() for s in self.functions],
            "stacks": {
                k: round(v, 9) for k, v in sorted(self.stacks.items())
            },
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Profile":
        """Rebuild a profile from its :meth:`to_dict` form.

        Tolerates trimmed artifacts (missing stacks/meta sections).
        """
        return cls(
            name=str(data.get("name", "")),
            mode=str(data.get("mode", "cprofile")),
            seconds=float(data.get("seconds", 0.0)),
            functions=[
                FunctionStat.from_dict(f)
                for f in data.get("functions", [])
            ],
            stacks={
                str(k): float(v)
                for k, v in (data.get("stacks") or {}).items()
            },
            meta=dict(data.get("meta") or {}),
        )

    def save(self, path: str) -> None:
        """Write this profile as canonical JSON (:func:`save_profile`)."""
        save_profile(self, path)


def save_profile(profile: Profile, path: str) -> None:
    """Write one profile as canonical JSON (sorted keys, trailing \\n)."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(profile.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_profile(path: str) -> Profile:
    """Load a profile artifact written by :func:`save_profile`.

    Also accepts the trimmed per-target sections ``bench_perf.py
    --profile`` embeds in history entries (functions only, no
    stacks) — those diff fine, they just can't render a flamegraph.
    """
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    return Profile.from_dict(data)
