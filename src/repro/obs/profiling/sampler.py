"""Low-overhead wall-clock thread sampler for the serve daemon.

``cProfile`` traces every call, which is fine for a bounded sweep cell
but not for a long-lived daemon serving tenants — so ``repro serve``
profiles itself by *sampling*: a background thread wakes every
``interval`` seconds, snapshots every other thread's stack via
``sys._current_frames()``, and folds the frames into collapsed-stack
counts. Overhead is proportional to the sampling rate, not the
request rate, and nothing is installed in the serving threads
themselves.

The sampler produces the same normalized :class:`~.profile.Profile`
artifact as the tracing capture (``mode="sample"``, stack weights are
``samples * interval`` pseudo-seconds), so the flamegraph and diff
tooling apply unchanged. Sampled profiles have no determinism
contract — they observe the wall clock by construction.

``start``/``stop`` are idempotent and thread-safe (``POST /profile``
races with shutdown in a threaded HTTP server); ``stop`` joins the
sampling thread before returning so a finished capture never keeps
writing.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Dict, List, Optional

from .profile import FunctionStat, Profile

__all__ = ["ThreadSampler"]


def _fold_frame(frame) -> Optional[str]:
    """Fold one thread's live stack into an ``a;b;c`` key (root first)."""
    from .profile import normalize_func

    frames: List[str] = []
    depth = 0
    while frame is not None and depth < 128:
        code = frame.f_code
        frames.append(
            normalize_func(
                (code.co_filename, code.co_firstlineno, code.co_name)
            )
        )
        frame = frame.f_back
        depth += 1
    if not frames:
        return None
    frames.reverse()
    return ";".join(frames)


class ThreadSampler:
    """Samples every live thread's stack on a fixed interval."""

    def __init__(self, interval: float = 0.01) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._counts: Dict[str, int] = {}
        self._samples = 0
        self._started_at = 0.0
        self._elapsed = 0.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin sampling; a second ``start`` while running is a no-op."""
        with self._lock:
            if self._thread is not None:
                return
            self._stop.clear()
            self._counts = {}
            self._samples = 0
            self._started_at = time.perf_counter()
            self._elapsed = 0.0
            thread = threading.Thread(
                target=self._run, name="repro-profiler", daemon=True
            )
            self._thread = thread
        thread.start()

    def stop(self) -> None:
        """Stop sampling and join the thread; idempotent."""
        with self._lock:
            thread = self._thread
            if thread is None:
                return
            self._stop.set()
        thread.join(timeout=5.0)
        with self._lock:
            self._thread = None
            self._elapsed = time.perf_counter() - self._started_at

    @property
    def running(self) -> bool:
        """True while the sampling thread is alive."""
        with self._lock:
            return self._thread is not None

    @property
    def samples(self) -> int:
        """Thread-stack snapshots folded so far."""
        with self._lock:
            return self._samples

    # ------------------------------------------------------------------
    # Sampling loop
    # ------------------------------------------------------------------
    def _run(self) -> None:
        own = threading.get_ident()
        while not self._stop.wait(self.interval):
            frames = sys._current_frames()
            folded = []
            for thread_id, frame in frames.items():
                if thread_id == own:
                    continue
                key = _fold_frame(frame)
                if key is not None:
                    folded.append(key)
            with self._lock:
                for key in folded:
                    self._counts[key] = self._counts.get(key, 0) + 1
                self._samples += len(folded)

    # ------------------------------------------------------------------
    # Artifact
    # ------------------------------------------------------------------
    def build(self, name: str = "serve.sample") -> Profile:
        """Fold the collected samples into a ``mode="sample"`` profile."""
        with self._lock:
            counts = dict(self._counts)
            samples = self._samples
            elapsed = self._elapsed
            if self._thread is not None:
                elapsed = time.perf_counter() - self._started_at
        stacks = {
            key: count * self.interval
            for key, count in counts.items()
        }
        leaves: Dict[str, int] = {}
        cumulative: Dict[str, int] = {}
        for key, count in counts.items():
            frames = key.split(";")
            leaves[frames[-1]] = leaves.get(frames[-1], 0) + count
            for func in set(frames):
                cumulative[func] = cumulative.get(func, 0) + count
        functions = sorted(
            (
                FunctionStat(
                    func=func,
                    ncalls=count,
                    primitive_calls=count,
                    tottime=leaves.get(func, 0) * self.interval,
                    cumtime=count * self.interval,
                )
                for func, count in cumulative.items()
            ),
            key=lambda s: s.func,
        )
        return Profile(
            name=name,
            mode="sample",
            seconds=elapsed,
            functions=functions,
            stacks=stacks,
            meta={
                "interval": self.interval,
                "samples": samples,
            },
        )
