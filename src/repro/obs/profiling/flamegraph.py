"""Self-contained single-file flamegraph HTML for profile artifacts.

:func:`render_flamegraph` turns one :class:`~.profile.Profile` into a
single HTML page with inline CSS/JS and the collapsed stacks embedded
in a ``<script type="application/json">`` block — no network
requests, no external assets, openable from disk (the same
conventions as the analysis dashboard). Output is deterministic:
identical profiles render byte-identical HTML.

The JS builds the frame tree client-side from the folded stacks
(``a;b;c`` → nested frames with self + cumulative weight), lays it
out as absolutely-positioned divs (width ∝ time share), and supports
hover details, click-to-zoom, a substring search highlight and the
shared light/dark theme toggle. Colors come from a small warm ramp
hashed on the frame name so a function keeps its color across zooms
and between two flamegraphs of the same code.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from .profile import Profile

__all__ = ["render_flamegraph"]

_CSS = """
:root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --text-muted: #898781;
  --grid: #e1e0d9;
  --border: rgba(11, 11, 11, 0.10);
  --frame-text: #1d1309;
  --match: #2a78d6;
}
:root[data-theme="dark"] {
  color-scheme: dark;
  --surface-1: #1a1a19;
  --page: #0d0d0d;
  --text-primary: #ffffff;
  --text-secondary: #c3c2b7;
  --text-muted: #898781;
  --grid: #2c2c2a;
  --border: rgba(255, 255, 255, 0.10);
  --frame-text: #140d05;
  --match: #3987e5;
}
@media (prefers-color-scheme: dark) {
  :root:not([data-theme="light"]) {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted: #898781;
    --grid: #2c2c2a;
    --border: rgba(255, 255, 255, 0.10);
    --frame-text: #140d05;
    --match: #3987e5;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px;
  background: var(--page); color: var(--text-primary);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  font-size: 14px; line-height: 1.45;
}
main { max-width: 1200px; margin: 0 auto; }
h1 { font-size: 20px; margin: 0 0 4px; }
.subtitle { color: var(--text-secondary); margin: 0 0 16px; }
.card {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 10px; padding: 16px 18px; margin: 0 0 18px;
}
#controls { display: flex; gap: 10px; align-items: center;
  margin: 0 0 12px; flex-wrap: wrap; }
#search {
  background: var(--surface-1); color: var(--text-primary);
  border: 1px solid var(--border); border-radius: 6px;
  padding: 4px 10px; font-size: 13px; min-width: 220px;
}
button {
  background: var(--surface-1); color: var(--text-secondary);
  border: 1px solid var(--border); border-radius: 6px;
  padding: 4px 10px; cursor: pointer; font-size: 12px;
}
#theme-toggle { float: right; }
#flame { position: relative; width: 100%; }
.frame {
  position: absolute; height: 17px; overflow: hidden;
  white-space: nowrap; font-size: 11px; line-height: 17px;
  padding: 0 3px; border-radius: 2px; cursor: pointer;
  color: var(--frame-text);
  border: 1px solid var(--page);
}
.frame.match { outline: 2px solid var(--match); z-index: 2; }
.frame.dim { opacity: 0.35; }
#status { color: var(--text-muted); font-size: 12px; margin-top: 8px; }
#tooltip {
  position: fixed; pointer-events: none; display: none; z-index: 10;
  background: var(--surface-1); color: var(--text-primary);
  border: 1px solid var(--border); border-radius: 6px;
  padding: 6px 9px; font-size: 12px; max-width: 480px;
  box-shadow: 0 2px 10px rgba(0, 0, 0, 0.18);
  font-variant-numeric: tabular-nums;
}
"""

#: Warm ramp (light, dark) hashed on frame name — classic flame hues.
_PALETTE = [
    ("#f2a65a", "#d98a3f"),
    ("#ef8b4f", "#cf7336"),
    ("#f5b971", "#dd9c4e"),
    ("#ea7a45", "#c9642f"),
    ("#f6c98a", "#e0ac5f"),
    ("#ec9a5e", "#cc8042"),
]

_JS = """
'use strict';
var data = JSON.parse(
  document.getElementById('profile-data').textContent);
var PALETTE = JSON.parse(
  document.getElementById('palette-data').textContent);

function isDark() {
  var forced = document.documentElement.getAttribute('data-theme');
  if (forced) return forced === 'dark';
  return window.matchMedia &&
    window.matchMedia('(prefers-color-scheme: dark)').matches;
}
function frameColor(name) {
  var hash = 0;
  for (var i = 0; i < name.length; i++) {
    hash = ((hash << 5) - hash + name.charCodeAt(i)) | 0;
  }
  var slot = Math.abs(hash) % PALETTE.length;
  return PALETTE[slot][isDark() ? 1 : 0];
}

// Build the frame tree from folded stacks.
function newNode(name) {
  return {name: name, value: 0, children: {}};
}
var root = newNode('all');
Object.keys(data.stacks).sort().forEach(function (stack) {
  var weight = data.stacks[stack];
  var frames = stack.split(';');
  var node = root;
  root.value += weight;
  frames.forEach(function (name) {
    if (!node.children[name]) node.children[name] = newNode(name);
    node = node.children[name];
    node.value += weight;
  });
});

var flame = document.getElementById('flame');
var tooltip = document.getElementById('tooltip');
var statusLine = document.getElementById('status');
var zoomNode = root;
var ROW = 18;

function fmt(seconds) {
  if (data.mode === 'sample') {
    return (seconds / data.interval).toFixed(0) + ' samples';
  }
  return seconds.toFixed(4) + 's';
}

function depthOf(node) {
  var max = 0;
  Object.keys(node.children).forEach(function (key) {
    var d = depthOf(node.children[key]) + 1;
    if (d > max) max = d;
  });
  return max;
}

function render() {
  flame.innerHTML = '';
  var total = zoomNode.value || 1;
  var width = flame.clientWidth || 960;
  var query = document.getElementById('search').value.toLowerCase();
  var matched = 0;
  flame.style.height = ((depthOf(zoomNode) + 1) * ROW + 4) + 'px';
  function place(node, x, depth) {
    var w = node.value / total * width;
    if (w < 0.4) return;
    var div = document.createElement('div');
    div.className = 'frame';
    div.style.left = x + 'px';
    div.style.top = (depth * ROW) + 'px';
    div.style.width = Math.max(w - 1, 1) + 'px';
    div.style.background = frameColor(node.name);
    div.textContent = w > 28 ? node.name : '';
    var lower = node.name.toLowerCase();
    if (query && lower.indexOf(query) !== -1) {
      div.className += ' match';
      matched += node.value;
    } else if (query) {
      div.className += ' dim';
    }
    div.addEventListener('mousemove', function (evt) {
      tooltip.textContent = node.name + ' — ' + fmt(node.value) +
        ' (' + (node.value / (root.value || 1) * 100).toFixed(1) +
        '% of all)';
      tooltip.style.display = 'block';
      var tx = Math.min(evt.clientX + 14, window.innerWidth - 490);
      tooltip.style.left = tx + 'px';
      tooltip.style.top = (evt.clientY + 14) + 'px';
    });
    div.addEventListener('mouseleave', function () {
      tooltip.style.display = 'none';
    });
    div.addEventListener('click', function () {
      zoomNode = node;
      render();
    });
    flame.appendChild(div);
    var cx = x;
    Object.keys(node.children).sort().forEach(function (key) {
      var child = node.children[key];
      place(child, cx, depth + 1);
      cx += child.value / total * width;
    });
  }
  place(zoomNode, 0, 0);
  var parts = ['total ' + fmt(root.value)];
  if (zoomNode !== root) {
    parts.push('zoom: ' + zoomNode.name + ' (' + fmt(zoomNode.value) +
      ')');
  }
  if (query) parts.push('matched ' + fmt(matched));
  statusLine.textContent = parts.join(' · ');
}

document.getElementById('reset').addEventListener('click', function () {
  zoomNode = root;
  document.getElementById('search').value = '';
  render();
});
document.getElementById('search').addEventListener('input', render);
document.getElementById('theme-toggle').addEventListener(
  'click', function () {
    document.documentElement.setAttribute(
      'data-theme', isDark() ? 'light' : 'dark');
    render();
  });
if (window.matchMedia) {
  window.matchMedia('(prefers-color-scheme: dark)')
    .addEventListener('change', render);
}
window.addEventListener('resize', render);
render();
"""


def _embed_json(payload: object) -> str:
    """Canonical JSON safe for inline ``<script>`` embedding."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return text.replace("</", "<\\/")


def render_flamegraph(
    profile: Profile, title: Optional[str] = None
) -> str:
    """Render one profile as a self-contained flamegraph HTML page."""
    if title is None:
        title = profile.name
    payload: Dict[str, object] = {
        "name": profile.name,
        "mode": profile.mode,
        "seconds": round(profile.seconds, 9),
        "interval": float(profile.meta.get("interval", 0.01) or 0.01),
        "stacks": {
            k: round(v, 9) for k, v in sorted(profile.stacks.items())
        },
    }
    subtitle = (
        f"{profile.name} — {profile.mode} capture, "
        f"{profile.seconds:.3f}s wall, "
        f"{len(profile.stacks)} stacks"
    )
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{title}</title>
<style>{_CSS}</style>
</head>
<body>
<main>
  <button id="theme-toggle" type="button">light/dark</button>
  <h1>{title}</h1>
  <p class="subtitle">{subtitle}</p>
  <div class="card">
    <div id="controls">
      <input id="search" type="search"
             placeholder="highlight functions (substring)">
      <button id="reset" type="button">reset zoom</button>
    </div>
    <div id="flame"></div>
    <div id="status"></div>
  </div>
</main>
<div id="tooltip" role="status"></div>
<script type="application/json" id="profile-data">{_embed_json(payload)}</script>
<script type="application/json" id="palette-data">{_embed_json(_PALETTE)}</script>
<script>{_JS}</script>
</body>
</html>
"""
