"""Profiling subsystem: deterministic captures, flamegraphs, diffs.

The obs stack's function-level layer. Three capture modes produce one
normalized :class:`~.profile.Profile` artifact:

* :mod:`.capture` — deterministic ``cProfile`` captures around
  partitioner kernels, engine epoch loops and executor cells
  (``profile_scope`` ambient hooks + explicit ``capture`` blocks);
* :mod:`.sampler` — the wall-clock thread sampler behind the serve
  daemon's ``POST /profile``;
* tooling — :mod:`.flamegraph` (self-contained HTML), :mod:`.diff`
  (function-level regression ranking for the perf gate) and
  :mod:`.trend` (MAD-based drift detection over the bench history).
"""

# NOTE: the ``capture`` *function* is deliberately not re-exported
# here — it would shadow the ``capture`` submodule, which call sites
# import as a module (``from repro.obs.profiling import capture``) so
# the bench harness can monkeypatch its hooks.
from .capture import build_profile, drain, profile_scope
from .diff import DiffEntry, ProfileDiff, profile_diff, render_diff
from .flamegraph import render_flamegraph
from .profile import (
    FunctionStat,
    Profile,
    load_profile,
    normalize_func,
    save_profile,
)
from .sampler import ThreadSampler
from .trend import (
    TrendThresholds,
    detect_drift,
    detect_trends,
    extract_history_series,
    load_bench_history,
    render_trend_report,
)

__all__ = [
    "DiffEntry",
    "FunctionStat",
    "Profile",
    "ProfileDiff",
    "ThreadSampler",
    "TrendThresholds",
    "build_profile",
    "detect_drift",
    "detect_trends",
    "drain",
    "extract_history_series",
    "load_bench_history",
    "load_profile",
    "normalize_func",
    "profile_diff",
    "profile_scope",
    "render_diff",
    "render_flamegraph",
    "render_trend_report",
    "save_profile",
]
