"""Deterministic ``cProfile`` capture and the ambient ``profile_scope``.

Two entry points:

* :func:`capture` — an explicit capture: ``with capture("name") as
  cap: ...; cap.profile``. Used by ``repro obs profile`` (whole
  command), per-cell captures (``--profile-out`` / serve trace level)
  and the bench harness.
* :func:`profile_scope` — the *ambient* hook compiled into the hot
  paths (partitioner kernels, engine epoch loops, executor cells).
  Off by default: one module-flag check returning a shared null
  context, mirroring ``obs.span``'s off path, so the instrumented
  kernels stay within the perf gate's profiling-off budget. Enabled
  via :func:`enable`, each scope captures its own profile into the
  process-local collector (:func:`drain`).

``cProfile`` cannot nest ("another profiler is active"), so a single
process-wide ``_active`` latch makes any inner scope a no-op while a
capture runs: an executor-cell capture supersedes the partitioner and
epoch scopes it contains, which is exactly the granularity wanted —
the outermost capture owns the full stack anyway.

Stack reconstruction: ``cProfile`` records only one-level
caller→callee edges. :func:`build_profile` rebuilds full collapsed
stacks by walking the call graph from its roots and apportioning each
callee's edge times across the caller paths that reach it (each
grandchild edge is scaled by the share of the callee's cumulative
time the parent edge contributed). The *set* of emitted stack paths
is derived purely from the call graph — every reachable acyclic path
is emitted even when its time share rounds to zero — so it is
deterministic for a seeded run; only the weights carry timing.
Import-machinery subtrees are the one exception: they depend on
``sys.modules`` cache state rather than on the profiled code, so each
collapses into a single ``<import>`` leaf (see :func:`_is_import_frame`).
"""

from __future__ import annotations

import cProfile
import pstats
import time
from typing import Dict, List, Optional, Tuple

from .profile import FunctionStat, Profile, normalize_func

__all__ = [
    "build_profile",
    "capture",
    "disable",
    "drain",
    "enable",
    "enabled",
    "profile_scope",
]

#: Maximum reconstructed stack depth (cycle-cut + recursion guard).
MAX_DEPTH = 64

#: The synthetic frame import-machinery subtrees collapse into.
IMPORT_FRAME = "<import>"

#: Ambient ``profile_scope`` captures are collected when this is on.
_enabled = False
#: True while a cProfile capture is running (captures cannot nest).
_active = False
#: Profiles collected by ambient scopes since the last :func:`drain`.
_collected: List[Profile] = []


# ----------------------------------------------------------------------
# Stack reconstruction
# ----------------------------------------------------------------------
def _is_import_frame(ident: str) -> bool:
    """True for frames that belong to the import machinery.

    Import call graphs are a function of ``sys.modules`` cache state,
    not of the profiled code: a cold process threads thousands of
    paths through ``<frozen importlib._bootstrap>`` that a warm one
    never executes. Collapsing each such subtree into one synthetic
    :data:`IMPORT_FRAME` leaf (carrying the subtree's cumulative time)
    keeps whole-command captures comparable across processes and
    bounds the artifact — import frames dominated ~90% of the stack
    keys in an unpruned CLI capture.
    """
    return (
        ident.startswith("<frozen importlib")
        or ident == "<built-in method builtins.__import__>"
    )


def _collapse(
    stats: Dict[tuple, tuple], ids: Dict[tuple, str]
) -> Dict[str, float]:
    """Rebuild collapsed stacks from pstats' caller→callee edges."""
    children: Dict[tuple, List[Tuple[tuple, tuple]]] = {}
    for func, (cc, nc, tt, ct, callers) in stats.items():
        for caller, edge in callers.items():
            children.setdefault(caller, []).append((func, edge))
    for edges in children.values():
        edges.sort(key=lambda item: ids[item[0]])

    stacks: Dict[str, float] = {}

    def emit(key: str, seconds: float) -> None:
        stacks[key] = stacks.get(key, 0.0) + seconds

    def walk(
        func: tuple, frames: Tuple[tuple, ...], key: str, edge: tuple,
        scale: float,
    ) -> None:
        if func in frames or len(frames) >= MAX_DEPTH:
            return
        e_cc, e_nc, e_tt, e_ct = edge
        ident = ids[func]
        if _is_import_frame(ident):
            # The whole import subtree becomes one leaf weighted by
            # the edge's *cumulative* time (its children are skipped).
            emit(f"{key};{IMPORT_FRAME}" if key else IMPORT_FRAME,
                 e_ct * scale)
            return
        path = frames + (func,)
        path_key = f"{key};{ident}" if key else ident
        emit(path_key, e_tt * scale)
        func_ct = stats[func][3]
        share = scale * (e_ct / func_ct) if func_ct > 0 else 0.0
        for callee, callee_edge in children.get(func, ()):
            walk(callee, path, path_key, callee_edge, share)

    roots = sorted(
        (f for f, entry in stats.items() if not entry[4]),
        key=lambda f: ids[f],
    )
    for root in roots:
        cc, nc, tt, ct, _callers = stats[root]
        if _is_import_frame(ids[root]):
            emit(IMPORT_FRAME, ct)
            continue
        emit(ids[root], tt)
        for callee, edge in children.get(root, ()):
            walk(callee, (root,), ids[root], edge, 1.0)
    return stacks


def _prune_self(stats: Dict[tuple, tuple]) -> Dict[tuple, tuple]:
    """Drop this module's own frames (the ``__exit__`` that stops the
    profiler, and the ``_lsprof`` disable method) from a capture —
    they are capture machinery, not profiled code."""
    import os

    here = os.path.abspath(__file__)
    drop = set()
    for func in stats:
        filename, _lineno, funcname = func
        if filename == "~":
            if "_lsprof.Profiler" in funcname:
                drop.add(func)
        elif os.path.abspath(filename) == here:
            drop.add(func)
    if not drop:
        return stats
    pruned = {}
    for func, (cc, nc, tt, ct, callers) in stats.items():
        if func in drop:
            continue
        pruned[func] = (
            cc, nc, tt, ct,
            {c: e for c, e in callers.items() if c not in drop},
        )
    return pruned


def build_profile(
    profiler: cProfile.Profile,
    name: str,
    seconds: float,
    meta: Optional[Dict[str, object]] = None,
) -> Profile:
    """Normalize one finished ``cProfile.Profile`` into a :class:`Profile`."""
    stats = _prune_self(pstats.Stats(profiler).stats)
    ids = {func: normalize_func(func) for func in stats}
    functions = sorted(
        (
            FunctionStat(
                func=ids[func],
                ncalls=int(nc),
                primitive_calls=int(cc),
                tottime=float(tt),
                cumtime=float(ct),
            )
            for func, (cc, nc, tt, ct, _callers) in stats.items()
        ),
        key=lambda s: s.func,
    )
    return Profile(
        name=name,
        mode="cprofile",
        seconds=seconds,
        functions=functions,
        stacks=_collapse(stats, ids),
        meta=dict(meta or {}),
    )


# ----------------------------------------------------------------------
# Explicit capture
# ----------------------------------------------------------------------
class _Capture:
    """``with capture("name") as cap: ...`` → ``cap.profile``.

    If another capture is already active in this process the block
    runs unprofiled and ``profile`` stays ``None`` (cProfile cannot
    nest; the outer capture still sees this block's frames).
    """

    __slots__ = ("name", "meta", "profile", "_profiler", "_started")

    def __init__(
        self, name: str, meta: Optional[Dict[str, object]] = None
    ) -> None:
        self.name = name
        self.meta = meta
        self.profile: Optional[Profile] = None
        self._profiler: Optional[cProfile.Profile] = None
        self._started = 0.0

    def __enter__(self) -> "_Capture":
        global _active
        if _active:
            return self
        _active = True
        self._profiler = cProfile.Profile()
        self._started = time.perf_counter()
        self._profiler.enable()
        return self

    def __exit__(self, *exc) -> None:
        if self._profiler is None:
            return None
        self._profiler.disable()
        global _active
        _active = False
        seconds = time.perf_counter() - self._started
        self.profile = build_profile(
            self._profiler, self.name, seconds, meta=self.meta
        )
        self._profiler = None
        self._report(seconds)
        return None

    def _report(self, seconds: float) -> None:
        from .. import api as obs

        if obs.enabled():
            obs.count("profiling.captures", scope=self.name)
            obs.observe(
                "profiling.capture_seconds", seconds, scope=self.name
            )


def capture(
    name: str, meta: Optional[Dict[str, object]] = None
) -> _Capture:
    """Explicitly profile a block regardless of the ambient switch."""
    return _Capture(name, meta=meta)


def capture_callable(name: str, fn, *args, **kwargs):
    """Run ``fn(*args, **kwargs)`` under a capture.

    Returns ``(result, profile)``; ``profile`` is ``None`` when a
    capture was already active.
    """
    with capture(name) as cap:
        result = fn(*args, **kwargs)
    return result, cap.profile


# ----------------------------------------------------------------------
# Ambient scope
# ----------------------------------------------------------------------
class _NullScope:
    """Returned while profiling is off: does nothing."""

    __slots__ = ()
    profile = None

    def __enter__(self) -> "_NullScope":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SCOPE = _NullScope()


class _AmbientScope(_Capture):
    """An enabled ``profile_scope``: collects its profile on exit."""

    __slots__ = ()

    def __exit__(self, *exc) -> None:
        super().__exit__(*exc)
        if self.profile is not None:
            _collected.append(self.profile)
        return None


def profile_scope(name: str):
    """The hook on the hot paths: captures only when :func:`enable`\\ d.

    Off (the default): one flag check, shared null context — the same
    shape as ``obs.span``'s off path and gated by the same perf
    budget. On: the block runs under ``cProfile`` and its normalized
    profile lands in the collector (:func:`drain`), unless an
    enclosing capture already owns the profiler.
    """
    if not _enabled or _active:
        return _NULL_SCOPE
    return _AmbientScope(name)


def enable() -> None:
    """Turn ambient ``profile_scope`` capture on (off by default)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn ambient capture back off and drop collected profiles."""
    global _enabled
    _enabled = False
    _collected.clear()


def enabled() -> bool:
    """True when ambient scopes are capturing."""
    return _enabled


def drain() -> List[Profile]:
    """Return (and clear) the profiles ambient scopes collected."""
    profiles = list(_collected)
    _collected.clear()
    return profiles
