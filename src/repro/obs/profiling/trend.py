"""Bench-history trend analysis: catch multi-PR slow creep.

``check_perf.py`` gates each PR *pairwise* against the recorded
baseline, so a sequence of changes each inside the pairwise threshold
can compound into a real slowdown that never trips a gate. ``repro
obs trend`` closes that hole: it reads the ``BENCH_partitioning.json``
history (one entry appended per ``bench_perf.py`` run) and runs two
detectors over every timing series:

* **rolling MAD z-scores** — the exact
  :func:`~..analysis.anomaly.detect_series_anomalies` machinery (same
  :class:`~..analysis.anomaly.AnomalyThresholds` defaults) flags a
  single entry that jumps out of its trailing window; and
* **total drift** — the robust creep check: the median of the oldest
  ``min_points`` entries vs the median of the newest ones; a ratio
  above ``creep_ratio`` flags the series even when every adjacent
  step was individually quiet.

Both detectors are deterministic functions of the history file, so
the CI job can run them on every PR.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..analysis.anomaly import (
    AnomalyThresholds,
    detect_series_anomalies,
)
from ..analysis.findings import Finding

__all__ = [
    "TrendThresholds",
    "extract_history_series",
    "detect_drift",
    "detect_trends",
    "load_bench_history",
    "render_trend_report",
]


@dataclasses.dataclass(frozen=True)
class TrendThresholds:
    """Knobs for the history-trend detectors.

    ``anomaly`` carries the shared rolling-MAD thresholds; the creep
    check fires when ``recent_median / oldest_median > creep_ratio``
    with at least ``min_entries`` history points and an oldest median
    above ``min_seconds`` (sub-jitter series never flag).
    """

    anomaly: AnomalyThresholds = AnomalyThresholds()
    creep_ratio: float = 1.25
    min_entries: int = 6
    min_seconds: float = 0.005
    tail: int = 3

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view of every threshold knob."""
        return {
            "anomaly": self.anomaly.to_dict(),
            "creep_ratio": self.creep_ratio,
            "min_entries": self.min_entries,
            "min_seconds": self.min_seconds,
            "tail": self.tail,
        }


def _maybe_series(
    series: Dict[str, List[float]], name: str, value: object
) -> None:
    """Append one numeric point; unwraps ``{"seconds": x}`` blocks."""
    if isinstance(value, dict):
        value = value.get("seconds")
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        series.setdefault(name, []).append(float(value))


def extract_history_series(
    history: Sequence[Dict[str, object]],
) -> Dict[str, List[float]]:
    """Timing series per metric across history entries, oldest first.

    Covers the gated sections: per-kernel seconds (``kernels/*``),
    the sampling benchmark, and the overhead benchmarks' off-path
    seconds. Entries missing a key simply don't contribute to that
    series (older histories predate newer sections), so series may be
    shorter than the history.
    """
    series: Dict[str, List[float]] = {}
    for entry in history:
        kernels = entry.get("kernels") or {}
        if isinstance(kernels, dict):
            for name in sorted(kernels):
                _maybe_series(series, f"kernels/{name}", kernels[name])
        _maybe_series(series, "sampling", entry.get("sampling"))
        for section in ("obs_overhead", "profiling_overhead"):
            block = entry.get(section) or {}
            if isinstance(block, dict):
                _maybe_series(
                    series, f"{section}/off_seconds",
                    block.get("off_seconds"),
                )
                _maybe_series(
                    series, f"{section}/plain_seconds",
                    block.get("plain_seconds"),
                )
    return series


def detect_drift(
    name: str,
    values: Sequence[float],
    thresholds: TrendThresholds = TrendThresholds(),
) -> List[Finding]:
    """The slow-creep check: oldest-median vs newest-median ratio."""
    values = np.asarray(values, dtype=np.float64)
    head = thresholds.anomaly.min_points
    if values.size < max(thresholds.min_entries, head + 1):
        return []
    baseline = float(np.median(values[:head]))
    tail = min(thresholds.tail, values.size - head)
    recent = float(np.median(values[-tail:]))
    if baseline < thresholds.min_seconds:
        return []
    ratio = recent / baseline
    if ratio <= thresholds.creep_ratio:
        return []
    return [
        Finding(
            kind="perf-drift",
            severity="warning",
            subject=name,
            message=(
                f"{name} drifted {ratio:.2f}x over {values.size} "
                f"bench entries ({baseline:.4f}s -> {recent:.4f}s); "
                f"no single step tripped the pairwise gate"
            ),
            value=float(ratio),
            threshold=thresholds.creep_ratio,
            context={
                "baseline_median": baseline,
                "recent_median": recent,
                "entries": int(values.size),
            },
        )
    ]


def detect_trends(
    history: Sequence[Dict[str, object]],
    thresholds: TrendThresholds = TrendThresholds(),
) -> List[Finding]:
    """Run both detectors over every series in the bench history."""
    findings: List[Finding] = []
    series = extract_history_series(history)
    for name in sorted(series):
        values = series[name]
        findings.extend(
            detect_series_anomalies(
                name,
                values,
                thresholds.anomaly,
                kind="bench-series-anomaly",
                unit="s",
            )
        )
        findings.extend(detect_drift(name, values, thresholds))
    return findings


def load_bench_history(path: str) -> List[Dict[str, object]]:
    """The history entries (oldest first) of a schema-2 bench file."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if isinstance(data, dict):
        history = data.get("history") or []
    else:  # schema 1: a bare list of reports
        history = data
    return [entry for entry in history if isinstance(entry, dict)]


def render_trend_report(
    findings: Sequence[Finding],
    series: Dict[str, List[float]],
    thresholds: TrendThresholds = TrendThresholds(),
) -> str:
    """Terminal summary: series coverage + every finding."""
    lines = [
        f"bench trend: {len(series)} series, "
        f"{max((len(v) for v in series.values()), default=0)} entries, "
        f"creep ratio {thresholds.creep_ratio:.2f}, "
        f"z {thresholds.anomaly.z_threshold:.1f}"
    ]
    if not findings:
        lines.append("no drift or anomalies detected")
        return "\n".join(lines)
    for finding in findings:
        lines.append(
            f"  [{finding.severity}] {finding.kind}: {finding.message}"
        )
    return "\n".join(lines)
