"""Function-level profile comparison for perf-regression triage.

:func:`profile_diff` lines two :class:`~.profile.Profile`\\ s up
function by function and classifies every function as added, removed,
regressed, improved or unchanged. Classification mixes one timing
signal with one structural signal:

* a function *regresses* when its cumulative time grows by more than
  ``threshold`` (relative) **and** ``min_seconds`` (absolute) — the
  double guard is the same shape as the perf gate's floor, so
  microsecond jitter on trivial functions never ranks;
* added/removed functions are structural (identity-level) changes and
  surface whenever their cumulative time clears the ``min_seconds``
  floor — below it they are noise, not findings (a baseline trimmed
  to its top functions would otherwise flag every cheap helper the
  trim dropped as "added").

A profile diffed against itself is empty by construction (every delta
is exactly zero, nothing added or removed), which is what the CI
smoke job asserts. ``check_perf.py`` renders :func:`render_diff`
against the baseline's stored hotspot section whenever a kernel gate
fires, so a red gate names functions, not just a kernel.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from .profile import Profile

__all__ = ["DiffEntry", "ProfileDiff", "profile_diff", "render_diff"]

#: A function must grow by this fraction of its baseline cumtime ...
DEFAULT_THRESHOLD = 0.10
#: ... and by at least this many absolute seconds, to count as a
#: regression (mirrors the perf gate's jitter floor).
DEFAULT_MIN_SECONDS = 0.001


@dataclasses.dataclass(frozen=True)
class DiffEntry:
    """One function's before/after comparison."""

    func: str
    status: str  # added | removed | regressed | improved | unchanged
    base_cumtime: float
    new_cumtime: float
    base_ncalls: int
    new_ncalls: int

    @property
    def delta(self) -> float:
        """Absolute cumulative-seconds change (new minus base)."""
        return self.new_cumtime - self.base_cumtime

    @property
    def ratio(self) -> float:
        """Relative cumulative-time ratio (new over base)."""
        if self.base_cumtime <= 0.0:
            return float("inf") if self.new_cumtime > 0 else 1.0
        return self.new_cumtime / self.base_cumtime

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view of this entry (rounded timings)."""
        return {
            "func": self.func,
            "status": self.status,
            "base_cumtime": round(self.base_cumtime, 9),
            "new_cumtime": round(self.new_cumtime, 9),
            "delta": round(self.delta, 9),
            "base_ncalls": self.base_ncalls,
            "new_ncalls": self.new_ncalls,
        }


@dataclasses.dataclass
class ProfileDiff:
    """The full comparison; ``findings`` is what a gate acts on."""

    base_name: str
    new_name: str
    entries: List[DiffEntry]

    @property
    def findings(self) -> List[DiffEntry]:
        """Added + regressed entries, worst first."""
        flagged = [
            e for e in self.entries
            if e.status in ("added", "regressed")
        ]
        return sorted(
            flagged, key=lambda e: (-e.delta, e.func)
        )

    @property
    def is_empty(self) -> bool:
        """True when nothing regressed, appeared or disappeared."""
        return not any(
            e.status in ("added", "removed", "regressed")
            for e in self.entries
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready diff report; unchanged entries are dropped."""
        return {
            "base": self.base_name,
            "new": self.new_name,
            "empty": self.is_empty,
            "entries": [
                e.to_dict() for e in self.entries
                if e.status != "unchanged"
            ],
        }


def profile_diff(
    base: Profile,
    new: Profile,
    threshold: float = DEFAULT_THRESHOLD,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> ProfileDiff:
    """Compare two profiles function by function."""
    base_index = base.function_index()
    new_index = new.function_index()
    entries: List[DiffEntry] = []
    for func in sorted(set(base_index) | set(new_index)):
        before = base_index.get(func)
        after = new_index.get(func)
        if before is None:
            assert after is not None
            status = (
                "added" if after.cumtime > min_seconds else "unchanged"
            )
            entries.append(
                DiffEntry(
                    func=func, status=status,
                    base_cumtime=0.0, new_cumtime=after.cumtime,
                    base_ncalls=0, new_ncalls=after.ncalls,
                )
            )
            continue
        if after is None:
            status = (
                "removed"
                if before.cumtime > min_seconds else "unchanged"
            )
            entries.append(
                DiffEntry(
                    func=func, status=status,
                    base_cumtime=before.cumtime, new_cumtime=0.0,
                    base_ncalls=before.ncalls, new_ncalls=0,
                )
            )
            continue
        delta = after.cumtime - before.cumtime
        if (
            delta > min_seconds
            and delta > threshold * before.cumtime
        ):
            status = "regressed"
        elif (
            -delta > min_seconds
            and -delta > threshold * before.cumtime
        ):
            status = "improved"
        else:
            status = "unchanged"
        entries.append(
            DiffEntry(
                func=func, status=status,
                base_cumtime=before.cumtime,
                new_cumtime=after.cumtime,
                base_ncalls=before.ncalls,
                new_ncalls=after.ncalls,
            )
        )
    return ProfileDiff(
        base_name=base.name, new_name=new.name, entries=entries
    )


def render_diff(diff: ProfileDiff, top: int = 15) -> str:
    """Plain-text triage view: worst regressions first."""
    lines = [f"profile diff: {diff.base_name} -> {diff.new_name}"]
    if diff.is_empty:
        lines.append("no function-level regressions")
        return "\n".join(lines)
    lines.append(
        f"{'status':>9} {'base':>10} {'new':>10} {'delta':>10}"
        f" {'calls':>13}  function"
    )
    shown = diff.findings[:top]
    removed = [e for e in diff.entries if e.status == "removed"]
    improved = sorted(
        (e for e in diff.entries if e.status == "improved"),
        key=lambda e: (e.delta, e.func),
    )
    for entry in shown + improved[: max(0, top - len(shown))]:
        lines.append(
            f"{entry.status:>9} {entry.base_cumtime:>10.4f}"
            f" {entry.new_cumtime:>10.4f} {entry.delta:>+10.4f}"
            f" {entry.base_ncalls:>6}->{entry.new_ncalls:<6}"
            f" {entry.func}"
        )
    hidden = len(diff.findings) - len(shown)
    if hidden > 0:
        lines.append(f"... {hidden} more flagged functions")
    if removed:
        lines.append(
            f"{len(removed)} functions removed (baseline only)"
        )
    return "\n".join(lines)
