"""Live telemetry: the sweep event bus, watch monitor and alert rules.

The offline obs stack records what a run *did*; this package streams
what a sweep *is doing*. Three pieces:

* :mod:`.bus` — an append-only JSONL event bus. Every sweep worker
  writes heartbeat/progress events to its own per-process stream file
  through the existing :class:`~repro.obs.sink.JsonlSink`;
  :class:`~.bus.BusTailer` tails all streams incrementally (resumable
  byte offsets, truncation-tolerant like
  :func:`~repro.obs.sink.read_jsonl`) and merges them on a
  deterministic ``(cell, cseq)`` key, so the merged *simulated* state is
  identical whether the sweep ran serial or parallel.
* :mod:`.watch` — ``repro obs watch <dir>``: a tick-driven, plain-ANSI
  terminal monitor (injectable clock/stream, fully testable) showing
  per-worker progress, an ETA from completed-cell times, the phase mix,
  and streaming anomaly findings computed online with the same
  :mod:`repro.obs.analysis.anomaly` thresholds the post-hoc analyzer
  uses.
* :mod:`.rules` — a declarative alert-rule engine: threshold/ratio/
  absence predicates over catalog metric names, validated against
  :mod:`repro.obs.catalog`, with severities. ``run_full_sweep.py
  --rules FILE --abort-on critical`` evaluates them per finished cell
  and stops the sweep early when one fires at or above the bar.
* :mod:`.top` — ``repro obs top <url>``: the same tick-driven monitor
  shape pointed at a *serve daemon* instead of a sweep bus — polls
  ``/healthz`` + ``/queue`` + ``/metrics`` and shows queue saturation,
  tenant shares, dedup rate and firing SLO rules.
"""

from .bus import (
    BusTailer,
    BusWriter,
    record_event_fields,
)
from .rules import (
    AlertRule,
    RuleSet,
    SweepAborted,
    record_totals,
    severity_at_least,
)
from .top import (
    fetch_status,
    render_top_frame,
    top_loop,
)
from .watch import (
    WatchState,
    render_frame,
    watch_loop,
)

__all__ = [
    "BusWriter",
    "BusTailer",
    "record_event_fields",
    "AlertRule",
    "RuleSet",
    "SweepAborted",
    "record_totals",
    "severity_at_least",
    "WatchState",
    "render_frame",
    "watch_loop",
    "fetch_status",
    "render_top_frame",
    "top_loop",
]
