"""The live daemon ops monitor behind ``repro obs top``.

``obs watch`` follows one sweep's telemetry bus; ``obs top`` follows a
*daemon*: it polls the serve HTTP API (``/healthz``, ``/queue``,
``/metrics``) and renders queue depth, tenant fair shares, dedup rate,
latency SLOs and firing alert rules as a tick-driven terminal frame.

Same testability contract as :mod:`.watch`: fetching is an injectable
callable (:func:`fetch_status` is the urllib default), rendering is a
pure function (:func:`render_top_frame`) from one status snapshot to a
plain-ANSI string, and :func:`top_loop` drives ticks with injectable
clock/sleep/output — the whole monitor runs headless in tests.

Alert rules are the ordinary :class:`~.rules.RuleSet` engine evaluated
against the totals parsed out of the ``/metrics`` exposition
(:func:`~repro.obs.serve_metrics.parse_prometheus_totals`), so one
rules file can watch both sweep records and daemon SLOs — e.g. a
threshold on ``serve.admission_to_first_record_p95_seconds`` or a
429-rate ratio of ``serve.admission_rejected`` over
``serve.http_requests``.

This module deliberately does NOT import :mod:`repro.serve`: the serve
package imports :mod:`repro.obs.live` (scheduler buses and rules), so
using :class:`~repro.serve.client.ServeClient` here would be a cycle.
Plain :mod:`urllib` against three endpoints is all it needs.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Callable, Dict, List, Optional, TextIO

from ..serve_metrics import parse_prometheus_totals
from .rules import RuleSet

__all__ = ["fetch_status", "render_top_frame", "top_loop"]

#: ANSI: clear screen + home (same minimal escape set as ``obs watch``).
_CLEAR = "\x1b[2J\x1b[H"


def _get(base_url: str, path: str, timeout: float) -> str:
    request = urllib.request.Request(base_url + path, method="GET")
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.read().decode("utf-8")


def fetch_status(
    base_url: str, timeout: float = 5.0
) -> Dict[str, object]:
    """One polling round against a serve daemon (the default fetcher).

    Returns ``{"healthz", "queue", "totals", "error"}``; an unreachable
    daemon yields ``error`` set and the other keys empty, so the
    monitor keeps ticking instead of crashing while a daemon restarts.
    """
    base_url = base_url.rstrip("/")
    try:
        healthz = json.loads(_get(base_url, "/healthz", timeout))
        queue = json.loads(_get(base_url, "/queue", timeout))
        totals = parse_prometheus_totals(
            _get(base_url, "/metrics", timeout)
        )
    except (urllib.error.URLError, OSError, ValueError) as exc:
        return {
            "healthz": {}, "queue": {}, "totals": {},
            "error": str(exc),
        }
    return {
        "healthz": healthz, "queue": queue, "totals": totals,
        "error": None,
    }


def _bar(fraction: float, width: int) -> str:
    fraction = min(max(fraction, 0.0), 1.0)
    filled = int(round(fraction * width))
    return "#" * filled + "-" * (width - filled)


def render_top_frame(
    status: Dict[str, object],
    rules: Optional[RuleSet] = None,
    width: int = 78,
) -> str:
    """Render one ops frame as plain text (pure function)."""
    lines: List[str] = []
    error = status.get("error")
    if error:
        return f"daemon unreachable: {error}\n"
    healthz = status.get("healthz") or {}
    queue = status.get("queue") or {}
    totals = status.get("totals") or {}

    age = healthz.get("scheduler_heartbeat_age_seconds")
    header = (
        f"serve: {healthz.get('status', '?')}"
        f", workers {healthz.get('workers', '?')}"
        f", obs {healthz.get('obs_level', '?')}"
        f", up {float(healthz.get('uptime_seconds', 0.0)):.0f}s"
    )
    if age is not None:
        header += f", heartbeat {float(age):.1f}s ago"
    lines.append(header)

    profiler = healthz.get("profiler") or {}
    if profiler.get("sampling"):
        lines.append(
            "profiler: SAMPLING ACTIVE "
            f"({int(profiler.get('samples_collected', 0))} samples "
            "collected)"
        )

    pending = int(queue.get("pending_cells", 0))
    running = int(queue.get("running_cells", 0))
    limit = int(queue.get("max_pending_cells", 0) or 0)
    line = f"queue: {pending} pending / {running} running"
    if limit:
        line += f" (limit {limit})"
    lines.append(line)
    if limit:
        lines.append(
            "[" + _bar(pending / limit, min(width - 2, 60)) + "]"
        )

    per_tenant = queue.get("pending_by_tenant") or {}
    if per_tenant:
        parts = ", ".join(
            f"{tenant}={count}"
            for tenant, count in sorted(per_tenant.items())
        )
        lines.append(f"tenants pending: {parts}")
    states = queue.get("jobs_by_state") or {}
    if states:
        parts = ", ".join(
            f"{count} {state}"
            for state, count in sorted(states.items())
        )
        lines.append(f"jobs: {parts}")

    computed = int(queue.get("cells_computed_total", 0))
    hits = int(queue.get("dedup_hits_total", 0))
    served = computed + hits
    line = f"cells: {computed} computed, {hits} dedup hits"
    if served:
        line += f" ({hits / served:.0%} dedup rate)"
    line += f", {int(queue.get('cached_cells', 0))} cached"
    lines.append(line)

    p95 = totals.get("serve.admission_to_first_record_p95_seconds")
    requests = totals.get("serve.http_requests")
    if p95 is not None or requests is not None:
        parts = []
        if p95 is not None:
            parts.append(f"first-record p95 {float(p95):.3f}s")
        if requests is not None:
            parts.append(f"{int(requests)} http requests")
        rejected = totals.get("serve.admission_rejected")
        if rejected:
            parts.append(f"{int(rejected)} rejected")
        lines.append("slo: " + ", ".join(parts))

    if rules is not None:
        findings = rules.evaluate(totals, subject="serve")
        if findings:
            for finding in findings[:5]:
                message = finding.message
                budget = max(width - 6, 20)
                if len(message) > budget:
                    message = message[: budget - 3] + "..."
                lines.append(f"  [{finding.severity}] {message}")
        else:
            lines.append("rules: none firing")
    return "\n".join(lines) + "\n"


def top_loop(
    fetch: Callable[[], Dict[str, object]],
    rules: Optional[RuleSet] = None,
    ticks: Optional[int] = None,
    interval: float = 1.0,
    out: Optional[TextIO] = None,
    sleep: Callable[[float], None] = time.sleep,
    ansi: bool = True,
) -> Dict[str, object]:
    """Tick-driven ops monitor loop; returns the final status.

    Each tick calls ``fetch()`` and writes one frame to ``out``
    (prefixed with an ANSI clear when ``ansi``). Runs for ``ticks``
    ticks (``None`` = forever — the daemon, unlike a sweep, has no
    completion); inject ``fetch``/``sleep``/``out`` to test without a
    daemon, terminal or wall clock.
    """
    status: Dict[str, object] = {}
    tick = 0
    while True:
        status = fetch()
        if out is not None:
            frame = render_top_frame(status, rules=rules)
            out.write((_CLEAR if ansi else "") + frame)
            out.flush()
        tick += 1
        if ticks is not None and tick >= ticks:
            break
        sleep(interval)
    return status
