"""Declarative alert rules over catalog metric names.

A rule file is JSON::

    {
      "rules": [
        {"name": "no-lost-messages", "kind": "threshold",
         "metric": "cluster.lost_messages", "op": ">", "value": 0,
         "severity": "critical",
         "message": "messages were dropped during the sweep"},
        {"name": "recovery-bounded", "kind": "ratio",
         "metric": "cluster.phase_seconds",
         "denominator": "distgnn.epoch_seconds",
         "op": ">", "value": 10.0, "severity": "warning"},
        {"name": "traffic-recorded", "kind": "absence",
         "metric": "cluster.bytes_sent", "severity": "warning"}
      ]
    }

Three predicate kinds:

``threshold``
    Fires when ``totals[metric] <op> value``. A metric absent from the
    totals is *not* evaluated (use ``absence`` to demand presence).
``ratio``
    Fires when ``totals[metric] / totals[denominator] <op> value``;
    skipped when the denominator is missing or zero.
``absence``
    Fires when the metric is missing or exactly zero — "this sweep
    should have produced X".

Metric names are validated against :mod:`repro.obs.catalog` at load
time, so a typo fails fast instead of silently never firing.
Severities are the analysis stack's (:data:`SEVERITIES`); firings are
ordinary :class:`Finding` objects (``kind="alert:<predicate>"``), so
they sort, serialize and render through the same machinery as anomaly
findings.
"""

from __future__ import annotations

import json
import operator
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..catalog import find_spec
from ..analysis.findings import SEVERITIES, Finding

__all__ = [
    "AlertRule",
    "RuleSet",
    "SweepAborted",
    "record_totals",
    "severity_at_least",
]

RULE_KINDS = ("threshold", "ratio", "absence")

_OPS = {
    ">": operator.gt,
    ">=": operator.ge,
    "<": operator.lt,
    "<=": operator.le,
}

_SEVERITY_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}


class SweepAborted(RuntimeError):
    """Raised by the sweep's cell callback to stop the sweep early.

    Carries the findings that crossed the ``--abort-on`` bar; the
    driver turns it into a nonzero exit naming the fired rule.
    """

    def __init__(self, findings: Sequence[Finding]) -> None:
        names = ", ".join(
            sorted({
                str(f.context.get("rule", f.subject)) for f in findings
            })
        )
        super().__init__(
            f"sweep aborted: alert rule(s) fired at or above the "
            f"abort severity: {names}"
        )
        self.findings = list(findings)


def severity_at_least(severity: str, floor: str) -> bool:
    """True when ``severity`` is at or above ``floor``."""
    return _SEVERITY_RANK[severity] >= _SEVERITY_RANK[floor]


@dataclass(frozen=True)
class AlertRule:
    """One declarative predicate over a metric-totals mapping."""

    name: str
    kind: str
    metric: str
    severity: str = "warning"
    op: str = ">"
    value: float = 0.0
    denominator: Optional[str] = None
    message: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("alert rule needs a non-empty name")
        if self.kind not in RULE_KINDS:
            raise ValueError(
                f"rule {self.name!r}: unknown kind {self.kind!r}; "
                f"expected one of {RULE_KINDS}"
            )
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"rule {self.name!r}: unknown severity "
                f"{self.severity!r}; expected one of {SEVERITIES}"
            )
        if self.op not in _OPS:
            raise ValueError(
                f"rule {self.name!r}: unknown op {self.op!r}; "
                f"expected one of {tuple(_OPS)}"
            )
        find_spec(self.metric)  # raises KeyError on a non-catalog name
        if self.kind == "ratio":
            if not self.denominator:
                raise ValueError(
                    f"rule {self.name!r}: ratio rules need a "
                    "denominator metric"
                )
            find_spec(self.denominator)
        elif self.denominator:
            raise ValueError(
                f"rule {self.name!r}: only ratio rules take a "
                "denominator"
            )

    def evaluate(
        self, totals: Mapping[str, float], subject: str
    ) -> Optional[Finding]:
        """Evaluate against one totals mapping; a firing or ``None``."""
        if self.kind == "absence":
            present = float(totals.get(self.metric, 0.0))
            if present != 0.0:
                return None
            observed = 0.0
            detail = f"{self.metric} is absent or zero"
        else:
            if self.metric not in totals:
                return None
            observed = float(totals[self.metric])
            if self.kind == "ratio":
                denom = float(totals.get(self.denominator, 0.0))
                if denom == 0.0:
                    return None
                observed = observed / denom
            if not _OPS[self.op](observed, self.value):
                return None
            detail = (
                f"{self.metric}"
                + (f" / {self.denominator}" if self.kind == "ratio"
                   else "")
                + f" = {observed:.6g} {self.op} {self.value:.6g}"
            )
        message = self.message or detail
        return Finding(
            kind=f"alert:{self.kind}",
            severity=self.severity,
            subject=subject,
            message=f"rule {self.name!r}: {message} ({detail})",
            value=observed,
            threshold=self.value,
            context={
                "rule": self.name,
                "metric": self.metric,
                "op": self.op,
            },
        )

    def to_dict(self) -> Dict[str, object]:
        """Plain JSON-able form (round-trips through ``from_dict``)."""
        data: Dict[str, object] = {
            "name": self.name, "kind": self.kind,
            "metric": self.metric, "severity": self.severity,
            "op": self.op, "value": self.value,
        }
        if self.denominator:
            data["denominator"] = self.denominator
        if self.message:
            data["message"] = self.message
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "AlertRule":
        """Build and validate a rule from its JSON form."""
        known = {
            "name", "kind", "metric", "severity", "op", "value",
            "denominator", "message",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"alert rule has unknown keys: {sorted(unknown)}"
            )
        return cls(
            name=str(data.get("name", "")),
            kind=str(data.get("kind", "threshold")),
            metric=str(data.get("metric", "")),
            severity=str(data.get("severity", "warning")),
            op=str(data.get("op", ">")),
            value=float(data.get("value", 0.0)),
            denominator=(
                str(data["denominator"])
                if data.get("denominator") else None
            ),
            message=str(data.get("message", "")),
        )


@dataclass(frozen=True)
class RuleSet:
    """An ordered, validated collection of alert rules."""

    rules: Tuple[AlertRule, ...] = ()

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RuleSet":
        """Parse ``{"rules": [...]}``; every rule is validated."""
        raw = data.get("rules")
        if not isinstance(raw, list):
            raise ValueError(
                'rules file must be an object with a "rules" list'
            )
        rules = tuple(AlertRule.from_dict(entry) for entry in raw)
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names):
            raise ValueError("alert rule names must be unique")
        return cls(rules)

    @classmethod
    def load(cls, path: str) -> "RuleSet":
        """Load and validate a JSON rules file."""
        with open(path, encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def evaluate(
        self, totals: Mapping[str, float], subject: str
    ) -> List[Finding]:
        """All firings over one totals mapping, in rule order."""
        findings = []
        for rule in self.rules:
            finding = rule.evaluate(totals, subject)
            if finding is not None:
                findings.append(finding)
        return findings

    def evaluate_records(self, records: Sequence) -> List[Finding]:
        """Evaluate every rule against every record's totals."""
        findings: List[Finding] = []
        for record in records:
            subject = (
                f"{record.graph}/{record.partitioner}"
                f"/k={record.num_machines}"
            )
            findings.extend(
                self.evaluate(record_totals(record), subject)
            )
        return findings


def record_totals(record) -> Dict[str, float]:
    """Map one sweep record onto catalog metric names for rules.

    Works on real record dataclasses and on the watch monitor's event
    shims alike (duck-typed): only fields the record actually carries
    appear in the mapping, so rules over missing metrics simply don't
    evaluate (or fire, for ``absence`` rules).
    """
    metrics = getattr(record, "obs_metrics", None) or {}
    is_distdgl = hasattr(record, "degraded_steps")
    totals: Dict[str, float] = {
        "cluster.lost_messages": float(
            metrics.get(
                "lost_messages_total",
                getattr(record, "lost_messages", 0),
            )
        ),
        "cluster.bytes_sent": float(
            metrics.get(
                "bytes_sent_total", record.network_bytes
            )
        ),
        "cluster.phase_seconds": float(
            getattr(record, "makespan_seconds", 0.0)
        ),
    }
    engine = "distdgl" if is_distdgl else "distgnn"
    totals[f"{engine}.epoch_seconds"] = float(record.epoch_seconds)
    totals[f"{engine}.network_bytes"] = float(record.network_bytes)
    if "memory_peak_bytes_max" in metrics:
        totals["cluster.memory_peak_bytes"] = float(
            metrics["memory_peak_bytes_max"]
        )
    if is_distdgl:
        totals["distdgl.degraded_steps"] = float(record.degraded_steps)
    else:
        totals["distgnn.replayed_epochs"] = float(
            getattr(record, "reexecuted_epochs", 0)
        )
    return totals
