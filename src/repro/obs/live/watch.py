"""The live sweep monitor behind ``repro obs watch``.

:class:`WatchState` folds bus events into a keyed, order-insensitive
model of the sweep (cells, records, alerts); because every update is a
keyed overwrite and the anomaly findings are recomputed from the full
record set on demand, the state reached from a parallel sweep's
interleaved streams is *identical* to the state from a serial sweep —
:meth:`WatchState.to_deterministic_json` is byte-stable across worker
counts (tested).

Rendering is a pure function (:func:`render_frame`) from state + clock
to a plain-ANSI string, and :func:`watch_loop` drives it tick by tick
with an injectable clock/sleep/output, so the whole monitor is testable
without a terminal or a wall clock. The streaming anomaly findings use
the *same* :class:`~repro.obs.analysis.anomaly.AnomalyThresholds` the
post-hoc analyzer uses, so what you see live is what ``repro obs
analyze`` reports afterwards.
"""

from __future__ import annotations

import json
import time
from typing import Callable, Dict, List, Optional, TextIO, Tuple

from ..analysis.anomaly import AnomalyThresholds, detect_record_anomalies
from ..analysis.findings import Finding, sort_findings
from .bus import WALL_ONLY_KINDS, BusTailer
from .rules import RuleSet, record_totals

__all__ = ["WatchState", "render_frame", "watch_loop"]

#: ANSI: clear screen + home. The only escape codes the monitor uses.
_CLEAR = "\x1b[2J\x1b[H"


class _ParamsShim:
    """Duck-types ``TrainingParams.label()`` for replayed events."""

    def __init__(self, label: str) -> None:
        self._label = label

    def label(self) -> str:
        return self._label


class _RecordShim:
    """A sweep record reconstructed from one ``record-done`` event.

    Carries exactly the attributes the anomaly detector and the alert
    rules read; ``degraded_steps`` is set only for DistDGL records
    because the detector infers the engine from its presence.
    """

    def __init__(self, event: Dict[str, object]) -> None:
        self.graph = str(event.get("graph", ""))
        self.partitioner = str(event.get("partitioner", ""))
        self.num_machines = int(event.get("k", 0))
        self.params = _ParamsShim(str(event.get("params_label", "")))
        self.epoch_seconds = float(event.get("epoch_seconds", 0.0))
        self.makespan_seconds = float(
            event.get("makespan_seconds", 0.0)
        )
        self.recovery_seconds = float(
            event.get("recovery_seconds", 0.0)
        )
        self.network_bytes = float(event.get("network_bytes", 0.0))
        self.lost_messages = int(event.get("lost_messages", 0))
        self.crashes = int(event.get("crashes", 0))
        if event.get("engine") == "distdgl":
            self.degraded_steps = int(event.get("degraded_steps", 0))
        metrics = {}
        for key in (
            "bytes_sent_total",
            "lost_messages_total",
            "memory_peak_bytes_max",
        ):
            if key in event:
                metrics[key] = event[key]
        if "phase_seconds" in event:
            # The bus ships phases as ordered [name, seconds] pairs
            # (see bus.record_event_fields); rebuild the dict in the
            # original insertion order so float summations downstream
            # are bit-identical to the source record's.
            metrics["phase_seconds"] = {
                str(name): float(seconds)
                for name, seconds in event["phase_seconds"]
            }
        self.obs_metrics = metrics or None


class WatchState:
    """Keyed fold of bus events into the current sweep picture."""

    def __init__(
        self,
        thresholds: AnomalyThresholds = AnomalyThresholds(),
        rules: Optional[RuleSet] = None,
    ) -> None:
        self.thresholds = thresholds
        self.rules = rules
        self.total_cells: Optional[int] = None
        #: cell index -> {engine, graph, partitioner, k, records_total,
        #: records_done, status, worker, wall_seconds}
        self.cells: Dict[int, Dict[str, object]] = {}
        #: (cell, index) -> record-done event
        self.records: Dict[Tuple[int, int], Dict[str, object]] = {}
        #: Alert findings delivered over the bus (coordinator rules).
        self.bus_findings: List[Finding] = []
        self._bus_finding_keys: set = set()
        #: worker id -> last wall-clock timestamp seen (liveness only).
        self.workers: Dict[str, float] = {}
        #: Undecodable lines the tailer dropped (surfaced in the frame).
        self.skipped = 0

    # ---------------------------------------------------------- events
    def apply(self, event: Dict[str, object]) -> None:
        """Fold one bus event in (idempotent keyed overwrite)."""
        kind = event.get("kind")
        worker = event.get("worker")
        t_wall = event.get("t_wall")
        if worker is not None and t_wall is not None:
            previous = self.workers.get(str(worker), 0.0)
            self.workers[str(worker)] = max(previous, float(t_wall))
        if kind in WALL_ONLY_KINDS:
            return
        if kind == "sweep-start":
            self.total_cells = int(event.get("cells", 0))
        elif kind == "cell-start":
            cell = int(event.get("cell", -1))
            entry = self.cells.setdefault(cell, {})
            entry.update({
                "engine": event.get("engine"),
                "graph": event.get("graph"),
                "partitioner": event.get("partitioner"),
                "k": int(event.get("k", 0)),
                "records_total": int(event.get("records_total", 0)),
                "worker": worker,
            })
            entry.setdefault("status", "running")
        elif kind == "record-done":
            cell = int(event.get("cell", -1))
            index = int(event.get("index", 0))
            self.records[(cell, index)] = event
        elif kind == "cell-done":
            cell = int(event.get("cell", -1))
            entry = self.cells.setdefault(cell, {})
            entry["status"] = "done"
            entry["records_done"] = int(event.get("records", 0))
            entry["wall_seconds"] = float(
                event.get("wall_seconds", 0.0)
            )
        elif kind == "finding":
            key = json.dumps(event.get("finding"), sort_keys=True)
            if key not in self._bus_finding_keys:
                self._bus_finding_keys.add(key)
                self.bus_findings.append(
                    Finding.from_dict(event["finding"])
                )

    def apply_all(self, events) -> None:
        """Fold a batch of events (one tailer poll)."""
        for event in events:
            self.apply(event)

    # ----------------------------------------------------- derived view
    def records_done(self, cell: int) -> int:
        """Finished records of one cell (event count beats cell-done)."""
        counted = sum(1 for c, _ in self.records if c == cell)
        reported = int(self.cells.get(cell, {}).get("records_done", 0))
        return max(counted, reported)

    def cells_done(self) -> int:
        """Cells whose ``cell-done`` event has arrived."""
        return sum(
            1 for entry in self.cells.values()
            if entry.get("status") == "done"
        )

    def complete(self) -> bool:
        """True once every announced cell reported done."""
        return (
            self.total_cells is not None
            and self.total_cells > 0
            and self.cells_done() >= self.total_cells
        )

    def shims(self) -> List[_RecordShim]:
        """Record shims in deterministic ``(cell, index)`` order."""
        return [
            _RecordShim(self.records[key])
            for key in sorted(self.records)
        ]

    def findings(self) -> List[Finding]:
        """Current findings: online anomalies over every finished
        record (same thresholds as the post-hoc analyzer), alert-rule
        firings evaluated locally when the watcher has rules, and any
        findings the coordinator pushed over the bus — deduplicated and
        in canonical severity order."""
        shims = self.shims()
        findings = detect_record_anomalies(shims, self.thresholds)
        if self.rules is not None:
            findings.extend(self.rules.evaluate_records(shims))
        merged: Dict[str, Finding] = {}
        for finding in findings + self.bus_findings:
            merged.setdefault(
                json.dumps(finding.to_dict(), sort_keys=True), finding
            )
        return sort_findings(list(merged.values()))

    def phase_mix(self) -> Dict[str, float]:
        """Aggregate simulated phase seconds over finished records."""
        mix: Dict[str, float] = {}
        for key in sorted(self.records):
            for phase, seconds in (
                self.records[key].get("phase_seconds") or ()
            ):
                mix[phase] = mix.get(phase, 0.0) + float(seconds)
        return mix

    def eta_seconds(self) -> Optional[float]:
        """Remaining-cells ETA from completed-cell wall times."""
        if self.total_cells is None:
            return None
        walls = [
            float(entry["wall_seconds"])
            for entry in self.cells.values()
            if entry.get("status") == "done"
            and "wall_seconds" in entry
        ]
        if not walls:
            return None
        remaining = max(self.total_cells - self.cells_done(), 0)
        return remaining * (sum(walls) / len(walls))

    # ----------------------------------------------------- determinism
    def deterministic_summary(self) -> Dict[str, object]:
        """The simulated-only view of the sweep: everything wall-clock
        or worker-identity is excluded, so a serial and a parallel run
        of the same sweep summarize byte-identically."""
        cells = {}
        for cell in sorted(self.cells):
            entry = self.cells[cell]
            cells[str(cell)] = {
                "engine": entry.get("engine"),
                "graph": entry.get("graph"),
                "partitioner": entry.get("partitioner"),
                "k": entry.get("k"),
                "records_total": entry.get("records_total", 0),
                "records_done": self.records_done(cell),
                "status": entry.get("status"),
            }
        return {
            "schema": 1,
            "total_cells": self.total_cells,
            "cells": cells,
            "records_done": len(self.records),
            "epoch_seconds": {
                f"{c}/{i}": float(
                    event.get("epoch_seconds", 0.0)
                )
                for (c, i), event in sorted(self.records.items())
            },
            "phase_mix": {
                phase: float(seconds)
                for phase, seconds in sorted(
                    self.phase_mix().items()
                )
            },
            "findings": [f.to_dict() for f in self.findings()],
        }

    def to_deterministic_json(self) -> str:
        """Canonical JSON of :meth:`deterministic_summary`."""
        return json.dumps(
            self.deterministic_summary(), indent=2, sort_keys=True
        ) + "\n"


def _bar(fraction: float, width: int) -> str:
    fraction = min(max(fraction, 0.0), 1.0)
    filled = int(round(fraction * width))
    return "#" * filled + "-" * (width - filled)


def render_frame(
    state: WatchState,
    now: Optional[float] = None,
    width: int = 78,
) -> str:
    """Render one monitor frame as plain text (pure function).

    ``now`` is a wall-clock timestamp (``time.time`` scale) used only
    for heartbeat ages; omit it for a clockless frame.
    """
    lines: List[str] = []
    total = state.total_cells
    done = state.cells_done()
    header = f"sweep: {done}/{total if total is not None else '?'} cells"
    header += f", {len(state.records)} records"
    eta = state.eta_seconds()
    if eta is not None and not state.complete():
        header += f", eta ~{eta:.0f}s"
    if state.complete():
        header += " [complete]"
    if state.skipped:
        header += f" ({state.skipped} corrupt lines skipped)"
    lines.append(header)
    if total:
        lines.append("[" + _bar(done / total, min(width - 2, 60)) + "]")

    # Per-worker liveness + current cell.
    running = {
        entry.get("worker"): (cell, entry)
        for cell, entry in sorted(state.cells.items())
        if entry.get("status") == "running"
    }
    for worker in sorted(state.workers):
        age = ""
        if now is not None:
            age = f" (seen {max(now - state.workers[worker], 0.0):.0f}s ago)"
        cell_entry = running.get(worker)
        if cell_entry is not None:
            cell, entry = cell_entry
            progress = state.records_done(cell)
            label = (
                f"cell {cell}: {entry.get('engine')}"
                f"/{entry.get('graph')}/{entry.get('partitioner')}"
                f"/k={entry.get('k')}"
                f" [{progress}/{entry.get('records_total', '?')}]"
            )
        else:
            label = "idle"
        lines.append(f"  {worker}: {label}{age}")

    mix = state.phase_mix()
    total_seconds = sum(mix.values())
    if total_seconds > 0:
        top = sorted(
            mix.items(), key=lambda kv: (-kv[1], kv[0])
        )[:5]
        parts = ", ".join(
            f"{phase} {seconds / total_seconds:.0%}"
            for phase, seconds in top
        )
        lines.append(f"phase mix: {parts}")

    findings = state.findings()
    if findings:
        by_severity: Dict[str, int] = {}
        for finding in findings:
            by_severity[finding.severity] = (
                by_severity.get(finding.severity, 0) + 1
            )
        counts = ", ".join(
            f"{count} {severity}"
            for severity, count in sorted(by_severity.items())
        )
        lines.append(f"findings: {counts}")
        for finding in findings[:5]:
            message = finding.message
            budget = max(width - 6, 20)
            if len(message) > budget:
                message = message[: budget - 3] + "..."
            lines.append(f"  [{finding.severity}] {message}")
    else:
        lines.append("findings: none")
    return "\n".join(lines) + "\n"


def watch_loop(
    tailer: BusTailer,
    state: Optional[WatchState] = None,
    ticks: Optional[int] = None,
    interval: float = 1.0,
    out: Optional[TextIO] = None,
    clock: Callable[[], float] = time.time,
    sleep: Callable[[float], None] = time.sleep,
    ansi: bool = True,
    stop_when_complete: bool = True,
) -> WatchState:
    """Tick-driven monitor loop; returns the final state.

    Each tick polls the tailer, folds the new events, and writes one
    frame to ``out`` (prefixed with an ANSI clear when ``ansi``). Runs
    for ``ticks`` ticks, or until the sweep completes when ``ticks`` is
    ``None``; inject ``clock``/``sleep``/``out`` to test without a
    terminal or wall clock.
    """
    state = state or WatchState()
    tick = 0
    while True:
        state.apply_all(tailer.poll())
        state.skipped = tailer.skipped
        if out is not None:
            frame = render_frame(state, now=clock())
            out.write((_CLEAR if ansi else "") + frame)
            out.flush()
        tick += 1
        if ticks is not None and tick >= ticks:
            break
        if ticks is None and stop_when_complete and state.complete():
            break
        sleep(interval)
    return state
