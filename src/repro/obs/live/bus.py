"""The sweep telemetry bus: per-worker JSONL streams plus a tailer.

Writers (sweep workers and the coordinator) append events to their own
file in a shared bus directory — ``events-<writer>.jsonl``, one compact
JSON object per line via :class:`~repro.obs.sink.JsonlSink`, so no file
is ever written by two processes and a crashed worker loses at most its
final partial line. The tailer merges all streams incrementally.

Determinism. Every cell-scoped event carries the cell's *global index*
(submission order of the sweep: graphs outermost, then machine counts,
then partitioners — the same order the serial runner uses) and a
per-cell sequence number ``cseq``. One worker owns a whole cell, so
``(cell, cseq)`` is unique and totally orders the merged stream the
same way regardless of worker count or interleaving. Wall-clock fields
(``t_wall``, ``wall_seconds``) and worker identities ride along for the
live display but are excluded from all deterministic state; events that
are *only* wall-clock (heartbeats) are excluded from the deterministic
merge entirely.

Event kinds:

``sweep-start``
    Coordinator, once: ``{"cells": N, ...}`` — the denominator for all
    progress displays.
``cell-start``
    Worker, per cell: engine/graph/partitioner/k plus
    ``records_total`` (the parameter-grid length).
``record-done``
    Worker, one per finished record, carrying every *simulated* field
    the online anomaly detector and alert rules need (see
    :func:`record_event_fields`).
``cell-done``
    Worker, per cell: record count plus the cell's wall time (the ETA
    input; wall-only, so excluded from deterministic summaries).
``heartbeat``
    Worker liveness; pure wall clock, never merged deterministically.
``finding``
    Coordinator: an alert-rule firing, as a serialized
    :class:`~repro.obs.analysis.findings.Finding`.

Sequence bound. Findings sort after every record of their cell by
riding at ``cseq >= FINDING_CSEQ_BASE`` (100000), which caps a cell at
``FINDING_CSEQ_BASE - 2`` records (cell-start and cell-done each take
one slot). The writer *validates* this bound — ``cell_start`` rejects
a ``records_total`` that could not fit, and every cseq allocation
raises before crossing into the finding range — so an oversized
parameter grid fails loudly instead of silently corrupting the
deterministic merge order.

Lifecycle. Writers are context managers, and every writer registers an
:mod:`atexit` close so worker-process streams are flushed even when the
pool tears the process down without unwinding; ``close`` is idempotent.
"""

from __future__ import annotations

import atexit
import glob
import json
import os
import time
from typing import Dict, Iterator, List, Optional, Tuple

from ..sink import JsonlSink

__all__ = [
    "EVENT_KINDS",
    "WALL_ONLY_KINDS",
    "MAX_CELL_RECORDS",
    "BusWriter",
    "BusTailer",
    "record_event_fields",
    "merge_key",
]

#: Every event kind the bus knows about.
EVENT_KINDS = (
    "sweep-start",
    "cell-start",
    "record-done",
    "cell-done",
    "heartbeat",
    "finding",
)

#: Kinds that exist only for liveness display: they carry no simulated
#: state and are excluded from the deterministic merge.
WALL_ONLY_KINDS = frozenset({"heartbeat"})

#: ``cseq`` offset for coordinator findings, so they sort after every
#: record of their cell no matter how large the parameter grid is.
#: Caps a cell at ``FINDING_CSEQ_BASE - 2`` records (one slot each for
#: cell-start and cell-done); the writer enforces the bound at
#: ``cell_start``/``record_done`` time rather than letting a colliding
#: cseq corrupt the deterministic merge.
FINDING_CSEQ_BASE = 100000

#: Largest parameter grid one cell can carry: cell-start + records +
#: cell-done must all stay below :data:`FINDING_CSEQ_BASE`.
MAX_CELL_RECORDS = FINDING_CSEQ_BASE - 2


def merge_key(event: Dict[str, object]) -> Tuple[int, int]:
    """Deterministic total order for merged cell-scoped events."""
    return (int(event.get("cell", -1)), int(event.get("cseq", 0)))


def record_event_fields(record, engine: str) -> Dict[str, object]:
    """The simulated fields of one sweep record a ``record-done`` event
    carries: everything the online anomaly detector
    (:func:`repro.obs.analysis.anomaly.detect_record_anomalies`) and the
    alert rules (:func:`~.rules.record_totals`) consume. All values are
    simulated quantities, so serial and parallel sweeps emit identical
    payloads.
    """
    metrics = getattr(record, "obs_metrics", None) or {}
    fields: Dict[str, object] = {
        "engine": engine,
        "graph": record.graph,
        "partitioner": record.partitioner,
        "k": record.num_machines,
        "params_label": record.params.label(),
        "epoch_seconds": float(record.epoch_seconds),
        "makespan_seconds": float(
            getattr(record, "makespan_seconds", 0.0)
        ),
        "recovery_seconds": float(
            getattr(record, "recovery_seconds", 0.0)
        ),
        "network_bytes": float(record.network_bytes),
        "lost_messages": int(getattr(record, "lost_messages", 0)),
        "crashes": int(getattr(record, "crashes", 0)),
    }
    if engine == "distdgl":
        fields["degraded_steps"] = int(
            getattr(record, "degraded_steps", 0)
        )
    for key in (
        "bytes_sent_total",
        "lost_messages_total",
        "memory_peak_bytes_max",
    ):
        if key in metrics:
            fields[key] = metrics[key]
    if "phase_seconds" in metrics:
        # As ordered [name, seconds] pairs: the sink serializes objects
        # with sorted keys, which would reorder the phase dict and
        # change float-summation order downstream — the replayed dict
        # must sum bit-identically to the original record's.
        fields["phase_seconds"] = [
            [name, float(seconds)]
            for name, seconds in metrics["phase_seconds"].items()
        ]
    return fields


class BusWriter:
    """Appends bus events to this process's stream file.

    ``writer_id`` defaults to ``pid<os.getpid()>`` so concurrent worker
    processes never share a file. The writer assigns ``cseq`` per cell;
    a cell must be driven by a single writer (the sweep runners
    guarantee this: a cell is one executor task).

    Writers close deterministically: use them as a context manager, or
    rely on the :mod:`atexit` hook every writer registers at
    construction (worker pools tear processes down without unwinding
    the stack, so flushing must not depend on ``__del__`` luck).
    ``close`` is idempotent and further events are dropped silently.
    """

    def __init__(self, bus_dir: str, writer_id: Optional[str] = None) -> None:
        os.makedirs(bus_dir, exist_ok=True)
        self.bus_dir = bus_dir
        self.writer_id = writer_id or f"pid{os.getpid()}"
        self.path = os.path.join(
            bus_dir, f"events-{self.writer_id}.jsonl"
        )
        self._sink = JsonlSink(self.path)
        self._cseq: Dict[int, int] = {}
        self.closed = False
        atexit.register(self.close)

    def _next_cseq(self, cell: int) -> int:
        cseq = self._cseq.get(cell, 0)
        if cseq >= FINDING_CSEQ_BASE:
            raise ValueError(
                f"cell {cell} overflowed its event-sequence budget: "
                f"cseq {cseq} would collide with the finding range "
                f"(>= {FINDING_CSEQ_BASE}); cells are capped at "
                f"{MAX_CELL_RECORDS} records"
            )
        self._cseq[cell] = cseq + 1
        return cseq

    def emit(self, event: Dict[str, object]) -> None:
        """Append one raw event (adds the writer id, never raises)."""
        event = dict(event)
        event.setdefault("worker", self.writer_id)
        self._sink.emit(event)

    # -------------------------------------------------------- builders
    def sweep_start(self, cells: int, **meta: object) -> None:
        """Coordinator: announce the sweep and its total cell count."""
        self.emit({
            "kind": "sweep-start", "cell": -1, "cseq": 0,
            "cells": int(cells), "t_wall": time.time(), **meta,
        })

    def cell_start(
        self,
        cell: int,
        engine: str,
        graph: str,
        partitioner: str,
        k: int,
        records_total: int,
    ) -> None:
        """Worker: a cell's parameter grid is starting.

        Rejects a ``records_total`` the cell's cseq budget cannot hold
        (see :data:`MAX_CELL_RECORDS`): failing here, before any event
        is written, beats corrupting the merge order 100000 records in.
        """
        if int(records_total) > MAX_CELL_RECORDS:
            raise ValueError(
                f"cell {cell} declares {records_total} records, above "
                f"the per-cell cap of {MAX_CELL_RECORDS} (record cseqs "
                f"must stay below FINDING_CSEQ_BASE="
                f"{FINDING_CSEQ_BASE} so findings sort after records)"
            )
        self.emit({
            "kind": "cell-start", "cell": int(cell),
            "cseq": self._next_cseq(cell),
            "engine": engine, "graph": graph,
            "partitioner": partitioner, "k": int(k),
            "records_total": int(records_total),
            "t_wall": time.time(),
        })

    def record_done(self, cell: int, index: int, record, engine: str) -> None:
        """Worker: one record of the cell finished."""
        self.emit({
            "kind": "record-done", "cell": int(cell),
            "cseq": self._next_cseq(cell), "index": int(index),
            **record_event_fields(record, engine),
        })

    def cell_done(self, cell: int, records: int, wall_seconds: float) -> None:
        """Worker: the whole cell finished (``wall_seconds`` is real
        elapsed time — the ETA input, excluded from determinism)."""
        self.emit({
            "kind": "cell-done", "cell": int(cell),
            "cseq": self._next_cseq(cell),
            "records": int(records),
            "wall_seconds": float(wall_seconds),
        })

    def heartbeat(self, **extra: object) -> None:
        """Worker liveness ping (wall-only, never merged)."""
        self.emit({
            "kind": "heartbeat", "t_wall": time.time(), **extra,
        })

    def finding(self, cell: int, index: int, finding) -> None:
        """Coordinator: an alert-rule firing for ``cell``."""
        if int(index) < 0:
            raise ValueError(
                f"finding index must be >= 0, got {index}"
            )
        self.emit({
            "kind": "finding", "cell": int(cell),
            "cseq": FINDING_CSEQ_BASE + int(index),
            "finding": finding.to_dict(),
        })

    def close(self) -> None:
        """Flush and close the stream file (idempotent)."""
        self.closed = True
        self._sink.close()

    def __enter__(self) -> "BusWriter":
        """Context-manager entry: the writer itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: close (and flush) the stream."""
        self.close()


class BusTailer:
    """Incremental, resumable reader over every stream in a bus dir.

    Keeps a byte offset per file and only ever consumes
    newline-*terminated* lines, so a line mid-append is left for the
    next poll rather than mis-parsed; an undecodable complete line
    (truncated by a killed writer) is counted in :attr:`skipped` and
    dropped, mirroring :func:`~repro.obs.sink.read_jsonl`. New stream
    files are discovered on every poll.
    """

    def __init__(self, bus_dir: str) -> None:
        self.bus_dir = bus_dir
        self._offsets: Dict[str, int] = {}
        #: Complete-but-undecodable lines dropped so far.
        self.skipped = 0

    def _paths(self) -> List[str]:
        return sorted(
            glob.glob(os.path.join(self.bus_dir, "*.jsonl"))
        )

    def poll(self) -> List[Dict[str, object]]:
        """Return all events appended since the last poll, in file
        order then offset order (callers wanting the deterministic
        order sort accumulated events with :func:`merge_key`)."""
        events: List[Dict[str, object]] = []
        for path in self._paths():
            offset = self._offsets.get(path, 0)
            try:
                with open(path, "rb") as handle:
                    handle.seek(offset)
                    chunk = handle.read()
            except OSError:
                continue
            if not chunk:
                continue
            end = chunk.rfind(b"\n")
            if end < 0:  # no complete line yet
                continue
            complete = chunk[: end + 1]
            self._offsets[path] = offset + len(complete)
            for line in complete.split(b"\n"):
                if not line.strip():
                    continue
                try:
                    events.append(json.loads(line.decode("utf-8")))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    self.skipped += 1
        return events

    def drain(self) -> Iterator[Dict[str, object]]:
        """One full poll as an iterator (convenience for finished
        buses)."""
        return iter(self.poll())
