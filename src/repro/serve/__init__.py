"""The sweep-job service: a multi-tenant daemon over the executor.

``repro serve`` turns the batch sweep pipeline into a long-running
local service. Tenants POST sweep-job specs to an HTTP/JSON API; the
scheduler expands them into cells (the same units the grid runners
use), queues them under priority + per-tenant fair share, deduplicates
identical cells across jobs by content fingerprint, executes them on
the extracted :class:`~repro.experiments.executor.CellExecutor`, and
replays per-job progress onto a per-job telemetry bus that
``repro obs watch`` tails unchanged.

Layers, bottom-up:

* :mod:`.jobs` — :class:`SweepJobSpec` (validated request) and
  :class:`Job` (live state, per-cell results, dedup accounting).
* :mod:`.scheduler` — :class:`SweepScheduler`: admission control
  (bounded pending queue → :class:`QueueFullError` → HTTP 429),
  fair-share queueing, cell dedup, runner threads, bus replay,
  alert-rule aborts, bounded result/job retention.
* :mod:`.server` — the stdlib ``http.server`` front end
  (``POST /jobs``, ``GET /jobs[/<id>]``, ``DELETE /jobs/<id>``,
  ``GET /queue``, ``GET /healthz``, ``POST /shutdown``).
* :mod:`.client` — a urllib client used by ``repro submit`` /
  ``repro jobs``, tests and the CI smoke.

See ``docs/serve.md`` for the API reference and operational notes.
"""

from .client import ServeClient, ServeError
from .jobs import ENGINES, JOB_STATES, Job, SweepJobSpec
from .scheduler import (
    DEFAULT_MAX_CACHED_CELLS,
    DEFAULT_MAX_FINISHED_JOBS,
    DEFAULT_MAX_PENDING_CELLS,
    QueueFullError,
    SweepScheduler,
)
from .server import make_server, serve_forever

__all__ = [
    "ENGINES",
    "JOB_STATES",
    "SweepJobSpec",
    "Job",
    "SweepScheduler",
    "QueueFullError",
    "DEFAULT_MAX_PENDING_CELLS",
    "DEFAULT_MAX_CACHED_CELLS",
    "DEFAULT_MAX_FINISHED_JOBS",
    "make_server",
    "serve_forever",
    "ServeClient",
    "ServeError",
]
