"""Multi-tenant sweep scheduler: priority + fair share + cell dedup.

The scheduler is the daemon's core. Jobs are admitted (bounded queue —
see :class:`QueueFullError`), expanded into cells, and queued under a
two-level discipline:

* **priority** — higher-priority cells always run first;
* **fair share** — within one priority class, tenants take turns
  round-robin, so one tenant's thousand-cell job cannot starve another
  tenant's two-cell job at the same priority.

Cells are deduplicated across jobs by *content key* — the same
fingerprint identity the partition cache uses (PR 1): ``(engine,
graph-fingerprint, partitioner, k, seed, params, fault, epochs)``.
When two jobs contain an identical cell, it computes once and the
result fans out to every subscriber job; completed-cell results stay
in a bounded LRU so a resubmitted sweep is served from cache. Every
simulation is deterministic, so fanned-out records are byte-identical
to a fresh run.

Execution rides the extracted
:class:`~repro.experiments.executor.CellExecutor`: ``workers`` runner
threads each drive one cell at a time (inline for ``workers <= 1``,
through a process pool otherwise). Per-job progress is replayed onto a
per-job telemetry bus directory, so ``repro obs watch <job>/bus``
works unchanged against a running job.

Memory is bounded everywhere a burst could grow it: the pending-cell
queue (admission control), the completed-cell result cache (LRU), and
the finished-job store (oldest evicted first).
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Mapping, Optional, Tuple, Union

from ..costmodel import DEFAULT_COST_MODEL
from ..experiments import save_records
from ..experiments.executor import CellExecutor, CellTask
from ..experiments.parallel import _distdgl_cell, _distgnn_cell
from ..graph import load_dataset, random_split
from ..obs.api import LEVELS
from ..obs.live import BusWriter, RuleSet, severity_at_least
from ..obs.profiling import Profile, ThreadSampler
from ..obs.serve_metrics import ServeMetrics, render_prometheus
from ..obs.sink import JsonlSink
from .jobs import Job, SweepJobSpec

__all__ = [
    "QueueFullError",
    "SweepScheduler",
    "DEFAULT_MAX_PENDING_CELLS",
    "DEFAULT_MAX_CACHED_CELLS",
    "DEFAULT_MAX_FINISHED_JOBS",
]

#: Admission bound: queued (not yet running) cells across all jobs.
DEFAULT_MAX_PENDING_CELLS = 256

#: Completed-cell results kept for cross-job dedup (LRU).
DEFAULT_MAX_CACHED_CELLS = 512

#: Finished jobs kept queryable before eviction (oldest first).
DEFAULT_MAX_FINISHED_JOBS = 64


class QueueFullError(RuntimeError):
    """Admission refused: the pending-cell queue is at capacity.

    ``retry_after`` is a drain-time hint in seconds; the HTTP layer
    maps this to ``429 Too Many Requests`` + ``Retry-After``.
    """

    def __init__(self, pending: int, limit: int, retry_after: int) -> None:
        super().__init__(
            f"queue full: {pending} cells pending (limit {limit}); "
            f"retry in ~{retry_after}s"
        )
        self.pending = pending
        self.limit = limit
        self.retry_after = retry_after


@dataclass
class _Cell:
    """One unique cell: its task, queue position and subscribers."""

    key: Tuple
    task: CellTask
    engine: str
    priority: int
    tenant: str
    state: str = "pending"  # pending | running
    subscribers: List[Tuple[str, int]] = field(default_factory=list)
    wall_seconds: float = 0.0
    enqueued_at: float = field(default_factory=time.perf_counter)
    wait_seconds: float = 0.0


class SweepScheduler:
    """Admission, queueing, dedup and execution of sweep jobs.

    Thread-safe: one lock/condition guards all state; ``workers``
    runner threads execute cells. Construct, :meth:`start`, submit
    jobs, and :meth:`stop` when done (the CLI daemon and tests both
    follow this shape).
    """

    def __init__(
        self,
        workers: int = 1,
        data_dir: Optional[str] = None,
        max_pending_cells: int = DEFAULT_MAX_PENDING_CELLS,
        max_cached_cells: int = DEFAULT_MAX_CACHED_CELLS,
        max_finished_jobs: int = DEFAULT_MAX_FINISHED_JOBS,
        obs_level: str = "off",
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_pending_cells < 1:
            raise ValueError("max_pending_cells must be >= 1")
        if obs_level not in LEVELS:
            raise ValueError(
                f"unknown obs level {obs_level!r}; expected one of "
                f"{LEVELS}"
            )
        self.workers = workers
        self.data_dir = data_dir or tempfile.mkdtemp(
            prefix="repro-serve-"
        )
        self.max_pending_cells = max_pending_cells
        self.max_cached_cells = max_cached_cells
        self.max_finished_jobs = max_finished_jobs
        self.obs_level = obs_level
        # Daemon telemetry lives in a *private* registry (see
        # repro.obs.serve_metrics): the inline cell path shares this
        # process, and records' deterministic obs_metrics summaries
        # must never absorb daemon-side series. The request log rides
        # the sink layer as structured JSONL.
        request_sink = None
        if obs_level != "off":
            os.makedirs(self.data_dir, exist_ok=True)
            request_sink = JsonlSink(
                os.path.join(self.data_dir, "requests.jsonl")
            )
        self.metrics = ServeMetrics(
            enabled=obs_level != "off", sink=request_sink
        )
        #: Per-job server-side trace sinks (trace level only):
        #: admission/dispatch span events keyed by job and tenant.
        self._trace_sinks: Dict[str, JsonlSink] = {}

        self._cond = threading.Condition()
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._rulesets: Dict[str, RuleSet] = {}
        self._buses: Dict[str, BusWriter] = {}
        self._cells: Dict[Tuple, _Cell] = {}
        self._done: "OrderedDict[Tuple, List]" = OrderedDict()
        #: priority -> tenant -> queued cell keys.
        self._queues: Dict[int, Dict[str, Deque[Tuple]]] = {}
        #: priority -> tenant round-robin rotation.
        self._rotation: Dict[int, Deque[str]] = {}
        self._pending_count = 0
        self._running_count = 0
        self._dedup_hits_total = 0
        self._cells_computed_total = 0
        self._job_seq = 0
        self._cell_seq = 0
        self._graphs: Dict[Tuple, object] = {}
        self._splits: Dict[Tuple, object] = {}
        self._executor = CellExecutor(workers)
        self._threads: List[threading.Thread] = []
        self._stop = False
        self._started = False
        #: Wall-clock sampling profiler state (POST /profile). One
        #: capture at a time; cumulative sample count survives capture
        #: windows so /healthz can report profiler activity at every
        #: obs level (tracked outside the metric registry, like the
        #: heartbeat).
        self._profiler_lock = threading.Lock()
        self._sampler: Optional[ThreadSampler] = None
        self._samples_collected = 0

    # ------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Start the runner threads (idempotent)."""
        with self._cond:
            if self._started:
                return
            self._started = True
            self._stop = False
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._runner_loop,
                name=f"serve-runner-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, wait: bool = True) -> None:
        """Stop the runners; with ``wait``, join them and the pool.

        Running cells finish (they cannot be killed mid-simulation);
        queued cells stay queued and would resume on a future
        :meth:`start`. Bus writers for unfinished jobs are closed so
        every stream is flushed.
        """
        with self._cond:
            self._stop = True
            self._started = False
            self._cond.notify_all()
        if wait:
            for thread in self._threads:
                thread.join(timeout=60.0)
        self._threads = []
        self._executor.shutdown(wait=wait)
        self._executor = CellExecutor(self.workers)
        with self._cond:
            for writer in self._buses.values():
                writer.close()
            self._buses.clear()
            for sink in self._trace_sinks.values():
                sink.close()
            self._trace_sinks.clear()
        if wait:
            self.metrics.close()

    # ------------------------------------------------------ admission
    def submit(
        self, spec: Union[SweepJobSpec, Mapping[str, object]]
    ) -> Job:
        """Admit one job (or raise): validate, dedup, queue its cells.

        Raises :class:`ValueError` on an invalid spec and
        :class:`QueueFullError` when the job's fresh cells do not fit
        the pending-cell budget — nothing is partially admitted.
        """
        try:
            if not isinstance(spec, SweepJobSpec):
                spec = SweepJobSpec.from_dict(spec)
            ruleset = None
            if spec.rules is not None:
                ruleset = RuleSet.from_dict(spec.rules)
        except (ValueError, TypeError):
            self.metrics.admission_rejected("invalid-spec")
            raise
        # Load (and cache) the graph outside the lock: slow, read-only.
        graph = self._graph(spec)
        split = self._split(spec, graph) if spec.engine == "distdgl" else None
        cell_specs = spec.cells()
        keys = [self._cell_key(spec, graph, k, name)
                for k, name in cell_specs]
        with self._cond:
            fresh = sum(
                1 for key in keys
                if key not in self._done and key not in self._cells
            )
            if self._pending_count + fresh > self.max_pending_cells:
                self.metrics.admission_rejected("queue-full")
                raise QueueFullError(
                    self._pending_count, self.max_pending_cells,
                    self._retry_after(),
                )
            self._job_seq += 1
            job_id = f"job-{self._job_seq:06d}"
            job_dir = os.path.join(self.data_dir, job_id)
            bus_dir = os.path.join(job_dir, "bus")
            job = Job(id=job_id, spec=spec, bus_dir=bus_dir)
            writer = BusWriter(bus_dir, "server")
            writer.sweep_start(
                spec.num_cells,
                graphs=[spec.graph],
                machine_counts=list(spec.machine_counts),
                configs=len(spec.params),
                job=job_id,
                tenant=spec.tenant,
            )
            self._jobs[job_id] = job
            self._buses[job_id] = writer
            if ruleset is not None:
                self._rulesets[job_id] = ruleset
            self.metrics.job_admitted(spec.tenant)
            if self.obs_level == "trace":
                self._trace_sinks[job_id] = JsonlSink(
                    os.path.join(self.data_dir, job_id, "trace.jsonl")
                )
            cached: List[Tuple[int, Tuple]] = []
            for local, key in enumerate(keys):
                if key in self._done:
                    self._done.move_to_end(key)
                    job.dedup_hits += 1
                    self._dedup_hits_total += 1
                    self.metrics.dedup_hit(spec.tenant)
                    cached.append((local, key))
                elif key in self._cells:
                    self._cells[key].subscribers.append(
                        (job_id, local)
                    )
                    job.dedup_hits += 1
                    self._dedup_hits_total += 1
                    self.metrics.dedup_hit(spec.tenant)
                else:
                    self._enqueue_cell(
                        spec, graph, split, key, local, job_id
                    )
                    self._cells[key].subscribers.append(
                        (job_id, local)
                    )
                    self.metrics.dedup_miss(spec.tenant)
            self._trace_event(
                job_id, "span", "serve.admission",
                cells=len(keys), dedup_hits=job.dedup_hits,
            )
            if any(r is None for r in job.results):
                job.state = "running" if self._started else "queued"
            # Serve cache hits after the job is fully wired up, so a
            # fully-cached job completes (and closes its bus) cleanly.
            for local, key in cached:
                self._deliver_to(job_id, local, self._done[key], 0.0)
            self._cond.notify_all()
            return job

    def _retry_after(self) -> int:
        """Drain-time hint in seconds for a 429 response."""
        backlog = self._pending_count + self._running_count
        return max(1, (backlog + self.workers - 1) // self.workers)

    def _cell_key(self, spec, graph, k: int, name: str) -> Tuple:
        """Content identity of one cell (dedup key across jobs).

        Every knob that changes a cell's records must appear here —
        the comm config included, since two jobs differing only in
        ``compression`` produce different traffic and must not dedupe
        to one cell. (The *partition* cache key stays comm-free on
        purpose: comm knobs never change the partition, so partitions
        are shared across comm configurations.)
        """
        return (
            spec.engine, graph.fingerprint(), name, int(k),
            spec.seed, spec.num_epochs, spec.params, spec.fault,
            spec.comm,
        )

    def _graph(self, spec):
        """Load (or fetch) the spec's graph; cached per content key."""
        key = (spec.graph, spec.scale, spec.seed)
        graph = self._graphs.get(key)
        if graph is None:
            graph = load_dataset(
                spec.graph, spec.scale, seed=spec.seed
            )
            self._graphs[key] = graph
        return graph

    def _split(self, spec, graph):
        """The deterministic train split a DistDGL spec implies."""
        key = (spec.graph, spec.scale, spec.seed)
        split = self._splits.get(key)
        if split is None:
            split = random_split(graph, seed=spec.seed)
            self._splits[key] = split
        return split

    def _enqueue_cell(self, spec, graph, split, key, local, job_id) -> None:
        """Create a fresh pending cell and queue it (lock held).

        At trace level the cell's engine events stream to a per-cell
        JSONL file under the *submitting* job's directory, stamped with
        that job's ``job``/``tenant`` trace context (dedup subscribers
        that arrive later share the computation, so attribution goes to
        the job that caused it).
        """
        k, name = spec.cells()[local]
        grid = list(spec.params)
        self._cell_seq += 1
        cell_obs, trace_out, trace_ctx = "off", None, None
        profile_out = None
        if self.obs_level == "trace":
            cell_obs = "trace"
            trace_out = os.path.join(
                self.data_dir, job_id,
                f"trace-cell-{self._cell_seq:06d}.jsonl",
            )
            profile_out = os.path.join(
                self.data_dir, job_id,
                f"profile-cell-{self._cell_seq:06d}.json",
            )
            trace_ctx = {"job": job_id, "tenant": spec.tenant}
        if spec.engine == "distgnn":
            task = CellTask(
                index=self._cell_seq, fn=_distgnn_cell, key=key,
                args=(
                    graph, name, k, grid, spec.seed,
                    DEFAULT_COST_MODEL, spec.fault, spec.comm,
                    spec.num_epochs, cell_obs, self._cell_seq, None,
                    trace_out, trace_ctx, profile_out,
                ),
            )
        else:
            task = CellTask(
                index=self._cell_seq, fn=_distdgl_cell, key=key,
                args=(
                    graph, name, k, grid, split, spec.seed,
                    DEFAULT_COST_MODEL, spec.fault, spec.comm,
                    spec.num_epochs, cell_obs, self._cell_seq, None,
                    trace_out, trace_ctx, profile_out,
                ),
            )
        cell = _Cell(
            key=key, task=task, engine=spec.engine,
            priority=spec.priority, tenant=spec.tenant,
        )
        self._cells[key] = cell
        tenants = self._queues.setdefault(spec.priority, {})
        queue = tenants.get(spec.tenant)
        if queue is None:
            queue = tenants[spec.tenant] = deque()
            self._rotation.setdefault(
                spec.priority, deque()
            ).append(spec.tenant)
        elif spec.tenant not in self._rotation[spec.priority]:
            self._rotation[spec.priority].append(spec.tenant)
        queue.append(key)
        self._pending_count += 1

    # ------------------------------------------------------ execution
    def _pop_next_key(self) -> Optional[Tuple]:
        """Next cell to run: highest priority, tenants round-robin
        within it (lock held). Skips stale entries for cells that were
        dropped (cancel/abort) after queueing."""
        for priority in sorted(self._queues, reverse=True):
            tenants = self._queues[priority]
            rotation = self._rotation.get(priority, deque())
            attempts = len(rotation)
            while attempts > 0:
                attempts -= 1
                tenant = rotation[0]
                queue = tenants.get(tenant)
                while queue:
                    key = queue.popleft()
                    cell = self._cells.get(key)
                    if cell is not None and cell.state == "pending":
                        rotation.rotate(-1)
                        self._pending_count -= 1
                        if not queue:
                            del tenants[tenant]
                        return key
                # Tenant drained: retire it from the rotation.
                rotation.popleft()
                tenants.pop(tenant, None)
            if not tenants:
                del self._queues[priority]
                self._rotation.pop(priority, None)
        return None

    def _runner_loop(self) -> None:
        """One runner thread: pick, execute, deliver, repeat.

        Every wakeup (working or idle) refreshes the scheduler
        heartbeat, so ``/healthz`` can report how long ago a runner
        last proved alive.
        """
        while True:
            with self._cond:
                key = None
                while not self._stop:
                    self.metrics.heartbeat()
                    key = self._pop_next_key()
                    if key is not None:
                        break
                    self._cond.wait(0.2)
                if self._stop and key is None:
                    return
                cell = self._cells[key]
                cell.state = "running"
                cell.wait_seconds = max(
                    time.perf_counter() - cell.enqueued_at, 0.0
                )
                self._running_count += 1
                task = cell.task
                for job_id, local in cell.subscribers:
                    self._trace_event(
                        job_id, "span-begin", "serve.dispatch",
                        cell=local,
                        wait_seconds=round(cell.wait_seconds, 9),
                    )
            started = time.perf_counter()
            records = None
            error = None
            try:
                records = self._executor.submit(task).result()
            except BaseException as exc:  # deliver, never kill a runner
                error = f"{type(exc).__name__}: {exc}"
            wall = time.perf_counter() - started
            with self._cond:
                self._running_count -= 1
                self._finish_cell(key, records, error, wall)
                self._cond.notify_all()
            if self._stop:
                return

    def _finish_cell(self, key, records, error, wall: float) -> None:
        """Record a cell result and fan it out (lock held)."""
        cell = self._cells.pop(key, None)
        if cell is None:
            return
        cell.wall_seconds = wall
        if error is None:
            self._cells_computed_total += 1
            self.metrics.cell_finished(
                cell.engine, cell.wait_seconds, wall
            )
            self._done[key] = records
            self._done.move_to_end(key)
            evicted = 0
            while len(self._done) > self.max_cached_cells:
                self._done.popitem(last=False)
                evicted += 1
            self.metrics.cache_evicted(evicted)
        for job_id, local in cell.subscribers:
            if error is not None:
                self._fail_job(job_id, error)
            else:
                self._deliver_to(job_id, local, records, wall)

    def _deliver_to(
        self, job_id: str, local: int, records: List, wall: float
    ) -> None:
        """Land one cell's records on one subscriber job (lock held)."""
        job = self._jobs.get(job_id)
        if job is None or job.finished or job.results[local] is not None:
            return
        job.results[local] = records
        job.cells_done += 1
        spec = job.spec
        self.metrics.cell_served(spec.tenant)
        if job.cells_done == 1:
            self.metrics.first_record(
                max(time.perf_counter() - job.admitted_perf, 0.0)
            )
        self._trace_event(
            job_id, "span-end", "serve.dispatch",
            cell=local, seconds=round(wall, 9),
            records=len(records),
        )
        k, name = spec.cells()[local]
        writer = self._buses.get(job_id)
        if writer is not None:
            graph_name = records[0].graph if records else spec.graph
            writer.cell_start(
                local, spec.engine, graph_name, name, k,
                len(spec.params),
            )
            for index, record in enumerate(records):
                writer.record_done(local, index, record, spec.engine)
            writer.cell_done(local, len(records), wall)
        ruleset = self._rulesets.get(job_id)
        if ruleset is not None:
            firings = ruleset.evaluate_records(records)
            for index, finding in enumerate(firings):
                job.findings.append(finding.to_dict())
                if writer is not None:
                    writer.finding(local, index, finding)
            if spec.abort_on and any(
                severity_at_least(f.severity, spec.abort_on)
                for f in firings
            ):
                self._abort_job(
                    job, "aborted",
                    "alert rule fired at or above "
                    f"{spec.abort_on!r}",
                )
                return
        if all(r is not None for r in job.results):
            self._complete_job(job)

    def _complete_job(self, job: Job) -> None:
        """Mark done, persist records, close the bus (lock held)."""
        job.state = "done"
        job.finished_at = time.time()
        records_path = os.path.join(
            self.data_dir, job.id, "records.json"
        )
        save_records(job.records(), records_path)
        self.metrics.job_finished("done")
        self._close_job_bus(job.id)
        self._close_job_trace(job.id)
        self._evict_finished()

    def _fail_job(self, job_id: str, error: str) -> None:
        """A cell errored: fail the job and drop its queue (lock held)."""
        job = self._jobs.get(job_id)
        if job is None or job.finished:
            return
        job.error = error
        self._abort_job(job, "failed", error)

    def _abort_job(self, job: Job, state: str, reason: str) -> None:
        """Terminal stop: unsubscribe every pending cell (lock held).

        Pending cells this job exclusively owns are dropped from the
        queue immediately — this is the promptness contract behind
        alert-rule aborts; running cells finish in the background and
        only feed the dedup cache.
        """
        job.state = state
        job.error = job.error or reason
        job.finished_at = time.time()
        self.metrics.job_finished(state)
        self._unsubscribe(job.id)
        self._close_job_bus(job.id)
        self._close_job_trace(job.id)
        self._evict_finished()

    def _unsubscribe(self, job_id: str) -> None:
        """Remove the job from every cell; drop orphans (lock held)."""
        orphaned = []
        for key, cell in self._cells.items():
            cell.subscribers = [
                s for s in cell.subscribers if s[0] != job_id
            ]
            if not cell.subscribers and cell.state == "pending":
                orphaned.append(key)
        for key in orphaned:
            del self._cells[key]
            self._pending_count -= 1
            # Queue entries for the key become stale and are skipped
            # by _pop_next_key.

    def _close_job_bus(self, job_id: str) -> None:
        """Flush and drop the job's bus writer (lock held)."""
        writer = self._buses.pop(job_id, None)
        if writer is not None:
            writer.close()

    def _close_job_trace(self, job_id: str) -> None:
        """Flush and drop the job's server trace sink (lock held)."""
        sink = self._trace_sinks.pop(job_id, None)
        if sink is not None:
            sink.close()

    def _trace_event(
        self, job_id: str, kind: str, name: str, **fields
    ) -> None:
        """Emit one span event to the job's server trace (lock held).

        Every event carries the ``job``/``tenant`` root context, so
        admission and dispatch spans link up with the engine spans the
        cell processes write under the same context.
        """
        sink = self._trace_sinks.get(job_id)
        if sink is None:
            return
        job = self._jobs.get(job_id)
        payload: Dict[str, object] = {
            "kind": kind,
            "name": name,
            "t": round(time.perf_counter(), 9),
            "job": job_id,
            "tenant": job.spec.tenant if job else "",
        }
        payload.update(fields)
        sink.emit(payload)

    def _evict_finished(self) -> None:
        """Bound the finished-job store (oldest evicted first)."""
        finished = [
            job_id for job_id, job in self._jobs.items() if job.finished
        ]
        excess = len(finished) - self.max_finished_jobs
        for job_id in finished[:max(excess, 0)]:
            del self._jobs[job_id]
            self._rulesets.pop(job_id, None)
        self.metrics.job_evicted(max(excess, 0))

    # ------------------------------------------------------- queries
    def get(self, job_id: str) -> Job:
        """The job by id; raises :class:`KeyError` when unknown."""
        with self._cond:
            return self._jobs[job_id]

    def jobs(self) -> List[Job]:
        """Every retained job, oldest first."""
        with self._cond:
            return list(self._jobs.values())

    def cancel(self, job_id: str) -> Job:
        """DELETE semantics: stop a queued/running job promptly."""
        with self._cond:
            job = self._jobs[job_id]
            if not job.finished:
                self._abort_job(job, "cancelled", "cancelled by client")
                self._cond.notify_all()
            return job

    def wait(self, job_id: str, timeout: float = 60.0) -> Job:
        """Block until the job reaches a terminal state (tests/CLI)."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                job = self._jobs[job_id]
                if job.finished:
                    return job
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"{job_id} still {job.state!r} after "
                        f"{timeout}s"
                    )
                self._cond.wait(min(remaining, 0.2))

    def queue_snapshot(self) -> Dict[str, object]:
        """The ``GET /queue`` payload: load, limits and accounting."""
        with self._cond:
            per_tenant: Dict[str, int] = {}
            for tenants in self._queues.values():
                for tenant, queue in tenants.items():
                    live = sum(
                        1 for key in queue
                        if key in self._cells
                        and self._cells[key].state == "pending"
                    )
                    per_tenant[tenant] = (
                        per_tenant.get(tenant, 0) + live
                    )
            states: Dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            return {
                "pending_cells": self._pending_count,
                "running_cells": self._running_count,
                "max_pending_cells": self.max_pending_cells,
                "workers": self.workers,
                "obs_level": self.obs_level,
                "pending_by_tenant": per_tenant,
                "jobs_by_state": states,
                "dedup_hits_total": self._dedup_hits_total,
                "cells_computed_total": self._cells_computed_total,
                "cached_cells": len(self._done),
                "retry_after_hint": self._retry_after(),
            }

    def metrics_snapshot(self) -> List[Dict[str, object]]:
        """The daemon metrics snapshot, with state gauges refreshed.

        Queue depths, cache sizes and the retained-job count are
        scheduler state, not events — they are re-read under the lock
        on every snapshot so the exposition always reflects reality
        rather than the last mutation. Empty when the daemon runs with
        observability off.
        """
        with self._cond:
            depth: Dict[Tuple[str, int], int] = {}
            for priority, tenants in self._queues.items():
                for tenant, queue in tenants.items():
                    live = sum(
                        1 for key in queue
                        if key in self._cells
                        and self._cells[key].state == "pending"
                    )
                    if live:
                        entry = (tenant, priority)
                        depth[entry] = depth.get(entry, 0) + live
            self.metrics.refresh_queue(
                depth,
                total=self._pending_count,
                capacity=self.max_pending_cells,
                running=self._running_count,
                cached_cells=len(self._done),
                jobs_retained=len(self._jobs),
            )
        return self.metrics.snapshot()

    def metrics_exposition(self) -> str:
        """The ``GET /metrics`` body (Prometheus text format)."""
        if not self.metrics.enabled:
            return (
                "# repro-serve metrics are disabled; start the daemon "
                "with --obs-level metrics (or trace)\n"
            )
        return render_prometheus(self.metrics_snapshot())

    def healthz_snapshot(self) -> Dict[str, object]:
        """The ``GET /healthz`` payload: readiness + liveness.

        Works at every obs level (the heartbeat is tracked outside the
        metric registry): reports whether the runners were started, the
        age of the last runner heartbeat, and queue saturation — the
        three things a supervisor needs to tell "busy" from "wedged".
        """
        with self._cond:
            pending = self._pending_count
            running = self._running_count
            started = self._started
        age = self.metrics.heartbeat_age()
        return {
            "status": "ok",
            "started": started,
            "workers": self.workers,
            "obs_level": self.obs_level,
            "uptime_seconds": round(self.metrics.uptime(), 3),
            "scheduler_heartbeat_age_seconds": (
                None if age is None else round(age, 3)
            ),
            "pending_cells": pending,
            "running_cells": running,
            "max_pending_cells": self.max_pending_cells,
            "queue_saturation": round(
                pending / self.max_pending_cells, 4
            ),
            "profiler": self.profiler_state(),
        }

    # ------------------------------------------------------ profiling
    def profiler_state(self) -> Dict[str, object]:
        """Profiler readiness for /healthz: active flag + samples.

        ``samples_collected`` is cumulative across capture windows;
        while a capture runs it additionally includes the in-flight
        window's samples so a watcher sees the count move.
        """
        with self._profiler_lock:
            sampler = self._sampler
            collected = self._samples_collected
        if sampler is not None:
            collected += sampler.samples
        return {
            "sampling": sampler is not None,
            "samples_collected": collected,
        }

    def profile(
        self, seconds: float, interval: float = 0.01
    ) -> Profile:
        """Sample every daemon thread for ``seconds``; one at a time.

        Blocks the calling (HTTP handler) thread for the capture
        window — the ThreadingHTTPServer keeps serving meanwhile —
        and returns the folded ``mode="sample"`` profile. Raises
        :class:`RuntimeError` when a capture is already running
        (mapped to 409 by the server).
        """
        if seconds <= 0:
            raise ValueError("seconds must be positive")
        sampler = ThreadSampler(interval=interval)
        with self._profiler_lock:
            if self._sampler is not None:
                raise RuntimeError(
                    "a profiling capture is already running"
                )
            self._sampler = sampler
        try:
            sampler.start()
            time.sleep(seconds)
            sampler.stop()
            profile = sampler.build("serve.sample")
        finally:
            sampler.stop()
            with self._profiler_lock:
                self._samples_collected += sampler.samples
                self._sampler = None
        return profile
