"""The ``repro serve`` HTTP/JSON API over :class:`SweepScheduler`.

Stdlib-only (:mod:`http.server`), bound to localhost by default; this
is a lab-bench daemon, not an internet service. Endpoints:

``POST /jobs``
    Submit a sweep-job spec (the JSON form of
    :class:`~repro.serve.jobs.SweepJobSpec.from_dict`). ``201`` with
    the job summary; ``400`` on an invalid spec; ``429`` with a
    ``Retry-After`` header when the pending-cell queue is full
    (admission control — nothing is partially admitted).
``GET /jobs``
    Every retained job, oldest first.
``GET /jobs/<id>``
    One job's summary; ``?records=1`` embeds the landed records in
    the export JSON schema (same shape ``save_records`` writes).
``DELETE /jobs/<id>``
    Cancel: pending cells drop from the queue promptly; running cells
    finish in the background and only feed the dedup cache.
``GET /queue``
    Scheduler load, limits, fair-share and dedup accounting.
``GET /healthz``
    Readiness + liveness: scheduler start state, last runner-heartbeat
    age, and queue saturation.
``GET /metrics``
    Prometheus text exposition of the daemon's metrics (requires the
    daemon to run with ``--obs-level metrics`` or ``trace``).
``POST /shutdown``
    Ask the daemon to exit (used by the CI smoke and tests).

Every request — success or error — is timed and counted into the
scheduler's :class:`~repro.obs.serve_metrics.ServeMetrics` under a
normalised route template (``/jobs/{id}``, never the raw path), so
``/metrics`` label cardinality stays bounded.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from ..experiments import records_to_json
from .scheduler import QueueFullError, SweepScheduler

__all__ = ["ServeHandler", "make_server", "serve_forever"]

#: Cap on request bodies; a sweep spec is small, so anything larger
#: is a client bug (or abuse) and is rejected with 413.
MAX_BODY_BYTES = 1 << 20

#: Fixed single-segment routes, for route-template normalisation.
_KNOWN_ROUTES = {
    "healthz": "/healthz",
    "metrics": "/metrics",
    "queue": "/queue",
    "jobs": "/jobs",
    "shutdown": "/shutdown",
    "profile": "/profile",
}


class ServeHandler(BaseHTTPRequestHandler):
    """Request handler translating HTTP to scheduler calls.

    The scheduler instance is attached to the *server* object
    (``server.scheduler``) by :func:`make_server`, so one handler class
    serves any scheduler. Every verb dispatches through
    :meth:`_dispatch`, which times the request and feeds the daemon
    metrics (HTTP latency histogram, per-route counters, in-flight
    gauge) plus the structured request log.
    """

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    # ----------------------------------------------------- plumbing
    def log_message(self, format: str, *args: object) -> None:
        """Route http.server's own log lines into the obs sink.

        The base class prints to stderr per request, which tests and
        the daemon's console cannot tolerate; instead the formatted
        line becomes a structured ``http-log`` event when the daemon
        runs with observability on, and is dropped otherwise.
        """
        self.scheduler.metrics.log(format % args)

    @property
    def scheduler(self) -> SweepScheduler:
        """The scheduler this daemon fronts."""
        return self.server.scheduler  # type: ignore[attr-defined]

    def _route(self) -> str:
        """The request path normalised to a bounded route template."""
        path = self.path.partition("?")[0]
        parts = [p for p in path.split("/") if p]
        if len(parts) == 1 and parts[0] in _KNOWN_ROUTES:
            return _KNOWN_ROUTES[parts[0]]
        if len(parts) == 2 and parts[0] == "jobs":
            return "/jobs/{id}"
        return "<other>"

    def _dispatch(self, handler) -> None:
        """Run one verb handler with timing + metrics around it."""
        metrics = self.scheduler.metrics
        self._status = 0
        self._tenant: Optional[str] = None
        metrics.request_started()
        started = time.perf_counter()
        try:
            handler()
        finally:
            metrics.request_finished(
                self.command,
                self._route(),
                self._status,
                max(time.perf_counter() - started, 0.0),
                tenant=self._tenant,
            )

    def _send_json(
        self,
        status: int,
        payload: object,
        headers: Optional[Tuple[Tuple[str, str], ...]] = None,
    ) -> None:
        body = json.dumps(payload, indent=2).encode("utf-8")
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers or ():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str) -> None:
        body = text.encode("utf-8")
        self._status = status
        self.send_response(status)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str, **extra: object) -> None:
        payload = {"error": message}
        payload.update(extra)
        headers = ()
        if "retry_after" in extra:
            headers = (("Retry-After", str(extra["retry_after"])),)
        self._send_json(status, payload, headers)

    def _read_body(self) -> Optional[bytes]:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length > MAX_BODY_BYTES:
            self._error(413, "request body too large")
            return None
        return self.rfile.read(length)

    # ----------------------------------------------------- routing
    def do_GET(self) -> None:  # noqa: N802 (http.server convention)
        """Route ``GET``: jobs, one job, queue, health, metrics."""
        self._dispatch(self._get)

    def do_POST(self) -> None:  # noqa: N802
        """Route ``POST``: job submission and daemon shutdown."""
        self._dispatch(self._post)

    def do_DELETE(self) -> None:  # noqa: N802
        """Route ``DELETE``: job cancellation."""
        self._dispatch(self._delete)

    def _get(self) -> None:
        path, _, query = self.path.partition("?")
        parts = [p for p in path.split("/") if p]
        if parts == ["healthz"]:
            self._send_json(200, self.scheduler.healthz_snapshot())
        elif parts == ["metrics"]:
            self._send_text(200, self.scheduler.metrics_exposition())
        elif parts == ["queue"]:
            self._send_json(200, self.scheduler.queue_snapshot())
        elif parts == ["jobs"]:
            self._send_json(
                200,
                {"jobs": [j.to_dict() for j in self.scheduler.jobs()]},
            )
        elif len(parts) == 2 and parts[0] == "jobs":
            try:
                job = self.scheduler.get(parts[1])
            except KeyError:
                self._error(404, f"no such job: {parts[1]}")
                return
            self._tenant = job.spec.tenant
            payload = job.to_dict()
            if "records=1" in query.split("&"):
                payload["records"] = json.loads(
                    records_to_json(job.records())
                )
            self._send_json(200, payload)
        else:
            self._error(404, f"no such endpoint: {path}")

    def _post(self) -> None:
        path, _, query = self.path.partition("?")
        parts = [p for p in path.split("/") if p]
        if parts == ["shutdown"]:
            self._send_json(200, {"status": "shutting down"})
            threading.Thread(
                target=self.server.shutdown, daemon=True
            ).start()
            return
        if parts == ["profile"]:
            self._profile(query)
            return
        if parts != ["jobs"]:
            self._error(404, f"no such endpoint: {path}")
            return
        body = self._read_body()
        if body is None:
            return
        try:
            data = json.loads(body.decode("utf-8") or "{}")
        except ValueError:
            self._error(400, "request body is not valid JSON")
            return
        if not isinstance(data, dict):
            self._error(400, "job spec must be a JSON object")
            return
        self._tenant = str(data.get("tenant", "default"))
        try:
            job = self.scheduler.submit(data)
        except QueueFullError as exc:
            self._error(
                429, str(exc), retry_after=exc.retry_after,
                pending=exc.pending, limit=exc.limit,
            )
            return
        except (ValueError, TypeError) as exc:
            self._error(400, str(exc))
            return
        self._send_json(201, job.to_dict())

    def _profile(self, query: str) -> None:
        """``POST /profile?seconds=N[&interval=I]``: sample the daemon.

        Blocks this handler thread for the capture window (the
        threading server keeps serving other requests) and returns
        the folded sample profile as JSON. 409 while another capture
        is running; seconds is clamped to (0, 60].
        """
        params = {}
        for pair in query.split("&"):
            key, _, value = pair.partition("=")
            if key:
                params[key] = value
        try:
            seconds = float(params.get("seconds", 1.0))
            interval = float(params.get("interval", 0.01))
        except ValueError:
            self._error(400, "seconds/interval must be numbers")
            return
        if not 0.0 < seconds <= 60.0:
            self._error(400, "seconds must be in (0, 60]")
            return
        if not 0.0 < interval <= 1.0:
            self._error(400, "interval must be in (0, 1]")
            return
        try:
            profile = self.scheduler.profile(seconds, interval)
        except RuntimeError as exc:
            self._error(409, str(exc))
            return
        self._send_json(200, profile.to_dict())

    def _delete(self) -> None:
        parts = [p for p in self.path.partition("?")[0].split("/") if p]
        if len(parts) == 2 and parts[0] == "jobs":
            try:
                job = self.scheduler.cancel(parts[1])
            except KeyError:
                self._error(404, f"no such job: {parts[1]}")
                return
            self._tenant = job.spec.tenant
            self._send_json(200, job.to_dict())
        else:
            self._error(404, "DELETE supports /jobs/<id> only")


def make_server(
    scheduler: SweepScheduler,
    host: str = "127.0.0.1",
    port: int = 0,
) -> ThreadingHTTPServer:
    """A bound (not yet serving) HTTP server fronting ``scheduler``.

    ``port=0`` picks a free port (tests); read it back from
    ``server.server_address``. The caller owns scheduler lifecycle
    (:meth:`~SweepScheduler.start` / :meth:`~SweepScheduler.stop`).
    """
    server = ThreadingHTTPServer((host, port), ServeHandler)
    server.daemon_threads = True
    server.scheduler = scheduler  # type: ignore[attr-defined]
    return server


def serve_forever(
    scheduler: SweepScheduler,
    host: str = "127.0.0.1",
    port: int = 8642,
) -> None:
    """Run the daemon until ``POST /shutdown`` or Ctrl-C.

    Starts the scheduler, serves requests, and on the way out stops
    the scheduler with ``wait=True`` so worker processes are joined
    and every job bus stream is flushed and closed.
    """
    server = make_server(scheduler, host, port)
    scheduler.start()
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        scheduler.stop(wait=True)
