"""Sweep-job specs and job state for the serve daemon.

A *job* is one tenant's sweep request: an engine, a graph, the
partitioners and machine counts to cross, a parameter grid, and
scheduling metadata (priority, tenant). The scheduler expands a job
into *cells* — the same ``(machines, partitioner)`` units the batch
runners use — so a job's records are byte-identical to a serial
``run_full_sweep.py`` of the same spec.

Specs arrive as JSON over the HTTP API and are validated eagerly at
admission: a typo'd partitioner or engine fails the POST with a 400
instead of failing a worker minutes later.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..experiments import (
    CommConfig,
    FaultConfig,
    TrainingParams,
    parameter_grid,
    reduced_grid,
)
from ..graph import DATASET_KEYS
from ..partitioning import (
    EDGE_PARTITIONER_NAMES,
    VERTEX_PARTITIONER_NAMES,
)

__all__ = [
    "ENGINES",
    "JOB_STATES",
    "SweepJobSpec",
    "Job",
]

#: The two training systems a job can target.
ENGINES = ("distgnn", "distdgl")

#: Every state a job moves through. ``aborted`` is the alert-rule
#: early stop; ``cancelled`` is an explicit DELETE.
JOB_STATES = (
    "queued", "running", "done", "failed", "cancelled", "aborted",
)

_GRAPH_SCALES = ("tiny", "small", "medium")

#: Named parameter grids a spec may ask for instead of listing params.
_NAMED_GRIDS = ("reduced", "full")


def _params_from(entry: Mapping[str, object]) -> TrainingParams:
    """Build one TrainingParams from a JSON mapping (strict keys)."""
    known = {f.name for f in dataclasses.fields(TrainingParams)}
    unknown = set(entry) - known
    if unknown:
        raise ValueError(
            f"params entry has unknown keys: {sorted(unknown)}"
        )
    return TrainingParams(**entry)


@dataclass(frozen=True)
class SweepJobSpec:
    """One validated sweep request.

    ``params`` holds the job's parameter grid as a tuple of
    :class:`~repro.experiments.TrainingParams`; JSON specs may instead
    name a built-in grid (``"reduced"`` or ``"full"``). ``priority`` is
    higher-runs-first; ``tenant`` is the fair-share identity.
    """

    engine: str
    graph: str
    partitioners: Tuple[str, ...]
    machine_counts: Tuple[int, ...]
    params: Tuple[TrainingParams, ...]
    scale: str = "tiny"
    seed: int = 0
    num_epochs: int = 1
    priority: int = 0
    tenant: str = "default"
    fault: Optional[FaultConfig] = None
    comm: Optional[CommConfig] = None
    rules: Optional[Dict[str, object]] = field(
        default=None, hash=False, compare=False
    )
    abort_on: Optional[str] = None

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; expected one of "
                f"{ENGINES}"
            )
        if self.graph not in DATASET_KEYS:
            raise ValueError(
                f"unknown graph {self.graph!r}; expected one of "
                f"{tuple(DATASET_KEYS)}"
            )
        if self.scale not in _GRAPH_SCALES:
            raise ValueError(
                f"unknown scale {self.scale!r}; expected one of "
                f"{_GRAPH_SCALES}"
            )
        valid = (
            EDGE_PARTITIONER_NAMES if self.engine == "distgnn"
            else VERTEX_PARTITIONER_NAMES
        )
        if not self.partitioners:
            raise ValueError("spec needs at least one partitioner")
        for name in self.partitioners:
            if name not in valid:
                raise ValueError(
                    f"unknown {self.engine} partitioner {name!r}; "
                    f"expected one of {tuple(valid)}"
                )
        if not self.machine_counts:
            raise ValueError("spec needs at least one machine count")
        for k in self.machine_counts:
            if not isinstance(k, int) or k < 1:
                raise ValueError(
                    f"machine counts must be positive ints, got {k!r}"
                )
        if not self.params:
            raise ValueError("spec needs a non-empty parameter grid")
        if self.num_epochs < 1:
            raise ValueError("num_epochs must be >= 1")
        if self.abort_on is not None:
            from ..obs.analysis.findings import SEVERITIES

            if self.abort_on not in SEVERITIES:
                raise ValueError(
                    f"unknown abort_on severity {self.abort_on!r}; "
                    f"expected one of {SEVERITIES}"
                )
            if self.rules is None:
                raise ValueError("abort_on needs rules")

    @property
    def num_cells(self) -> int:
        """Cells this spec expands into (machines x partitioners)."""
        return len(self.machine_counts) * len(self.partitioners)

    def cells(self) -> List[Tuple[int, str]]:
        """The ``(k, partitioner)`` cells in submission order —
        machine counts outermost, exactly like the grid runners."""
        return [
            (k, name)
            for k in self.machine_counts
            for name in self.partitioners
        ]

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SweepJobSpec":
        """Validate and build a spec from its JSON form."""
        known = {
            "engine", "graph", "partitioners", "machines", "params",
            "scale", "seed", "num_epochs", "priority", "tenant",
            "fault", "comm", "rules", "abort_on",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"job spec has unknown keys: {sorted(unknown)}"
            )
        raw_params = data.get("params", "reduced")
        if isinstance(raw_params, str):
            if raw_params not in _NAMED_GRIDS:
                raise ValueError(
                    f"unknown named grid {raw_params!r}; expected one "
                    f"of {_NAMED_GRIDS} or a list of params objects"
                )
            params = tuple(
                reduced_grid() if raw_params == "reduced"
                else parameter_grid()
            )
        elif isinstance(raw_params, Sequence):
            params = tuple(_params_from(p) for p in raw_params)
        else:
            raise ValueError("params must be a grid name or a list")
        fault = None
        if data.get("fault") is not None:
            fault_data = data["fault"]
            if not isinstance(fault_data, Mapping):
                raise ValueError("fault must be an object")
            fault = FaultConfig(**fault_data)
        comm = None
        if data.get("comm") is not None:
            comm_data = data["comm"]
            if not isinstance(comm_data, Mapping):
                raise ValueError("comm must be an object")
            comm = CommConfig(**comm_data)
        machines = data.get("machines", ())
        return cls(
            engine=str(data.get("engine", "")),
            graph=str(data.get("graph", "")).upper(),
            partitioners=tuple(
                str(p) for p in data.get("partitioners", ())
            ),
            machine_counts=tuple(int(k) for k in machines),
            params=params,
            scale=str(data.get("scale", "tiny")),
            seed=int(data.get("seed", 0)),
            num_epochs=int(data.get("num_epochs", 1)),
            priority=int(data.get("priority", 0)),
            tenant=str(data.get("tenant", "default")),
            fault=fault,
            comm=comm,
            rules=(
                dict(data["rules"])
                if data.get("rules") is not None else None
            ),
            abort_on=(
                str(data["abort_on"])
                if data.get("abort_on") is not None else None
            ),
        )

    def to_dict(self) -> Dict[str, object]:
        """Plain JSON-able form (round-trips through ``from_dict``)."""
        data: Dict[str, object] = {
            "engine": self.engine,
            "graph": self.graph,
            "partitioners": list(self.partitioners),
            "machines": list(self.machine_counts),
            "params": [
                dataclasses.asdict(p) for p in self.params
            ],
            "scale": self.scale,
            "seed": self.seed,
            "num_epochs": self.num_epochs,
            "priority": self.priority,
            "tenant": self.tenant,
        }
        if self.fault is not None:
            data["fault"] = dataclasses.asdict(self.fault)
        if self.comm is not None:
            data["comm"] = dataclasses.asdict(self.comm)
        if self.rules is not None:
            data["rules"] = self.rules
        if self.abort_on is not None:
            data["abort_on"] = self.abort_on
        return data


@dataclass
class Job:
    """One admitted job and its live progress.

    ``results`` holds per-cell record lists in cell order; ``records``
    concatenates them once every cell has landed, giving exactly the
    order the serial grid runner produces. ``dedup_hits`` counts cells
    satisfied by another job's identical cell instead of fresh compute.
    """

    id: str
    spec: SweepJobSpec
    state: str = "queued"
    cells_done: int = 0
    dedup_hits: int = 0
    error: Optional[str] = None
    bus_dir: Optional[str] = None
    created_at: float = field(default_factory=time.time)
    #: Monotonic admission timestamp, for the admission-to-first-record
    #: latency metric (wall-clock ``created_at`` is not duration-safe).
    admitted_perf: float = field(default_factory=time.perf_counter)
    finished_at: Optional[float] = None
    results: List[Optional[List]] = field(default_factory=list)
    findings: List[Dict[str, object]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.results:
            self.results = [None] * self.spec.num_cells

    @property
    def cells_total(self) -> int:
        """Total cells this job expands into."""
        return self.spec.num_cells

    @property
    def finished(self) -> bool:
        """True once the job reached a terminal state."""
        return self.state in ("done", "failed", "cancelled", "aborted")

    def records(self) -> List:
        """All landed records, concatenated in cell order."""
        records: List = []
        for cell_records in self.results:
            if cell_records:
                records.extend(cell_records)
        return records

    def to_dict(self) -> Dict[str, object]:
        """JSON summary served by ``GET /jobs/<id>``."""
        return {
            "id": self.id,
            "state": self.state,
            "tenant": self.spec.tenant,
            "priority": self.spec.priority,
            "engine": self.spec.engine,
            "graph": self.spec.graph,
            "cells_total": self.cells_total,
            "cells_done": self.cells_done,
            "records_done": sum(
                len(r) for r in self.results if r
            ),
            "dedup_hits": self.dedup_hits,
            "error": self.error,
            "bus_dir": self.bus_dir,
            "created_at": self.created_at,
            "finished_at": self.finished_at,
            "findings": list(self.findings),
        }
