"""A small stdlib client for the ``repro serve`` HTTP API.

Used by the ``repro submit`` / ``repro jobs`` CLI commands, the CI
smoke script and the integration tests; also convenient from a
notebook. Only :mod:`urllib` — no new dependencies.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, List, Mapping, Optional

__all__ = ["ServeError", "ServeClient"]


class ServeError(RuntimeError):
    """A non-2xx response from the daemon.

    ``status`` is the HTTP code; ``retry_after`` is populated on 429
    (seconds the server suggests waiting before resubmitting).
    """

    def __init__(
        self,
        status: int,
        message: str,
        retry_after: Optional[int] = None,
    ) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.retry_after = retry_after


class ServeClient:
    """Typed calls against one daemon base URL.

    ``base_url`` is e.g. ``http://127.0.0.1:8642``; a trailing slash
    is tolerated. Every method raises :class:`ServeError` on a non-2xx
    response.
    """

    def __init__(
        self, base_url: str, timeout: float = 30.0
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Mapping[str, object]] = None,
    ) -> Dict[str, object]:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers,
            method=method,
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raw = exc.read().decode("utf-8", "replace")
            try:
                payload = json.loads(raw)
                message = str(payload.get("error", raw))
            except ValueError:
                message = raw
            retry_after = exc.headers.get("Retry-After")
            raise ServeError(
                exc.code, message,
                int(retry_after) if retry_after else None,
            ) from None

    # ------------------------------------------------------- calls
    def healthz(self) -> Dict[str, object]:
        """Liveness probe (``GET /healthz``)."""
        return self._request("GET", "/healthz")

    def metrics(self) -> str:
        """The raw Prometheus exposition text (``GET /metrics``).

        Parse with
        :func:`repro.obs.serve_metrics.parse_prometheus_totals` when
        totals are all you need.
        """
        request = urllib.request.Request(
            self.base_url + "/metrics", method="GET"
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            raise ServeError(
                exc.code, exc.read().decode("utf-8", "replace")
            ) from None

    def submit(self, spec: Mapping[str, object]) -> Dict[str, object]:
        """Submit a job spec (``POST /jobs``); returns its summary."""
        return self._request("POST", "/jobs", body=spec)

    def job(
        self, job_id: str, records: bool = False
    ) -> Dict[str, object]:
        """One job's summary; ``records=True`` embeds its records."""
        suffix = "?records=1" if records else ""
        return self._request("GET", f"/jobs/{job_id}{suffix}")

    def jobs(self) -> List[Dict[str, object]]:
        """Every retained job, oldest first (``GET /jobs``)."""
        return list(self._request("GET", "/jobs")["jobs"])

    def cancel(self, job_id: str) -> Dict[str, object]:
        """Cancel a job (``DELETE /jobs/<id>``)."""
        return self._request("DELETE", f"/jobs/{job_id}")

    def queue(self) -> Dict[str, object]:
        """Scheduler load and accounting (``GET /queue``)."""
        return self._request("GET", "/queue")

    def shutdown(self) -> Dict[str, object]:
        """Ask the daemon to exit (``POST /shutdown``)."""
        return self._request("POST", "/shutdown")

    def profile(
        self, seconds: float = 1.0, interval: Optional[float] = None
    ) -> Dict[str, object]:
        """Sample the daemon's threads (``POST /profile?seconds=N``).

        Blocks for the capture window and returns the profile
        artifact dict (``mode="sample"``; feed it to ``repro obs
        flamegraph``). Raises :class:`ServeError` with status 409
        while another capture is running.
        """
        query = f"?seconds={seconds:g}"
        if interval is not None:
            query += f"&interval={interval:g}"
        return self._request("POST", f"/profile{query}")

    def wait(
        self,
        job_id: str,
        timeout: float = 60.0,
        poll_interval: float = 0.2,
    ) -> Dict[str, object]:
        """Poll until the job reaches a terminal state (or raise).

        Raises :class:`TimeoutError` when the deadline passes with the
        job still queued or running.
        """
        terminal = ("done", "failed", "cancelled", "aborted")
        deadline = time.monotonic() + timeout
        while True:
            summary = self.job(job_id)
            if summary["state"] in terminal:
                return summary
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"{job_id} still {summary['state']!r} after "
                    f"{timeout}s"
                )
            time.sleep(poll_interval)
