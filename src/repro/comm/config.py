"""The communication-reduction configuration threaded through sweeps.

:class:`CommConfig` bundles the three knobs (plain values only, so the
config pickles across the process-parallel runners and serializes into
result records, exactly like :class:`~repro.experiments.FaultConfig`):

* ``compression`` — a codec name from :mod:`.codecs`, applied to
  DistDGL feature fetches and DistGNN halo/gradient exchanges;
* ``refresh_interval`` — DistGNN's cd-r delayed aggregation (Md et
  al., SC 2021): halo syncs run only every r-th epoch, the replicas
  compute on stale aggregates in between. ``r=1`` is fully
  synchronous;
* ``cache_fraction`` — DistDGL's PaGraph-style static feature cache:
  every worker pins the features of the hottest ``cache_fraction`` of
  vertices, so fetching them costs nothing.

Each engine consumes the knobs that exist in its system (DistGNN:
compression + refresh_interval; DistDGL: compression +
cache_fraction) and ignores the rest, mirroring the exemplar systems.
A default-valued config is falsy and leaves every engine on its exact
pre-comm code path, so baselines stay bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from itertools import product
from typing import Dict, Iterator, Sequence

from .codecs import Codec, make_codec

__all__ = ["CommConfig", "CommSummary", "comm_grid",
           "STALENESS_ERROR_PER_EPOCH"]

#: Accuracy-proxy penalty per fully-stale epoch fraction: an epoch
#: computed entirely on stale halo aggregates perturbs the model about
#: this much (relative), linearly scaled by the stale-epoch share.
STALENESS_ERROR_PER_EPOCH = 0.02


@dataclass(frozen=True)
class CommConfig:
    """Communication-reduction settings for one sweep."""

    compression: str = "none"
    refresh_interval: int = 1
    cache_fraction: float = 0.0

    def __post_init__(self) -> None:
        # Eager validation: a typo'd codec fails at config construction
        # (CLI parsing, job admission), not minutes into a sweep.
        make_codec(self.compression)
        if self.refresh_interval < 1:
            raise ValueError(
                f"refresh_interval must be >= 1, got "
                f"{self.refresh_interval}"
            )
        if not 0.0 <= self.cache_fraction < 1.0:
            raise ValueError(
                f"cache_fraction must be in [0, 1), got "
                f"{self.cache_fraction}"
            )

    def __bool__(self) -> bool:
        return (
            self.compression != "none"
            or self.refresh_interval > 1
            or self.cache_fraction > 0.0
        )

    def with_(self, **changes) -> "CommConfig":
        """Copy with the given fields replaced."""
        return replace(self, **changes)

    def codec(self) -> Codec:
        """The codec instance the ``compression`` knob names."""
        return make_codec(self.compression)

    def label(self) -> str:
        """Compact human-readable label for sweep output."""
        return (
            f"{self.compression} r{self.refresh_interval} "
            f"c{self.cache_fraction:g}"
        )


@dataclass
class CommSummary:
    """Accumulated comm accounting over one engine run.

    All quantities are simulated: raw bytes are what the exchanges
    would have moved uncompressed and unskipped, wire bytes are what
    actually hit the fabric, and ``saved_bytes`` is their difference
    (compression savings plus whole exchanges skipped by delayed
    aggregation). ``codec_seconds`` is the total simulated
    encode/decode time; ``stale_epochs`` counts epochs that ran on
    stale halo aggregates.
    """

    raw_bytes: float = 0.0
    wire_bytes: float = 0.0
    codec_seconds: float = 0.0
    stale_epochs: int = 0
    total_epochs: int = 0
    cache_hits: int = 0
    cache_hit_rate: float = 0.0
    codec_error: float = field(default=0.0)

    @property
    def saved_bytes(self) -> float:
        """Bytes kept off the fabric (compression + skipped syncs)."""
        return self.raw_bytes - self.wire_bytes

    @property
    def accuracy_proxy_error(self) -> float:
        """Deterministic accuracy proxy for this run's comm settings.

        The codec's per-value relative error plus a staleness term
        linear in the fraction of epochs that computed on stale
        aggregates. Zero for the baseline configuration.
        """
        staleness = 0.0
        if self.total_epochs > 0 and self.stale_epochs > 0:
            staleness = STALENESS_ERROR_PER_EPOCH * (
                self.stale_epochs / self.total_epochs
            )
        return self.codec_error + staleness

    def as_dict(self) -> Dict[str, float]:
        """Plain JSON-able form embedded in ``obs_metrics``."""
        return {
            "raw_bytes": float(self.raw_bytes),
            "wire_bytes": float(self.wire_bytes),
            "saved_bytes": float(self.saved_bytes),
            "codec_seconds": float(self.codec_seconds),
            "stale_epochs": int(self.stale_epochs),
            "total_epochs": int(self.total_epochs),
            "cache_hits": int(self.cache_hits),
            "cache_hit_rate": float(self.cache_hit_rate),
            "accuracy_proxy_error": float(self.accuracy_proxy_error),
        }


def comm_grid(
    compressions: Sequence[str] = ("none",),
    refresh_intervals: Sequence[int] = (1,),
    cache_fractions: Sequence[float] = (0.0,),
) -> Iterator[CommConfig]:
    """Cross product of the three knobs, compression outermost.

    The sweep scripts expand their comma-list flags through this so
    serial and parallel invocations enumerate configs in one order.
    """
    for compression, interval, fraction in product(
        compressions, refresh_intervals, cache_fractions
    ):
        yield CommConfig(
            compression=compression,
            refresh_interval=int(interval),
            cache_fraction=float(fraction),
        )
