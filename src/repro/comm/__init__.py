"""Communication-reduction subsystem: codecs and sweepable knobs.

The paper measures network traffic per partitioning strategy but never
tries to *shrink* it. This package adds the missing axis: pluggable
payload codecs (quantisation and sparsification with deterministic
accuracy-proxy error terms and a codec-time term charged through the
cost model) plus the configuration object that threads all three
communication-reduction knobs — ``compression``, ``refresh_interval``
(DistGNN's cd-r delayed aggregation) and ``cache_fraction`` (DistDGL's
PaGraph-style static feature cache) — through the grid runners, the
serve daemon and the CLI as first-class sweep dimensions.
"""

from .codecs import (
    CODEC_NAMES,
    Codec,
    FloatHalfCodec,
    Int8Codec,
    NullCodec,
    TopKCodec,
    make_codec,
)
from .config import CommConfig, CommSummary, comm_grid

__all__ = [
    "CODEC_NAMES",
    "Codec",
    "CommConfig",
    "CommSummary",
    "FloatHalfCodec",
    "Int8Codec",
    "NullCodec",
    "TopKCodec",
    "comm_grid",
    "make_codec",
]
