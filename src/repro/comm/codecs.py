"""Payload codecs for the simulated communication paths.

A codec shrinks one exchange's payload before it hits the fabric and
expands it on arrival. Three deterministic quantities summarise each
codec, mirroring how compression enters a real training system:

* ``ratio`` — wire bytes per raw byte, *including* any framing
  overhead (top-k ships indices next to the surviving values);
* ``error_per_value`` — a deterministic accuracy proxy: the relative
  RMS perturbation the lossy transform applies to each exchanged
  value. The simulation never trains a real model, so this term is an
  analytical stand-in that lets the sweep rank codecs on a
  traffic-vs-accuracy plane rather than pretending compression is
  free;
* ``work_factor`` — encode+decode passes over the raw payload,
  charged at the cost model's memory bandwidth
  (:meth:`Codec.codec_seconds`), so aggressive codecs pay visible
  time for their savings.

The :class:`NullCodec` is the identity: ratio 1, zero error, zero
work. Engines branch on :meth:`Codec.is_null` so a null-codec run
executes the exact pre-codec code path — bit-identical baselines, not
multiply-by-1.0 approximations.
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = [
    "CODEC_NAMES",
    "Codec",
    "NullCodec",
    "FloatHalfCodec",
    "Int8Codec",
    "TopKCodec",
    "make_codec",
]


class Codec:
    """One compression scheme for simulated exchanges.

    Subclasses set :attr:`name`, :attr:`ratio`,
    :attr:`error_per_value` and :attr:`work_factor`; everything else
    derives from those four constants, so a codec is fully described
    by deterministic arithmetic — the serial and parallel runners
    reconstruct identical behaviour from the codec name alone.
    """

    #: Registry name (the ``compression`` knob's value).
    name: str = "base"
    #: Wire bytes per raw byte, framing overhead included.
    ratio: float = 1.0
    #: Relative RMS perturbation per exchanged value (accuracy proxy).
    error_per_value: float = 0.0
    #: Encode+decode passes over the raw payload.
    work_factor: float = 0.0

    def is_null(self) -> bool:
        """True for the identity codec (engines skip the codec path)."""
        return self.ratio >= 1.0 and self.work_factor == 0.0

    def wire_bytes(self, raw_bytes: float) -> float:
        """Bytes that actually cross the fabric for ``raw_bytes``."""
        return self.ratio * raw_bytes

    def saved_bytes(self, raw_bytes: float) -> float:
        """Bytes the codec keeps off the fabric for ``raw_bytes``."""
        return raw_bytes - self.wire_bytes(raw_bytes)

    def codec_seconds(self, raw_bytes: float, cost_model) -> float:
        """Simulated encode+decode time for ``raw_bytes`` of payload.

        Charged at the cost model's memory bandwidth: codecs are
        bandwidth-bound transforms, ``work_factor`` passes over the
        raw payload.
        """
        if self.work_factor == 0.0 or raw_bytes <= 0.0:
            return 0.0
        return self.work_factor * raw_bytes / cost_model.memory_bandwidth

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"ratio={self.ratio}, error={self.error_per_value}, "
            f"work={self.work_factor})"
        )


class NullCodec(Codec):
    """Identity codec: the uncompressed baseline."""

    name = "none"
    ratio = 1.0
    error_per_value = 0.0
    work_factor = 0.0


class FloatHalfCodec(Codec):
    """fp32 -> fp16 cast: halves the payload, one pass each way.

    The error proxy is half-precision's unit roundoff (``2^-11``):
    every value lands within that relative distance of its fp32
    original.
    """

    name = "fp16"
    ratio = 0.5
    error_per_value = 2.0 ** -11
    work_factor = 1.0


class Int8Codec(Codec):
    """Linear 8-bit quantisation against a per-message scale.

    Quarter-size payloads; the error proxy is the RMS of a uniform
    quantisation step over a normalised range (``1/512``), and the
    work factor covers the extra scale-computation pass on top of
    quantise/dequantise.
    """

    name = "int8"
    ratio = 0.25
    error_per_value = 1.0 / 512.0
    work_factor = 2.0


class TopKCodec(Codec):
    """Top-k magnitude sparsification: ship the largest fraction.

    Keeps ``keep_fraction`` of the values plus a 4-byte index per
    survivor (doubling each survivor's footprint), so the default 10%
    keep rate yields a 0.2 wire ratio. The error proxy scales with
    the dropped mass — far coarser than quantisation, which is
    exactly the frontier shape the tradeoff analysis should expose.
    The selection pass makes it the most expensive codec.
    """

    name = "topk"
    work_factor = 3.0

    #: Relative RMS error per unit of dropped fraction.
    DROP_ERROR_SCALE = 0.2
    #: Index bytes shipped per surviving value, as payload fraction.
    INDEX_OVERHEAD = 1.0

    def __init__(self, keep_fraction: float = 0.1) -> None:
        if not 0.0 < keep_fraction < 1.0:
            raise ValueError(
                f"keep_fraction must be in (0, 1), got {keep_fraction}"
            )
        self.keep_fraction = keep_fraction
        self.ratio = keep_fraction * (1.0 + self.INDEX_OVERHEAD)
        self.error_per_value = self.DROP_ERROR_SCALE * (
            1.0 - keep_fraction
        )


#: Codec registry: knob value -> factory.
_CODECS: Dict[str, type] = {
    NullCodec.name: NullCodec,
    FloatHalfCodec.name: FloatHalfCodec,
    Int8Codec.name: Int8Codec,
    TopKCodec.name: TopKCodec,
}

#: Valid ``compression`` knob values, least to most aggressive.
CODEC_NAMES: Tuple[str, ...] = ("none", "fp16", "int8", "topk")


def make_codec(name: str) -> Codec:
    """Instantiate the codec registered under ``name``.

    Raises :class:`ValueError` for unknown names, listing the valid
    ones — the same eager-validation shape the partitioner factories
    use, so a typo'd sweep flag fails at argument parsing rather than
    mid-sweep.
    """
    factory = _CODECS.get(name.lower())
    if factory is None:
        raise ValueError(
            f"unknown compression codec {name!r}; expected one of "
            f"{CODEC_NAMES}"
        )
    return factory()
