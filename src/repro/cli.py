"""Command-line interface to the reproduction library.

Subcommands::

    python -m repro datasets                         # list the stand-ins
    python -m repro spool      --rmat-scale 18 --rmat-edges 10000000 --out DIR
    python -m repro partition  --graph OR --cut edge-cut --algorithm metis -k 8
    python -m repro partition  --store DIR --cut vertex-cut --algorithm hdrf \
        -k 32 --shuffle-out BUCKETS                  # out-of-core
    python -m repro distgnn    --graph OR --partitioner hep100 -k 8
    python -m repro distdgl    --graph OR --partitioner metis -k 8
    python -m repro amortize   --graph OR -k 16 --epochs 100
    python -m repro obs analyze   RUN_ARTIFACT...   # diagnose a run
    python -m repro obs diff      A B               # regression diff
    python -m repro obs dashboard RUN... -o out.html
    python -m repro obs watch     BUS_DIR           # live sweep monitor
    python -m repro obs top       http://host:8642  # live daemon ops monitor
    python -m repro obs profile -o p.json -- distgnn --graph DI ...
    python -m repro obs flamegraph p.json -o flame.html
    python -m repro obs profile-diff base.json new.json
    python -m repro obs trend --bench BENCH_partitioning.json

All numbers are simulated cluster seconds under the default cost model;
see ``repro.costmodel`` for calibration details.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

import numpy as np

from . import obs
from .comm import CODEC_NAMES
from .experiments import (
    CommConfig,
    FaultConfig,
    TrainingParams,
    epochs_to_amortize,
    format_table,
    run_distdgl,
    run_distgnn,
)
from .graph import (
    DATASET_KEYS,
    EdgeChunkReader,
    dataset_specs,
    graph_stats,
    load_dataset,
    random_split,
    read_edge_list,
    rmat_edge_chunks,
    spool_edges,
    spool_graph,
)
from .graph.chunkstore import DEFAULT_STORE_CHUNK
from .partitioning import (
    EDGE_PARTITIONER_NAMES,
    VERTEX_PARTITIONER_NAMES,
    EdgePartitioner,
    edge_partition_quality,
    make_edge_partitioner,
    make_vertex_partitioner,
    shuffle_stream,
    vertex_partition_quality,
)

__all__ = ["main"]


def _load_graph(args):
    if args.edge_list:
        return read_edge_list(args.edge_list, directed=args.directed)
    return load_dataset(args.graph, scale=args.scale, seed=args.seed)


def _add_graph_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--graph", default="OR", choices=DATASET_KEYS,
        help="built-in dataset key (default: OR)",
    )
    parser.add_argument(
        "--edge-list", default=None,
        help="path to a whitespace edge list (overrides --graph)",
    )
    parser.add_argument(
        "--directed", action="store_true",
        help="treat --edge-list input as directed",
    )
    parser.add_argument(
        "--scale", default="small", choices=("tiny", "small", "medium"),
        help="built-in dataset scale (default: small)",
    )
    parser.add_argument("--seed", type=int, default=0)


def _add_model_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--feature-size", type=int, default=64)
    parser.add_argument("--hidden-dim", type=int, default=64)
    parser.add_argument("--num-layers", type=int, default=3)
    parser.add_argument("-k", "--machines", type=int, default=8)


def _add_fault_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group(
        "fault injection (simulated failures + recovery)"
    )
    group.add_argument(
        "--epochs", type=int, default=1,
        help="epochs to simulate (fault sweeps need more than one)",
    )
    group.add_argument(
        "--fault-rate", type=float, default=0.0,
        help="per-(epoch, machine) crash probability",
    )
    group.add_argument(
        "--slowdown-rate", type=float, default=0.0,
        help="per-(epoch, machine) transient-straggler probability",
    )
    group.add_argument(
        "--loss-rate", type=float, default=0.0,
        help="per-(epoch, machine) lost-message probability",
    )
    group.add_argument(
        "--checkpoint-every", type=int, default=5,
        help="full-batch checkpoint interval in epochs",
    )
    group.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed of the deterministic fault plan",
    )


def _add_comm_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group(
        "communication reduction (see docs/communication.md)"
    )
    group.add_argument(
        "--compression", default="none", choices=CODEC_NAMES,
        help="codec for feature fetches / halo and gradient exchanges",
    )
    group.add_argument(
        "--refresh-interval", type=int, default=1,
        help="DistGNN cd-r delayed aggregation: sync halos every r-th "
             "epoch (1 = every epoch; ignored by distdgl)",
    )
    group.add_argument(
        "--cache-fraction", type=float, default=0.0,
        help="DistDGL static feature cache: pin this fraction of the "
             "hottest vertices per worker (ignored by distgnn)",
    )


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group(
        "observability (see docs/observability.md)"
    )
    group.add_argument(
        "--obs-level", default="off", choices=obs.LEVELS,
        help="telemetry level: off (default), metrics, trace",
    )
    group.add_argument(
        "--obs-out", default=None,
        help="JSONL output path: trace events (at trace level) plus a "
             "final metrics-snapshot record",
    )


def _configure_obs(args) -> None:
    """Apply the --obs-* flags before a command runs."""
    if args.obs_level == "off":
        return
    sink = None
    if args.obs_out and args.obs_level == "trace":
        sink = obs.JsonlSink(args.obs_out)
    obs.configure(args.obs_level, sink)


def _finish_obs(args) -> None:
    """Write the metrics snapshot to --obs-out and reset the obs layer."""
    if args.obs_level == "off":
        return
    if args.obs_out:
        sink = obs.get_sink()
        if sink is None:
            sink = obs.JsonlSink(args.obs_out)
            obs.set_sink(sink)
        sink.emit(
            {
                "kind": "metrics-snapshot",
                "name": "final",
                "metrics": obs.snapshot(),
            }
        )
    obs.reset()
    obs.disable()


def _fault_config(args) -> Optional[FaultConfig]:
    """Build a FaultConfig from CLI flags; None when no rate is set."""
    config = FaultConfig(
        crash_rate=args.fault_rate,
        slowdown_rate=args.slowdown_rate,
        loss_rate=args.loss_rate,
        checkpoint_every=args.checkpoint_every,
        seed=args.fault_seed,
    )
    return config if config else None


def _comm_config(args) -> Optional[CommConfig]:
    """Build a CommConfig from CLI flags; None at the defaults."""
    config = CommConfig(
        compression=args.compression,
        refresh_interval=args.refresh_interval,
        cache_fraction=args.cache_fraction,
    )
    return config if config else None


def _comm_rows(record) -> List[tuple]:
    rows = [
        ("traffic saved MB / epoch", record.traffic_saved_bytes / 1e6),
        ("codec seconds / epoch", record.codec_seconds),
        ("accuracy proxy error", record.accuracy_proxy_error),
    ]
    if hasattr(record, "staleness_epochs"):
        rows.append(("stale epochs", record.staleness_epochs))
    if hasattr(record, "cache_hit_rate"):
        rows.append(("feature-cache hit rate", record.cache_hit_rate))
    return rows


def _fault_rows(record) -> List[tuple]:
    rows = [
        ("epochs simulated", record.num_epochs),
        ("makespan seconds", record.makespan_seconds),
        ("crashes / slowdowns / lost msgs",
         f"{record.crashes} / {record.slowdowns} / {record.lost_messages}"),
        ("recovery seconds", record.recovery_seconds),
    ]
    if hasattr(record, "checkpoint_seconds"):
        rows.append(("checkpoint seconds", record.checkpoint_seconds))
        rows.append(("re-executed epochs", record.reexecuted_epochs))
    if hasattr(record, "degraded_steps"):
        rows.append(("retries", record.retries))
        rows.append(("degraded steps", record.degraded_steps))
    return rows


def _cmd_datasets(_args) -> int:
    rows = []
    for key, spec in sorted(dataset_specs().items()):
        graph = load_dataset(key, "tiny")
        stats = graph_stats(graph)
        rows.append(
            (
                key,
                spec.paper_name,
                spec.category,
                "yes" if spec.directed else "no",
                stats.num_vertices,
                stats.num_edges,
                stats.mean_degree,
            )
        )
    print(
        format_table(
            ["key", "paper dataset", "category", "dir",
             "|V| (tiny)", "|E| (tiny)", "mean deg"],
            rows,
            "Built-in dataset stand-ins (see DESIGN.md)",
        )
    )
    return 0


def _cmd_spool(args) -> int:
    """Write an edge stream to an on-disk chunk store."""
    if args.rmat_edges is not None:
        # Chunk-native RMAT: the stream goes straight to disk without
        # ever materialising the full edge array.
        spool_edges(
            rmat_edge_chunks(
                args.rmat_scale,
                args.rmat_edges,
                seed=args.rmat_seed,
                directed=args.rmat_directed,
            ),
            args.out,
            chunk_size=args.chunk_size,
            num_vertices=1 << args.rmat_scale,
            directed=args.rmat_directed,
        )
    else:
        graph = _load_graph(args)
        spool_graph(
            graph,
            args.out,
            chunk_size=args.chunk_size,
            undirected_view=not args.arcs,
        )
    reader = EdgeChunkReader(args.out)
    print(
        f"spooled {reader.num_edges:,} edges over "
        f"{reader.num_vertices:,} vertices to {args.out} "
        f"({len(reader)} chunks of {reader.manifest.chunk_size:,} rows, "
        f"fingerprint {reader.fingerprint[:12]})"
    )
    return 0


def _cmd_partition_store(args) -> int:
    """Out-of-core branch of ``repro partition``: drive a chunk store."""
    from .obs.memory import PeakMemoryTracker

    reader = EdgeChunkReader(args.store)
    if args.cut == "vertex-cut":
        partitioner = make_edge_partitioner(args.algorithm)
    else:
        partitioner = make_vertex_partitioner(args.algorithm)
    if not partitioner.supports_stream:
        print(
            f"{partitioner.name} has no streaming drive path; "
            f"out-of-core algorithms: hdrf, dbh, random, 2ps-l "
            f"(vertex-cut); ldg (edge-cut)"
        )
        return 2
    start = time.perf_counter()
    with PeakMemoryTracker() as tracker:
        if args.shuffle_out:
            if not isinstance(partitioner, EdgePartitioner):
                print("--shuffle-out buckets edges: use --cut vertex-cut")
                return 2
            result = shuffle_stream(
                reader, partitioner, args.machines,
                args.shuffle_out, seed=args.seed,
            )
            counts = result.edge_counts
        else:
            partition = partitioner.partition_stream(
                reader, args.machines, seed=args.seed
            )
            counts = (
                partition.edge_counts()
                if isinstance(partitioner, EdgePartitioner)
                else partition.vertex_counts()
            )
    elapsed = time.perf_counter() - start
    print(
        f"{partitioner.name} ({partitioner.cut_type}) over "
        f"{reader.num_edges:,} spooled edges, k={args.machines}"
    )
    balance = counts.max() / max(counts.mean(), 1e-12)
    print(
        f"bucket sizes: min {counts.min():,} / max {counts.max():,} "
        f"(balance {balance:.3f})"
    )
    print(f"partitioning time: {elapsed:.3f}s")
    print(
        f"peak memory: {tracker.traced_peak_bytes / 2**20:.1f} MiB "
        f"traced, {(tracker.rss_peak_bytes or 0) / 2**20:.1f} MiB RSS"
    )
    if args.shuffle_out:
        print(f"per-partition buckets written to {args.shuffle_out}")
    return 0


def _cmd_partition(args) -> int:
    _configure_obs(args)
    if args.store:
        status = _cmd_partition_store(args)
        _finish_obs(args)
        return status
    graph = _load_graph(args)
    split = random_split(graph, seed=args.seed)
    if args.cut == "vertex-cut":
        partitioner = make_edge_partitioner(args.algorithm)
        partition = partitioner.partition(graph, args.machines, args.seed)
        quality = edge_partition_quality(partition).as_row()
        assignment = partition.assignment
    else:
        partitioner = make_vertex_partitioner(args.algorithm)
        partition = partitioner.partition(graph, args.machines, args.seed)
        quality = vertex_partition_quality(partition, split.train).as_row()
        assignment = partition.assignment
    print(
        f"{partitioner.name} ({partitioner.cut_type}, "
        f"{partitioner.category}) on {graph}"
    )
    print(f"quality: {quality}")
    print(f"partitioning time: {partitioner.last_partitioning_seconds:.3f}s")
    if args.output:
        np.savetxt(args.output, assignment, fmt="%d")
        print(f"assignment written to {args.output}")
    _finish_obs(args)
    return 0


def _cmd_distgnn(args) -> int:
    _configure_obs(args)
    graph = _load_graph(args)
    params = TrainingParams(
        feature_size=args.feature_size,
        hidden_dim=args.hidden_dim,
        num_layers=args.num_layers,
    )
    fault_config = _fault_config(args)
    comm_config = _comm_config(args)
    record = run_distgnn(
        graph, args.partitioner, args.machines, params, seed=args.seed,
        fault_config=fault_config, num_epochs=args.epochs,
        comm_config=comm_config,
    )
    baseline = run_distgnn(
        graph, "random", args.machines, params, seed=args.seed,
        fault_config=fault_config, num_epochs=args.epochs,
        comm_config=comm_config,
    )
    rows = [
        ("epoch seconds", record.epoch_seconds),
        ("speedup vs Random", baseline.epoch_seconds / record.epoch_seconds),
        ("network MB / epoch", record.network_bytes / 1e6),
        ("total memory MB", record.total_memory_bytes / 1e6),
        ("memory balance", record.memory_balance),
        ("replication factor", record.replication_factor),
        ("vertex balance", record.vertex_balance),
        ("partitioning seconds", record.partitioning_seconds),
    ]
    if fault_config is not None:
        rows += _fault_rows(record)
    if comm_config is not None:
        rows += _comm_rows(record)
    print(
        format_table(
            ["metric", "value"], rows,
            f"DistGNN full-batch: {args.partitioner} on {graph.name}, "
            f"{args.machines} machines ({params.label()})",
        )
    )
    _finish_obs(args)
    return 0


def _cmd_distdgl(args) -> int:
    _configure_obs(args)
    graph = _load_graph(args)
    params = TrainingParams(
        feature_size=args.feature_size,
        hidden_dim=args.hidden_dim,
        num_layers=args.num_layers,
        arch=args.arch,
        global_batch_size=args.batch_size,
    )
    fault_config = _fault_config(args)
    comm_config = _comm_config(args)
    record = run_distdgl(
        graph, args.partitioner, args.machines, params, seed=args.seed,
        fault_config=fault_config, num_epochs=args.epochs,
        comm_config=comm_config,
    )
    baseline = run_distdgl(
        graph, "random", args.machines, params, seed=args.seed,
        fault_config=fault_config, num_epochs=args.epochs,
        comm_config=comm_config,
    )
    rows = [
        ("epoch seconds", record.epoch_seconds),
        ("speedup vs Random", baseline.epoch_seconds / record.epoch_seconds),
    ]
    rows += [
        (f"phase: {phase}", seconds)
        for phase, seconds in record.phase_seconds.items()
    ]
    rows += [
        ("remote input vertices", record.remote_input_vertices),
        ("edge-cut ratio", record.edge_cut),
        ("training vertex balance", record.training_vertex_balance),
        ("partitioning seconds", record.partitioning_seconds),
    ]
    if fault_config is not None:
        rows += _fault_rows(record)
    if comm_config is not None:
        rows += _comm_rows(record)
    print(
        format_table(
            ["metric", "value"], rows,
            f"DistDGL mini-batch: {args.partitioner} on {graph.name}, "
            f"{args.machines} machines ({params.label()})",
        )
    )
    _finish_obs(args)
    return 0


def _cmd_amortize(args) -> int:
    graph = _load_graph(args)
    params = TrainingParams(
        feature_size=args.feature_size,
        hidden_dim=args.hidden_dim,
        num_layers=args.num_layers,
    )
    baseline = run_distgnn(
        graph, "random", args.machines, params, seed=args.seed
    )
    rows = []
    for name in EDGE_PARTITIONER_NAMES:
        if name == "random":
            continue
        record = run_distgnn(
            graph, name, args.machines, params, seed=args.seed
        )
        epochs = epochs_to_amortize(
            record.partitioning_seconds,
            baseline.epoch_seconds,
            record.epoch_seconds,
        )
        total = record.partitioning_seconds + (
            args.epochs * record.epoch_seconds
        )
        rows.append(
            (
                name,
                baseline.epoch_seconds / record.epoch_seconds,
                "no" if epochs is None else f"{epochs:.1f}",
                total,
            )
        )
    print(
        format_table(
            ["partitioner", "speedup", "amortizes after (epochs)",
             f"total s ({args.epochs} epochs)"],
            rows,
            f"Amortization on {graph.name}, {args.machines} machines "
            "(DistGNN full-batch)",
        )
    )
    return 0


def _cmd_recommend(args) -> int:
    from .experiments import recommend_edge_partitioner

    graph = _load_graph(args)
    params = TrainingParams(
        feature_size=args.feature_size,
        hidden_dim=args.hidden_dim,
        num_layers=args.num_layers,
    )
    recommendation = recommend_edge_partitioner(
        graph, args.machines, args.epochs, params=params, seed=args.seed
    )
    rows = [
        (e.name, e.partitioning_seconds, e.epoch_seconds, e.total_seconds)
        for e in recommendation.estimates
    ]
    print(
        format_table(
            ["partitioner", "partition s", "epoch s",
             f"total s ({args.epochs} epochs)"],
            rows,
            f"Advisor (sampled subgraph): best = {recommendation.best}",
        )
    )
    return 0


def _split_run_paths(values: List[str]) -> List[str]:
    """Expand comma-separated path lists from the command line."""
    paths: List[str] = []
    for value in values:
        paths.extend(p for p in value.split(",") if p)
    return paths


def _cmd_obs_analyze(args) -> int:
    from .obs import analysis

    run = analysis.load_run_inputs(
        _split_run_paths(args.inputs), label=args.label or ""
    )
    report = analysis.build_analysis_report(run)
    report_dict = report.to_dict()
    print(analysis.render_report_text(report_dict), end="")
    if args.out:
        report.save(args.out)
        print(f"report written to {args.out}")
    if args.dashboard:
        html = analysis.render_dashboard(report_dict, title=args.title)
        with open(args.dashboard, "w", encoding="utf-8") as handle:
            handle.write(html)
        print(f"dashboard written to {args.dashboard}")
    if args.strict and report.worst_severity() == "critical":
        return 1
    return 0


def _cmd_obs_diff(args) -> int:
    from .obs import analysis

    run_a = analysis.load_run_inputs(_split_run_paths([args.run_a]))
    run_b = analysis.load_run_inputs(_split_run_paths([args.run_b]))
    diff = analysis.diff_runs(run_a, run_b)
    diff_dict = diff.to_dict()
    print(analysis.render_diff_text(diff_dict), end="")
    if args.out:
        import json as _json

        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(
                _json.dumps(diff_dict, indent=2, sort_keys=True) + "\n"
            )
        print(f"diff written to {args.out}")
    return 0 if diff.clean else 1


def _cmd_obs_dashboard(args) -> int:
    from .obs import analysis

    run = analysis.load_run_inputs(
        _split_run_paths(args.inputs), label=args.label or ""
    )
    report = analysis.build_analysis_report(run)
    html = analysis.render_dashboard(report.to_dict(), title=args.title)
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write(html)
    print(f"dashboard written to {args.out}")
    return 0


def _cmd_obs_watch(args) -> int:
    from .obs.live import BusTailer, RuleSet, WatchState, watch_loop

    rules = RuleSet.load(args.rules) if args.rules else None
    state = WatchState(rules=rules)
    tailer = BusTailer(args.bus_dir)
    ticks = 1 if args.once else args.ticks
    watch_loop(
        tailer, state, ticks=ticks, interval=args.interval,
        out=sys.stdout, ansi=not args.no_ansi,
    )
    if args.summary_json:
        with open(args.summary_json, "w", encoding="utf-8") as handle:
            handle.write(state.to_deterministic_json())
        print(f"summary written to {args.summary_json}")
    if args.check_against:
        from .experiments.export import load_records
        from .obs import analysis

        records = []
        for path in _split_run_paths(args.check_against):
            records.extend(load_records(path))
        expected = [
            finding.to_dict()
            for finding in analysis.sort_findings(
                analysis.detect_record_anomalies(
                    records, state.thresholds
                )
            )
        ]
        streamed = [
            finding.to_dict()
            for finding in analysis.sort_findings(
                analysis.detect_record_anomalies(
                    state.shims(), state.thresholds
                )
            )
        ]
        if len(records) != len(state.records):
            print(
                f"check-against: record count mismatch — bus streamed "
                f"{len(state.records)} records, files hold "
                f"{len(records)}"
            )
            return 1
        if expected != streamed:
            print(
                "check-against: streamed findings diverge from the "
                f"post-hoc analysis ({len(streamed)} streamed vs "
                f"{len(expected)} expected)"
            )
            return 1
        print(
            f"check-against: OK — {len(state.records)} records, "
            f"{len(expected)} anomaly findings match the post-hoc "
            "analysis"
        )
    return 0


def _cmd_obs_top(args) -> int:
    import functools
    import json as json_module

    from .obs.live import RuleSet, fetch_status, top_loop

    rules = RuleSet.load(args.rules) if args.rules else None
    ticks = 1 if args.once else args.ticks
    status = top_loop(
        functools.partial(fetch_status, args.url),
        rules=rules, ticks=ticks, interval=args.interval,
        out=sys.stdout, ansi=not args.no_ansi,
    )
    if args.summary_json:
        with open(args.summary_json, "w", encoding="utf-8") as handle:
            json_module.dump(
                status, handle, indent=2, sort_keys=True
            )
            handle.write("\n")
        print(f"summary written to {args.summary_json}")
    return 1 if status.get("error") else 0


def _cmd_serve(args) -> int:
    from .serve import SweepScheduler, serve_forever

    scheduler = SweepScheduler(
        workers=args.workers,
        data_dir=args.data_dir,
        max_pending_cells=args.max_pending_cells,
        obs_level=args.obs_level,
    )
    print(
        f"repro serve on http://{args.host}:{args.port} "
        f"(workers={args.workers}, data_dir={scheduler.data_dir}, "
        f"max_pending_cells={args.max_pending_cells}, "
        f"obs_level={args.obs_level})"
    )
    serve_forever(scheduler, host=args.host, port=args.port)
    return 0


def _cmd_submit(args) -> int:
    from .serve import ServeClient, ServeError

    if args.spec == "-":
        spec = json.load(sys.stdin)
    else:
        with open(args.spec, "r", encoding="utf-8") as handle:
            spec = json.load(handle)
    if args.tenant is not None:
        spec["tenant"] = args.tenant
    if args.priority is not None:
        spec["priority"] = args.priority
    client = ServeClient(args.url)
    try:
        job = client.submit(spec)
    except ServeError as exc:
        print(f"submit failed: {exc}")
        if exc.status == 429 and exc.retry_after:
            print(f"retry in ~{exc.retry_after}s")
        return 1
    print(
        f"{job['id']}: {job['state']} "
        f"({job['cells_done']}/{job['cells_total']} cells, "
        f"{job['dedup_hits']} dedup hits) bus={job['bus_dir']}"
    )
    if not args.wait:
        return 0
    try:
        job = client.wait(job["id"], timeout=args.timeout)
    except TimeoutError as exc:
        print(f"wait: {exc}")
        return 1
    print(
        f"{job['id']}: {job['state']} "
        f"({job['records_done']} records, "
        f"{job['dedup_hits']} dedup hits)"
    )
    if job.get("error"):
        print(f"error: {job['error']}")
    if args.out:
        full = client.job(job["id"], records=True)
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(full["records"], handle, indent=2)
        print(f"records written to {args.out}")
    return 0 if job["state"] == "done" else 1


def _cmd_jobs(args) -> int:
    from .serve import ServeClient, ServeError

    client = ServeClient(args.url)
    try:
        if args.cancel:
            job = client.cancel(args.cancel)
            print(f"{job['id']}: {job['state']}")
            return 0
        if args.queue:
            print(json.dumps(client.queue(), indent=2))
            return 0
        if args.job:
            print(json.dumps(client.job(args.job), indent=2))
            return 0
        jobs = client.jobs()
    except ServeError as exc:
        print(f"request failed: {exc}")
        return 1
    if not jobs:
        print("no jobs")
        return 0
    for job in jobs:
        print(
            f"{job['id']}  {job['state']:<9} tenant={job['tenant']} "
            f"prio={job['priority']} "
            f"cells={job['cells_done']}/{job['cells_total']} "
            f"dedup={job['dedup_hits']}"
        )
    return 0


def _cmd_obs_profile(args) -> int:
    import os

    from .obs.profiling import capture as profiling
    from .obs.profiling import render_flamegraph

    command = list(args.profile_argv)
    if command and command[0] == "--":
        command = command[1:]
    if not command:
        print(
            "obs profile: give a repro subcommand to profile, e.g.\n"
            "  repro obs profile -o prof.json -- distgnn --graph DI "
            "--partitioner hdrf -k 4"
        )
        return 2
    label = args.label or " ".join(command)
    if args.scoped:
        profiling.enable()
        try:
            code = main(command)
            profiles = profiling.drain()
        finally:
            profiling.disable()
        os.makedirs(args.scoped, exist_ok=True)
        for index, prof in enumerate(profiles):
            slug = "".join(
                c if c.isalnum() or c in "._-" else "-"
                for c in prof.name
            )
            path = os.path.join(
                args.scoped, f"scope-{index:04d}-{slug}.json"
            )
            prof.save(path)
        print(
            f"{len(profiles)} scoped profiles written to {args.scoped}"
        )
        return code
    with profiling.capture(
        f"cli:{command[0]}", meta={"argv": command}
    ) as cap:
        code = main(command)
    prof = cap.profile
    if prof is None:
        print("obs profile: a capture was already active; no profile")
        return 1
    print(prof.top_table(args.top))
    if args.out:
        prof.save(args.out)
        print(f"profile written to {args.out}")
    if args.collapsed:
        with open(args.collapsed, "w", encoding="utf-8") as handle:
            handle.write(prof.collapsed())
        print(f"collapsed stacks written to {args.collapsed}")
    if args.flamegraph:
        html = render_flamegraph(prof, title=f"Flamegraph: {label}")
        with open(args.flamegraph, "w", encoding="utf-8") as handle:
            handle.write(html)
        print(f"flamegraph written to {args.flamegraph}")
    return code


def _cmd_obs_flamegraph(args) -> int:
    from .obs.profiling import load_profile, render_flamegraph

    profile = load_profile(args.profile)
    if not profile.stacks:
        print(
            f"{args.profile} has no collapsed stacks (a trimmed "
            "hotspot table?); cannot render a flamegraph"
        )
        return 1
    title = args.title or f"Flamegraph: {profile.name}"
    html = render_flamegraph(profile, title=title)
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write(html)
    print(
        f"flamegraph written to {args.out} "
        f"({len(profile.stacks)} stacks)"
    )
    return 0


def _cmd_obs_profile_diff(args) -> int:
    from .obs.profiling import load_profile, profile_diff, render_diff

    base = load_profile(args.base)
    new = load_profile(args.new)
    diff = profile_diff(
        base, new,
        threshold=args.threshold, min_seconds=args.min_seconds,
    )
    print(render_diff(diff, top=args.top))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(diff.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"diff written to {args.out}")
    return 0 if diff.is_empty else 1


def _cmd_obs_trend(args) -> int:
    from .obs.analysis.anomaly import AnomalyThresholds
    from .obs.profiling import (
        TrendThresholds,
        detect_trends,
        extract_history_series,
        load_bench_history,
        render_trend_report,
    )

    history = load_bench_history(args.bench)
    thresholds = TrendThresholds(
        anomaly=AnomalyThresholds(z_threshold=args.z_threshold),
        creep_ratio=args.creep_ratio,
    )
    findings = detect_trends(history, thresholds)
    series = extract_history_series(history)
    print(render_trend_report(findings, series, thresholds))
    if args.out:
        payload = {
            "bench": args.bench,
            "entries": len(history),
            "thresholds": thresholds.to_dict(),
            "findings": [f.to_dict() for f in findings],
        }
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"trend report written to {args.out}")
    return 1 if findings else 0


_OBS_COMMANDS = {
    "analyze": _cmd_obs_analyze,
    "diff": _cmd_obs_diff,
    "dashboard": _cmd_obs_dashboard,
    "watch": _cmd_obs_watch,
    "top": _cmd_obs_top,
    "profile": _cmd_obs_profile,
    "flamegraph": _cmd_obs_flamegraph,
    "profile-diff": _cmd_obs_profile_diff,
    "trend": _cmd_obs_trend,
}


def _cmd_obs(args) -> int:
    return _OBS_COMMANDS[args.obs_command](args)


def _add_obs_subcommands(sub) -> None:
    """Attach the ``repro obs analyze|diff|dashboard`` command group."""
    obs_parser = sub.add_parser(
        "obs",
        help="analyze run telemetry: diagnose, diff, dashboard, "
             "profile, flamegraph, trend",
    )
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)

    analyze = obs_sub.add_parser(
        "analyze",
        help="critical-path attribution + anomaly findings for one run",
    )
    analyze.add_argument(
        "inputs", nargs="+",
        help="run artifacts: record JSON, metrics snapshot JSON, and/or "
             "JSONL traces (comma-separated lists accepted)",
    )
    analyze.add_argument(
        "-o", "--out", default=None,
        help="write the analysis report JSON here",
    )
    analyze.add_argument(
        "--dashboard", default=None,
        help="also write the self-contained HTML dashboard here",
    )
    analyze.add_argument("--label", default=None,
                         help="override the run label")
    analyze.add_argument("--title", default="Telemetry analysis")
    analyze.add_argument(
        "--strict", action="store_true",
        help="exit non-zero when any critical finding is raised",
    )

    diff = obs_sub.add_parser(
        "diff",
        help="regression-diff two runs' artifacts (exit 1 when not clean)",
    )
    diff.add_argument(
        "run_a", help="baseline run artifact(s), comma-separated"
    )
    diff.add_argument(
        "run_b", help="candidate run artifact(s), comma-separated"
    )
    diff.add_argument(
        "-o", "--out", default=None, help="write the diff JSON here"
    )

    dashboard = obs_sub.add_parser(
        "dashboard", help="build the single-file HTML dashboard"
    )
    dashboard.add_argument("inputs", nargs="+",
                           help="run artifacts (as for analyze)")
    dashboard.add_argument("-o", "--out", required=True,
                           help="output HTML path")
    dashboard.add_argument("--label", default=None)
    dashboard.add_argument("--title", default="Telemetry analysis")

    watch = obs_sub.add_parser(
        "watch",
        help="live terminal monitor over a sweep's telemetry bus "
             "(see docs/live.md)",
    )
    watch.add_argument(
        "bus_dir",
        help="bus directory (run_full_sweep.py --bus-out DIR)",
    )
    watch.add_argument(
        "--ticks", type=int, default=None,
        help="render exactly N frames then exit "
             "(default: until the sweep completes)",
    )
    watch.add_argument(
        "--interval", type=float, default=1.0,
        help="seconds between frames (default: 1.0)",
    )
    watch.add_argument(
        "--once", action="store_true",
        help="render a single frame over the current bus state and exit",
    )
    watch.add_argument(
        "--rules", default=None,
        help="alert-rules JSON evaluated over streamed records "
             "(see docs/live.md)",
    )
    watch.add_argument(
        "--no-ansi", action="store_true",
        help="never emit ANSI clear codes (append frames instead)",
    )
    watch.add_argument(
        "--summary-json", default=None,
        help="write the deterministic (simulated-only) sweep summary "
             "JSON here on exit",
    )
    watch.add_argument(
        "--check-against", nargs="+", default=None,
        help="record JSON file(s); verify the streamed records and "
             "anomaly findings match a post-hoc analysis of these "
             "files (exit 1 on divergence)",
    )

    top = obs_sub.add_parser(
        "top",
        help="live ops monitor over a running serve daemon "
             "(see docs/serve.md)",
    )
    top.add_argument(
        "url",
        help="daemon base URL, e.g. http://127.0.0.1:8642",
    )
    top.add_argument(
        "--ticks", type=int, default=None,
        help="render exactly N frames then exit (default: forever)",
    )
    top.add_argument(
        "--interval", type=float, default=1.0,
        help="seconds between frames (default: 1.0)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="render a single frame and exit",
    )
    top.add_argument(
        "--rules", default=None,
        help="alert-rules JSON evaluated over the daemon's /metrics "
             "totals (see examples/serve_rules.json)",
    )
    top.add_argument(
        "--no-ansi", action="store_true",
        help="never emit ANSI clear codes (append frames instead)",
    )
    top.add_argument(
        "--summary-json", default=None,
        help="write the final fetched status (healthz/queue/totals) "
             "JSON here on exit",
    )

    profile = obs_sub.add_parser(
        "profile",
        help="run a repro subcommand under the deterministic cProfile "
             "capture (see docs/profiling.md)",
    )
    profile.add_argument(
        "-o", "--out", default=None,
        help="write the normalized profile artifact JSON here",
    )
    profile.add_argument(
        "--collapsed", default=None,
        help="write flamegraph.pl-style folded stacks here",
    )
    profile.add_argument(
        "--flamegraph", default=None,
        help="write the self-contained flamegraph HTML here",
    )
    profile.add_argument(
        "--top", type=int, default=15,
        help="hotspot table rows to print (default: 15)",
    )
    profile.add_argument(
        "--label", default=None,
        help="override the flamegraph title label",
    )
    profile.add_argument(
        "--scoped", default=None, metavar="DIR",
        help="instead of one whole-command capture, enable the "
             "ambient profile_scope hooks (partitioner kernels, "
             "engine epochs, executor cells) and write one profile "
             "per scope into DIR",
    )
    profile.add_argument(
        "profile_argv", nargs=argparse.REMAINDER, metavar="command",
        help="the repro subcommand to profile (prefix with --)",
    )

    flame = obs_sub.add_parser(
        "flamegraph",
        help="render a profile artifact as a single-file flamegraph "
             "HTML",
    )
    flame.add_argument("profile", help="profile artifact JSON")
    flame.add_argument("-o", "--out", required=True,
                       help="output HTML path")
    flame.add_argument("--title", default=None)

    pdiff = obs_sub.add_parser(
        "profile-diff",
        help="function-level regression diff of two profile artifacts "
             "(exit 1 when not clean)",
    )
    pdiff.add_argument("base", help="baseline profile artifact JSON")
    pdiff.add_argument("new", help="candidate profile artifact JSON")
    pdiff.add_argument(
        "--threshold", type=float, default=0.10,
        help="relative cumtime growth that flags a function "
             "(default: 0.10)",
    )
    pdiff.add_argument(
        "--min-seconds", type=float, default=0.001,
        help="absolute cumtime growth floor in seconds "
             "(default: 0.001)",
    )
    pdiff.add_argument(
        "--top", type=int, default=15,
        help="rows to print (default: 15)",
    )
    pdiff.add_argument(
        "-o", "--out", default=None, help="write the diff JSON here"
    )

    trend = obs_sub.add_parser(
        "trend",
        help="MAD drift detection over the bench history: catch "
             "multi-PR slow creep (exit 1 on findings)",
    )
    trend.add_argument(
        "--bench", default="BENCH_partitioning.json",
        help="bench history file (default: BENCH_partitioning.json)",
    )
    trend.add_argument(
        "--z-threshold", type=float, default=3.5,
        help="rolling MAD z-score threshold (default: 3.5)",
    )
    trend.add_argument(
        "--creep-ratio", type=float, default=1.25,
        help="oldest-vs-newest median ratio that flags total drift "
             "(default: 1.25)",
    )
    trend.add_argument(
        "-o", "--out", default=None,
        help="write the trend report JSON here",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level ``repro`` argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed-GNN partitioning study reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the built-in dataset stand-ins")

    spool = sub.add_parser(
        "spool",
        help="write an edge stream to an on-disk chunk store "
             "(see docs/partitioners.md, out-of-core pipeline)",
    )
    _add_graph_arguments(spool)
    spool.add_argument(
        "--out", required=True, help="chunk-store directory to create"
    )
    spool.add_argument(
        "--chunk-size", type=int, default=DEFAULT_STORE_CHUNK,
        help="rows per chunk file (bounds pipeline peak memory)",
    )
    spool.add_argument(
        "--arcs", action="store_true",
        help="spool raw directed arcs instead of the canonical "
             "undirected edge view the partitioners consume",
    )
    rmat = spool.add_argument_group(
        "chunk-native RMAT (never materialises the edge list)"
    )
    rmat.add_argument(
        "--rmat-scale", type=int, default=18,
        help="log2 of the vertex count (default: 18)",
    )
    rmat.add_argument(
        "--rmat-edges", type=int, default=None,
        help="generate this many RMAT edges instead of loading --graph",
    )
    rmat.add_argument("--rmat-seed", type=int, default=42)
    rmat.add_argument(
        "--rmat-directed", action="store_true",
        help="keep arcs directed (default: canonical undirected pairs)",
    )

    partition = sub.add_parser("partition", help="run one partitioner")
    _add_graph_arguments(partition)
    partition.add_argument(
        "--cut", choices=("vertex-cut", "edge-cut"), default="edge-cut"
    )
    partition.add_argument(
        "--algorithm", default="metis",
        help=f"vertex-cut: {', '.join(EDGE_PARTITIONER_NAMES)}; "
             f"edge-cut: {', '.join(VERTEX_PARTITIONER_NAMES)}",
    )
    partition.add_argument("-k", "--machines", type=int, default=8)
    partition.add_argument("--output", default=None)
    ooc = partition.add_argument_group("out-of-core (chunk-store) drive")
    ooc.add_argument(
        "--store", default=None,
        help="partition a spooled chunk store (from `repro spool`) "
             "instead of an in-memory graph",
    )
    ooc.add_argument(
        "--shuffle-out", default=None,
        help="with --store and --cut vertex-cut: bucket every edge "
             "into per-partition stores under this directory",
    )
    _add_obs_arguments(partition)

    distgnn = sub.add_parser("distgnn", help="simulate full-batch training")
    _add_graph_arguments(distgnn)
    _add_model_arguments(distgnn)
    _add_fault_arguments(distgnn)
    _add_comm_arguments(distgnn)
    _add_obs_arguments(distgnn)
    distgnn.add_argument("--partitioner", default="hep100")

    distdgl = sub.add_parser("distdgl", help="simulate mini-batch training")
    _add_graph_arguments(distdgl)
    _add_model_arguments(distdgl)
    _add_fault_arguments(distdgl)
    _add_comm_arguments(distdgl)
    _add_obs_arguments(distdgl)
    distdgl.add_argument("--partitioner", default="metis")
    distdgl.add_argument("--arch", default="sage",
                         choices=("sage", "gcn", "gat"))
    distdgl.add_argument("--batch-size", type=int, default=64)

    amortize = sub.add_parser(
        "amortize", help="amortization analysis (paper RQ-5)"
    )
    _add_graph_arguments(amortize)
    _add_model_arguments(amortize)
    amortize.add_argument("--epochs", type=int, default=100)

    recommend = sub.add_parser(
        "recommend",
        help="advise a partitioner via a cheap sampled-subgraph study",
    )
    _add_graph_arguments(recommend)
    _add_model_arguments(recommend)
    recommend.add_argument("--epochs", type=int, default=100)

    _add_obs_subcommands(sub)

    serve = sub.add_parser(
        "serve",
        help="run the multi-tenant sweep-job daemon (see docs/serve.md)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642)
    serve.add_argument(
        "--workers", type=int, default=1,
        help="concurrent cells (1 = in-process; >1 uses a process pool)",
    )
    serve.add_argument(
        "--data-dir", default=None,
        help="job artifacts root (per-job bus + records; "
             "default: a fresh temp dir)",
    )
    serve.add_argument(
        "--max-pending-cells", type=int, default=256,
        help="admission bound: queued cells before POST /jobs gets 429",
    )
    serve.add_argument(
        "--obs-level", default="off", choices=obs.LEVELS,
        help="daemon observability: metrics enables GET /metrics; "
             "trace additionally writes per-job trace JSONL "
             "(default: off)",
    )

    submit = sub.add_parser(
        "submit", help="submit a sweep-job spec to a running daemon"
    )
    submit.add_argument(
        "spec", help="job spec JSON file ('-' reads stdin)"
    )
    submit.add_argument(
        "--url", default="http://127.0.0.1:8642",
        help="daemon base URL",
    )
    submit.add_argument("--tenant", default=None,
                        help="override the spec's tenant")
    submit.add_argument("--priority", type=int, default=None,
                        help="override the spec's priority")
    submit.add_argument(
        "--wait", action="store_true",
        help="poll until the job finishes (exit 1 unless it is done)",
    )
    submit.add_argument("--timeout", type=float, default=600.0,
                        help="--wait deadline in seconds")
    submit.add_argument(
        "--out", default=None,
        help="with --wait: write the job's records JSON here",
    )

    jobs = sub.add_parser(
        "jobs", help="list/inspect/cancel jobs on a running daemon"
    )
    jobs.add_argument(
        "--url", default="http://127.0.0.1:8642",
        help="daemon base URL",
    )
    jobs.add_argument("--job", default=None,
                      help="show one job's full JSON summary")
    jobs.add_argument("--cancel", default=None,
                      help="cancel this job id")
    jobs.add_argument(
        "--queue", action="store_true",
        help="show the scheduler queue snapshot instead of jobs",
    )

    return parser


_COMMANDS = {
    "datasets": _cmd_datasets,
    "spool": _cmd_spool,
    "partition": _cmd_partition,
    "distgnn": _cmd_distgnn,
    "distdgl": _cmd_distdgl,
    "amortize": _cmd_amortize,
    "recommend": _cmd_recommend,
    "obs": _cmd_obs,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "jobs": _cmd_jobs,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Command-line entry point: parse ``argv`` and dispatch the subcommand."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
