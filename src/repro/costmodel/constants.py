"""Calibrated cost model for the simulated cluster.

The paper's testbed is 32 machines with 8-core 2.4 GHz Haswell CPUs and
64 GB RAM on a commodity Ethernet interconnect. We model each machine with
three rates — dense-compute throughput, network bandwidth and memory
bandwidth — plus a per-message latency. The *absolute* values matter only
for readability of the reported seconds; every conclusion reproduced from
the paper depends on the ratios (compute vs communication), which are set
to the commodity-cluster regime the paper operated in: communication of
feature-sized vertex state is expensive relative to the neural-network
math for it.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostModel", "DEFAULT_COST_MODEL"]


@dataclass(frozen=True)
class CostModel:
    """Rates converting operation counts into simulated seconds and bytes.

    Attributes
    ----------
    flops_per_second:
        Effective dense throughput of one 8-core machine (GEMM-bound GNN
        kernels; well below peak, as in practice).
    network_bandwidth:
        Point-to-point bandwidth in bytes/second (1 GbE class).
    network_latency:
        Per-message latency in seconds, charged once per communicating
        peer per phase.
    memory_bandwidth:
        Streaming memory bandwidth in bytes/second; charges the sparse,
        bandwidth-bound aggregation work.
    float_bytes / index_bytes:
        Width of feature scalars and of vertex/edge ids.
    sample_seconds_per_edge:
        CPU cost of drawing one sampled edge in the mini-batch sampler
        (hash lookups + RNG; memory-latency bound, hence ~100ns scale).
    remote_sample_overhead:
        Extra cost per *remote* sampled vertex: the RPC round trip is
        amortised over a frontier batch, but serialisation and queueing
        still make a remote neighbour lookup far slower than a local one.
    memory_budget_bytes:
        Per-machine memory capacity used for out-of-memory detection
        at the simulated (scaled-down) graph sizes. The paper's machines
        had 64 GB for graphs ~2000x larger; 32 MB puts the simulated DI +
        random-partitioning runs over budget exactly as in the paper.
    partitioning_time_scale:
        Multiplier mapping the measured wall time of *our* partitioner
        implementations onto the simulated training-time axis for the
        amortization analysis (Tables 4/5). One constant for all
        partitioners, so amortization rankings are scale-free.
    """

    flops_per_second: float = 5.0e10
    network_bandwidth: float = 1.25e8
    network_latency: float = 100e-6
    memory_bandwidth: float = 6.0e9
    float_bytes: int = 4
    index_bytes: int = 8
    sample_seconds_per_edge: float = 4.0e-7
    remote_sample_overhead: float = 8.0e-7
    memory_budget_bytes: float = 32e6
    partitioning_time_scale: float = 1.0
    #: "bisection" floors every communication phase at the fabric's
    #: aggregate-bandwidth bound (concurrent transfers overlap); "port"
    #: charges the busiest port alone. The ablation benchmarks compare
    #: both; "bisection" matches the paper's observed behaviour.
    fabric_model: str = "bisection"

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def compute_seconds(self, flops: float) -> float:
        """Seconds for dense compute (GEMMs, attention scores)."""
        return flops / self.flops_per_second

    def memory_seconds(self, bytes_touched: float) -> float:
        """Seconds for bandwidth-bound sparse work (gather/scatter)."""
        return bytes_touched / self.memory_bandwidth

    def transfer_seconds(self, num_bytes: float, num_messages: int = 1) -> float:
        """Seconds to move ``num_bytes`` over the network."""
        if num_bytes <= 0 and num_messages <= 0:
            return 0.0
        return num_messages * self.network_latency + (
            num_bytes / self.network_bandwidth
        )

    def feature_bytes(self, num_vertices: float, dim: int) -> float:
        """Bytes of a float feature/state block."""
        return num_vertices * dim * self.float_bytes

    def allreduce_seconds(self, num_bytes: float, num_machines: int) -> float:
        """Pipelined ring all-reduce: every machine moves ~2x the payload;
        per-hop latencies overlap down the pipeline, so only a handful of
        message latencies are exposed.
        """
        if num_machines <= 1:
            return 0.0
        chunk = 2.0 * num_bytes * (num_machines - 1) / num_machines
        return self.transfer_seconds(chunk, num_messages=4)


#: Shared default instance used across engines and benchmarks.
DEFAULT_COST_MODEL = CostModel()
