"""Cost model: converts operation/byte counts into simulated seconds."""

from .constants import DEFAULT_COST_MODEL, CostModel
from .flops import (
    BACKWARD_FACTOR,
    aggregation_bytes,
    gat_layer_flops,
    gcn_layer_flops,
    gemm_flops,
    sage_layer_flops,
)

__all__ = [
    "CostModel",
    "DEFAULT_COST_MODEL",
    "BACKWARD_FACTOR",
    "gemm_flops",
    "sage_layer_flops",
    "gcn_layer_flops",
    "gat_layer_flops",
    "aggregation_bytes",
]
