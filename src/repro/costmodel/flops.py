"""Floating-point operation counts for GNN layers.

Each function returns the *forward* flops; backward passes cost roughly
twice the forward (two GEMMs per weight: gradient w.r.t. input and w.r.t.
weights), which callers account with :data:`BACKWARD_FACTOR`.
"""

from __future__ import annotations

__all__ = [
    "BACKWARD_FACTOR",
    "gemm_flops",
    "sage_layer_flops",
    "gcn_layer_flops",
    "gat_layer_flops",
    "aggregation_bytes",
]

#: Backward pass cost relative to forward (standard 2x rule of thumb).
BACKWARD_FACTOR = 2.0


def gemm_flops(rows: float, inner: float, cols: float) -> float:
    """Flops of a dense ``rows x inner @ inner x cols`` multiply."""
    return 2.0 * rows * inner * cols


def sage_layer_flops(
    num_dst: float, num_edges: float, dim_in: int, dim_out: int
) -> float:
    """GraphSAGE (mean aggregator): aggregate neighbours, then two GEMMs
    (self and neighbour transforms).
    """
    aggregate = 2.0 * num_edges * dim_in  # sum + count-normalise
    transform = gemm_flops(num_dst, dim_in, dim_out) * 2.0
    return aggregate + transform


def gcn_layer_flops(
    num_dst: float, num_edges: float, dim_in: int, dim_out: int
) -> float:
    """GCN: normalised aggregation plus a single GEMM."""
    aggregate = 2.0 * num_edges * dim_in
    transform = gemm_flops(num_dst, dim_in, dim_out)
    return aggregate + transform


def gat_layer_flops(
    num_dst: float,
    num_src: float,
    num_edges: float,
    dim_in: int,
    dim_out: int,
    num_heads: int = 1,
) -> float:
    """GAT: source/destination projections, per-edge attention scores,
    softmax and the weighted aggregation. Noticeably heavier per edge than
    SAGE/GCN, which is why GAT phase times exceed GraphSAGE in Figure 25.
    """
    project = gemm_flops(num_src, dim_in, dim_out * num_heads)
    scores = 6.0 * num_edges * dim_out * num_heads  # leaky-relu attention
    softmax = 5.0 * num_edges * num_heads
    aggregate = 2.0 * num_edges * dim_out * num_heads
    return project + scores + softmax + aggregate + 4.0 * num_dst * dim_out


def aggregation_bytes(
    num_edges: float, dim: int, float_bytes: int = 4
) -> float:
    """Bytes touched by a sparse gather/scatter aggregation."""
    return 2.0 * num_edges * dim * float_bytes
