"""Name-based construction of the study's 12 partitioners (paper Table 2).

============  ==========  ================================
name          cut type    category
============  ==========  ================================
random-ec     vertex-cut  stateless streaming
dbh           vertex-cut  stateless streaming
hdrf          vertex-cut  stateful streaming
2ps-l         vertex-cut  stateful streaming
hep10         vertex-cut  hybrid
hep100        vertex-cut  hybrid
random-vc     edge-cut    stateless streaming
ldg           edge-cut    stateful streaming
spinner       edge-cut    in-memory
metis         edge-cut    in-memory
bytegnn       edge-cut    in-memory
kahip         edge-cut    in-memory
============  ==========  ================================

(`-ec`/`-vc` suffixes disambiguate the two Random baselines; the plain
name ``random`` is accepted by the family-specific helpers.)
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .base import EdgePartitioner, VertexPartitioner
from .edgecut import (
    ByteGnnPartitioner,
    KahipPartitioner,
    LdgPartitioner,
    MetisPartitioner,
    RandomVertexPartitioner,
    SpinnerPartitioner,
)
from .vertexcut import (
    DbhPartitioner,
    HdrfPartitioner,
    HepPartitioner,
    RandomEdgePartitioner,
    TwoPsLPartitioner,
)

__all__ = [
    "EDGE_PARTITIONER_NAMES",
    "VERTEX_PARTITIONER_NAMES",
    "make_edge_partitioner",
    "make_vertex_partitioner",
    "all_edge_partitioners",
    "all_vertex_partitioners",
]

_EDGE_FACTORIES: Dict[str, Callable[[], EdgePartitioner]] = {
    "random": RandomEdgePartitioner,
    "dbh": DbhPartitioner,
    "hdrf": HdrfPartitioner,
    "2ps-l": TwoPsLPartitioner,
    "hep10": lambda: HepPartitioner(tau=10.0),
    "hep100": lambda: HepPartitioner(tau=100.0),
}

_VERTEX_FACTORIES: Dict[str, Callable[[], VertexPartitioner]] = {
    "random": RandomVertexPartitioner,
    "ldg": LdgPartitioner,
    "spinner": SpinnerPartitioner,
    "metis": MetisPartitioner,
    "bytegnn": ByteGnnPartitioner,
    "kahip": KahipPartitioner,
}

#: Vertex-cut (edge partitioning) names, DistGNN side of the study.
EDGE_PARTITIONER_NAMES = tuple(_EDGE_FACTORIES)
#: Edge-cut (vertex partitioning) names, DistDGL side of the study.
VERTEX_PARTITIONER_NAMES = tuple(_VERTEX_FACTORIES)


def make_edge_partitioner(name: str) -> EdgePartitioner:
    """Construct a vertex-cut partitioner by (case-insensitive) name."""
    key = name.lower().removesuffix("-ec")
    if key not in _EDGE_FACTORIES:
        raise KeyError(
            f"unknown edge partitioner {name!r}; "
            f"available: {sorted(_EDGE_FACTORIES)}"
        )
    return _EDGE_FACTORIES[key]()


def make_vertex_partitioner(name: str) -> VertexPartitioner:
    """Construct an edge-cut partitioner by (case-insensitive) name."""
    key = name.lower().removesuffix("-vc")
    if key not in _VERTEX_FACTORIES:
        raise KeyError(
            f"unknown vertex partitioner {name!r}; "
            f"available: {sorted(_VERTEX_FACTORIES)}"
        )
    return _VERTEX_FACTORIES[key]()


def all_edge_partitioners() -> List[EdgePartitioner]:
    """Fresh instances of all six vertex-cut partitioners (Table 2)."""
    return [factory() for factory in _EDGE_FACTORIES.values()]


def all_vertex_partitioners() -> List[VertexPartitioner]:
    """Fresh instances of all six edge-cut partitioners (Table 2)."""
    return [factory() for factory in _VERTEX_FACTORIES.values()]
