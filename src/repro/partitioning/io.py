"""Persistence for partition assignments.

Partitioning large graphs is expensive (Tables 4/5 are entirely about
that cost), so assignments are first-class artifacts: a plain-text format
with a metadata header, readable by other tools, re-loadable into the
typed containers.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from ..graph import Graph
from .assignment import EdgePartition, VertexPartition

__all__ = [
    "save_vertex_partition",
    "load_vertex_partition",
    "save_edge_partition",
    "load_edge_partition",
]

PathLike = Union[str, "os.PathLike[str]"]


def save_vertex_partition(
    partition: VertexPartition, path: PathLike
) -> None:
    """One line per vertex: the partition id of vertex ``i`` on line i."""
    with open(path, "w") as handle:
        handle.write(
            f"# vertex-partition k={partition.num_partitions} "
            f"n={partition.graph.num_vertices}\n"
        )
        for part in partition.assignment:
            handle.write(f"{part}\n")


def load_vertex_partition(graph: Graph, path: PathLike) -> VertexPartition:
    """Load an assignment written by :func:`save_vertex_partition`."""
    num_partitions, values = _read(path, "vertex-partition")
    if len(values) != graph.num_vertices:
        raise ValueError(
            f"file has {len(values)} entries but the graph has "
            f"{graph.num_vertices} vertices"
        )
    return VertexPartition(
        graph, np.asarray(values, dtype=np.int32), num_partitions
    )


def save_edge_partition(partition: EdgePartition, path: PathLike) -> None:
    """One line per canonical undirected edge: ``u v partition``."""
    with open(path, "w") as handle:
        handle.write(
            f"# edge-partition k={partition.num_partitions} "
            f"m={partition.num_edges}\n"
        )
        for (u, v), part in zip(partition.edges, partition.assignment):
            handle.write(f"{u} {v} {part}\n")


def load_edge_partition(graph: Graph, path: PathLike) -> EdgePartition:
    """Load an edge partition; edges are matched against the graph's
    canonical edge order (the file may list them in any order)."""
    num_partitions, rows = _read(path, "edge-partition", columns=3)
    edges = graph.undirected_edges()
    assignment = np.full(edges.shape[0], -1, dtype=np.int32)
    # Index canonical edges for the match.
    n = graph.num_vertices
    keys = edges[:, 0] * n + edges[:, 1]
    order = np.argsort(keys)
    for u, v, part in rows:
        lo, hi = (u, v) if u <= v else (v, u)
        key = lo * n + hi
        pos = np.searchsorted(keys[order], key)
        if pos >= order.size or keys[order[pos]] != key:
            raise ValueError(f"edge ({u}, {v}) is not in the graph")
        assignment[order[pos]] = part
    if (assignment < 0).any():
        missing = int((assignment < 0).sum())
        raise ValueError(f"{missing} graph edges missing from the file")
    return EdgePartition(graph, edges, assignment, num_partitions)


def _read(path: PathLike, expected_kind: str, columns: int = 1):
    with open(path) as handle:
        header = handle.readline().strip()
        if not header.startswith(f"# {expected_kind}"):
            raise ValueError(
                f"{path}: expected a '{expected_kind}' header, "
                f"got {header!r}"
            )
        num_partitions = int(header.split("k=")[1].split()[0])
        rows = []
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = [int(x) for x in line.split()]
            if len(fields) != columns:
                raise ValueError(
                    f"{path}: expected {columns} columns, got {len(fields)}"
                )
            rows.append(fields[0] if columns == 1 else tuple(fields))
    return num_partitions, rows
