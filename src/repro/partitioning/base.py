"""Partitioner interfaces.

Every partitioner in the study implements one of two abstract bases:

* :class:`EdgePartitioner` — vertex-cut; produces an :class:`EdgePartition`.
* :class:`VertexPartitioner` — edge-cut; produces a :class:`VertexPartition`.

Both expose ``partition(graph, num_partitions, seed=0)`` and record the
wall-clock partitioning time of the last run (used by the amortization
analysis, Tables 4 and 5 of the paper).

The streaming algorithms additionally expose an out-of-core drive path
over an on-disk edge spool (:class:`~repro.graph.chunkstore.EdgeChunkReader`):
``partition_stream(reader, num_partitions, seed=0)`` and — for
vertex-cut, where the per-edge assignment itself is O(m) — the fully
streaming ``stream_assignments(...)`` generator. Classes advertising
``supports_stream = True`` guarantee the out-of-core assignments are
bit-identical to the in-memory path over the same stream order (spool
the graph with :func:`~repro.graph.chunkstore.spool_graph` and disable
stream shuffling where the algorithm has it).
"""

from __future__ import annotations

import abc
import time
from typing import Iterator, Optional, Tuple

import numpy as np

from ..graph import Graph
from ..graph.chunkstore import EdgeChunkReader
from ..obs import api as obs
from ..obs.profiling import capture as profiling
from .assignment import EdgePartition, VertexPartition
from .outofcore import (
    StoreGraphView,
    StreamEdgePartition,
    StreamVertexPartition,
)

__all__ = ["Partitioner", "EdgePartitioner", "VertexPartitioner"]


class Partitioner(abc.ABC):
    """Common behaviour: naming, categories and timing."""

    #: Short name as used in the paper's tables, e.g. ``"HDRF"``.
    name: str = "base"
    #: ``"vertex-cut"`` (edge partitioning) or ``"edge-cut"`` (vertex part.).
    cut_type: str = ""
    #: Paper's category: stateless/stateful streaming, hybrid, in-memory.
    category: str = ""
    #: True when the algorithm has an out-of-core drive path whose
    #: assignments are bit-identical to the in-memory one.
    supports_stream: bool = False

    def __init__(self) -> None:
        self.last_partitioning_seconds: Optional[float] = None

    def _check_args(self, graph: Graph, num_partitions: int) -> None:
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        if graph.num_vertices == 0:
            raise ValueError("cannot partition an empty graph")

    def _check_stream_args(
        self, reader: EdgeChunkReader, num_partitions: int
    ) -> None:
        if not self.supports_stream:
            raise NotImplementedError(
                f"{self.name} has no out-of-core streaming path"
            )
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        if reader.num_vertices <= 0:
            raise ValueError("cannot partition an empty store")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class EdgePartitioner(Partitioner):
    """Vertex-cut partitioner: assigns every undirected edge to a partition."""

    cut_type = "vertex-cut"

    def partition(
        self, graph: Graph, num_partitions: int, seed: int = 0
    ) -> EdgePartition:
        """Partition the graph's edges into ``num_partitions`` buckets."""
        self._check_args(graph, num_partitions)
        edges = graph.undirected_edges()
        start = time.perf_counter()
        with profiling.profile_scope(f"partitioner.{self.name.lower()}"):
            assignment = self._assign(
                graph, edges, num_partitions, seed
            )
        self.last_partitioning_seconds = time.perf_counter() - start
        if obs.enabled():
            obs.count("partitioner.runs", algorithm=self.name)
            obs.observe(
                "partitioner.seconds",
                self.last_partitioning_seconds,
                algorithm=self.name,
            )
            obs.count(
                "partitioner.edges_assigned",
                int(assignment.shape[0]),
                algorithm=self.name,
            )
        return EdgePartition(graph, edges, assignment, num_partitions)

    @abc.abstractmethod
    def _assign(
        self,
        graph: Graph,
        edges: np.ndarray,
        num_partitions: int,
        seed: int,
    ) -> np.ndarray:
        """Return a partition id per row of ``edges``."""

    # ------------------------------------------------------------------
    # Out-of-core drive path
    # ------------------------------------------------------------------
    def stream_assignments(
        self, reader: EdgeChunkReader, num_partitions: int, seed: int = 0
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Stream the store once, yielding ``(edges, assignment)`` blocks.

        The fully out-of-core API: nothing O(m) is materialised — peak
        memory is bounded by the block size plus the algorithm's own
        state. Blocks cover the store in order; their boundaries are an
        implementation detail (kernels may re-chunk the store's chunks).
        """
        self._check_stream_args(reader, num_partitions)
        return self._assign_stream(reader, num_partitions, seed)

    def partition_stream(
        self, reader: EdgeChunkReader, num_partitions: int, seed: int = 0
    ) -> StreamEdgePartition:
        """Out-of-core run materialising the full per-edge assignment.

        Convenience wrapper over :meth:`stream_assignments` for
        moderate stores (the assignment is O(m) int32); the shuffle
        pass and the scale benchmarks consume the generator directly.
        """
        self._check_stream_args(reader, num_partitions)
        start = time.perf_counter()
        with profiling.profile_scope(
            f"partitioner.{self.name.lower()}.stream"
        ):
            parts = [
                assignment
                for _, assignment in self._assign_stream(
                    reader, num_partitions, seed
                )
            ]
        self.last_partitioning_seconds = time.perf_counter() - start
        assignment = (
            np.concatenate(parts)
            if parts
            else np.empty(0, dtype=np.int32)
        )
        if obs.enabled():
            obs.count("partitioner.runs", algorithm=self.name)
            obs.observe(
                "partitioner.seconds",
                self.last_partitioning_seconds,
                algorithm=self.name,
            )
            obs.count(
                "partitioner.edges_assigned",
                int(assignment.shape[0]),
                algorithm=self.name,
            )
        return StreamEdgePartition(reader, assignment, num_partitions)

    def _assign_stream(
        self, reader: EdgeChunkReader, num_partitions: int, seed: int
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(edges, assignment)`` blocks covering the store."""
        raise NotImplementedError(
            f"{self.name} has no out-of-core streaming path"
        )


class VertexPartitioner(Partitioner):
    """Edge-cut partitioner: assigns every vertex to a partition."""

    cut_type = "edge-cut"

    def partition(
        self, graph: Graph, num_partitions: int, seed: int = 0
    ) -> VertexPartition:
        """Partition the graph's vertices into ``num_partitions`` parts."""
        self._check_args(graph, num_partitions)
        start = time.perf_counter()
        with profiling.profile_scope(f"partitioner.{self.name.lower()}"):
            assignment = self._assign(graph, num_partitions, seed)
        self.last_partitioning_seconds = time.perf_counter() - start
        if obs.enabled():
            obs.count("partitioner.runs", algorithm=self.name)
            obs.observe(
                "partitioner.seconds",
                self.last_partitioning_seconds,
                algorithm=self.name,
            )
            obs.count(
                "partitioner.vertices_assigned",
                int(assignment.shape[0]),
                algorithm=self.name,
            )
        return VertexPartition(graph, assignment, num_partitions)

    @abc.abstractmethod
    def _assign(
        self, graph: Graph, num_partitions: int, seed: int
    ) -> np.ndarray:
        """Return a partition id per vertex."""

    # ------------------------------------------------------------------
    # Out-of-core drive path
    # ------------------------------------------------------------------
    def partition_stream(
        self, reader: EdgeChunkReader, num_partitions: int, seed: int = 0
    ) -> StreamVertexPartition:
        """Out-of-core run against a spooled edge stream.

        The vertex assignment is O(n) and is always materialised; only
        the edge data stays out-of-core (the symmetric CSR is built in
        two store passes with a memmap-backed neighbour array).
        """
        self._check_stream_args(reader, num_partitions)
        start = time.perf_counter()
        with profiling.profile_scope(
            f"partitioner.{self.name.lower()}.stream"
        ):
            assignment = self._assign_stream(
                reader, num_partitions, seed
            )
        self.last_partitioning_seconds = time.perf_counter() - start
        if obs.enabled():
            obs.count("partitioner.runs", algorithm=self.name)
            obs.observe(
                "partitioner.seconds",
                self.last_partitioning_seconds,
                algorithm=self.name,
            )
            obs.count(
                "partitioner.vertices_assigned",
                int(assignment.shape[0]),
                algorithm=self.name,
            )
        return StreamVertexPartition(reader, assignment, num_partitions)

    def _assign_stream(
        self, reader: EdgeChunkReader, num_partitions: int, seed: int
    ) -> np.ndarray:
        """Run the unchanged in-memory kernel against a store-backed view.

        The CSR-driven streamers (LDG, Fennel, reLDG) are
        neighbour-order-independent, so the out-of-core CSR of
        :class:`StoreGraphView` reproduces their in-memory assignments
        bit-identically; the two store passes of the CSR build are the
        only edge-data passes.
        """
        view = StoreGraphView(reader)
        assignment = self._assign(view, num_partitions, seed)
        if obs.enabled():
            obs.count(
                "partitioner.stream_passes", 2, algorithm=self.name
            )
        return assignment
