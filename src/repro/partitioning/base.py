"""Partitioner interfaces.

Every partitioner in the study implements one of two abstract bases:

* :class:`EdgePartitioner` — vertex-cut; produces an :class:`EdgePartition`.
* :class:`VertexPartitioner` — edge-cut; produces a :class:`VertexPartition`.

Both expose ``partition(graph, num_partitions, seed=0)`` and record the
wall-clock partitioning time of the last run (used by the amortization
analysis, Tables 4 and 5 of the paper).
"""

from __future__ import annotations

import abc
import time
from typing import Optional

import numpy as np

from ..graph import Graph
from ..obs import api as obs
from .assignment import EdgePartition, VertexPartition

__all__ = ["Partitioner", "EdgePartitioner", "VertexPartitioner"]


class Partitioner(abc.ABC):
    """Common behaviour: naming, categories and timing."""

    #: Short name as used in the paper's tables, e.g. ``"HDRF"``.
    name: str = "base"
    #: ``"vertex-cut"`` (edge partitioning) or ``"edge-cut"`` (vertex part.).
    cut_type: str = ""
    #: Paper's category: stateless/stateful streaming, hybrid, in-memory.
    category: str = ""

    def __init__(self) -> None:
        self.last_partitioning_seconds: Optional[float] = None

    def _check_args(self, graph: Graph, num_partitions: int) -> None:
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        if graph.num_vertices == 0:
            raise ValueError("cannot partition an empty graph")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class EdgePartitioner(Partitioner):
    """Vertex-cut partitioner: assigns every undirected edge to a partition."""

    cut_type = "vertex-cut"

    def partition(
        self, graph: Graph, num_partitions: int, seed: int = 0
    ) -> EdgePartition:
        """Partition the graph's edges into ``num_partitions`` buckets."""
        self._check_args(graph, num_partitions)
        edges = graph.undirected_edges()
        start = time.perf_counter()
        assignment = self._assign(graph, edges, num_partitions, seed)
        self.last_partitioning_seconds = time.perf_counter() - start
        if obs.enabled():
            obs.count("partitioner.runs", algorithm=self.name)
            obs.observe(
                "partitioner.seconds",
                self.last_partitioning_seconds,
                algorithm=self.name,
            )
            obs.count(
                "partitioner.edges_assigned",
                int(assignment.shape[0]),
                algorithm=self.name,
            )
        return EdgePartition(graph, edges, assignment, num_partitions)

    @abc.abstractmethod
    def _assign(
        self,
        graph: Graph,
        edges: np.ndarray,
        num_partitions: int,
        seed: int,
    ) -> np.ndarray:
        """Return a partition id per row of ``edges``."""


class VertexPartitioner(Partitioner):
    """Edge-cut partitioner: assigns every vertex to a partition."""

    cut_type = "edge-cut"

    def partition(
        self, graph: Graph, num_partitions: int, seed: int = 0
    ) -> VertexPartition:
        """Partition the graph's vertices into ``num_partitions`` parts."""
        self._check_args(graph, num_partitions)
        start = time.perf_counter()
        assignment = self._assign(graph, num_partitions, seed)
        self.last_partitioning_seconds = time.perf_counter() - start
        if obs.enabled():
            obs.count("partitioner.runs", algorithm=self.name)
            obs.observe(
                "partitioner.seconds",
                self.last_partitioning_seconds,
                algorithm=self.name,
            )
            obs.count(
                "partitioner.vertices_assigned",
                int(assignment.shape[0]),
                algorithm=self.name,
            )
        return VertexPartition(graph, assignment, num_partitions)

    @abc.abstractmethod
    def _assign(
        self, graph: Graph, num_partitions: int, seed: int
    ) -> np.ndarray:
        """Return a partition id per vertex."""
