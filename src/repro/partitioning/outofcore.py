"""Out-of-core partitioning support: stream passes over a chunk store.

This module holds everything the streaming drive path
(:meth:`~repro.partitioning.base.EdgePartitioner.partition_stream` and
friends) needs to run a partitioner against an on-disk
:class:`~repro.graph.chunkstore.EdgeChunkReader` instead of an
in-memory :class:`~repro.graph.csr.Graph`:

* :func:`stream_degrees` — one pass computing symmetric degrees, the
  stand-in for ``graph.degrees()`` used by DBH and 2PS-L;
* :func:`build_stream_csr` / :class:`StoreGraphView` — an out-of-core
  symmetric CSR (memmap-backed indices) presented through a minimal
  ``Graph``-shaped shim, so the edge-cut streamers (LDG, Fennel, reLDG)
  run their unchanged kernels against it;
* :class:`StreamEdgePartition` / :class:`StreamVertexPartition` — the
  lightweight result containers of the streaming drive path (no
  ``Graph`` object exists to hang a full partition off).

Equivalence contract: when the store holds the exact stream the
in-memory path consumes — ``graph.undirected_edges()`` for vertex-cut
(see :func:`~repro.graph.chunkstore.spool_graph`), the graph's
deduplicated rows for the CSR-based edge-cut algorithms — every pass
here reproduces its in-memory counterpart bit-identically:
:func:`stream_degrees` equals ``graph.degrees()`` and the out-of-core
CSR has identical ``indptr`` and per-vertex neighbour *multisets*
(neighbour order differs, which the edge-cut kernels never observe:
they only tally neighbour partitions with ``bincount``).
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

import numpy as np

from ..graph.chunkstore import EdgeChunkReader

__all__ = [
    "stream_degrees",
    "build_stream_csr",
    "StoreGraphView",
    "StreamEdgePartition",
    "StreamVertexPartition",
]


def stream_degrees(reader: EdgeChunkReader) -> np.ndarray:
    """Symmetric degree of every vertex, computed in one store pass.

    Both endpoints of every row count, except that self-loops count
    once — exactly the multiplicity of ``Graph.symmetric_csr()``, so
    for a store spooled from a graph's deduplicated rows this equals
    ``graph.degrees()``.
    """
    n = reader.num_vertices
    degrees = np.zeros(n, dtype=np.int64)
    for chunk in reader.iter_chunks():
        u, v = chunk[:, 0], chunk[:, 1]
        degrees += np.bincount(u, minlength=n)
        degrees += np.bincount(v[v != u], minlength=n)
    return degrees


def build_stream_csr(
    reader: EdgeChunkReader,
    indices_path: Optional[str] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Build the symmetric CSR of a spooled edge stream out-of-core.

    Two passes over the store: a degree pass producing ``indptr``
    (held in memory, O(n)), then a scatter pass writing the neighbour
    array into a memmap at ``indices_path`` (O(m) on disk, O(chunk) in
    memory). Defaults to ``_sym_indices.npy`` inside the store
    directory; an existing file is overwritten.

    ``indptr`` is identical to the in-memory
    ``Graph.symmetric_csr()`` over the same rows; ``indices`` holds
    the same neighbour multiset per vertex but in stream order rather
    than sorted by target id.
    """
    n = reader.num_vertices
    degrees = stream_degrees(reader)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    if indices_path is None:
        indices_path = os.path.join(reader.directory, "_sym_indices.npy")
    indices = np.lib.format.open_memmap(
        indices_path, mode="w+", dtype=np.int64, shape=(int(indptr[-1]),)
    )
    cursor = indptr[:-1].copy()
    for chunk in reader.iter_chunks():
        u, v = chunk[:, 0], chunk[:, 1]
        loops = u == v
        # Mirror every row; self-loop mirrors are dropped so loops
        # appear once, as in Graph.symmetric_csr().
        src = np.concatenate([u, v[~loops]])
        dst = np.concatenate([v, u[~loops]])
        order = np.argsort(src, kind="stable")
        src, dst = src[order], dst[order]
        counts = np.bincount(src, minlength=n)
        group_start = np.cumsum(counts) - counts
        rank = np.arange(src.size) - group_start[src]
        indices[cursor[src] + rank] = dst
        cursor += counts
    indices.flush()
    return indptr, indices


class StoreGraphView:
    """A ``Graph``-shaped window onto a chunk store for edge-cut kernels.

    Exposes exactly the surface the CSR-driven streaming vertex
    partitioners consume — ``num_vertices``, ``num_edges``,
    ``symmetric_csr()``, ``degrees()`` — with the CSR built
    out-of-core on first use (memmap-backed neighbour array). Their
    unchanged ``_assign`` kernels run against this view and, because
    they are neighbour-order-independent, produce assignments
    bit-identical to the in-memory path.
    """

    def __init__(self, reader: EdgeChunkReader) -> None:
        self.reader = reader
        self.name = f"store:{os.path.basename(reader.directory)}"
        self._indptr: Optional[np.ndarray] = None
        self._indices: Optional[np.ndarray] = None

    @property
    def num_vertices(self) -> int:
        """Declared vertex-id space of the store."""
        return self.reader.num_vertices

    @property
    def num_edges(self) -> int:
        """Stored rows (matches ``Graph.num_edges`` for spooled graphs)."""
        return self.reader.num_edges

    @property
    def directed(self) -> bool:
        """Whether the stored rows are directed arcs."""
        return self.reader.directed

    def symmetric_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """The out-of-core symmetric CSR (built and cached on first use)."""
        if self._indptr is None:
            self._indptr, self._indices = build_stream_csr(self.reader)
        return self._indptr, self._indices

    def degrees(self) -> np.ndarray:
        """Symmetric degree of every vertex."""
        indptr, _ = self.symmetric_csr()
        return np.diff(indptr)


class StreamEdgePartition:
    """Result of an out-of-core vertex-cut run (edge assignment).

    The edges themselves stay on disk; this container carries the
    materialised assignment (one int32 per stored row, in store order)
    plus the store dimensions. Produced by
    :meth:`EdgePartitioner.partition_stream`; the fully-streaming
    consumers (shuffle, benchmarks) use
    :meth:`EdgePartitioner.stream_assignments` instead and never
    materialise it.
    """

    def __init__(
        self,
        reader: EdgeChunkReader,
        assignment: np.ndarray,
        num_partitions: int,
    ) -> None:
        assignment = np.asarray(assignment, dtype=np.int32)
        if assignment.shape[0] != reader.num_edges:
            raise ValueError(
                "assignment length must equal the store's edge count"
            )
        if assignment.size and (
            assignment.min() < 0 or assignment.max() >= num_partitions
        ):
            raise ValueError("assignment value out of range")
        self.reader = reader
        self.assignment = assignment
        self.num_partitions = int(num_partitions)

    @property
    def num_vertices(self) -> int:
        """Vertex-id space of the partitioned stream."""
        return self.reader.num_vertices

    @property
    def num_edges(self) -> int:
        """Number of assigned rows."""
        return int(self.assignment.shape[0])

    def edge_counts(self) -> np.ndarray:
        """Edges per partition, shape ``(k,)``."""
        return np.bincount(self.assignment, minlength=self.num_partitions)


class StreamVertexPartition:
    """Result of an out-of-core edge-cut run (vertex assignment)."""

    def __init__(
        self,
        reader: EdgeChunkReader,
        assignment: np.ndarray,
        num_partitions: int,
    ) -> None:
        assignment = np.asarray(assignment, dtype=np.int32)
        if assignment.shape[0] != reader.num_vertices:
            raise ValueError("assignment must have one entry per vertex")
        if assignment.size and (
            assignment.min() < 0 or assignment.max() >= num_partitions
        ):
            raise ValueError("assignment value out of range")
        self.reader = reader
        self.assignment = assignment
        self.num_partitions = int(num_partitions)

    @property
    def num_vertices(self) -> int:
        """Number of assigned vertices."""
        return int(self.assignment.shape[0])

    def vertex_counts(self) -> np.ndarray:
        """Vertices per partition, shape ``(k,)``."""
        return np.bincount(self.assignment, minlength=self.num_partitions)
