"""Partition validation: machine-checkable invariants.

Useful both as a public safety net for downstream users (validate before
an expensive training run) and as the oracle behind the property-based
test suite.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .assignment import EdgePartition, VertexPartition

__all__ = [
    "validate_edge_partition",
    "validate_vertex_partition",
    "PartitionValidationError",
]


class PartitionValidationError(ValueError):
    """Raised by the ``strict`` validation mode; carries all findings."""

    def __init__(self, problems: List[str]) -> None:
        super().__init__("; ".join(problems))
        self.problems = problems


def validate_edge_partition(
    partition: EdgePartition, strict: bool = True
) -> List[str]:
    """Check a vertex-cut partition's invariants.

    Returns the list of violated invariants (empty if valid); with
    ``strict`` a non-empty list raises :class:`PartitionValidationError`.
    """
    problems: List[str] = []
    expected_edges = partition.graph.undirected_edges()
    if partition.edges.shape != expected_edges.shape or not np.array_equal(
        np.sort(
            partition.edges[np.lexsort(partition.edges.T[::-1])], axis=0
        ),
        np.sort(expected_edges[np.lexsort(expected_edges.T[::-1])], axis=0),
    ):
        problems.append("edge set does not match the graph's edges")
    if partition.assignment.shape[0] != partition.edges.shape[0]:
        problems.append("assignment length differs from edge count")
    in_range = not partition.assignment.size or (
        partition.assignment.min() >= 0
        and partition.assignment.max() < partition.num_partitions
    )
    if not in_range:
        problems.append("assignment value outside [0, k)")
    if in_range and not problems:
        # Derived checks only make sense on structurally sound input.
        if partition.edge_counts().sum() != partition.num_edges:
            problems.append("edge counts do not sum to |E|")
        copies = partition.copies_per_vertex()
        degrees = partition.graph.degrees()
        limit = np.minimum(np.maximum(degrees, 1), partition.num_partitions)
        if (copies > limit).any():
            problems.append("a vertex is replicated beyond min(degree, k)")
        if (copies[degrees > 0] < 1).any():
            problems.append("a non-isolated vertex has no replica")
    if strict and problems:
        raise PartitionValidationError(problems)
    return problems


def validate_vertex_partition(
    partition: VertexPartition, strict: bool = True
) -> List[str]:
    """Check an edge-cut partition's invariants (see above for modes)."""
    problems: List[str] = []
    if partition.assignment.shape != (partition.graph.num_vertices,):
        problems.append("assignment must cover every vertex exactly once")
    in_range = not partition.assignment.size or (
        partition.assignment.min() >= 0
        and partition.assignment.max() < partition.num_partitions
    )
    if not in_range:
        problems.append("assignment value outside [0, k)")
    if in_range and not problems:
        if partition.vertex_counts().sum() != partition.graph.num_vertices:
            problems.append("vertex counts do not sum to |V|")
        cut = partition.num_cut_edges()
        local = int(partition.local_edge_counts().sum())
        total = partition.graph.undirected_edges().shape[0]
        if cut + local != total:
            problems.append(
                "cut + local edges do not account for every edge"
            )
    if strict and problems:
        raise PartitionValidationError(problems)
    return problems
