"""Random (hash) edge partitioning — the paper's vertex-cut baseline."""

from __future__ import annotations

import numpy as np

from ...graph import Graph
from ..base import EdgePartitioner

__all__ = ["RandomEdgePartitioner"]


class RandomEdgePartitioner(EdgePartitioner):
    """Assigns each edge to a uniformly random partition.

    Stateless streaming: the assignment of an edge depends on nothing but
    the edge itself. Produces near-perfect edge balance and the worst
    replication factor of all partitioners (paper, Figure 2).
    """

    name = "Random"
    category = "stateless streaming"

    def _assign(
        self,
        graph: Graph,
        edges: np.ndarray,
        num_partitions: int,
        seed: int,
    ) -> np.ndarray:
        rng = np.random.default_rng(seed)
        return rng.integers(
            0, num_partitions, size=edges.shape[0], dtype=np.int32
        )
