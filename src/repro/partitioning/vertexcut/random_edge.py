"""Random (hash) edge partitioning — the paper's vertex-cut baseline."""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from ...graph import Graph
from ...graph.chunkstore import EdgeChunkReader
from ...obs import api as obs
from ..base import EdgePartitioner

__all__ = ["RandomEdgePartitioner"]


class RandomEdgePartitioner(EdgePartitioner):
    """Assigns each edge to a uniformly random partition.

    Stateless streaming: the assignment of an edge depends on nothing but
    the edge itself. Produces near-perfect edge balance and the worst
    replication factor of all partitioners (paper, Figure 2).
    """

    name = "Random"
    category = "stateless streaming"
    supports_stream = True

    def _assign(
        self,
        graph: Graph,
        edges: np.ndarray,
        num_partitions: int,
        seed: int,
    ) -> np.ndarray:
        rng = np.random.default_rng(seed)
        return rng.integers(
            0, num_partitions, size=edges.shape[0], dtype=np.int32
        )

    def _assign_stream(
        self, reader: EdgeChunkReader, num_partitions: int, seed: int
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        # Sequential draws from one Generator concatenate to exactly the
        # single full-size draw of the in-memory path, so the chunked
        # assignment is identical whatever the store chunking.
        rng = np.random.default_rng(seed)
        if obs.enabled():
            obs.count("partitioner.stream_passes", algorithm=self.name)
        for chunk in reader.iter_chunks():
            yield chunk, rng.integers(
                0, num_partitions, size=chunk.shape[0], dtype=np.int32
            )