"""Greedy replica-reducing refinement for in-memory edge partitions.

Used by HEP's in-memory phase: after neighbourhood expansion, edges are
re-visited and moved to the partition that frees the most vertex replicas,
subject to an edge balance cap. This is the kind of local optimisation an
in-memory partitioner can afford and a streaming partitioner cannot — it is
what separates the "high-quality" partitioners in the paper.
"""

from __future__ import annotations

import numpy as np

__all__ = ["refine_edge_assignment", "coalesce_vertex_moves"]


def refine_edge_assignment(
    edges: np.ndarray,
    assignment: np.ndarray,
    edge_ids: np.ndarray,
    num_vertices: int,
    num_partitions: int,
    cap: int,
    sweeps: int = 2,
    seed: int = 0,
) -> int:
    """Greedily move edges between partitions to reduce vertex replicas.

    Only edges listed in ``edge_ids`` are moved; ``assignment`` is modified
    in place (entries must be valid for all ``edge_ids``). Returns the
    number of moves performed.

    A move of edge ``(u, v)`` from partition ``p`` to ``q`` frees a replica
    for each endpoint whose *only* edge in ``p`` was this edge, and creates
    one for each endpoint not yet present in ``q``. Moves are applied when
    the net replica change is negative and ``q`` stays under ``cap`` edges.
    """
    counts = np.zeros((num_vertices, num_partitions), dtype=np.int32)
    sub_edges = edges[edge_ids]
    sub_assign = assignment[edge_ids]
    np.add.at(counts, (sub_edges[:, 0], sub_assign), 1)
    np.add.at(counts, (sub_edges[:, 1], sub_assign), 1)
    loads = np.bincount(sub_assign, minlength=num_partitions).astype(np.int64)

    rng = np.random.default_rng(seed)
    moves = 0
    for _ in range(sweeps):
        moved_this_sweep = 0
        for eid in edge_ids[rng.permutation(edge_ids.shape[0])]:
            u, v = int(edges[eid, 0]), int(edges[eid, 1])
            p = int(assignment[eid])
            freed = int(counts[u, p] == 1) + int(counts[v, p] == 1)
            if freed == 0:
                continue  # moving away can never help
            row = counts[u] + counts[v]
            candidates = np.flatnonzero(row > 0)
            best_q, best_delta = -1, 0
            for q in candidates:
                q = int(q)
                if q == p or loads[q] >= cap:
                    continue
                created = int(counts[u, q] == 0) + int(counts[v, q] == 0)
                delta = created - freed
                if delta < best_delta or (
                    delta == best_delta
                    and best_q >= 0
                    and loads[q] < loads[best_q]
                ):
                    best_q, best_delta = q, delta
            if best_q < 0 or best_delta >= 0:
                continue
            assignment[eid] = best_q
            counts[u, p] -= 1
            counts[v, p] -= 1
            counts[u, best_q] += 1
            counts[v, best_q] += 1
            loads[p] -= 1
            loads[best_q] += 1
            moves += 1
            moved_this_sweep += 1
        if moved_this_sweep == 0:
            break
    return moves


def coalesce_vertex_moves(
    edges: np.ndarray,
    assignment: np.ndarray,
    edge_ids: np.ndarray,
    num_vertices: int,
    num_partitions: int,
    cap: int,
    sweeps: int = 2,
    seed: int = 0,
) -> int:
    """Vertex-level refinement: evacuate a vertex's minority partitions.

    Where :func:`refine_edge_assignment` moves one edge at a time (and gets
    stuck when a vertex has several edges in a partition — no single move
    frees the replica), this pass moves *all* edges a vertex has in one
    partition into its strongest partition at once, when the net replica
    change is negative and the balance cap allows. Returns the number of
    bulk moves performed.
    """
    movable = np.zeros(edges.shape[0], dtype=bool)
    movable[edge_ids] = True
    counts = np.zeros((num_vertices, num_partitions), dtype=np.int32)
    sub_edges = edges[edge_ids]
    sub_assign = assignment[edge_ids]
    np.add.at(counts, (sub_edges[:, 0], sub_assign), 1)
    np.add.at(counts, (sub_edges[:, 1], sub_assign), 1)
    loads = np.bincount(sub_assign, minlength=num_partitions).astype(np.int64)

    # Incidence CSR over the movable edges.
    endpoints = np.concatenate([sub_edges[:, 0], sub_edges[:, 1]])
    eids = np.concatenate([edge_ids, edge_ids])
    order = np.argsort(endpoints, kind="stable")
    endpoints_sorted = endpoints[order]
    eids_sorted = eids[order]
    vert_counts = np.bincount(endpoints_sorted, minlength=num_vertices)
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(vert_counts, out=indptr[1:])

    rng = np.random.default_rng(seed)
    total_moves = 0
    active = np.flatnonzero((counts > 0).sum(axis=1) > 1)
    for _ in range(sweeps):
        moved_this_sweep = 0
        for v in rng.permutation(active):
            v = int(v)
            row = counts[v]
            present = np.flatnonzero(row > 0)
            if present.size < 2:
                continue
            target = int(present[row[present].argmax()])
            my_edges = eids_sorted[indptr[v] : indptr[v + 1]]
            for p in present:
                p = int(p)
                if p == target:
                    continue
                batch = my_edges[assignment[my_edges] == p]
                if batch.size == 0 or loads[target] + batch.size > cap:
                    continue
                others = np.where(
                    edges[batch, 0] == v, edges[batch, 1], edges[batch, 0]
                )
                others = others[others != v]  # ignore self loops
                freed = 1 + int((counts[others, p] == 1).sum())
                created = int((counts[others, target] == 0).sum())
                if created - freed >= 0:
                    continue
                assignment[batch] = target
                counts[v, p] = 0
                counts[v, target] += batch.size
                counts[others, p] -= 1
                counts[others, target] += 1
                loads[p] -= batch.size
                loads[target] += batch.size
                total_moves += 1
                moved_this_sweep += 1
        if moved_this_sweep == 0:
            break
    return total_moves
