"""High-Degree (are) Replicated First — HDRF.

Petroni et al., CIKM 2015. Stateful streaming vertex-cut: each incoming
edge is placed on the partition maximising a score that (a) prefers
partitions already holding the edge's endpoints, weighted so that the
*lower*-degree endpoint dominates the decision (replicate hubs, keep
low-degree vertices whole), and (b) penalises imbalance.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from ...graph import Graph
from ...graph.chunkstore import EdgeChunkReader
from ...obs import api as obs
from ..base import EdgePartitioner
from .streaming import DEFAULT_CHUNK, HdrfState

__all__ = ["HdrfPartitioner"]


class HdrfPartitioner(EdgePartitioner):
    """High-Degree Replicated First greedy streaming edge placement (HDRF)."""
    name = "HDRF"
    category = "stateful streaming"
    supports_stream = True

    def __init__(
        self,
        lambda_balance: float = 1.1,
        chunk_size: int = DEFAULT_CHUNK,
        vectorised: bool = True,
        shuffle_stream: bool = True,
    ) -> None:
        super().__init__()
        self.lambda_balance = lambda_balance
        self.chunk_size = chunk_size
        # ``vectorised=False`` runs the retained scalar reference kernel
        # (identical output; used by equivalence tests and benchmarks).
        self.vectorised = vectorised
        # ``shuffle_stream=False`` streams edges in their given order
        # instead of a seeded permutation — the order the out-of-core
        # path necessarily uses (permuting is O(m) memory), so the two
        # paths are comparable bit-for-bit.
        self.shuffle_stream = shuffle_stream

    def _assign(
        self,
        graph: Graph,
        edges: np.ndarray,
        num_partitions: int,
        seed: int,
    ) -> np.ndarray:
        state = HdrfState(
            graph.num_vertices,
            num_partitions,
            self.lambda_balance,
            chunk_size=self.chunk_size,
        )
        place = (
            state.place_edges
            if self.vectorised
            else state.place_edges_reference
        )
        if not self.shuffle_stream:
            return place(edges)
        rng = np.random.default_rng(seed)
        order = rng.permutation(edges.shape[0])
        assignment = np.empty(edges.shape[0], dtype=np.int32)
        assignment[order] = place(edges[order])
        return assignment

    def _assign_stream(
        self, reader: EdgeChunkReader, num_partitions: int, seed: int
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        state = HdrfState(
            reader.num_vertices,
            num_partitions,
            self.lambda_balance,
            chunk_size=self.chunk_size,
        )
        if obs.enabled():
            obs.count("partitioner.stream_passes", algorithm=self.name)
        return state.place_blocks(reader.iter_chunks())