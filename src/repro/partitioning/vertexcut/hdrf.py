"""High-Degree (are) Replicated First — HDRF.

Petroni et al., CIKM 2015. Stateful streaming vertex-cut: each incoming
edge is placed on the partition maximising a score that (a) prefers
partitions already holding the edge's endpoints, weighted so that the
*lower*-degree endpoint dominates the decision (replicate hubs, keep
low-degree vertices whole), and (b) penalises imbalance.
"""

from __future__ import annotations

import numpy as np

from ...graph import Graph
from ..base import EdgePartitioner
from .streaming import DEFAULT_CHUNK, HdrfState

__all__ = ["HdrfPartitioner"]


class HdrfPartitioner(EdgePartitioner):
    """High-Degree Replicated First greedy streaming edge placement (HDRF)."""
    name = "HDRF"
    category = "stateful streaming"

    def __init__(
        self,
        lambda_balance: float = 1.1,
        chunk_size: int = DEFAULT_CHUNK,
        vectorised: bool = True,
    ) -> None:
        super().__init__()
        self.lambda_balance = lambda_balance
        self.chunk_size = chunk_size
        # ``vectorised=False`` runs the retained scalar reference kernel
        # (identical output; used by equivalence tests and benchmarks).
        self.vectorised = vectorised

    def _assign(
        self,
        graph: Graph,
        edges: np.ndarray,
        num_partitions: int,
        seed: int,
    ) -> np.ndarray:
        rng = np.random.default_rng(seed)
        order = rng.permutation(edges.shape[0])
        state = HdrfState(
            graph.num_vertices,
            num_partitions,
            self.lambda_balance,
            chunk_size=self.chunk_size,
        )
        place = (
            state.place_edges
            if self.vectorised
            else state.place_edges_reference
        )
        assignment = np.empty(edges.shape[0], dtype=np.int32)
        assignment[order] = place(edges[order])
        return assignment
