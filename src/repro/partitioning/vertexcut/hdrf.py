"""High-Degree (are) Replicated First — HDRF.

Petroni et al., CIKM 2015. Stateful streaming vertex-cut: each incoming
edge is placed on the partition maximising a score that (a) prefers
partitions already holding the edge's endpoints, weighted so that the
*lower*-degree endpoint dominates the decision (replicate hubs, keep
low-degree vertices whole), and (b) penalises imbalance.
"""

from __future__ import annotations

import numpy as np

from ...graph import Graph
from ..base import EdgePartitioner
from .streaming import HdrfState

__all__ = ["HdrfPartitioner"]


class HdrfPartitioner(EdgePartitioner):
    name = "HDRF"
    category = "stateful streaming"

    def __init__(self, lambda_balance: float = 1.1) -> None:
        super().__init__()
        self.lambda_balance = lambda_balance

    def _assign(
        self,
        graph: Graph,
        edges: np.ndarray,
        num_partitions: int,
        seed: int,
    ) -> np.ndarray:
        rng = np.random.default_rng(seed)
        order = rng.permutation(edges.shape[0])
        state = HdrfState(
            graph.num_vertices, num_partitions, self.lambda_balance
        )
        assignment = np.empty(edges.shape[0], dtype=np.int32)
        assignment[order] = state.place_edges(edges[order])
        return assignment
