"""Degree-Based Hashing (DBH) edge partitioner.

Xie et al., "Distributed Power-law Graph Computing: Theoretical and
Empirical Analysis", NeurIPS 2014. Each edge is hashed on its
*lower-degree* endpoint, so low-degree vertices keep all their edges on one
partition while hub vertices (which would be replicated anyway) absorb the
cuts. Stateless streaming.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from ...graph import Graph
from ...graph.chunkstore import EdgeChunkReader
from ...obs import api as obs
from ..base import EdgePartitioner
from ..outofcore import stream_degrees

__all__ = ["DbhPartitioner"]


def _splitmix64(values: np.ndarray, seed: int) -> np.ndarray:
    """Deterministic 64-bit mix so 'hashing' differs per seed."""
    offset = np.uint64((0x9E3779B97F4A7C15 * (seed + 1)) & 0xFFFFFFFFFFFFFFFF)
    x = values.astype(np.uint64) + offset
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return x ^ (x >> np.uint64(31))


def _hash_assign(
    edges: np.ndarray,
    degrees: np.ndarray,
    num_partitions: int,
    seed: int,
) -> np.ndarray:
    """The DBH rule for a block of edges: a pure per-edge function."""
    u, v = edges[:, 0], edges[:, 1]
    # Hash on the endpoint with the smaller degree (ties -> smaller id).
    u_smaller = (degrees[u] < degrees[v]) | (
        (degrees[u] == degrees[v]) & (u < v)
    )
    anchor = np.where(u_smaller, u, v)
    hashed = _splitmix64(anchor, seed)
    return (hashed % np.uint64(num_partitions)).astype(np.int32)


class DbhPartitioner(EdgePartitioner):
    """Degree-Based Hashing: cut the higher-degree endpoint (DBH)."""
    name = "DBH"
    category = "stateless streaming"
    supports_stream = True

    def _assign(
        self,
        graph: Graph,
        edges: np.ndarray,
        num_partitions: int,
        seed: int,
    ) -> np.ndarray:
        return _hash_assign(edges, graph.degrees(), num_partitions, seed)

    def _assign_stream(
        self, reader: EdgeChunkReader, num_partitions: int, seed: int
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        # Degree pass first, then a per-chunk application of the same
        # pure per-edge rule — identical to the in-memory assignment.
        degrees = stream_degrees(reader)
        if obs.enabled():
            obs.count("partitioner.stream_passes", 2, algorithm=self.name)
        for chunk in reader.iter_chunks():
            yield chunk, _hash_assign(chunk, degrees, num_partitions, seed)