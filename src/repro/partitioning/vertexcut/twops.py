"""2PS-L: Two-Phase Streaming with Linear run-time.

Mayer, Orujzade, Jacobsen, ICDE 2022. Phase one streams the edges and
greedily merges endpoints into volume-capped clusters; phase two packs
clusters onto partitions and streams the edges again, assigning each edge
to the partition of its endpoints' clusters (tie-broken by load).

The paper's key empirical observation about 2PS-L — low replication factor
but *large vertex imbalance* (Figure 4), which hurts its speedup (Figure 8)
— emerges here naturally: clustering co-locates whole communities, so some
partitions cover far more distinct vertices than others.

Both phases are inherently sequential (a volume-capped union-find and a
load-capped greedy), so unlike HDRF there is no chunk semantics to
introduce: the fast paths below (plain-python union-find state, batch
precomputation of each edge's candidate partitions) implement *exactly*
the classic per-edge rules and are bit-identical to the retained
reference loops by construction (still equivalence-tested).
"""

from __future__ import annotations

import numpy as np

from ...graph import Graph
from ..base import EdgePartitioner

__all__ = ["TwoPsLPartitioner"]


class TwoPsLPartitioner(EdgePartitioner):
    """Two-Phase Streaming (2PS-L): clustering pass then placement pass."""
    name = "2PS-L"
    category = "stateful streaming"

    def __init__(
        self, balance_cap: float = 1.05, vectorised: bool = True
    ) -> None:
        super().__init__()
        self.balance_cap = balance_cap
        # ``vectorised=False`` runs the retained scalar reference loops
        # (identical output; used by equivalence tests and benchmarks).
        self.vectorised = vectorised

    def _assign(
        self,
        graph: Graph,
        edges: np.ndarray,
        num_partitions: int,
        seed: int,
    ) -> np.ndarray:
        rng = np.random.default_rng(seed)
        order = rng.permutation(edges.shape[0])
        streamed = edges[order]
        cluster = self._cluster if self.vectorised else self._cluster_reference
        place = self._place if self.vectorised else self._place_reference
        clusters = cluster(graph, streamed, edges.shape[0], num_partitions)
        cluster_to_part = self._pack_clusters(
            clusters, graph, num_partitions
        )
        assignment = np.empty(edges.shape[0], dtype=np.int32)
        assignment[order] = place(
            streamed,
            clusters,
            cluster_to_part,
            num_partitions,
            graph.degrees(),
        )
        return assignment

    # ------------------------------------------------------------------
    # Phase 1: streaming clustering with per-cluster volume cap.
    #
    # Volume of a cluster = sum of (full) degrees of its members; capped
    # at the average partition volume ``2|E|/k`` so no cluster exceeds
    # one partition. Clusters are merged with a union-find structure
    # (2PS-L restreams instead, but the resulting communities are the
    # same; we restream once more to let late singletons join).
    # ------------------------------------------------------------------
    def _cluster(
        self,
        graph: Graph,
        streamed: np.ndarray,
        num_edges: int,
        num_partitions: int,
    ) -> np.ndarray:
        """Union-find on plain-python state; scalar array indexing in the
        inner loop costs ~10x more than list indexing, and the merge
        sequence itself cannot be batched. Final roots are resolved by
        vectorised pointer jumping. Output is bit-identical to
        :meth:`_cluster_reference`."""
        cap = max(int(2 * num_edges / num_partitions), 2)
        parent = list(range(graph.num_vertices))
        volume = graph.degrees().astype(np.int64).tolist()
        pairs = streamed.tolist()

        for _ in range(2):  # one clustering pass + one restream pass
            for u, v in pairs:
                ru = u
                while parent[ru] != ru:
                    parent[ru] = parent[parent[ru]]  # path halving
                    ru = parent[ru]
                rv = v
                while parent[rv] != rv:
                    parent[rv] = parent[parent[rv]]
                    rv = parent[rv]
                if ru == rv:
                    continue
                if volume[ru] + volume[rv] <= cap:
                    small, large = (
                        (ru, rv) if volume[ru] <= volume[rv] else (rv, ru)
                    )
                    parent[small] = large
                    volume[large] += volume[small]
        roots = np.asarray(parent, dtype=np.int64)
        while True:
            jumped = roots[roots]
            if np.array_equal(jumped, roots):
                break
            roots = jumped
        # Compact root ids to 0..C-1.
        _, cluster_of = np.unique(roots, return_inverse=True)
        return cluster_of.astype(np.int64)

    def _cluster_reference(
        self,
        graph: Graph,
        streamed: np.ndarray,
        num_edges: int,
        num_partitions: int,
    ) -> np.ndarray:
        """Retained scalar reference for :meth:`_cluster`."""
        degrees = graph.degrees().astype(np.int64)
        cap = max(int(2 * num_edges / num_partitions), 2)
        parent = np.arange(graph.num_vertices, dtype=np.int64)
        volume = degrees.copy()  # every vertex starts as its own cluster

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]  # path halving
                x = int(parent[x])
            return x

        for _ in range(2):
            for u, v in streamed:
                ru, rv = find(int(u)), find(int(v))
                if ru == rv:
                    continue
                if volume[ru] + volume[rv] <= cap:
                    small, large = (
                        (ru, rv) if volume[ru] <= volume[rv] else (rv, ru)
                    )
                    parent[small] = large
                    volume[large] += volume[small]
        roots = np.array(
            [find(int(v)) for v in range(graph.num_vertices)],
            dtype=np.int64,
        )
        _, cluster_of = np.unique(roots, return_inverse=True)
        return cluster_of.astype(np.int64)

    def _pack_clusters(
        self, cluster_of: np.ndarray, graph: Graph, num_partitions: int
    ) -> np.ndarray:
        """Phase 2a: largest-first bin packing of clusters by volume."""
        degrees = graph.degrees().astype(np.int64)
        num_clusters = int(cluster_of.max()) + 1 if cluster_of.size else 0
        volume = np.zeros(max(num_clusters, 1), dtype=np.int64)
        member_mask = cluster_of >= 0
        np.add.at(volume, cluster_of[member_mask], degrees[member_mask])
        mapping = np.zeros(max(num_clusters, 1), dtype=np.int32)
        loads = np.zeros(num_partitions, dtype=np.int64)
        for cluster in np.argsort(-volume):
            target = int(loads.argmin())
            mapping[cluster] = target
            loads[target] += volume[cluster]
        return mapping

    # ------------------------------------------------------------------
    # Phase 2b: stream edges, assign via cluster->partition map.
    #
    # When the endpoints' clusters sit on different partitions, the edge
    # follows the *lower-degree* endpoint (as in HDRF/DBH: keep
    # low-degree vertices whole, replicate hubs), subject to the balance
    # cap.
    # ------------------------------------------------------------------
    def _place(
        self,
        streamed: np.ndarray,
        cluster_of: np.ndarray,
        cluster_to_part: np.ndarray,
        num_partitions: int,
        degrees: np.ndarray,
    ) -> np.ndarray:
        """Each edge's candidate partitions (preferred, then spill) are
        pure functions of the static cluster map, so they are computed
        for the whole stream in one numpy pass; the remaining per-edge
        work is the load-cap bookkeeping, kept in plain-python state.
        Output is bit-identical to :meth:`_place_reference`."""
        cap = int(self.balance_cap * streamed.shape[0] / num_partitions) + 1
        pu = cluster_to_part[cluster_of[streamed[:, 0]]]
        pv = cluster_to_part[cluster_of[streamed[:, 1]]]
        u_first = degrees[streamed[:, 0]] <= degrees[streamed[:, 1]]
        first = np.where(u_first, pu, pv).tolist()
        second = np.where(u_first, pv, pu).tolist()
        k = num_partitions
        loads = [0] * k
        assignment = np.empty(streamed.shape[0], dtype=np.int32)
        out = assignment  # scalar int32 writes
        for i in range(len(first)):
            target = first[i]
            if loads[target] >= cap:
                target = second[i]
                if loads[target] >= cap:
                    target = min(range(k), key=loads.__getitem__)
            out[i] = target
            loads[target] += 1
        return assignment

    def _place_reference(
        self,
        streamed: np.ndarray,
        cluster_of: np.ndarray,
        cluster_to_part: np.ndarray,
        num_partitions: int,
        degrees: np.ndarray,
    ) -> np.ndarray:
        """Retained scalar reference for :meth:`_place`."""
        cap = int(self.balance_cap * streamed.shape[0] / num_partitions) + 1
        loads = np.zeros(num_partitions, dtype=np.int64)
        assignment = np.empty(streamed.shape[0], dtype=np.int32)
        for i, (u, v) in enumerate(streamed):
            u, v = int(u), int(v)
            pu = int(cluster_to_part[cluster_of[u]])
            pv = int(cluster_to_part[cluster_of[v]])
            if pu == pv:
                target = pu if loads[pu] < cap else int(loads.argmin())
            else:
                first, second = (
                    (pu, pv) if degrees[u] <= degrees[v] else (pv, pu)
                )
                if loads[first] < cap:
                    target = first
                elif loads[second] < cap:
                    target = second
                else:
                    target = int(loads.argmin())
            assignment[i] = target
            loads[target] += 1
        return assignment
