"""2PS-L: Two-Phase Streaming with Linear run-time.

Mayer, Orujzade, Jacobsen, ICDE 2022. Phase one streams the edges and
greedily merges endpoints into volume-capped clusters; phase two packs
clusters onto partitions and streams the edges again, assigning each edge
to the partition of its endpoints' clusters (tie-broken by load).

The paper's key empirical observation about 2PS-L — low replication factor
but *large vertex imbalance* (Figure 4), which hurts its speedup (Figure 8)
— emerges here naturally: clustering co-locates whole communities, so some
partitions cover far more distinct vertices than others.

Both phases are inherently sequential (a volume-capped union-find and a
load-capped greedy), so unlike HDRF there is no chunk semantics to
introduce: the fast paths below (plain-python union-find state, batch
precomputation of each edge's candidate partitions) implement *exactly*
the classic per-edge rules and are bit-identical to the retained
reference loops by construction (still equivalence-tested).

Both phases consume the stream through a re-iterable *block factory*, so
the same code drives the in-memory path (one block: the full edge array)
and the out-of-core path (the chunks of an on-disk spool) — which is what
makes the two paths bit-identical for the same stream order.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Tuple

import numpy as np

from ...graph import Graph
from ...graph.chunkstore import EdgeChunkReader
from ...obs import api as obs
from ..base import EdgePartitioner
from ..outofcore import stream_degrees

__all__ = ["TwoPsLPartitioner"]

#: A callable returning a fresh iterable over the edge blocks of the
#: stream (phase one iterates the stream twice).
BlockFactory = Callable[[], Iterable[np.ndarray]]


class TwoPsLPartitioner(EdgePartitioner):
    """Two-Phase Streaming (2PS-L): clustering pass then placement pass."""
    name = "2PS-L"
    category = "stateful streaming"
    supports_stream = True

    def __init__(
        self,
        balance_cap: float = 1.05,
        vectorised: bool = True,
        shuffle_stream: bool = True,
    ) -> None:
        super().__init__()
        self.balance_cap = balance_cap
        # ``vectorised=False`` runs the retained scalar reference loops
        # (identical output; used by equivalence tests and benchmarks).
        self.vectorised = vectorised
        # ``shuffle_stream=False`` streams edges in their given order
        # instead of a seeded permutation — the order the out-of-core
        # path necessarily uses.
        self.shuffle_stream = shuffle_stream

    def _assign(
        self,
        graph: Graph,
        edges: np.ndarray,
        num_partitions: int,
        seed: int,
    ) -> np.ndarray:
        if self.shuffle_stream:
            rng = np.random.default_rng(seed)
            order = rng.permutation(edges.shape[0])
            streamed = edges[order]
        else:
            order = None
            streamed = edges
        degrees = graph.degrees()
        num_edges = edges.shape[0]
        if self.vectorised:
            factory: BlockFactory = lambda: (streamed,)
            clusters = self._cluster_blocks(
                degrees, graph.num_vertices, factory,
                num_edges, num_partitions,
            )
            cluster_to_part = self._pack_clusters(
                clusters, degrees, num_partitions
            )
            placed = np.concatenate(
                [
                    block_assignment
                    for _, block_assignment in self._place_blocks(
                        factory, clusters, cluster_to_part,
                        num_partitions, degrees, num_edges,
                    )
                ]
            )
        else:
            clusters = self._cluster_reference(
                graph, streamed, num_edges, num_partitions
            )
            cluster_to_part = self._pack_clusters(
                clusters, degrees, num_partitions
            )
            placed = self._place_reference(
                streamed, clusters, cluster_to_part, num_partitions, degrees
            )
        if order is None:
            return placed
        assignment = np.empty(num_edges, dtype=np.int32)
        assignment[order] = placed
        return assignment

    def _assign_stream(
        self, reader: EdgeChunkReader, num_partitions: int, seed: int
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        # Four store passes: degrees, two clustering streams, placement.
        degrees = stream_degrees(reader)
        clusters = self._cluster_blocks(
            degrees, reader.num_vertices, reader.iter_chunks,
            reader.num_edges, num_partitions,
        )
        cluster_to_part = self._pack_clusters(
            clusters, degrees, num_partitions
        )
        if obs.enabled():
            obs.count("partitioner.stream_passes", 4, algorithm=self.name)
        return self._place_blocks(
            reader.iter_chunks, clusters, cluster_to_part,
            num_partitions, degrees, reader.num_edges,
        )

    # ------------------------------------------------------------------
    # Phase 1: streaming clustering with per-cluster volume cap.
    #
    # Volume of a cluster = sum of (full) degrees of its members; capped
    # at the average partition volume ``2|E|/k`` so no cluster exceeds
    # one partition. Clusters are merged with a union-find structure
    # (2PS-L restreams instead, but the resulting communities are the
    # same; we restream once more to let late singletons join).
    # ------------------------------------------------------------------
    def _cluster_blocks(
        self,
        degrees: np.ndarray,
        num_vertices: int,
        blocks: BlockFactory,
        num_edges: int,
        num_partitions: int,
    ) -> np.ndarray:
        """Union-find on plain-python state; scalar array indexing in the
        inner loop costs ~10x more than list indexing, and the merge
        sequence itself cannot be batched. Final roots are resolved by
        vectorised pointer jumping. Output is bit-identical to
        :meth:`_cluster_reference` for the same stream order."""
        cap = max(int(2 * num_edges / num_partitions), 2)
        parent = list(range(num_vertices))
        volume = degrees.astype(np.int64).tolist()

        for _ in range(2):  # one clustering pass + one restream pass
            for block in blocks():
                for u, v in block.tolist():
                    ru = u
                    while parent[ru] != ru:
                        parent[ru] = parent[parent[ru]]  # path halving
                        ru = parent[ru]
                    rv = v
                    while parent[rv] != rv:
                        parent[rv] = parent[parent[rv]]
                        rv = parent[rv]
                    if ru == rv:
                        continue
                    if volume[ru] + volume[rv] <= cap:
                        small, large = (
                            (ru, rv) if volume[ru] <= volume[rv] else (rv, ru)
                        )
                        parent[small] = large
                        volume[large] += volume[small]
        roots = np.asarray(parent, dtype=np.int64)
        while True:
            jumped = roots[roots]
            if np.array_equal(jumped, roots):
                break
            roots = jumped
        # Compact root ids to 0..C-1.
        _, cluster_of = np.unique(roots, return_inverse=True)
        return cluster_of.astype(np.int64)

    def _cluster_reference(
        self,
        graph: Graph,
        streamed: np.ndarray,
        num_edges: int,
        num_partitions: int,
    ) -> np.ndarray:
        """Retained scalar reference for :meth:`_cluster_blocks`."""
        degrees = graph.degrees().astype(np.int64)
        cap = max(int(2 * num_edges / num_partitions), 2)
        parent = np.arange(graph.num_vertices, dtype=np.int64)
        volume = degrees.copy()  # every vertex starts as its own cluster

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]  # path halving
                x = int(parent[x])
            return x

        for _ in range(2):
            for u, v in streamed:
                ru, rv = find(int(u)), find(int(v))
                if ru == rv:
                    continue
                if volume[ru] + volume[rv] <= cap:
                    small, large = (
                        (ru, rv) if volume[ru] <= volume[rv] else (rv, ru)
                    )
                    parent[small] = large
                    volume[large] += volume[small]
        roots = np.array(
            [find(int(v)) for v in range(graph.num_vertices)],
            dtype=np.int64,
        )
        _, cluster_of = np.unique(roots, return_inverse=True)
        return cluster_of.astype(np.int64)

    def _pack_clusters(
        self,
        cluster_of: np.ndarray,
        degrees: np.ndarray,
        num_partitions: int,
    ) -> np.ndarray:
        """Phase 2a: largest-first bin packing of clusters by volume."""
        degrees = degrees.astype(np.int64)
        num_clusters = int(cluster_of.max()) + 1 if cluster_of.size else 0
        volume = np.zeros(max(num_clusters, 1), dtype=np.int64)
        member_mask = cluster_of >= 0
        np.add.at(volume, cluster_of[member_mask], degrees[member_mask])
        mapping = np.zeros(max(num_clusters, 1), dtype=np.int32)
        loads = np.zeros(num_partitions, dtype=np.int64)
        for cluster in np.argsort(-volume):
            target = int(loads.argmin())
            mapping[cluster] = target
            loads[target] += volume[cluster]
        return mapping

    # ------------------------------------------------------------------
    # Phase 2b: stream edges, assign via cluster->partition map.
    #
    # When the endpoints' clusters sit on different partitions, the edge
    # follows the *lower-degree* endpoint (as in HDRF/DBH: keep
    # low-degree vertices whole, replicate hubs), subject to the balance
    # cap.
    # ------------------------------------------------------------------
    def _place_blocks(
        self,
        blocks: BlockFactory,
        cluster_of: np.ndarray,
        cluster_to_part: np.ndarray,
        num_partitions: int,
        degrees: np.ndarray,
        num_edges: int,
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Each edge's candidate partitions (preferred, then spill) are
        pure functions of the static cluster map, so they are computed
        per block in one numpy pass; the remaining per-edge work is the
        load-cap bookkeeping, kept in plain-python state persisting
        across blocks. Output is bit-identical to
        :meth:`_place_reference` for the same stream order."""
        cap = int(self.balance_cap * num_edges / num_partitions) + 1
        k = num_partitions
        loads = [0] * k
        for block in blocks():
            pu = cluster_to_part[cluster_of[block[:, 0]]]
            pv = cluster_to_part[cluster_of[block[:, 1]]]
            u_first = degrees[block[:, 0]] <= degrees[block[:, 1]]
            first = np.where(u_first, pu, pv).tolist()
            second = np.where(u_first, pv, pu).tolist()
            out = np.empty(block.shape[0], dtype=np.int32)
            for i in range(len(first)):
                target = first[i]
                if loads[target] >= cap:
                    target = second[i]
                    if loads[target] >= cap:
                        target = min(range(k), key=loads.__getitem__)
                out[i] = target
                loads[target] += 1
            yield block, out

    def _place_reference(
        self,
        streamed: np.ndarray,
        cluster_of: np.ndarray,
        cluster_to_part: np.ndarray,
        num_partitions: int,
        degrees: np.ndarray,
    ) -> np.ndarray:
        """Retained scalar reference for :meth:`_place_blocks`."""
        cap = int(self.balance_cap * streamed.shape[0] / num_partitions) + 1
        loads = np.zeros(num_partitions, dtype=np.int64)
        assignment = np.empty(streamed.shape[0], dtype=np.int32)
        for i, (u, v) in enumerate(streamed):
            u, v = int(u), int(v)
            pu = int(cluster_to_part[cluster_of[u]])
            pv = int(cluster_to_part[cluster_of[v]])
            if pu == pv:
                target = pu if loads[pu] < cap else int(loads.argmin())
            else:
                first, second = (
                    (pu, pv) if degrees[u] <= degrees[v] else (pv, pu)
                )
                if loads[first] < cap:
                    target = first
                elif loads[second] < cap:
                    target = second
                else:
                    target = int(loads.argmin())
            assignment[i] = target
            loads[target] += 1
        return assignment