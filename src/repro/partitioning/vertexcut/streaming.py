"""Shared stateful-streaming machinery for vertex-cut partitioners.

:class:`HdrfState` implements the HDRF scoring rule (Petroni et al., CIKM
2015). It is used directly by :class:`~.hdrf.HdrfPartitioner` and re-used by
HEP's streaming phase for high-degree edges, seeded with the state produced
by the in-memory phase.

Two equivalent execution paths are provided:

* :meth:`HdrfState.place_edges` — the production kernel. Edges are
  streamed in *chunks*; the balance term is frozen at the start of each
  chunk, and within a chunk edges are peeled off in vectorised waves of
  mutually vertex-disjoint edges (an edge joins a wave when none of the
  still-unplaced edges before it in the stream shares an endpoint), so
  each wave can be scored and committed with numpy batch operations.
* :meth:`HdrfState.place_edges_reference` — the retained scalar
  reference with identical chunked semantics, against which the
  vectorised kernel is equivalence-tested (bit-identical assignments).

The chunked semantics is the only (documented) deviation from classic
edge-at-a-time HDRF: partition loads used by the balance term are
refreshed per chunk instead of per edge. The chunk schedule ramps up
geometrically from :data:`MIN_CHUNK` so the early stream — where the
balance term is the only signal — still spreads edges across partitions;
the transient load imbalance this introduces is bounded by the final
chunk size, which is negligible against the partition sizes of the
experiment graphs. With ``chunk_size=1`` the semantics degenerates to
the classic per-edge algorithm.
"""

from __future__ import annotations

import time

import numpy as np

from ...obs import api as obs
from ..chunking import (
    DEFAULT_CHUNK,
    MIN_CHUNK,
    chunk_spans,
    iter_ramp_blocks,
)

__all__ = ["HdrfState", "DEFAULT_CHUNK", "MIN_CHUNK", "chunk_spans"]

#: Stop peeling vectorised waves when fewer edges than this remain clean.
_MIN_WAVE = 8
#: Cap on peel rounds per chunk: long conflict chains (hub vertices) hit
#: diminishing wave sizes, so after this many rounds the rest of the
#: chunk is finished with the scalar kernel instead.
_MAX_ROUNDS = 6


class HdrfState:
    """Mutable state for HDRF-style streaming edge assignment.

    Parameters
    ----------
    num_vertices, num_partitions:
        Graph and partitioning dimensions.
    lambda_balance:
        Weight of the balance term (paper default 1.1: mild balancing).
    chunk_size:
        Ceiling of the chunk ramp; the balance term is refreshed once per
        chunk (see module docstring).
    """

    def __init__(
        self,
        num_vertices: int,
        num_partitions: int,
        lambda_balance: float = 1.1,
        chunk_size: int = DEFAULT_CHUNK,
    ) -> None:
        self.num_partitions = num_partitions
        self.lambda_balance = lambda_balance
        self.chunk_size = chunk_size
        # membership[v, p] == True iff v already has an edge on partition p.
        self.membership = np.zeros(
            (num_vertices, num_partitions), dtype=bool
        )
        self.partial_degree = np.zeros(num_vertices, dtype=np.int64)
        self.loads = np.zeros(num_partitions, dtype=np.int64)
        # Uninitialised scratch for first-occurrence detection in the
        # peel loop; only positions written in a round are read back.
        self._scratch = np.empty(num_vertices, dtype=np.int64)

    def seed_from(
        self, edges: np.ndarray, assignment: np.ndarray
    ) -> None:
        """Absorb an existing partial assignment (HEP's in-memory phase)."""
        if edges.size == 0:
            return
        self.membership[edges[:, 0], assignment] = True
        self.membership[edges[:, 1], assignment] = True
        np.add.at(self.partial_degree, edges[:, 0], 1)
        np.add.at(self.partial_degree, edges[:, 1], 1)
        self.loads += np.bincount(assignment, minlength=self.num_partitions)

    def balance_vector(self) -> np.ndarray:
        """The balance term for the current loads (frozen per chunk)."""
        max_load = self.loads.max()
        min_load = self.loads.min()
        return (
            self.lambda_balance
            * (max_load - self.loads)
            / (1e-9 + max_load - min_load)
        )

    def place_edge(self, u: int, v: int) -> int:
        """Score all partitions for edge ``(u, v)``, place it, return pid.

        Classic per-edge HDRF: the balance term is computed fresh, i.e.
        ``chunk_size=1`` semantics.
        """
        return self._place_edge_frozen(
            u, v, self.balance_vector(), self.loads.copy()
        )

    def _place_edge_frozen(
        self, u: int, v: int, balance: np.ndarray, fill: np.ndarray
    ) -> int:
        """Place one edge using a pre-computed (chunk-frozen) balance.

        ``fill`` is the chunk's waterfill ledger for *untouched* edges
        (no membership signal on either endpoint): their decision is
        balance-only, and the stale chunk balance would dump them all on
        one partition, so they instead go to the least-filled partition
        and bump the ledger. Untouched edges always surface in the first
        peel wave of a chunk (any earlier conflicting edge would have
        marked an endpoint), which is what lets the vectorised kernel
        reproduce this rule bit-identically. With a fresh balance vector
        (``chunk_size=1``) ``argmin(fill)`` equals ``argmax(balance)``
        and the classic behaviour is preserved.
        """
        self.partial_degree[u] += 1
        self.partial_degree[v] += 1
        mu = self.membership[u]
        mv = self.membership[v]
        if self.lambda_balance > 0 and not (mu.any() or mv.any()):
            best = int(fill.argmin())
            fill[best] += 1
        else:
            du = self.partial_degree[u]
            dv = self.partial_degree[v]
            theta_u = du / (du + dv)
            theta_v = 1.0 - theta_u
            g_u = mu * (2.0 - theta_u)  # 1 + (1 - theta)
            g_v = mv * (2.0 - theta_v)
            score = g_u + g_v + balance
            best = int(score.argmax())
        self.membership[u, best] = True
        self.membership[v, best] = True
        self.loads[best] += 1
        return best

    # ------------------------------------------------------------------
    # Batch kernels
    # ------------------------------------------------------------------
    def place_edges(self, edges: np.ndarray) -> np.ndarray:
        """Stream ``edges`` (in given order) and return their assignment.

        Chunk-vectorised; bit-identical to
        :meth:`place_edges_reference` (equivalence-tested).
        """
        assignment = np.empty(edges.shape[0], dtype=np.int32)
        if not obs.enabled():
            for start, stop in chunk_spans(edges.shape[0], self.chunk_size):
                self._place_chunk(edges[start:stop], assignment[start:stop])
            return assignment
        for start, stop in chunk_spans(edges.shape[0], self.chunk_size):
            began = time.perf_counter()
            self._place_chunk(edges[start:stop], assignment[start:stop])
            obs.observe(
                "partitioner.chunk_seconds",
                time.perf_counter() - began,
                kernel="hdrf",
            )
            obs.observe(
                "partitioner.chunk_items", float(stop - start), kernel="hdrf"
            )
        return assignment

    def place_blocks(self, blocks):
        """Stream an iterable of edge blocks, yielding per-span results.

        The out-of-core counterpart of :meth:`place_edges`: ``blocks``
        (e.g. :meth:`EdgeChunkReader.iter_chunks`) is re-chunked through
        :func:`~repro.partitioning.chunking.iter_ramp_blocks` into the
        same span sequence :meth:`place_edges` would use over the
        concatenated stream, so the assignments are bit-identical to the
        in-memory path whatever the incoming block sizes. Yields
        ``(span_edges, span_assignment)`` pairs; peak memory is bounded
        by the largest incoming block plus the O(n k) state.
        """
        instrumented = obs.enabled()
        for span in iter_ramp_blocks(blocks, self.chunk_size):
            out = np.empty(span.shape[0], dtype=np.int32)
            began = time.perf_counter() if instrumented else 0.0
            self._place_chunk(span, out)
            if instrumented:
                obs.observe(
                    "partitioner.chunk_seconds",
                    time.perf_counter() - began,
                    kernel="hdrf",
                )
                obs.observe(
                    "partitioner.chunk_items",
                    float(span.shape[0]),
                    kernel="hdrf",
                )
            yield span, out

    def place_edges_reference(self, edges: np.ndarray) -> np.ndarray:
        """Retained scalar reference for :meth:`place_edges`."""
        assignment = np.empty(edges.shape[0], dtype=np.int32)
        for start, stop in chunk_spans(edges.shape[0], self.chunk_size):
            balance = self.balance_vector()
            fill = self.loads.copy()
            for i in range(start, stop):
                assignment[i] = self._place_edge_frozen(
                    int(edges[i, 0]), int(edges[i, 1]), balance, fill
                )
        return assignment

    def _place_chunk(self, chunk: np.ndarray, out: np.ndarray) -> None:
        """Place one chunk, writing partition ids into ``out`` (a view).

        Edges are peeled in waves of stream-prefix-disjoint edges: an edge
        is *clean* when neither endpoint occurs in an earlier unplaced
        edge of the chunk. Clean edges never interact with the state
        mutations of the other unplaced edges, so a whole wave can be
        scored against the committed state and placed in one batch;
        committed edges *later* in the stream are always vertex-disjoint
        from the remaining ones, so commit order cannot leak forward.
        """
        balance = self.balance_vector()
        fill = self.loads.copy()
        remaining = np.arange(chunk.shape[0])
        rounds = 0
        while remaining.size:
            flat = chunk[remaining].ravel()
            # First-occurrence detection in O(n): reversed fancy
            # assignment leaves each vertex's *earliest* position in the
            # scratch slot, so a position is a first occurrence iff the
            # slot still holds it.
            positions = np.arange(flat.size)
            self._scratch[flat[::-1]] = positions[::-1]
            is_first = self._scratch[flat] == positions
            clean = is_first[0::2] & is_first[1::2]
            wave = remaining[clean]
            rounds += 1
            if rounds > _MAX_ROUNDS or wave.size < min(
                _MIN_WAVE, remaining.size
            ):
                # Conflict chains too dense (e.g. a hub dominating the
                # chunk, or a self-loop): finish the chunk scalar-wise.
                for i in remaining:
                    out[i] = self._place_edge_frozen(
                        int(chunk[i, 0]), int(chunk[i, 1]), balance, fill
                    )
                return
            self._place_wave(chunk[wave], balance, fill, out, wave)
            remaining = remaining[~clean]

    def _place_wave(
        self,
        edges: np.ndarray,
        balance: np.ndarray,
        fill: np.ndarray,
        out: np.ndarray,
        rows: np.ndarray,
    ) -> None:
        """Vectorised placement of vertex-disjoint edges.

        Endpoints are pairwise distinct across the wave, so plain fancy
        indexing (no ``ufunc.at``) is safe, and both endpoints of all
        edges can be processed through single fused gathers/scatters.
        """
        c = rows.size
        ends = edges.T.reshape(-1)  # [u_0..u_c-1, v_0..v_c-1]
        pd = self.partial_degree[ends] + 1
        self.partial_degree[ends] = pd
        mem = self.membership[ends]  # (2c, k) gather
        best = np.empty(c, dtype=np.int64)
        seen = mem.any(axis=1)
        touched = seen[:c] | seen[c:]
        if self.lambda_balance <= 0:
            touched[:] = True
        if not touched.all():
            # Balance-only decisions: exact sequential waterfill on the
            # chunk ledger (see _place_edge_frozen). Pure-python argmin
            # over <=k entries per edge; untouched edges are rare after
            # the first few chunks.
            untouched = np.flatnonzero(~touched)
            fill_list = fill.tolist()
            k = self.num_partitions
            targets = []
            for _ in range(untouched.size):
                t = min(range(k), key=fill_list.__getitem__)
                fill_list[t] += 1
                targets.append(t)
            fill[:] = fill_list
            best[untouched] = targets
            ti = np.flatnonzero(touched)
            mu, mv = mem[:c][ti], mem[c:][ti]
            du, dv = pd[:c][ti], pd[c:][ti]
        else:
            ti = None
            mu, mv = mem[:c], mem[c:]
            du, dv = pd[:c], pd[c:]
        if mu.shape[0]:
            theta_u = du / (du + dv)
            theta_v = 1.0 - theta_u
            # Same elementwise operations, in the same order, as the
            # scalar reference — keeps the float scores bit-identical.
            score = (
                mu * (2.0 - theta_u)[:, None]
                + mv * (2.0 - theta_v)[:, None]
                + balance
            )
            if ti is None:
                best[:] = score.argmax(axis=1)
            else:
                best[ti] = score.argmax(axis=1)
        self.membership[ends, np.concatenate([best, best])] = True
        self.loads += np.bincount(best, minlength=self.num_partitions)
        out[rows] = best
