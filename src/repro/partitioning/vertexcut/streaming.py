"""Shared stateful-streaming machinery for vertex-cut partitioners.

:class:`HdrfState` implements the HDRF scoring rule (Petroni et al., CIKM
2015). It is used directly by :class:`~.hdrf.HdrfPartitioner` and re-used by
HEP's streaming phase for high-degree edges, seeded with the state produced
by the in-memory phase.
"""

from __future__ import annotations

import numpy as np

__all__ = ["HdrfState"]


class HdrfState:
    """Mutable state for HDRF-style streaming edge assignment.

    Parameters
    ----------
    num_vertices, num_partitions:
        Graph and partitioning dimensions.
    lambda_balance:
        Weight of the balance term (paper default 1.1: mild balancing).
    """

    def __init__(
        self,
        num_vertices: int,
        num_partitions: int,
        lambda_balance: float = 1.1,
    ) -> None:
        self.num_partitions = num_partitions
        self.lambda_balance = lambda_balance
        # membership[v, p] == True iff v already has an edge on partition p.
        self.membership = np.zeros(
            (num_vertices, num_partitions), dtype=bool
        )
        self.partial_degree = np.zeros(num_vertices, dtype=np.int64)
        self.loads = np.zeros(num_partitions, dtype=np.int64)

    def seed_from(
        self, edges: np.ndarray, assignment: np.ndarray
    ) -> None:
        """Absorb an existing partial assignment (HEP's in-memory phase)."""
        if edges.size == 0:
            return
        self.membership[edges[:, 0], assignment] = True
        self.membership[edges[:, 1], assignment] = True
        np.add.at(self.partial_degree, edges[:, 0], 1)
        np.add.at(self.partial_degree, edges[:, 1], 1)
        self.loads += np.bincount(assignment, minlength=self.num_partitions)

    def place_edge(self, u: int, v: int) -> int:
        """Score all partitions for edge ``(u, v)``, place it, return pid."""
        self.partial_degree[u] += 1
        self.partial_degree[v] += 1
        du = self.partial_degree[u]
        dv = self.partial_degree[v]
        theta_u = du / (du + dv)
        theta_v = 1.0 - theta_u
        g_u = self.membership[u] * (2.0 - theta_u)  # 1 + (1 - theta)
        g_v = self.membership[v] * (2.0 - theta_v)
        max_load = self.loads.max()
        min_load = self.loads.min()
        balance = (
            self.lambda_balance
            * (max_load - self.loads)
            / (1e-9 + max_load - min_load)
        )
        score = g_u + g_v + balance
        best = int(score.argmax())
        self.membership[u, best] = True
        self.membership[v, best] = True
        self.loads[best] += 1
        return best

    def place_edges(self, edges: np.ndarray) -> np.ndarray:
        """Stream ``edges`` (in given order) and return their assignment."""
        assignment = np.empty(edges.shape[0], dtype=np.int32)
        for i, (u, v) in enumerate(edges):
            assignment[i] = self.place_edge(int(u), int(v))
        return assignment
