"""Vertex-cut (edge partitioning) algorithms used with DistGNN."""

from .dbh import DbhPartitioner
from .hdrf import HdrfPartitioner
from .hep import HepPartitioner
from .random_edge import RandomEdgePartitioner
from .twops import TwoPsLPartitioner

__all__ = [
    "RandomEdgePartitioner",
    "DbhPartitioner",
    "HdrfPartitioner",
    "TwoPsLPartitioner",
    "HepPartitioner",
]
