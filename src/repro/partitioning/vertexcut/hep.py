"""HEP: Hybrid Edge Partitioner.

Mayer and Jacobsen, SIGMOD 2021. The graph is split by a degree threshold
``tau * mean_degree``:

* edges between two *low-degree* vertices are partitioned in memory by
  neighbourhood expansion (NE), which grows each partition around a core of
  tightly-connected vertices and achieves very low replication factors;
* edges touching a *high-degree* vertex are streamed with an HDRF-style
  scorer seeded with the in-memory result.

``tau = 100`` keeps virtually the whole graph in memory (the paper treats
it as in-memory partitioning, "HEP100"); ``tau = 10`` streams the hub
edges ("HEP10"), trading quality for memory.
"""

from __future__ import annotations

import heapq

import numpy as np

from ...graph import Graph
from ..base import EdgePartitioner
from .refine import coalesce_vertex_moves, refine_edge_assignment
from .streaming import HdrfState

__all__ = ["HepPartitioner"]


class HepPartitioner(EdgePartitioner):
    """Hybrid Edge Partitioner: in-memory core plus streamed remainder (HEP)."""
    category = "hybrid"

    def __init__(
        self,
        tau: float = 10.0,
        balance_cap: float = 1.1,
        vectorised: bool = True,
    ) -> None:
        super().__init__()
        if tau <= 0:
            raise ValueError("tau must be positive")
        self.tau = tau
        self.balance_cap = balance_cap
        self.vectorised = vectorised
        self.name = f"HEP{int(tau)}"

    def _assign(
        self,
        graph: Graph,
        edges: np.ndarray,
        num_partitions: int,
        seed: int,
    ) -> np.ndarray:
        rng = np.random.default_rng(seed)
        degrees = graph.degrees().astype(np.int64)
        threshold = self.tau * max(degrees.mean(), 1.0)
        high_vertex = degrees > threshold
        low_edge = ~(high_vertex[edges[:, 0]] | high_vertex[edges[:, 1]])
        low_ids = np.flatnonzero(low_edge)
        high_ids = np.flatnonzero(~low_edge)

        assignment = np.full(edges.shape[0], -1, dtype=np.int32)
        cap = int(
            np.ceil(self.balance_cap * edges.shape[0] / num_partitions)
        )
        leftovers = _neighborhood_expansion(
            graph.num_vertices,
            edges,
            low_ids,
            assignment,
            num_partitions,
            cap,
            degrees,
        )

        # In-memory quality pass: NE leaves fragmented replicas behind; a
        # greedy replica-reducing sweep (affordable only because this part
        # of the graph *is* in memory) recovers them.
        placed_low = low_ids[assignment[low_ids] >= 0]
        mem_cap = int(
            np.ceil(self.balance_cap * max(placed_low.size, 1) / num_partitions)
        )
        for round_seed in (seed, seed + 1):
            refine_edge_assignment(
                edges,
                assignment,
                placed_low,
                graph.num_vertices,
                num_partitions,
                mem_cap,
                sweeps=2,
                seed=round_seed,
            )
            coalesce_vertex_moves(
                edges,
                assignment,
                placed_low,
                graph.num_vertices,
                num_partitions,
                mem_cap,
                sweeps=2,
                seed=round_seed,
            )

        # Stream hub edges (plus any NE leftovers) through HDRF seeded with
        # the in-memory assignment, so the scorer sees existing replicas.
        stream_ids = np.concatenate([high_ids, leftovers])
        state = HdrfState(graph.num_vertices, num_partitions)
        placed = assignment >= 0
        state.seed_from(edges[placed], assignment[placed])
        order = rng.permutation(stream_ids.shape[0])
        streamed = stream_ids[order]
        place = (
            state.place_edges
            if self.vectorised
            else state.place_edges_reference
        )
        assignment[streamed] = place(edges[streamed])
        return assignment


def _neighborhood_expansion(
    num_vertices: int,
    edges: np.ndarray,
    low_ids: np.ndarray,
    assignment: np.ndarray,
    num_partitions: int,
    cap: int,
    degrees: np.ndarray,
) -> np.ndarray:
    """Grow ``num_partitions`` partitions over the low-degree edges.

    Writes partition ids into ``assignment`` in place and returns the edge
    ids it could not place within the balance cap (to be streamed).
    """
    if low_ids.size == 0:
        return np.zeros(0, dtype=np.int64)
    # Incidence CSR over the low-degree subgraph: vertex -> incident edges.
    endpoints = np.concatenate([edges[low_ids, 0], edges[low_ids, 1]])
    eids = np.concatenate([low_ids, low_ids])
    order = np.argsort(endpoints, kind="stable")
    endpoints_sorted = endpoints[order]
    eids_sorted = eids[order]
    counts = np.bincount(endpoints_sorted, minlength=num_vertices)
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])

    remaining = counts.astype(np.int64)  # unassigned incident low edges
    # Seeds are taken lowest-degree-first: NE grows best from the fringe.
    seed_order = np.argsort(degrees, kind="stable")
    seed_ptr = 0
    per_part_cap = max(int(low_ids.size / num_partitions), 1)
    target_cap = min(per_part_cap, cap)

    for part in range(num_partitions):
        load = 0
        heap: list[tuple[int, int]] = []
        while load < target_cap:
            # Pop the boundary vertex with fewest unassigned edges.
            vertex = -1
            while heap:
                key, candidate = heapq.heappop(heap)
                if remaining[candidate] == 0:
                    continue
                if key != remaining[candidate]:
                    heapq.heappush(
                        heap, (int(remaining[candidate]), candidate)
                    )
                    continue
                vertex = candidate
                break
            if vertex < 0:
                while (
                    seed_ptr < seed_order.size
                    and remaining[seed_order[seed_ptr]] == 0
                ):
                    seed_ptr += 1
                if seed_ptr >= seed_order.size:
                    break  # no unassigned low edges left anywhere
                vertex = int(seed_order[seed_ptr])
            # Claim every unassigned low edge of `vertex` for `part`.
            for idx in range(indptr[vertex], indptr[vertex + 1]):
                eid = eids_sorted[idx]
                if assignment[eid] >= 0:
                    continue
                assignment[eid] = part
                load += 1
                u, v = edges[eid]
                other = int(v) if int(u) == vertex else int(u)
                remaining[int(u)] -= 1
                remaining[int(v)] -= 1
                if remaining[other] > 0:
                    heapq.heappush(heap, (int(remaining[other]), other))
            remaining[vertex] = 0
    return low_ids[assignment[low_ids] < 0]
