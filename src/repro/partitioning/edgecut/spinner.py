"""Spinner: label-propagation vertex partitioning.

Martella et al., ICDE 2017. Every vertex iteratively adopts the partition
label most frequent among its neighbours, weighted by a capacity penalty so
partitions stay balanced. In-memory (it iterates over the whole graph), but
much cheaper than multilevel partitioning — and, as the paper observes,
with a correspondingly higher edge-cut than METIS/KaHIP.
"""

from __future__ import annotations

import numpy as np

from ...graph import Graph
from ..base import VertexPartitioner

__all__ = ["SpinnerPartitioner"]


class SpinnerPartitioner(VertexPartitioner):
    """Label-propagation edge-cut partitioner (Spinner)."""
    name = "Spinner"
    category = "in-memory"

    def __init__(
        self, iterations: int = 40, balance_weight: float = 1.0
    ) -> None:
        super().__init__()
        self.iterations = iterations
        self.balance_weight = balance_weight

    def _assign(
        self, graph: Graph, num_partitions: int, seed: int
    ) -> np.ndarray:
        rng = np.random.default_rng(seed)
        n, k = graph.num_vertices, num_partitions
        indptr, indices = graph.symmetric_csr()
        half_src = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
        assignment = rng.integers(0, k, size=n, dtype=np.int32)
        degrees = np.maximum(np.diff(indptr), 1)
        capacity = 1.05 * n / k  # vertex-count balance, 5% slack
        for _ in range(self.iterations):
            # Count, for every vertex, its neighbours per label.
            label_counts = np.zeros((n, k), dtype=np.float64)
            np.add.at(
                label_counts.reshape(-1),
                half_src * k + assignment[indices],
                1.0,
            )
            loads = np.bincount(assignment, minlength=k).astype(np.float64)
            penalty = self.balance_weight * (1.0 - loads / capacity)
            score = label_counts / degrees[:, None] + penalty[None, :]
            # Full partitions accept no newcomers (hard cap): keep the own
            # label eligible so resident vertices are not forced out.
            score[:, loads >= capacity] = -np.inf
            score[np.arange(n), assignment] = (
                label_counts[np.arange(n), assignment] / degrees
                + penalty[assignment]
            )
            proposed = score.argmax(axis=1).astype(np.int32)
            # Probabilistic adoption avoids oscillation (as in Spinner).
            adopt = rng.random(n) < 0.5
            changed = adopt & (proposed != assignment)
            if not changed.any():
                break
            # Respect capacity under concurrent adoption: admit first-come.
            new_loads = loads.copy()
            for v in np.flatnonzero(changed):
                target = proposed[v]
                if new_loads[target] >= capacity:
                    continue
                new_loads[assignment[v]] -= 1
                new_loads[target] += 1
                assignment[v] = target
        return assignment
