"""METIS-like multilevel k-way vertex partitioner.

Karypis and Kumar, 1996. Heavy-edge-matching coarsening, greedy initial
partitioning, boundary refinement during uncoarsening — see
:mod:`.multilevel` for the machinery. Uses METIS' default 3% imbalance
tolerance (we allow 5% to absorb small-graph granularity).
"""

from __future__ import annotations

import numpy as np

from ...graph import Graph
from ..base import VertexPartitioner
from .multilevel import multilevel_partition

__all__ = ["MetisPartitioner"]


class MetisPartitioner(VertexPartitioner):
    """Multilevel edge-cut partitioner in the style of METIS."""
    name = "Metis"
    category = "in-memory"

    def __init__(
        self, epsilon: float = 0.05, refine_passes: int = 3
    ) -> None:
        super().__init__()
        self.epsilon = epsilon
        self.refine_passes = refine_passes

    def _assign(
        self, graph: Graph, num_partitions: int, seed: int
    ) -> np.ndarray:
        return multilevel_partition(
            graph.num_vertices,
            graph.undirected_edges(),
            num_partitions,
            epsilon=self.epsilon,
            refine_passes=self.refine_passes,
            seed=seed,
        )
