"""Edge-cut (vertex partitioning) algorithms used with DistDGL."""

from .bytegnn import ByteGnnPartitioner
from .kahip import KahipPartitioner
from .ldg import LdgPartitioner
from .metis import MetisPartitioner
from .random_vertex import RandomVertexPartitioner
from .spinner import SpinnerPartitioner

__all__ = [
    "RandomVertexPartitioner",
    "LdgPartitioner",
    "SpinnerPartitioner",
    "MetisPartitioner",
    "ByteGnnPartitioner",
    "KahipPartitioner",
]
