"""Shared streaming machinery for greedy vertex (edge-cut) partitioners.

:class:`VertexStreamState` implements the chunk-vectorised inner loop
shared by LDG, reLDG and Fennel: vertices arrive in a stream and each is
placed on the partition maximising ``affinity(counts) - load penalty``,
where ``counts`` is the per-partition tally of the vertex's already
placed neighbours.

Two equivalent execution paths are provided, mirroring
:mod:`..vertexcut.streaming`:

* :meth:`VertexStreamState.place` — the production kernel. The stream is
  cut into chunks (see :mod:`..chunking`); the load *penalty* term is
  frozen at the start of each chunk, which lets neighbour tallies and
  scores for the whole chunk be computed with numpy batch operations.
  Vertices with a neighbour earlier in the same chunk (whose placement
  the batch tally cannot see) fall back to scalar scoring.
* :meth:`VertexStreamState.place_reference` — the retained scalar
  reference with identical chunked semantics, against which the
  vectorised kernel is equivalence-tested (bit-identical assignments).

Two parts of the decision are deliberately kept *live* (per vertex, in
both paths) rather than frozen:

* capacity eligibility — a partition at its cap is never assigned to,
  no matter how stale the penalty is, so hard balance caps hold exactly;
* the no-placed-neighbour case — such a vertex carries no affinity
  signal and goes to the currently least-loaded open partition (which
  is what the classic per-vertex rule degenerates to); deciding it
  against a frozen penalty would dump every such vertex of a chunk onto
  the same partition.

With ``chunk_size=1`` the semantics degenerates to the classic
per-vertex algorithms.
"""

from __future__ import annotations

import time

import numpy as np

from ...obs import api as obs
from ..chunking import DEFAULT_CHUNK, chunk_spans

__all__ = ["VertexStreamState"]


class VertexStreamState:
    """Mutable state for LDG-style streaming vertex assignment.

    Parameters
    ----------
    indptr, indices:
        Symmetric CSR adjacency of the graph.
    num_partitions:
        Number of partitions.
    capacity:
        Hard per-partition vertex cap (``slack * n / k``).
    mode:
        ``"ldg"`` — multiplicative penalty ``counts * (1 - sizes/cap)``
        with least-loaded fallback when the best score is non-positive;
        ``"fennel"`` — additive penalty
        ``counts - alpha * gamma * sizes**(gamma-1)``.
    alpha, gamma:
        Fennel penalty coefficients (ignored for ``"ldg"``).
    chunk_size:
        Ceiling of the chunk ramp; the penalty term is refreshed once
        per chunk (see module docstring).
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        num_partitions: int,
        capacity: float,
        mode: str = "ldg",
        alpha: float = 0.0,
        gamma: float = 1.5,
        chunk_size: int = DEFAULT_CHUNK,
    ) -> None:
        if mode not in ("ldg", "fennel"):
            raise ValueError(f"unknown mode {mode!r}")
        self.indptr = indptr
        self.indices = indices
        self.num_partitions = num_partitions
        self.capacity = capacity
        self.mode = mode
        self.alpha = alpha
        self.gamma = gamma
        self.chunk_size = chunk_size
        num_vertices = indptr.shape[0] - 1
        self.assignment = np.full(num_vertices, -1, dtype=np.int32)
        self.sizes = np.zeros(num_partitions, dtype=np.int64)
        # Scratch for in-chunk position lookups (-1 = not in chunk).
        self._chunk_pos = np.full(num_vertices, -1, dtype=np.int64)

    # ------------------------------------------------------------------
    # Frozen per-chunk penalty
    # ------------------------------------------------------------------
    def _penalty(self) -> np.ndarray:
        """The load-penalty term for the current sizes (frozen per chunk).

        For ``"ldg"`` this is the multiplicative factor
        ``1 - sizes/capacity``; for ``"fennel"`` the additive term
        ``alpha * gamma * sizes**(gamma-1)``.
        """
        if self.mode == "ldg":
            return 1.0 - self.sizes / self.capacity
        return self.alpha * self.gamma * self.sizes ** (self.gamma - 1.0)

    def _fallback(self, sizes: list) -> int:
        """Least-loaded open partition, first index winning ties (live)."""
        best, best_size = -1, float("inf")
        for p in range(self.num_partitions):
            s = sizes[p]
            if s < self.capacity and s < best_size:
                best, best_size = p, s
        return best

    # ------------------------------------------------------------------
    # Streaming passes
    # ------------------------------------------------------------------
    def place(self, order: np.ndarray, vacate: bool = False) -> None:
        """Stream vertices in ``order``, assigning each one (vectorised).

        ``vacate=True`` (restreaming passes) releases each vertex's old
        slot before re-placing it. Bit-identical to
        :meth:`place_reference` (equivalence-tested).
        """
        if not obs.enabled():
            for start, stop in chunk_spans(order.shape[0], self.chunk_size):
                self._place_chunk(order[start:stop], vacate)
            return
        for start, stop in chunk_spans(order.shape[0], self.chunk_size):
            began = time.perf_counter()
            self._place_chunk(order[start:stop], vacate)
            obs.observe(
                "partitioner.chunk_seconds",
                time.perf_counter() - began,
                kernel=self.mode,
            )
            obs.observe(
                "partitioner.chunk_items",
                float(stop - start),
                kernel=self.mode,
            )

    def place_reference(
        self, order: np.ndarray, vacate: bool = False
    ) -> None:
        """Retained scalar reference for :meth:`place`."""
        k = self.num_partitions
        for start, stop in chunk_spans(order.shape[0], self.chunk_size):
            penalty = self._penalty()
            for v in order[start:stop]:
                v = int(v)
                old = int(self.assignment[v])
                if vacate and old >= 0:
                    self.sizes[old] -= 1
                nbrs = self.indices[self.indptr[v] : self.indptr[v + 1]]
                placed = self.assignment[nbrs]
                placed = placed[placed >= 0]
                if placed.size == 0:
                    best = self._fallback(self.sizes)
                else:
                    counts = np.bincount(placed, minlength=k)
                    if self.mode == "ldg":
                        score = counts * penalty
                    else:
                        score = counts - penalty
                    score[self.sizes >= self.capacity] = -np.inf
                    best = int(score.argmax())
                    if self.mode == "ldg" and score[best] <= 0:
                        best = self._fallback(self.sizes)
                self.assignment[v] = best
                self.sizes[best] += 1

    # ------------------------------------------------------------------
    def _place_chunk(self, chunk: np.ndarray, vacate: bool) -> None:
        """Place one chunk: batch tallies + scores, then a cheap commit.

        Neighbour tallies are computed in one batch against the
        chunk-start assignment; a vertex is *dirty* when a neighbour
        occurs earlier in the same chunk (that neighbour's placement is
        invisible to the batch tally) and is re-scored scalar at its
        turn. Capacity eligibility and the no-neighbour fallback use
        live sizes, so the commit walks each vertex's frozen score order
        (stable-sorted, ties by index — matching ``argmax``) until an
        open partition is found.
        """
        k = self.num_partitions
        c = chunk.shape[0]
        penalty = self._penalty()
        starts = self.indptr[chunk]
        deg = self.indptr[chunk + 1] - starts
        total = int(deg.sum())
        # Range expansion: flat neighbour list + owning chunk row.
        offsets = np.repeat(np.cumsum(deg) - deg, deg)
        flat = self.indices[
            np.repeat(starts, deg) + (np.arange(total) - offsets)
        ]
        rows = np.repeat(np.arange(c), deg)
        placed = self.assignment[flat]
        valid = placed >= 0
        counts = np.bincount(
            rows[valid] * k + placed[valid], minlength=c * k
        ).reshape(c, k)
        if self.mode == "ldg":
            score = counts * penalty
        else:
            score = counts - penalty
        # Dirty rows: a neighbour sits earlier in this chunk.
        self._chunk_pos[chunk] = np.arange(c)
        nbr_pos = self._chunk_pos[flat]
        conflict = (nbr_pos >= 0) & (nbr_pos < rows)
        dirty = np.zeros(c, dtype=bool)
        dirty[rows[conflict]] = True
        self._chunk_pos[chunk] = -1
        has_nbr = counts.any(axis=1)

        # Frozen score order per row; ties resolved by index, matching
        # the reference's argmax (stable sort of the negated scores).
        order_rows = np.argsort(-score, axis=1, kind="stable").tolist()
        positive = (score > 0).tolist()
        sizes = self.sizes.tolist()
        assignment = self.assignment
        capacity = self.capacity
        is_ldg = self.mode == "ldg"
        penalty_list = penalty.tolist()
        for pos in range(c):
            v = int(chunk[pos])
            if vacate:
                old = assignment[v]
                if old >= 0:
                    sizes[old] -= 1
            if dirty[pos]:
                best = self._place_dirty(v, penalty_list, sizes)
            elif not has_nbr[pos]:
                best = self._fallback(sizes)
            else:
                best = -1
                for p in order_rows[pos]:
                    if sizes[p] < capacity:
                        best = p
                        break
                if is_ldg and not positive[pos][best]:
                    best = self._fallback(sizes)
            assignment[v] = best
            sizes[best] += 1
        self.sizes[:] = sizes

    def _place_dirty(
        self, v: int, penalty: list, sizes: list
    ) -> int:
        """Scalar re-score of a vertex whose tally row is stale."""
        nbrs = self.indices[self.indptr[v] : self.indptr[v + 1]]
        placed = self.assignment[nbrs]
        placed = placed[placed >= 0]
        if placed.size == 0:
            return self._fallback(sizes)
        counts = np.bincount(
            placed, minlength=self.num_partitions
        ).tolist()
        is_ldg = self.mode == "ldg"
        best, best_score = -1, -float("inf")
        for p in range(self.num_partitions):
            if sizes[p] >= self.capacity:
                continue
            if is_ldg:
                s = counts[p] * penalty[p]
            else:
                s = counts[p] - penalty[p]
            if s > best_score:
                best, best_score = p, s
        if is_ldg and best_score <= 0:
            return self._fallback(sizes)
        return best
