"""Random (hash) vertex partitioning — the paper's edge-cut baseline."""

from __future__ import annotations

import numpy as np

from ...graph import Graph
from ..base import VertexPartitioner

__all__ = ["RandomVertexPartitioner"]


class RandomVertexPartitioner(VertexPartitioner):
    """Assigns each vertex to a uniformly random partition.

    Stateless streaming; perfect vertex balance in expectation and the
    worst edge-cut of all partitioners (paper, Figure 12).
    """

    name = "Random"
    category = "stateless streaming"

    def _assign(
        self, graph: Graph, num_partitions: int, seed: int
    ) -> np.ndarray:
        rng = np.random.default_rng(seed)
        return rng.integers(
            0, num_partitions, size=graph.num_vertices, dtype=np.int32
        )
