"""KaHIP-like multilevel partitioner with repeated V-cycles.

Sanders and Schulz, SEA 2013 ("Think Locally, Act Globally"). Same
multilevel scheme as METIS but with a tighter balance constraint, deeper
local search, and several independent repetitions from which the best cut
is kept. This buys the lowest edge-cut of all partitioners in the study at
the price of by far the highest partitioning time (paper, Figures 12/15).
"""

from __future__ import annotations

import numpy as np

from ...graph import Graph
from ..base import VertexPartitioner
from .multilevel import WeightedGraph, cut_weight, multilevel_partition

__all__ = ["KahipPartitioner"]


class KahipPartitioner(VertexPartitioner):
    """Multilevel edge-cut partitioner tuned like KaHIP (strong refinement)."""
    name = "KaHIP"
    category = "in-memory"

    def __init__(
        self,
        epsilon: float = 0.03,
        refine_passes: int = 8,
        repetitions: int = 4,
    ) -> None:
        super().__init__()
        self.epsilon = epsilon
        self.refine_passes = refine_passes
        self.repetitions = repetitions

    def _assign(
        self, graph: Graph, num_partitions: int, seed: int
    ) -> np.ndarray:
        edges = graph.undirected_edges()
        weighted = WeightedGraph.from_edges(graph.num_vertices, edges)
        best_assignment: np.ndarray | None = None
        best_cut = -1
        for rep in range(self.repetitions):
            assignment = multilevel_partition(
                graph.num_vertices,
                edges,
                num_partitions,
                epsilon=self.epsilon,
                refine_passes=self.refine_passes,
                seed=seed * self.repetitions + rep,
            )
            cut = cut_weight(weighted, assignment)
            if best_assignment is None or cut < best_cut:
                best_assignment, best_cut = assignment, cut
        assert best_assignment is not None
        return best_assignment
