"""Multilevel k-way partitioning machinery (METIS/KaHIP family).

The multilevel scheme has three phases:

1. *Coarsening*: repeatedly contract a heavy-edge matching until the graph
   is small.
2. *Initial partitioning*: greedy region growing on the coarsest graph.
3. *Uncoarsening*: project the partition back level by level, running a
   boundary refinement (Fiduccia-Mattheyses-style greedy gain moves) at
   every level.

Both our METIS-like and KaHIP-like partitioners drive this module; they
differ in imbalance tolerance, refinement effort and outer repetitions.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

__all__ = [
    "WeightedGraph",
    "coarsen",
    "initial_partition",
    "refine",
    "rebalance",
    "multilevel_partition",
    "cut_weight",
]


@dataclass
class WeightedGraph:
    """Symmetric weighted graph in CSR form with vertex weights."""

    num_vertices: int
    indptr: np.ndarray
    indices: np.ndarray
    eweights: np.ndarray
    vweights: np.ndarray

    @classmethod
    def from_edges(
        cls, num_vertices: int, edges: np.ndarray
    ) -> "WeightedGraph":
        """Unit-weight graph from canonical undirected edges."""
        weights = np.ones(edges.shape[0], dtype=np.int64)
        return cls.from_weighted_edges(
            num_vertices,
            edges,
            weights,
            np.ones(num_vertices, dtype=np.int64),
        )

    @classmethod
    def from_weighted_edges(
        cls,
        num_vertices: int,
        edges: np.ndarray,
        eweights: np.ndarray,
        vweights: np.ndarray,
    ) -> "WeightedGraph":
        """Build the CSR adjacency from a weighted edge list."""
        src = np.concatenate([edges[:, 0], edges[:, 1]])
        dst = np.concatenate([edges[:, 1], edges[:, 0]])
        wgt = np.concatenate([eweights, eweights])
        order = np.argsort(src, kind="stable")
        src, dst, wgt = src[order], dst[order], wgt[order]
        counts = np.bincount(src, minlength=num_vertices)
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(num_vertices, indptr, dst, wgt, vweights)

    def neighbors(self, vertex: int) -> Tuple[np.ndarray, np.ndarray]:
        """Neighbour ids and edge weights of ``vertex``."""
        lo, hi = self.indptr[vertex], self.indptr[vertex + 1]
        return self.indices[lo:hi], self.eweights[lo:hi]

    @property
    def total_vertex_weight(self) -> int:
        """Sum of all vertex weights."""
        return int(self.vweights.sum())


def coarsen(
    graph: WeightedGraph, rng: np.random.Generator
) -> Tuple[WeightedGraph, np.ndarray]:
    """One level of heavy-edge-matching contraction.

    Returns the coarse graph and the fine->coarse vertex mapping.
    """
    n = graph.num_vertices
    match = np.full(n, -1, dtype=np.int64)
    for v in rng.permutation(n):
        v = int(v)
        if match[v] >= 0:
            continue
        nbrs, wgts = graph.neighbors(v)
        free = match[nbrs] < 0
        candidates = nbrs[free]
        if candidates.size == 0:
            match[v] = v  # stays a singleton
            continue
        partner = int(candidates[np.argmax(wgts[free])])
        if partner == v:
            match[v] = v
            continue
        match[v] = partner
        match[partner] = v
    # Number coarse vertices: one id per matched pair / singleton.
    coarse_of = np.full(n, -1, dtype=np.int64)
    next_id = 0
    for v in range(n):
        if coarse_of[v] >= 0:
            continue
        coarse_of[v] = next_id
        partner = match[v]
        if partner != v and coarse_of[partner] < 0:
            coarse_of[partner] = next_id
        next_id += 1
    coarse_vw = np.zeros(next_id, dtype=np.int64)
    np.add.at(coarse_vw, coarse_of, graph.vweights)

    # Contract edges: group by coarse endpoint pair, summing weights.
    half = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
    cu = coarse_of[half]
    cv = coarse_of[graph.indices]
    keep = cu < cv  # each undirected edge once; drops intra-pair edges
    key = cu[keep] * next_id + cv[keep]
    uniq, inverse = np.unique(key, return_inverse=True)
    weights = np.zeros(uniq.shape[0], dtype=np.int64)
    np.add.at(weights, inverse, graph.eweights[keep])
    edges = np.stack([uniq // next_id, uniq % next_id], axis=1)
    coarse = WeightedGraph.from_weighted_edges(
        next_id, edges, weights, coarse_vw
    )
    return coarse, coarse_of


def initial_partition(
    graph: WeightedGraph, num_partitions: int, rng: np.random.Generator
) -> np.ndarray:
    """Greedy BFS region growing on the coarsest graph."""
    n = graph.num_vertices
    assignment = np.full(n, -1, dtype=np.int32)
    target = graph.total_vertex_weight / num_partitions
    unassigned = n
    for part in range(num_partitions - 1):
        load = 0
        frontier: deque[int] = deque()
        while load < target and unassigned > 0:
            if not frontier:
                pool = np.flatnonzero(assignment < 0)
                frontier.append(int(pool[rng.integers(pool.size)]))
            v = frontier.popleft()
            if assignment[v] >= 0:
                continue
            assignment[v] = part
            load += int(graph.vweights[v])
            unassigned -= 1
            nbrs, _ = graph.neighbors(v)
            for u in nbrs[assignment[nbrs] < 0]:
                frontier.append(int(u))
    assignment[assignment < 0] = num_partitions - 1
    return assignment


def cut_weight(graph: WeightedGraph, assignment: np.ndarray) -> int:
    """Total weight of edges whose endpoints differ (each edge once)."""
    half = np.repeat(
        np.arange(graph.num_vertices, dtype=np.int64),
        np.diff(graph.indptr),
    )
    cut = assignment[half] != assignment[graph.indices]
    return int(graph.eweights[cut].sum() // 2)


def rebalance(
    graph: WeightedGraph,
    assignment: np.ndarray,
    num_partitions: int,
    max_load: float,
    rng: np.random.Generator,
) -> None:
    """Force overweight partitions under ``max_load`` via cheapest moves."""
    loads = np.zeros(num_partitions, dtype=np.int64)
    np.add.at(loads, assignment, graph.vweights)
    for part in range(num_partitions):
        if loads[part] <= max_load:
            continue
        members = np.flatnonzero(assignment == part)
        for v in rng.permutation(members):
            if loads[part] <= max_load:
                break
            v = int(v)
            nbrs, wgts = graph.neighbors(v)
            ext = assignment[nbrs] != part
            if ext.any():
                options = assignment[nbrs[ext]]
                weights = wgts[ext]
                # Move toward the most-connected non-full partition.
                scores = np.bincount(
                    options, weights=weights, minlength=num_partitions
                )
                scores[loads >= max_load] = -1
                target = int(scores.argmax())
                if scores[target] < 0:
                    target = int(loads.argmin())
            else:
                target = int(loads.argmin())
            if target == part:
                continue
            assignment[v] = target
            loads[part] -= graph.vweights[v]
            loads[target] += graph.vweights[v]


def refine(
    graph: WeightedGraph,
    assignment: np.ndarray,
    num_partitions: int,
    max_load: float,
    passes: int,
    rng: np.random.Generator,
) -> int:
    """Greedy boundary refinement; returns the number of moves made.

    Each pass visits vertices in random order and moves a vertex to the
    neighbouring partition with the highest positive gain (external minus
    internal edge weight), subject to the balance cap. Zero-gain moves are
    taken when they improve balance — this is the classic FM heuristic
    without the full priority-queue machinery, which at our scales performs
    equivalently.
    """
    loads = np.zeros(num_partitions, dtype=np.int64)
    np.add.at(loads, assignment, graph.vweights)
    total_moves = 0
    for _ in range(passes):
        moves = 0
        for v in rng.permutation(graph.num_vertices):
            v = int(v)
            nbrs, wgts = graph.neighbors(v)
            if nbrs.size == 0:
                continue
            parts = assignment[nbrs]
            own = assignment[v]
            if not (parts != own).any():
                continue  # interior vertex
            conn = np.bincount(
                parts, weights=wgts, minlength=num_partitions
            )
            internal = conn[own]
            conn[own] = -np.inf
            vw = graph.vweights[v]
            conn[loads + vw > max_load] = -np.inf
            target = int(conn.argmax())
            gain = conn[target] - internal
            if gain > 0 or (
                gain == 0 and loads[target] + vw < loads[own]
            ):
                assignment[v] = target
                loads[own] -= vw
                loads[target] += vw
                moves += 1
        total_moves += moves
        if moves == 0:
            break
    return total_moves


def multilevel_partition(
    num_vertices: int,
    edges: np.ndarray,
    num_partitions: int,
    epsilon: float,
    refine_passes: int,
    seed: int,
    coarsest_size: int = 0,
) -> np.ndarray:
    """Full multilevel k-way partition of an unweighted undirected graph."""
    rng = np.random.default_rng(seed)
    graph = WeightedGraph.from_edges(num_vertices, edges)
    if coarsest_size <= 0:
        coarsest_size = max(30 * num_partitions, 200)

    levels: List[Tuple[WeightedGraph, np.ndarray]] = []
    current = graph
    while current.num_vertices > coarsest_size:
        coarse, mapping = coarsen(current, rng)
        if coarse.num_vertices >= current.num_vertices * 0.95:
            break  # matching stagnated (e.g. star graphs)
        levels.append((current, mapping))
        current = coarse

    assignment = initial_partition(current, num_partitions, rng)
    max_load = (1.0 + epsilon) * current.total_vertex_weight / num_partitions
    rebalance(current, assignment, num_partitions, max_load, rng)
    refine(current, assignment, num_partitions, max_load, refine_passes, rng)

    for fine, mapping in reversed(levels):
        assignment = assignment[mapping]
        max_load = (1.0 + epsilon) * fine.total_vertex_weight / num_partitions
        rebalance(fine, assignment, num_partitions, max_load, rng)
        refine(fine, assignment, num_partitions, max_load, refine_passes, rng)
    return assignment.astype(np.int32)
