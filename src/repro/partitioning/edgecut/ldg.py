"""Linear Deterministic Greedy (LDG) streaming vertex partitioner.

Stanton and Kliot, KDD 2012. Vertices arrive in a stream; each is placed on
the partition holding most of its already-seen neighbours, discounted by a
linear load penalty ``1 - |P_i| / capacity``. Stateful streaming: keeps the
current assignment and partition sizes.
"""

from __future__ import annotations

import numpy as np

from ...graph import Graph
from ..base import VertexPartitioner

__all__ = ["LdgPartitioner"]


class LdgPartitioner(VertexPartitioner):
    name = "LDG"
    category = "stateful streaming"

    def __init__(self, slack: float = 1.1) -> None:
        super().__init__()
        self.slack = slack

    def _assign(
        self, graph: Graph, num_partitions: int, seed: int
    ) -> np.ndarray:
        rng = np.random.default_rng(seed)
        indptr, indices = graph.symmetric_csr()
        capacity = self.slack * graph.num_vertices / num_partitions
        assignment = np.full(graph.num_vertices, -1, dtype=np.int32)
        sizes = np.zeros(num_partitions, dtype=np.int64)
        for v in rng.permutation(graph.num_vertices):
            v = int(v)
            nbrs = indices[indptr[v] : indptr[v + 1]]
            placed = assignment[nbrs]
            placed = placed[placed >= 0]
            if placed.size:
                counts = np.bincount(placed, minlength=num_partitions)
            else:
                counts = np.zeros(num_partitions, dtype=np.int64)
            score = counts * (1.0 - sizes / capacity)
            # Full partitions are never eligible.
            score[sizes >= capacity] = -np.inf
            best = int(score.argmax())
            if score[best] <= 0:
                open_parts = np.flatnonzero(sizes < capacity)
                best = int(open_parts[sizes[open_parts].argmin()])
            assignment[v] = best
            sizes[best] += 1
        return assignment
