"""Linear Deterministic Greedy (LDG) streaming vertex partitioner.

Stanton and Kliot, KDD 2012. Vertices arrive in a stream; each is placed on
the partition holding most of its already-seen neighbours, discounted by a
linear load penalty ``1 - |P_i| / capacity``. Stateful streaming: keeps the
current assignment and partition sizes. The inner loop is the shared
chunk-vectorised kernel in :mod:`.streaming`.
"""

from __future__ import annotations

import numpy as np

from ...graph import Graph
from ..base import VertexPartitioner
from ..chunking import DEFAULT_CHUNK
from .streaming import VertexStreamState

__all__ = ["LdgPartitioner"]


class LdgPartitioner(VertexPartitioner):
    """Linear Deterministic Greedy streaming vertex placement (LDG)."""
    name = "LDG"
    category = "stateful streaming"
    # The kernel only observes neighbour partition tallies (bincount),
    # so the store-backed CSR drives it bit-identically out-of-core.
    supports_stream = True

    def __init__(
        self,
        slack: float = 1.1,
        chunk_size: int = DEFAULT_CHUNK,
        vectorised: bool = True,
    ) -> None:
        super().__init__()
        self.slack = slack
        self.chunk_size = chunk_size
        # ``vectorised=False`` runs the retained scalar reference kernel
        # (identical output; used by equivalence tests and benchmarks).
        self.vectorised = vectorised

    def _assign(
        self, graph: Graph, num_partitions: int, seed: int
    ) -> np.ndarray:
        rng = np.random.default_rng(seed)
        indptr, indices = graph.symmetric_csr()
        state = VertexStreamState(
            indptr,
            indices,
            num_partitions,
            capacity=self.slack * graph.num_vertices / num_partitions,
            mode="ldg",
            chunk_size=self.chunk_size,
        )
        place = state.place if self.vectorised else state.place_reference
        place(rng.permutation(graph.num_vertices))
        return state.assignment
