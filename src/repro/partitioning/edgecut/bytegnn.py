"""ByteGNN-style block-based vertex partitioning.

Zheng et al., VLDB 2022. ByteGNN partitions specifically for mini-batch
GNN training: it grows a *block* around every training vertex via r-hop BFS
(r = number of GNN layers), so a training vertex and the neighbourhood its
mini-batches will sample tend to stay together, then assigns blocks to
partitions, balancing *training vertices* (the unit of sampling work)
rather than raw vertices.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np

from ...graph import Graph
from ..base import VertexPartitioner

__all__ = ["ByteGnnPartitioner"]


class ByteGnnPartitioner(VertexPartitioner):
    """BFS-grown blocks balanced on training vertices (ByteGNN)."""
    name = "ByteGNN"
    category = "in-memory"

    def __init__(
        self,
        train_vertices: Optional[np.ndarray] = None,
        num_hops: int = 2,
        train_fraction: float = 0.1,
        slack: float = 1.1,
    ) -> None:
        """``train_vertices`` seeds the blocks; when omitted, a random
        ``train_fraction`` sample is drawn (matching the paper's 10% split).
        """
        super().__init__()
        self.train_vertices = (
            None
            if train_vertices is None
            else np.asarray(train_vertices, dtype=np.int64)
        )
        self.num_hops = num_hops
        self.train_fraction = train_fraction
        self.slack = slack

    def _assign(
        self, graph: Graph, num_partitions: int, seed: int
    ) -> np.ndarray:
        rng = np.random.default_rng(seed)
        train = self.train_vertices
        if train is None:
            size = max(int(self.train_fraction * graph.num_vertices), 1)
            train = rng.choice(graph.num_vertices, size=size, replace=False)
        block_of = self._grow_blocks(graph, train, rng)
        return self._assign_blocks(
            graph, block_of, train, num_partitions, rng
        )

    # ------------------------------------------------------------------
    def _grow_blocks(
        self, graph: Graph, train: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """r-hop BFS block per training vertex; leftovers join a neighbour.

        Blocks are capped at twice the average share so one dense training
        vertex cannot swallow the graph.
        """
        indptr, indices = graph.symmetric_csr()
        n = graph.num_vertices
        block_of = np.full(n, -1, dtype=np.int64)
        cap = max(2 * n // max(train.size, 1), self.num_hops + 1)
        for block_id, seed_vertex in enumerate(rng.permutation(train)):
            seed_vertex = int(seed_vertex)
            if block_of[seed_vertex] >= 0:
                continue
            block_of[seed_vertex] = block_id
            size = 1
            frontier = deque([(seed_vertex, 0)])
            while frontier and size < cap:
                v, depth = frontier.popleft()
                if depth >= self.num_hops:
                    continue
                for u in indices[indptr[v] : indptr[v + 1]]:
                    u = int(u)
                    if block_of[u] >= 0 or size >= cap:
                        continue
                    block_of[u] = block_id
                    size += 1
                    frontier.append((u, depth + 1))
        # Attach unclaimed vertices to an already-claimed neighbour; truly
        # isolated leftovers become singleton blocks.
        next_block = int(block_of.max()) + 1
        for v in rng.permutation(np.flatnonzero(block_of < 0)):
            v = int(v)
            nbrs = indices[indptr[v] : indptr[v + 1]]
            claimed = block_of[nbrs]
            claimed = claimed[claimed >= 0]
            if claimed.size:
                block_of[v] = claimed[0]
            else:
                block_of[v] = next_block
                next_block += 1
        return block_of

    def _assign_blocks(
        self,
        graph: Graph,
        block_of: np.ndarray,
        train: np.ndarray,
        num_partitions: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Stream blocks largest-first onto partitions.

        Score favours the partition with most edges into the block, with
        hard caps on training vertices (the sampling workload) and total
        vertices per partition.
        """
        num_blocks = int(block_of.max()) + 1
        edges = graph.undirected_edges()
        bu = block_of[edges[:, 0]]
        bv = block_of[edges[:, 1]]
        inter = bu != bv
        # Block adjacency as (block, other_block, weight) triples.
        key = np.concatenate(
            [bu[inter] * num_blocks + bv[inter], bv[inter] * num_blocks + bu[inter]]
        )
        uniq, weight = np.unique(key, return_counts=True)
        adj_src = uniq // num_blocks
        adj_dst = uniq % num_blocks
        order = np.argsort(adj_src, kind="stable")
        adj_src, adj_dst, weight = adj_src[order], adj_dst[order], weight[order]
        adj_indptr = np.zeros(num_blocks + 1, dtype=np.int64)
        np.cumsum(np.bincount(adj_src, minlength=num_blocks), out=adj_indptr[1:])

        block_size = np.bincount(block_of, minlength=num_blocks)
        train_per_block = np.bincount(
            block_of[train], minlength=num_blocks
        )
        cap_vertices = self.slack * graph.num_vertices / num_partitions
        cap_train = max(self.slack * train.size / num_partitions, 1.0)

        part_of_block = np.full(num_blocks, -1, dtype=np.int32)
        # conn[p, b]: edge weight between partition p and unassigned block b.
        conn = np.zeros((num_partitions, num_blocks), dtype=np.float64)
        vertex_load = np.zeros(num_partitions, dtype=np.int64)
        train_load = np.zeros(num_partitions, dtype=np.int64)

        for block in np.argsort(-block_size, kind="stable"):
            block = int(block)
            score = conn[:, block] * (1.0 - vertex_load / cap_vertices)
            blocked = (
                (vertex_load + block_size[block] > cap_vertices)
                | (train_load + train_per_block[block] > cap_train)
            )
            score[blocked] = -np.inf
            if np.isinf(score).all():
                target = int(vertex_load.argmin())
            elif score.max() > 0:
                target = int(score.argmax())
            else:
                eligible = np.flatnonzero(~blocked)
                target = int(eligible[train_load[eligible].argmin()])
            part_of_block[block] = target
            vertex_load[target] += block_size[block]
            train_load[target] += train_per_block[block]
            lo, hi = adj_indptr[block], adj_indptr[block + 1]
            conn[target, adj_dst[lo:hi]] += weight[lo:hi]
        return part_of_block[block_of].astype(np.int32)
