"""Partitioning quality metrics (Section 2.1 of the paper).

Edge partitioning (vertex-cut) metrics:
  replication factor  RF(P) = (1/|V|) * sum_i |V(p_i)|
  edge balance        EB(P) = max_i |p_i| / mean_i |p_i|
  vertex balance      VB(P) = max_i |V(p_i)| / mean_i |V(p_i)|

Vertex partitioning (edge-cut) metrics:
  edge-cut ratio      lambda = |E_cut| / |E|
  vertex balance      VB(P) = max_i |p_i| / mean_i |p_i|
  training-vertex balance: same, restricted to training vertices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .assignment import EdgePartition, VertexPartition

__all__ = [
    "replication_factor",
    "edge_balance",
    "vertex_balance_vertex_cut",
    "edge_cut_ratio",
    "vertex_balance",
    "training_vertex_balance",
    "EdgePartitionQuality",
    "VertexPartitionQuality",
    "edge_partition_quality",
    "vertex_partition_quality",
]


def _max_over_mean(counts: np.ndarray) -> float:
    mean = counts.mean()
    if mean <= 0:
        return float("inf") if counts.max() > 0 else 1.0
    return float(counts.max() / mean)


# ----------------------------------------------------------------------
# Vertex-cut (edge partitioning) metrics
# ----------------------------------------------------------------------
def replication_factor(partition: EdgePartition) -> float:
    """Average number of partitions each (non-isolated) vertex lives on."""
    covered = np.count_nonzero(partition.copies_per_vertex())
    if covered == 0:
        return 0.0
    return float(partition.vertex_counts().sum() / covered)


def edge_balance(partition: EdgePartition) -> float:
    """max/mean of edges per partition (EB, Section 2.1)."""
    return _max_over_mean(partition.edge_counts())


def vertex_balance_vertex_cut(partition: EdgePartition) -> float:
    """max/mean of covered vertices per partition (VB for vertex-cuts)."""
    return _max_over_mean(partition.vertex_counts())


# ----------------------------------------------------------------------
# Edge-cut (vertex partitioning) metrics
# ----------------------------------------------------------------------
def edge_cut_ratio(partition: VertexPartition) -> float:
    """Fraction of undirected edges whose endpoints differ (lambda)."""
    num_edges = partition.graph.undirected_edges().shape[0]
    if num_edges == 0:
        return 0.0
    return float(partition.num_cut_edges() / num_edges)


def vertex_balance(partition: VertexPartition) -> float:
    """max/mean of vertices per partition (VB for edge-cuts)."""
    return _max_over_mean(partition.vertex_counts())


def training_vertex_balance(
    partition: VertexPartition, train_vertices: np.ndarray
) -> float:
    """max/mean of *training* vertices per partition (DistDGL load)."""
    counts = np.bincount(
        partition.assignment[np.asarray(train_vertices, dtype=np.int64)],
        minlength=partition.num_partitions,
    )
    return _max_over_mean(counts)


# ----------------------------------------------------------------------
# Bundles
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EdgePartitionQuality:
    """Quality of a vertex-cut (edge) partition: RF and balances."""
    replication_factor: float
    edge_balance: float
    vertex_balance: float

    def as_row(self) -> str:
        """Fixed-width one-line rendering for tables."""
        return (
            f"RF={self.replication_factor:6.2f} "
            f"EB={self.edge_balance:5.2f} VB={self.vertex_balance:5.2f}"
        )


@dataclass(frozen=True)
class VertexPartitionQuality:
    """Quality of an edge-cut (vertex) partition: cut and balances."""
    edge_cut: float
    vertex_balance: float
    training_vertex_balance: float

    def as_row(self) -> str:
        """Fixed-width one-line rendering for tables."""
        return (
            f"cut={self.edge_cut:6.4f} VB={self.vertex_balance:5.2f} "
            f"trainVB={self.training_vertex_balance:5.2f}"
        )


def edge_partition_quality(partition: EdgePartition) -> EdgePartitionQuality:
    """All Section 2.1 vertex-cut metrics in one bundle."""
    return EdgePartitionQuality(
        replication_factor=replication_factor(partition),
        edge_balance=edge_balance(partition),
        vertex_balance=vertex_balance_vertex_cut(partition),
    )


def vertex_partition_quality(
    partition: VertexPartition, train_vertices: np.ndarray
) -> VertexPartitionQuality:
    """All Section 2.1 edge-cut metrics in one bundle."""
    return VertexPartitionQuality(
        edge_cut=edge_cut_ratio(partition),
        vertex_balance=vertex_balance(partition),
        training_vertex_balance=training_vertex_balance(
            partition, train_vertices
        ),
    )
