"""Halo statistics for vertex partitions.

DistDGL stores, per machine, the *inner* vertices it owns plus a *halo*
of remote vertices adjacent to them (their features are fetched on
demand). These statistics quantify the storage and communication surface
a partition induces — the structural counterpart of the engine's measured
remote-vertex counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .assignment import VertexPartition

__all__ = ["HaloStats", "halo_statistics"]


@dataclass(frozen=True)
class HaloStats:
    """Per-machine halo structure of a vertex partition.

    Attributes
    ----------
    inner:
        Owned vertices per machine.
    boundary:
        Owned vertices with at least one remote neighbour (these emit
    	cross-machine messages).
    halo:
        Distinct remote vertices adjacent to the machine's owned vertices
        (their features/state must be fetchable).
    """

    inner: np.ndarray
    boundary: np.ndarray
    halo: np.ndarray

    @property
    def num_machines(self) -> int:
        """Number of machines the statistics cover."""
        return int(self.inner.shape[0])

    def halo_ratio(self) -> np.ndarray:
        """Halo size relative to inner size (storage overhead factor)."""
        return self.halo / np.maximum(self.inner, 1)

    def boundary_fraction(self) -> np.ndarray:
        """Share of owned vertices on the partition boundary."""
        return self.boundary / np.maximum(self.inner, 1)


def halo_statistics(partition: VertexPartition) -> HaloStats:
    """Compute :class:`HaloStats` for a partition."""
    graph = partition.graph
    owner = partition.assignment
    k = partition.num_partitions
    edges = graph.undirected_edges()
    pu = owner[edges[:, 0]]
    pv = owner[edges[:, 1]]
    cut = pu != pv
    cut_edges = edges[cut]
    cut_pu = pu[cut]
    cut_pv = pv[cut]

    inner = np.bincount(owner, minlength=k).astype(np.int64)

    # Boundary: distinct owned endpoints of cut edges, per owner.
    boundary_pairs = np.unique(
        np.concatenate(
            [
                np.stack([cut_pu.astype(np.int64), cut_edges[:, 0]], axis=1),
                np.stack([cut_pv.astype(np.int64), cut_edges[:, 1]], axis=1),
            ]
        ),
        axis=0,
    )
    boundary = np.bincount(
        boundary_pairs[:, 0].astype(np.int64), minlength=k
    ).astype(np.int64)

    # Halo: distinct remote endpoints per machine (endpoint charged to
    # the *other* side's machine).
    halo_pairs = np.unique(
        np.concatenate(
            [
                np.stack([cut_pu.astype(np.int64), cut_edges[:, 1]], axis=1),
                np.stack([cut_pv.astype(np.int64), cut_edges[:, 0]], axis=1),
            ]
        ),
        axis=0,
    )
    halo = np.bincount(
        halo_pairs[:, 0].astype(np.int64), minlength=k
    ).astype(np.int64)

    return HaloStats(inner=inner, boundary=boundary, halo=halo)
