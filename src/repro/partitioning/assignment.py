"""Partition assignment containers.

Two result types mirror the paper's two partitioning families:

* :class:`EdgePartition` (vertex-cut): every *edge* belongs to exactly one
  partition; vertices touching edges in several partitions are *replicated*.
* :class:`VertexPartition` (edge-cut): every *vertex* belongs to exactly one
  partition; edges whose endpoints differ are *cut*.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..graph import Graph

__all__ = ["EdgePartition", "VertexPartition"]


class EdgePartition:
    """Result of edge partitioning (vertex-cut).

    Parameters
    ----------
    graph:
        The partitioned graph.
    edges:
        ``(m, 2)`` canonical undirected edges, in the order matched by
        ``assignment`` (normally ``graph.undirected_edges()``).
    assignment:
        ``(m,)`` partition id per edge, values in ``[0, num_partitions)``.
    num_partitions:
        Number of partitions ``k``.
    """

    def __init__(
        self,
        graph: Graph,
        edges: np.ndarray,
        assignment: np.ndarray,
        num_partitions: int,
    ) -> None:
        edges = np.asarray(edges, dtype=np.int64)
        assignment = np.asarray(assignment, dtype=np.int32)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError("edges must be (m, 2)")
        if assignment.shape[0] != edges.shape[0]:
            raise ValueError("assignment length must equal number of edges")
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        if assignment.size and (
            assignment.min() < 0 or assignment.max() >= num_partitions
        ):
            raise ValueError("assignment value out of range")
        self.graph = graph
        self.edges = edges
        self.assignment = assignment
        self.num_partitions = int(num_partitions)
        self._replica_pairs: np.ndarray | None = None

    @property
    def num_edges(self) -> int:
        """Number of assigned edges."""
        return int(self.edges.shape[0])

    def edge_counts(self) -> np.ndarray:
        """Edges per partition, shape ``(k,)``."""
        return np.bincount(self.assignment, minlength=self.num_partitions)

    def replica_pairs(self) -> np.ndarray:
        """Unique ``(partition, vertex)`` pairs — one row per vertex replica."""
        if self._replica_pairs is None:
            part = np.concatenate([self.assignment, self.assignment])
            vert = np.concatenate([self.edges[:, 0], self.edges[:, 1]])
            pairs = np.stack([part.astype(np.int64), vert], axis=1)
            self._replica_pairs = np.unique(pairs, axis=0)
        return self._replica_pairs

    def vertex_counts(self) -> np.ndarray:
        """Number of covered vertices per partition, shape ``(k,)``."""
        pairs = self.replica_pairs()
        return np.bincount(
            pairs[:, 0].astype(np.int32), minlength=self.num_partitions
        )

    def copies_per_vertex(self) -> np.ndarray:
        """Number of partitions each vertex is replicated to, shape ``(n,)``.

        Vertices touching no edge have zero copies.
        """
        pairs = self.replica_pairs()
        return np.bincount(pairs[:, 1], minlength=self.graph.num_vertices)

    def partition_vertices(self, partition: int) -> np.ndarray:
        """Sorted ids of vertices covered by ``partition``."""
        pairs = self.replica_pairs()
        return pairs[pairs[:, 0] == partition, 1]

    def partition_edges(self, partition: int) -> np.ndarray:
        """Edges assigned to ``partition``, shape ``(m_i, 2)``."""
        return self.edges[self.assignment == partition]

    def masters(self) -> np.ndarray:
        """Master partition per vertex: the replica holding most of its edges.

        Vertices with no edges get master ``vertex_id % k`` so every vertex
        has an owner (DistGNN assigns each vertex's learnable state to one
        machine).
        """
        n, k = self.graph.num_vertices, self.num_partitions
        counts = np.zeros((n, k), dtype=np.int32) if n * k <= 50_000_000 else None
        if counts is None:
            raise MemoryError("graph too large for dense master computation")
        flat_u = self.edges[:, 0] * k + self.assignment
        flat_v = self.edges[:, 1] * k + self.assignment
        np.add.at(counts.reshape(-1), flat_u, 1)
        np.add.at(counts.reshape(-1), flat_v, 1)
        owners = counts.argmax(axis=1)
        isolated = counts.sum(axis=1) == 0
        owners[isolated] = np.arange(n, dtype=np.int64)[isolated] % k
        return owners.astype(np.int32)


class VertexPartition:
    """Result of vertex partitioning (edge-cut).

    Parameters
    ----------
    graph:
        The partitioned graph.
    assignment:
        ``(n,)`` partition id per vertex, values in ``[0, num_partitions)``.
    num_partitions:
        Number of partitions ``k``.
    """

    def __init__(
        self, graph: Graph, assignment: np.ndarray, num_partitions: int
    ) -> None:
        assignment = np.asarray(assignment, dtype=np.int32)
        if assignment.shape != (graph.num_vertices,):
            raise ValueError("assignment must have one entry per vertex")
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        if assignment.size and (
            assignment.min() < 0 or assignment.max() >= num_partitions
        ):
            raise ValueError("assignment value out of range")
        self.graph = graph
        self.assignment = assignment
        self.num_partitions = int(num_partitions)

    def vertex_counts(self) -> np.ndarray:
        """Vertices per partition, shape ``(k,)``."""
        return np.bincount(self.assignment, minlength=self.num_partitions)

    def partition_vertices(self, partition: int) -> np.ndarray:
        """Vertex ids assigned to ``partition``."""
        return np.flatnonzero(self.assignment == partition)

    def cut_mask(self) -> np.ndarray:
        """Boolean mask over ``graph.undirected_edges()``: True where cut."""
        edges = self.graph.undirected_edges()
        return self.assignment[edges[:, 0]] != self.assignment[edges[:, 1]]

    def num_cut_edges(self) -> int:
        """Number of undirected edges whose endpoints live apart."""
        return int(self.cut_mask().sum())

    def local_edge_counts(self) -> np.ndarray:
        """Per-partition count of fully-local (non-cut) undirected edges."""
        edges = self.graph.undirected_edges()
        local = self.assignment[edges[:, 0]] == self.assignment[edges[:, 1]]
        return np.bincount(
            self.assignment[edges[local, 0]], minlength=self.num_partitions
        )

    def partition_subgraphs(self) -> List[np.ndarray]:
        """Vertex id arrays of each partition (convenience for engines)."""
        order = np.argsort(self.assignment, kind="stable")
        counts = self.vertex_counts()
        bounds = np.concatenate([[0], np.cumsum(counts)])
        return [
            np.sort(order[bounds[i] : bounds[i + 1]])
            for i in range(self.num_partitions)
        ]
