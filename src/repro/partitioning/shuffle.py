"""Out-of-core shuffle: write per-partition edge buckets back to disk.

DistDGL's pipeline follows partitioning with a *data shuffle*: every
edge is physically moved to the partition that owns it, so each worker
can later load nothing but its own bucket. :func:`shuffle_stream` is
that step for the chunk-store pipeline — it drives a streaming
partitioner over an on-disk spool and appends each block's edges to
``k`` per-partition chunk stores, without ever materialising the full
edge list *or* the full assignment. Peak memory is bounded by one
stream block plus ``k`` partially-filled bucket buffers.

Within a bucket, edges keep their stream order (the split per block is
a stable sort by partition id), so the shuffle output is deterministic
given the store and the partitioner configuration.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..graph.chunkstore import EdgeChunkReader, EdgeChunkWriter

__all__ = ["ShuffleResult", "shuffle_stream"]

_BUCKET_FMT = "part-{:03d}"


@dataclass
class ShuffleResult:
    """Outcome of an out-of-core shuffle pass.

    ``directory`` holds one chunk store per partition
    (``part-000`` ... ``part-<k-1>``); ``edge_counts[p]`` is the number
    of edges bucket ``p`` received.
    """

    directory: str
    num_partitions: int
    edge_counts: np.ndarray
    partitioner_name: str

    def bucket_path(self, partition: int) -> str:
        """Directory of partition ``partition``'s bucket store."""
        if not 0 <= partition < self.num_partitions:
            raise IndexError("partition out of range")
        return os.path.join(
            self.directory, _BUCKET_FMT.format(partition)
        )

    def bucket(self, partition: int) -> EdgeChunkReader:
        """Open partition ``partition``'s bucket store."""
        return EdgeChunkReader(self.bucket_path(partition), role="bucket")


def shuffle_stream(
    reader: EdgeChunkReader,
    partitioner,
    num_partitions: int,
    out_directory: str,
    seed: int = 0,
    bucket_chunk_size: Optional[int] = None,
) -> ShuffleResult:
    """Partition a spooled edge stream and bucket its edges by owner.

    ``partitioner`` is any :class:`~repro.partitioning.base.EdgePartitioner`
    with ``supports_stream = True``; its
    :meth:`~repro.partitioning.base.EdgePartitioner.stream_assignments`
    generator is consumed block by block, each block split (stable, so
    stream order survives within a bucket) and appended to the matching
    per-partition store under ``out_directory``. Bucket stores inherit
    the source's chunk size unless ``bucket_chunk_size`` overrides it.
    """
    if bucket_chunk_size is None:
        bucket_chunk_size = reader.manifest.chunk_size
    os.makedirs(out_directory, exist_ok=True)
    writers = [
        EdgeChunkWriter(
            os.path.join(out_directory, _BUCKET_FMT.format(p)),
            chunk_size=bucket_chunk_size,
            num_vertices=reader.num_vertices,
            directed=reader.directed,
            role="bucket",
        )
        for p in range(num_partitions)
    ]
    counts = np.zeros(num_partitions, dtype=np.int64)
    try:
        for edges, assignment in partitioner.stream_assignments(
            reader, num_partitions, seed=seed
        ):
            order = np.argsort(assignment, kind="stable")
            bucketed = edges[order]
            block_counts = np.bincount(
                assignment, minlength=num_partitions
            )
            bounds = np.concatenate([[0], np.cumsum(block_counts)])
            for p in np.flatnonzero(block_counts):
                writers[p].append(bucketed[bounds[p] : bounds[p + 1]])
            counts += block_counts
    finally:
        for writer in writers:
            writer.close()
    return ShuffleResult(
        directory=out_directory,
        num_partitions=num_partitions,
        edge_counts=counts,
        partitioner_name=partitioner.name,
    )
