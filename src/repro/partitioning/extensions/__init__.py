"""Extension partitioners beyond the paper's Table 2.

The study's future-work section calls for "even more effective graph
partitioning algorithms"; this package collects well-known algorithms
from the paper's related-work universe so the ablation benchmarks can
compare them against the studied twelve:

===========  ==========  ====================================
name         cut type    origin
===========  ==========  ====================================
fennel       edge-cut    Tsourakakis et al., WSDM 2014
reldg        edge-cut    Nishimura & Ugander, KDD 2013 [33]
ne           vertex-cut  Zhang et al., KDD 2017 [48]
===========  ==========  ====================================
"""

from typing import Callable, Dict, Union

from ..base import EdgePartitioner, VertexPartitioner
from .fennel import FennelPartitioner
from .ne import NePartitioner
from .reldg import RestreamingLdgPartitioner

__all__ = [
    "FennelPartitioner",
    "RestreamingLdgPartitioner",
    "NePartitioner",
    "EXTENSION_PARTITIONER_NAMES",
    "make_extension_partitioner",
]

_FACTORIES: Dict[
    str, Callable[[], Union[EdgePartitioner, VertexPartitioner]]
] = {
    "fennel": FennelPartitioner,
    "reldg": RestreamingLdgPartitioner,
    "ne": NePartitioner,
}

EXTENSION_PARTITIONER_NAMES = tuple(_FACTORIES)


def make_extension_partitioner(
    name: str,
) -> Union[EdgePartitioner, VertexPartitioner]:
    """Construct an extension partitioner by (case-insensitive) name."""
    key = name.lower()
    if key not in _FACTORIES:
        raise KeyError(
            f"unknown extension partitioner {name!r}; "
            f"available: {sorted(_FACTORIES)}"
        )
    return _FACTORIES[key]()
