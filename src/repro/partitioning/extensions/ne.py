"""NE: standalone neighbourhood-expansion edge partitioner.

Zhang et al., KDD 2017 ("Graph Edge Partitioning via Neighborhood
Heuristic", cited as [48] in the paper). The pure in-memory expansion that
HEP hybridises: every edge is placed by growing partitions around tightly
connected cores — no streaming fallback. Exposed as an extension so the
ablation benchmarks can separate NE's contribution from HEP's hybrid
degree thresholding.
"""

from __future__ import annotations

import numpy as np

from ...graph import Graph
from ..base import EdgePartitioner
from ..vertexcut.hep import _neighborhood_expansion
from ..vertexcut.refine import coalesce_vertex_moves, refine_edge_assignment
from ..vertexcut.streaming import HdrfState

__all__ = ["NePartitioner"]


class NePartitioner(EdgePartitioner):
    """Neighbourhood-expansion edge partitioner (NE)."""
    name = "NE"
    category = "in-memory"

    def __init__(self, balance_cap: float = 1.1, refine: bool = True) -> None:
        super().__init__()
        self.balance_cap = balance_cap
        self.refine = refine

    def _assign(
        self,
        graph: Graph,
        edges: np.ndarray,
        num_partitions: int,
        seed: int,
    ) -> np.ndarray:
        rng = np.random.default_rng(seed)
        degrees = graph.degrees().astype(np.int64)
        assignment = np.full(edges.shape[0], -1, dtype=np.int32)
        cap = int(
            np.ceil(self.balance_cap * edges.shape[0] / num_partitions)
        )
        all_ids = np.arange(edges.shape[0], dtype=np.int64)
        leftovers = _neighborhood_expansion(
            graph.num_vertices,
            edges,
            all_ids,
            assignment,
            num_partitions,
            cap,
            degrees,
        )
        placed = all_ids[assignment >= 0]
        if self.refine:
            for round_seed in (seed, seed + 1):
                refine_edge_assignment(
                    edges, assignment, placed, graph.num_vertices,
                    num_partitions, cap, sweeps=2, seed=round_seed,
                )
                coalesce_vertex_moves(
                    edges, assignment, placed, graph.num_vertices,
                    num_partitions, cap, sweeps=2, seed=round_seed,
                )
        if leftovers.size:
            # The balance cap can strand a few edges; place them with an
            # HDRF scorer seeded from the expansion result.
            state = HdrfState(graph.num_vertices, num_partitions)
            state.seed_from(edges[assignment >= 0], assignment[assignment >= 0])
            order = rng.permutation(leftovers.shape[0])
            streamed = leftovers[order]
            assignment[streamed] = state.place_edges(edges[streamed])
        return assignment
