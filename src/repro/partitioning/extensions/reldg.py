"""Restreaming LDG (reLDG).

Nishimura and Ugander, KDD 2013 (cited as [33] in the paper). Runs LDG's
greedy placement repeatedly: after the first pass, every further pass
re-streams the vertices and reassigns them using the *previous* pass's
assignment as neighbour context, monotonically improving the cut while
keeping the streaming memory profile. An extension beyond the paper's
Table 2, used by the ablation benchmarks. The inner loop is the shared
chunk-vectorised kernel in :mod:`..edgecut.streaming`, called with
``vacate=True`` on restreaming passes.
"""

from __future__ import annotations

import numpy as np

from ...graph import Graph
from ..base import VertexPartitioner
from ..chunking import DEFAULT_CHUNK
from ..edgecut.streaming import VertexStreamState

__all__ = ["RestreamingLdgPartitioner"]


class RestreamingLdgPartitioner(VertexPartitioner):
    """LDG with multiple restreaming passes (reLDG)."""
    name = "reLDG"
    category = "stateful streaming"
    # The kernel only observes neighbour partition tallies (bincount),
    # so the store-backed CSR drives it bit-identically out-of-core.
    supports_stream = True

    def __init__(
        self,
        passes: int = 5,
        slack: float = 1.1,
        chunk_size: int = DEFAULT_CHUNK,
        vectorised: bool = True,
    ) -> None:
        super().__init__()
        if passes < 1:
            raise ValueError("need at least one pass")
        self.passes = passes
        self.slack = slack
        self.chunk_size = chunk_size
        self.vectorised = vectorised

    def _assign(
        self, graph: Graph, num_partitions: int, seed: int
    ) -> np.ndarray:
        rng = np.random.default_rng(seed)
        indptr, indices = graph.symmetric_csr()
        n = graph.num_vertices
        state = VertexStreamState(
            indptr,
            indices,
            num_partitions,
            capacity=self.slack * n / num_partitions,
            mode="ldg",
            chunk_size=self.chunk_size,
        )
        place = state.place if self.vectorised else state.place_reference
        for pass_index in range(self.passes):
            # Restreaming passes vacate each vertex's old slot before
            # re-placing it against the previous pass's assignment.
            place(rng.permutation(n), vacate=pass_index > 0)
        return state.assignment
