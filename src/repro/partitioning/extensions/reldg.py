"""Restreaming LDG (reLDG).

Nishimura and Ugander, KDD 2013 (cited as [33] in the paper). Runs LDG's
greedy placement repeatedly: after the first pass, every further pass
re-streams the vertices and reassigns them using the *previous* pass's
assignment as neighbour context, monotonically improving the cut while
keeping the streaming memory profile. An extension beyond the paper's
Table 2, used by the ablation benchmarks.
"""

from __future__ import annotations

import numpy as np

from ...graph import Graph
from ..base import VertexPartitioner

__all__ = ["RestreamingLdgPartitioner"]


class RestreamingLdgPartitioner(VertexPartitioner):
    name = "reLDG"
    category = "stateful streaming"

    def __init__(self, passes: int = 5, slack: float = 1.1) -> None:
        super().__init__()
        if passes < 1:
            raise ValueError("need at least one pass")
        self.passes = passes
        self.slack = slack

    def _assign(
        self, graph: Graph, num_partitions: int, seed: int
    ) -> np.ndarray:
        rng = np.random.default_rng(seed)
        indptr, indices = graph.symmetric_csr()
        n, k = graph.num_vertices, num_partitions
        capacity = self.slack * n / k
        assignment = np.full(n, -1, dtype=np.int32)
        sizes = np.zeros(k, dtype=np.float64)
        for _ in range(self.passes):
            for v in rng.permutation(n):
                v = int(v)
                if assignment[v] >= 0:
                    # Restream: vacate the old slot before re-placing.
                    sizes[assignment[v]] -= 1
                nbrs = indices[indptr[v] : indptr[v + 1]]
                placed = assignment[nbrs]
                placed = placed[placed >= 0]
                counts = (
                    np.bincount(placed, minlength=k)
                    if placed.size
                    else np.zeros(k)
                )
                score = counts * (1.0 - sizes / capacity)
                score[sizes >= capacity] = -np.inf
                best = int(score.argmax())
                if score[best] <= 0:
                    open_parts = np.flatnonzero(sizes < capacity)
                    best = int(open_parts[sizes[open_parts].argmin()])
                assignment[v] = best
                sizes[best] += 1
        return assignment
