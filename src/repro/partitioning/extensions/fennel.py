"""Fennel streaming vertex partitioner.

Tsourakakis et al., WSDM 2014. A one-pass streaming partitioner whose
score interpolates between LDG's neighbour affinity and a degree-based
balance penalty: vertex ``v`` goes to the partition maximising

    |N(v) ∩ P_i| - alpha * gamma * |P_i|^(gamma - 1)

with ``gamma = 1.5`` and ``alpha = sqrt(k) * m / n^1.5`` (the authors'
defaults). Not part of the paper's Table 2 — included as an extension for
the ablation study comparing the studied set against further streaming
partitioners. The inner loop is the shared chunk-vectorised kernel in
:mod:`..edgecut.streaming`.
"""

from __future__ import annotations

import numpy as np

from ...graph import Graph
from ..base import VertexPartitioner
from ..chunking import DEFAULT_CHUNK
from ..edgecut.streaming import VertexStreamState

__all__ = ["FennelPartitioner"]


class FennelPartitioner(VertexPartitioner):
    """Fennel: streaming vertex placement with a tunable balance penalty."""
    name = "Fennel"
    category = "stateful streaming"
    # The kernel only observes neighbour partition tallies (bincount),
    # so the store-backed CSR drives it bit-identically out-of-core.
    supports_stream = True

    def __init__(
        self,
        gamma: float = 1.5,
        slack: float = 1.1,
        chunk_size: int = DEFAULT_CHUNK,
        vectorised: bool = True,
    ) -> None:
        super().__init__()
        if gamma <= 1.0:
            raise ValueError("gamma must exceed 1")
        self.gamma = gamma
        self.slack = slack
        self.chunk_size = chunk_size
        self.vectorised = vectorised

    def _assign(
        self, graph: Graph, num_partitions: int, seed: int
    ) -> np.ndarray:
        rng = np.random.default_rng(seed)
        indptr, indices = graph.symmetric_csr()
        n, k = graph.num_vertices, num_partitions
        m = graph.num_edges
        state = VertexStreamState(
            indptr,
            indices,
            k,
            capacity=self.slack * n / k,
            mode="fennel",
            alpha=np.sqrt(k) * m / max(n, 1) ** self.gamma,
            gamma=self.gamma,
            chunk_size=self.chunk_size,
        )
        place = state.place if self.vectorised else state.place_reference
        place(rng.permutation(n))
        return state.assignment
