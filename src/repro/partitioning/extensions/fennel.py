"""Fennel streaming vertex partitioner.

Tsourakakis et al., WSDM 2014. A one-pass streaming partitioner whose
score interpolates between LDG's neighbour affinity and a degree-based
balance penalty: vertex ``v`` goes to the partition maximising

    |N(v) ∩ P_i| - alpha * gamma * |P_i|^(gamma - 1)

with ``gamma = 1.5`` and ``alpha = sqrt(k) * m / n^1.5`` (the authors'
defaults). Not part of the paper's Table 2 — included as an extension for
the ablation study comparing the studied set against further streaming
partitioners.
"""

from __future__ import annotations

import numpy as np

from ...graph import Graph
from ..base import VertexPartitioner

__all__ = ["FennelPartitioner"]


class FennelPartitioner(VertexPartitioner):
    name = "Fennel"
    category = "stateful streaming"

    def __init__(self, gamma: float = 1.5, slack: float = 1.1) -> None:
        super().__init__()
        if gamma <= 1.0:
            raise ValueError("gamma must exceed 1")
        self.gamma = gamma
        self.slack = slack

    def _assign(
        self, graph: Graph, num_partitions: int, seed: int
    ) -> np.ndarray:
        rng = np.random.default_rng(seed)
        indptr, indices = graph.symmetric_csr()
        n, k = graph.num_vertices, num_partitions
        m = graph.num_edges
        alpha = np.sqrt(k) * m / max(n, 1) ** self.gamma
        capacity = self.slack * n / k
        assignment = np.full(n, -1, dtype=np.int32)
        sizes = np.zeros(k, dtype=np.float64)
        for v in rng.permutation(n):
            v = int(v)
            nbrs = indices[indptr[v] : indptr[v + 1]]
            placed = assignment[nbrs]
            placed = placed[placed >= 0]
            neighbors = (
                np.bincount(placed, minlength=k)
                if placed.size
                else np.zeros(k)
            )
            penalty = alpha * self.gamma * sizes ** (self.gamma - 1.0)
            score = neighbors - penalty
            score[sizes >= capacity] = -np.inf
            assignment[v] = int(score.argmax())
            sizes[assignment[v]] += 1
        return assignment
