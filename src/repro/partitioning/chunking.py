"""Chunk schedule shared by the vectorised streaming kernels.

Streaming partitioners (HDRF, LDG, Fennel, reLDG, HEP's tail phase)
process their stream in chunks: per-stream-element state (partition
loads / the balance or penalty term) is frozen at the start of each
chunk so the chunk body can be scored with numpy batch operations. The
schedule ramps up geometrically from :data:`MIN_CHUNK` so the early
stream — where balance is the only signal — still reacts quickly, and
the transient staleness introduced later is bounded by the final chunk
size.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Tuple

import numpy as np

__all__ = ["DEFAULT_CHUNK", "MIN_CHUNK", "chunk_spans", "iter_ramp_blocks"]

#: Default ceiling of the chunk-size ramp.
DEFAULT_CHUNK = 1024
#: First chunk of the ramp (kept small so early balance stays tight).
MIN_CHUNK = 32


def chunk_spans(
    total: int, chunk_size: int = DEFAULT_CHUNK
) -> Iterator[Tuple[int, int]]:
    """Yield ``(start, stop)`` spans ramping from MIN_CHUNK to chunk_size."""
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    size = min(MIN_CHUNK, chunk_size)
    start = 0
    while start < total:
        stop = min(start + size, total)
        yield start, stop
        start = stop
        size = min(size * 2, chunk_size)


def iter_ramp_blocks(
    blocks: Iterable[np.ndarray], chunk_size: int = DEFAULT_CHUNK
) -> Iterator[np.ndarray]:
    """Re-chunk an iterable of arbitrary-size blocks into the ramp spans.

    The out-of-core path streams edges from an on-disk store whose chunk
    size has nothing to do with the kernels' :func:`chunk_spans` ramp.
    This generator stitches the incoming blocks back into exactly the
    span sequence ``chunk_spans(total, chunk_size)`` would produce over
    the concatenated stream — carrying partial spans across block
    boundaries — so a kernel driven through it is bit-identical to the
    in-memory kernel over the full array, whatever the store chunking.
    Only spans that straddle a block boundary are copied (concatenated);
    interior spans are views into the incoming block.
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    size = min(MIN_CHUNK, chunk_size)
    pending: list = []
    pending_rows = 0
    for block in blocks:
        offset = 0
        length = block.shape[0]
        while offset < length:
            take = min(size - pending_rows, length - offset)
            pending.append(block[offset : offset + take])
            pending_rows += take
            offset += take
            if pending_rows == size:
                yield (
                    pending[0]
                    if len(pending) == 1
                    else np.concatenate(pending)
                )
                pending = []
                pending_rows = 0
                size = min(size * 2, chunk_size)
    if pending_rows:
        yield pending[0] if len(pending) == 1 else np.concatenate(pending)
