"""Chunk schedule shared by the vectorised streaming kernels.

Streaming partitioners (HDRF, LDG, Fennel, reLDG, HEP's tail phase)
process their stream in chunks: per-stream-element state (partition
loads / the balance or penalty term) is frozen at the start of each
chunk so the chunk body can be scored with numpy batch operations. The
schedule ramps up geometrically from :data:`MIN_CHUNK` so the early
stream — where balance is the only signal — still reacts quickly, and
the transient staleness introduced later is bounded by the final chunk
size.
"""

from __future__ import annotations

from typing import Iterator, Tuple

__all__ = ["DEFAULT_CHUNK", "MIN_CHUNK", "chunk_spans"]

#: Default ceiling of the chunk-size ramp.
DEFAULT_CHUNK = 1024
#: First chunk of the ramp (kept small so early balance stays tight).
MIN_CHUNK = 32


def chunk_spans(
    total: int, chunk_size: int = DEFAULT_CHUNK
) -> Iterator[Tuple[int, int]]:
    """Yield ``(start, stop)`` spans ramping from MIN_CHUNK to chunk_size."""
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    size = min(MIN_CHUNK, chunk_size)
    start = 0
    while start < total:
        stop = min(start + size, total)
        yield start, stop
        start = stop
        size = min(size * 2, chunk_size)
