"""Graph partitioning: the 12 algorithms of the study plus quality metrics."""

from .assignment import EdgePartition, VertexPartition
from .base import EdgePartitioner, Partitioner, VertexPartitioner
from .outofcore import (
    StoreGraphView,
    StreamEdgePartition,
    StreamVertexPartition,
    build_stream_csr,
    stream_degrees,
)
from .shuffle import ShuffleResult, shuffle_stream
from .edgecut import (
    ByteGnnPartitioner,
    KahipPartitioner,
    LdgPartitioner,
    MetisPartitioner,
    RandomVertexPartitioner,
    SpinnerPartitioner,
)
from .metrics import (
    EdgePartitionQuality,
    VertexPartitionQuality,
    edge_balance,
    edge_cut_ratio,
    edge_partition_quality,
    replication_factor,
    training_vertex_balance,
    vertex_balance,
    vertex_balance_vertex_cut,
    vertex_partition_quality,
)
from .registry import (
    EDGE_PARTITIONER_NAMES,
    VERTEX_PARTITIONER_NAMES,
    all_edge_partitioners,
    all_vertex_partitioners,
    make_edge_partitioner,
    make_vertex_partitioner,
)
from .halo import HaloStats, halo_statistics
from .io import (
    load_edge_partition,
    load_vertex_partition,
    save_edge_partition,
    save_vertex_partition,
)
from .extensions import (
    EXTENSION_PARTITIONER_NAMES,
    FennelPartitioner,
    NePartitioner,
    RestreamingLdgPartitioner,
    make_extension_partitioner,
)
from .validate import (
    PartitionValidationError,
    validate_edge_partition,
    validate_vertex_partition,
)
from .vertexcut import (
    DbhPartitioner,
    HdrfPartitioner,
    HepPartitioner,
    RandomEdgePartitioner,
    TwoPsLPartitioner,
)

__all__ = [
    "Partitioner",
    "EdgePartitioner",
    "VertexPartitioner",
    "EdgePartition",
    "VertexPartition",
    "RandomEdgePartitioner",
    "DbhPartitioner",
    "HdrfPartitioner",
    "TwoPsLPartitioner",
    "HepPartitioner",
    "RandomVertexPartitioner",
    "LdgPartitioner",
    "SpinnerPartitioner",
    "MetisPartitioner",
    "ByteGnnPartitioner",
    "KahipPartitioner",
    "replication_factor",
    "edge_balance",
    "vertex_balance_vertex_cut",
    "edge_cut_ratio",
    "vertex_balance",
    "training_vertex_balance",
    "EdgePartitionQuality",
    "VertexPartitionQuality",
    "edge_partition_quality",
    "vertex_partition_quality",
    "EDGE_PARTITIONER_NAMES",
    "VERTEX_PARTITIONER_NAMES",
    "make_edge_partitioner",
    "make_vertex_partitioner",
    "all_edge_partitioners",
    "all_vertex_partitioners",
    "FennelPartitioner",
    "RestreamingLdgPartitioner",
    "NePartitioner",
    "EXTENSION_PARTITIONER_NAMES",
    "make_extension_partitioner",
    "validate_edge_partition",
    "validate_vertex_partition",
    "PartitionValidationError",
    "HaloStats",
    "halo_statistics",
    "save_vertex_partition",
    "load_vertex_partition",
    "save_edge_partition",
    "load_edge_partition",
    "StoreGraphView",
    "StreamEdgePartition",
    "StreamVertexPartition",
    "build_stream_csr",
    "stream_degrees",
    "ShuffleResult",
    "shuffle_stream",
]
