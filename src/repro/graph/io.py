"""Plain-text edge-list IO.

The original study reads KONECT/WebGraph exports; we support the same simple
whitespace-separated ``u v`` format (one edge per line, ``#`` comments) so
users can feed their own graphs into the pipeline.
"""

from __future__ import annotations

import os
from typing import Optional, Union

import numpy as np

from .csr import Graph

__all__ = ["read_edge_list", "write_edge_list"]

PathLike = Union[str, "os.PathLike[str]"]


def read_edge_list(
    path: PathLike,
    directed: bool = False,
    num_vertices: Optional[int] = None,
    name: str = "",
) -> Graph:
    """Read a whitespace-separated edge list.

    Lines starting with ``#`` or ``%`` are ignored (KONECT convention).
    """
    sources: list[int] = []
    targets: list[int] = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line[0] in "#%":
                continue
            fields = line.split()
            if len(fields) < 2:
                raise ValueError(
                    f"{path}:{lineno}: expected at least two fields"
                )
            sources.append(int(fields[0]))
            targets.append(int(fields[1]))
    edges = np.stack(
        [
            np.asarray(sources, dtype=np.int64),
            np.asarray(targets, dtype=np.int64),
        ],
        axis=1,
    ) if sources else np.zeros((0, 2), dtype=np.int64)
    if num_vertices is None:
        num_vertices = int(edges.max()) + 1 if edges.size else 1
    if not name:
        name = os.path.splitext(os.path.basename(os.fspath(path)))[0]
    return Graph(num_vertices, edges, directed=directed, name=name)


def write_edge_list(graph: Graph, path: PathLike) -> None:
    """Write the graph's edges, with a header comment recording metadata."""
    with open(path, "w") as handle:
        direction = "directed" if graph.directed else "undirected"
        handle.write(
            f"# {graph.name or 'graph'} {direction} "
            f"|V|={graph.num_vertices} |E|={graph.num_edges}\n"
        )
        for u, v in graph.iter_edges():
            handle.write(f"{u} {v}\n")
