"""Graph transformations: component extraction, filtering, relabelling.

Real pipelines rarely feed raw crawls to a partitioner; these helpers
cover the standard preprocessing steps (the paper's datasets are already
cleaned, but user-supplied edge lists often are not).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .csr import Graph

__all__ = [
    "largest_connected_component",
    "filter_by_degree",
    "relabel_compact",
    "symmetrized",
]


def _component_labels(graph: Graph) -> np.ndarray:
    """Connected-component label per vertex (on the symmetric view)."""
    indptr, indices = graph.symmetric_csr()
    labels = np.full(graph.num_vertices, -1, dtype=np.int64)
    next_label = 0
    for start in range(graph.num_vertices):
        if labels[start] >= 0:
            continue
        stack = [start]
        labels[start] = next_label
        while stack:
            v = stack.pop()
            for u in indices[indptr[v] : indptr[v + 1]]:
                u = int(u)
                if labels[u] < 0:
                    labels[u] = next_label
                    stack.append(u)
        next_label += 1
    return labels


def largest_connected_component(graph: Graph) -> Graph:
    """Induced subgraph on the largest (weakly) connected component."""
    labels = _component_labels(graph)
    counts = np.bincount(labels)
    keep = np.flatnonzero(labels == counts.argmax())
    return graph.subgraph(keep)


def filter_by_degree(
    graph: Graph, min_degree: int = 1, max_degree: int | None = None
) -> Graph:
    """Induced subgraph on vertices within the given degree band.

    One pass only: degrees are measured on the input graph, so vertices
    can fall below ``min_degree`` in the result (iterate for a k-core).
    """
    degrees = graph.degrees()
    mask = degrees >= min_degree
    if max_degree is not None:
        mask &= degrees <= max_degree
    keep = np.flatnonzero(mask)
    if keep.size == 0:
        raise ValueError("degree filter removed every vertex")
    return graph.subgraph(keep)


def relabel_compact(
    graph: Graph,
) -> Tuple[Graph, np.ndarray]:
    """Drop isolated vertices, relabelling the rest to ``0..n'-1``.

    Returns the compacted graph and the array mapping new ids to the
    original ids.
    """
    degrees = graph.degrees()
    keep = np.flatnonzero(degrees > 0)
    if keep.size == 0:
        raise ValueError("graph has no edges to keep")
    return graph.subgraph(keep), keep


def symmetrized(graph: Graph) -> Graph:
    """Undirected view of a directed graph (reciprocal arcs collapse)."""
    if not graph.directed:
        return graph
    return Graph(
        graph.num_vertices,
        graph.undirected_edges(),
        directed=False,
        name=graph.name,
    )
