"""Core graph data structure.

The study's substrate is a static graph that is read once, partitioned, and
then used for GNN training. We therefore optimise for immutable bulk access:
the graph is stored as an edge array plus lazily-built CSR adjacency indexes
(one symmetric view used by partitioners and samplers, one out-edge view for
directed statistics).

Vertex ids are dense integers ``0 .. num_vertices - 1``.
"""

from __future__ import annotations

import hashlib
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Graph", "build_csr"]


def build_csr(
    num_vertices: int, sources: np.ndarray, targets: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Build a CSR index (indptr, indices) for the given directed arcs.

    ``sources`` and ``targets`` are parallel int arrays; the result stores,
    for each vertex ``v``, the targets of arcs leaving ``v`` in a contiguous
    slice ``indices[indptr[v]:indptr[v + 1]]`` sorted by target id.
    """
    sources = np.asarray(sources, dtype=np.int64)
    targets = np.asarray(targets, dtype=np.int64)
    if sources.shape != targets.shape:
        raise ValueError("sources and targets must have the same shape")
    order = np.lexsort((targets, sources))
    sources = sources[order]
    targets = targets[order]
    counts = np.bincount(sources, minlength=num_vertices)
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, targets


class Graph:
    """An immutable graph over dense integer vertex ids.

    Parameters
    ----------
    num_vertices:
        Number of vertices; ids are ``0 .. num_vertices - 1``.
    edges:
        ``(m, 2)`` integer array. For undirected graphs each edge appears
        once (in either orientation); for directed graphs rows are arcs.
    directed:
        Whether ``edges`` rows are directed arcs.
    name:
        Optional human-readable name (dataset key).
    """

    def __init__(
        self,
        num_vertices: int,
        edges: np.ndarray,
        directed: bool = False,
        name: str = "",
    ) -> None:
        edges = np.asarray(edges, dtype=np.int64)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError("edges must be an (m, 2) array")
        if num_vertices <= 0:
            raise ValueError("num_vertices must be positive")
        if edges.size and (edges.min() < 0 or edges.max() >= num_vertices):
            raise ValueError("edge endpoint out of range")
        self._num_vertices = int(num_vertices)
        self._edges = _dedup_edges(edges, directed)
        self._directed = bool(directed)
        self.name = name
        self._sym_indptr: Optional[np.ndarray] = None
        self._sym_indices: Optional[np.ndarray] = None
        self._out_indptr: Optional[np.ndarray] = None
        self._out_indices: Optional[np.ndarray] = None
        self._undirected_edges: Optional[np.ndarray] = None
        self._fingerprint: Optional[str] = None

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        """Number of (deduplicated) edges / arcs as stored."""
        return int(self._edges.shape[0])

    @property
    def directed(self) -> bool:
        """Whether edges were loaded as directed arcs."""
        return self._directed

    @property
    def edges(self) -> np.ndarray:
        """The ``(m, 2)`` edge array. Do not mutate."""
        return self._edges

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "directed" if self._directed else "undirected"
        label = f" {self.name!r}" if self.name else ""
        return (
            f"Graph({kind}{label}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges})"
        )

    # ------------------------------------------------------------------
    # Adjacency views
    # ------------------------------------------------------------------
    def symmetric_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """CSR over the symmetrised adjacency (each edge in both directions).

        This is the view used by partitioners and neighbourhood samplers:
        GNN message passing and partitioning both treat the graph as
        undirected connectivity, as in the paper.
        """
        if self._sym_indptr is None:
            src = np.concatenate([self._edges[:, 0], self._edges[:, 1]])
            dst = np.concatenate([self._edges[:, 1], self._edges[:, 0]])
            keep = src != dst  # drop self-loop duplicates from mirroring
            loops = self._edges[:, 0] == self._edges[:, 1]
            src = np.concatenate([src[keep], self._edges[loops, 0]])
            dst = np.concatenate([dst[keep], self._edges[loops, 1]])
            self._sym_indptr, self._sym_indices = build_csr(
                self._num_vertices, src, dst
            )
        return self._sym_indptr, self._sym_indices

    def out_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """CSR over out-arcs (equals the symmetric view when undirected)."""
        if not self._directed:
            return self.symmetric_csr()
        if self._out_indptr is None:
            self._out_indptr, self._out_indices = build_csr(
                self._num_vertices, self._edges[:, 0], self._edges[:, 1]
            )
        return self._out_indptr, self._out_indices

    def neighbors(self, vertex: int) -> np.ndarray:
        """Symmetric neighbourhood of ``vertex`` (sorted, may include dups
        only if the input had parallel edges, which the constructor removes).
        """
        indptr, indices = self.symmetric_csr()
        return indices[indptr[vertex] : indptr[vertex + 1]]

    def degrees(self) -> np.ndarray:
        """Symmetric degree of every vertex."""
        indptr, _ = self.symmetric_csr()
        return np.diff(indptr)

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every vertex, shape ``(n,)``."""
        indptr, _ = self.out_csr()
        return np.diff(indptr)

    # ------------------------------------------------------------------
    # Edge-centric helpers (used by edge partitioners)
    # ------------------------------------------------------------------
    def undirected_edges(self) -> np.ndarray:
        """Edges as canonical undirected pairs ``u <= v``, deduplicated.

        Edge partitioners operate on undirected edges; for directed inputs
        reciprocal arc pairs collapse into one undirected edge.
        """
        if self._undirected_edges is None:
            lo = np.minimum(self._edges[:, 0], self._edges[:, 1])
            hi = np.maximum(self._edges[:, 0], self._edges[:, 1])
            pairs = np.stack([lo, hi], axis=1)
            self._undirected_edges = np.unique(pairs, axis=0)
        return self._undirected_edges

    def iter_edges(self) -> Iterator[Tuple[int, int]]:
        """Yield edges one ``(u, v)`` tuple at a time."""
        for u, v in self._edges:
            yield int(u), int(v)

    def fingerprint(self) -> str:
        """Stable content hash of the graph structure.

        Identifies the graph by value (vertex count, directedness, edge
        array) rather than by object identity, so caches keyed on it stay
        correct across garbage collection and process boundaries. Cached
        after the first call; the graph is immutable.
        """
        if self._fingerprint is None:
            digest = hashlib.sha1()
            digest.update(
                f"{self._num_vertices}:{int(self._directed)}:".encode()
            )
            digest.update(np.ascontiguousarray(self._edges).tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, vertices: Sequence[int]) -> "Graph":
        """Induced subgraph with vertices relabelled ``0..len(vertices)-1``
        in the order given.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        mapping = np.full(self._num_vertices, -1, dtype=np.int64)
        mapping[vertices] = np.arange(len(vertices), dtype=np.int64)
        src = mapping[self._edges[:, 0]]
        dst = mapping[self._edges[:, 1]]
        keep = (src >= 0) & (dst >= 0)
        sub_edges = np.stack([src[keep], dst[keep]], axis=1)
        return Graph(
            max(len(vertices), 1),
            sub_edges,
            directed=self._directed,
            name=f"{self.name}/sub" if self.name else "",
        )

    @classmethod
    def from_edge_list(
        cls,
        pairs: Sequence[Tuple[int, int]],
        directed: bool = False,
        num_vertices: Optional[int] = None,
        name: str = "",
    ) -> "Graph":
        """Build a graph from Python pairs, inferring |V| when omitted."""
        edges = np.asarray(list(pairs), dtype=np.int64).reshape(-1, 2)
        if num_vertices is None:
            num_vertices = int(edges.max()) + 1 if edges.size else 1
        return cls(num_vertices, edges, directed=directed, name=name)


def _dedup_edges(edges: np.ndarray, directed: bool) -> np.ndarray:
    """Remove duplicate edges (and mirrored duplicates when undirected)."""
    if edges.size == 0:
        return edges.reshape(0, 2)
    if directed:
        return np.unique(edges, axis=0)
    lo = np.minimum(edges[:, 0], edges[:, 1])
    hi = np.maximum(edges[:, 0], edges[:, 1])
    return np.unique(np.stack([lo, hi], axis=1), axis=0)
