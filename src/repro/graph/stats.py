"""Structural statistics used to sanity-check generated graphs."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import Graph

__all__ = ["GraphStats", "graph_stats", "degree_skew", "clustering_sample"]


@dataclass(frozen=True)
class GraphStats:
    """Structural summary statistics of one graph (paper Table 1 style)."""
    num_vertices: int
    num_edges: int
    mean_degree: float
    max_degree: int
    degree_skew: float
    clustering: float

    def as_row(self) -> str:
        """Fixed-width one-line rendering for tables."""
        return (
            f"|V|={self.num_vertices:>8} |E|={self.num_edges:>9} "
            f"deg={self.mean_degree:6.2f} max={self.max_degree:>6} "
            f"skew={self.degree_skew:6.2f} cc={self.clustering:5.3f}"
        )


def degree_skew(graph: Graph) -> float:
    """Max degree over mean degree: a simple heavy-tail indicator."""
    degrees = graph.degrees()
    mean = degrees.mean() if degrees.size else 0.0
    return float(degrees.max() / mean) if mean > 0 else 0.0


def clustering_sample(
    graph: Graph, sample_size: int = 500, seed: int = 0
) -> float:
    """Approximate mean local clustering coefficient over a vertex sample."""
    rng = np.random.default_rng(seed)
    indptr, indices = graph.symmetric_csr()
    degrees = np.diff(indptr)
    candidates = np.flatnonzero(degrees >= 2)
    if candidates.size == 0:
        return 0.0
    if candidates.size > sample_size:
        candidates = rng.choice(candidates, size=sample_size, replace=False)
    neighbor_sets = {}
    total = 0.0
    for v in candidates:
        nbrs = indices[indptr[v] : indptr[v + 1]]
        nbr_set = set(int(x) for x in nbrs)
        closed = 0
        for u in nbrs:
            u = int(u)
            if u not in neighbor_sets:
                neighbor_sets[u] = set(
                    int(x) for x in indices[indptr[u] : indptr[u + 1]]
                )
            closed += len(neighbor_sets[u] & nbr_set)
        possible = len(nbrs) * (len(nbrs) - 1)
        total += closed / possible if possible else 0.0
    return float(total / len(candidates))


def graph_stats(graph: Graph, seed: int = 0) -> GraphStats:
    """Bundle of structural statistics for ``graph``."""
    degrees = graph.degrees()
    return GraphStats(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        mean_degree=float(degrees.mean()) if degrees.size else 0.0,
        max_degree=int(degrees.max()) if degrees.size else 0,
        degree_skew=degree_skew(graph),
        clustering=clustering_sample(graph, seed=seed),
    )
