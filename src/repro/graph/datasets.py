"""Scaled-down stand-ins for the paper's five evaluation graphs (Table 1).

====  ===============  ======  ========  =======================
key   paper dataset    type    directed  stand-in generator
====  ===============  ======  ========  =======================
HW    Hollywood-2011   colla.  no        affiliation cliques
DI    Dimacs9-USA      road    yes       perturbed lattice
EN    Enwiki-2021      wiki    yes       directed pref. attach
EU    Eu-2015-tpd      web     yes       skewed R-MAT
OR    Orkut            social  no        Holme-Kim power law
====  ===============  ======  ========  =======================

Scales are configurable: ``tiny`` for unit tests, ``small`` for the default
benchmark runs, ``medium`` for slower, higher-fidelity runs. Instances are
cached per (key, scale, seed) because generation dominates test time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from .csr import Graph
from .generators import (
    affiliation_graph,
    powerlaw_cluster_graph,
    preferential_attachment_graph,
    road_network_graph,
    web_host_graph,
)

__all__ = ["DATASET_KEYS", "DatasetSpec", "load_dataset", "dataset_specs"]

DATASET_KEYS = ("HW", "DI", "EN", "EU", "OR")

_SCALES = ("tiny", "small", "medium")


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata describing one stand-in dataset."""

    key: str
    paper_name: str
    category: str
    directed: bool
    generator: Callable[[str, int], Graph]

    def generate(self, scale: str = "small", seed: int = 0) -> Graph:
        """Instantiate the synthetic graph at ``scale`` with ``seed``."""
        if scale not in _SCALES:
            raise ValueError(f"unknown scale {scale!r}; pick one of {_SCALES}")
        graph = self.generator(scale, seed)
        graph.name = self.key
        return graph


def _hollywood(scale: str, seed: int) -> Graph:
    actors = {"tiny": 600, "small": 4000, "medium": 12000}[scale]
    groups = {"tiny": 260, "small": 1800, "medium": 5500}[scale]
    return affiliation_graph(
        actors,
        groups,
        mean_group_size=11.0,
        memberships_per_actor=5.0,
        seed=seed,
        name="HW",
    )


def _dimacs(scale: str, seed: int) -> Graph:
    side = {"tiny": (28, 28), "small": (90, 90), "medium": (160, 160)}[scale]
    return road_network_graph(side[0], side[1], seed=seed, name="DI")


def _enwiki(scale: str, seed: int) -> Graph:
    n = {"tiny": 800, "small": 5000, "medium": 16000}[scale]
    return preferential_attachment_graph(
        n,
        mean_out_degree=14.0,
        topic_mean_size={"tiny": 40, "small": 110, "medium": 300}[scale],
        seed=seed,
        name="EN",
    )


def _eu_web(scale: str, seed: int) -> Graph:
    n = {"tiny": 1000, "small": 7000, "medium": 18000}[scale]
    return web_host_graph(
        n,
        mean_out_degree=12.0,
        host_mean_size={"tiny": 45, "small": 120, "medium": 320}[scale],
        seed=seed,
        name="EU",
    )


def _orkut(scale: str, seed: int) -> Graph:
    n = {"tiny": 700, "small": 4000, "medium": 12000}[scale]
    m = {"tiny": 8, "small": 18, "medium": 20}[scale]
    return powerlaw_cluster_graph(
        n,
        m,
        triangle_prob=0.35,
        community_mean_size={"tiny": 35, "small": 60, "medium": 150}[scale],
        seed=seed,
        name="OR",
    )


_SPECS: Dict[str, DatasetSpec] = {
    "HW": DatasetSpec("HW", "Hollywood-2011", "collaboration", False, _hollywood),
    "DI": DatasetSpec("DI", "Dimacs9-USA", "road", True, _dimacs),
    "EN": DatasetSpec("EN", "Enwiki-2021", "wiki", True, _enwiki),
    "EU": DatasetSpec("EU", "Eu-2015-tpd", "web", True, _eu_web),
    "OR": DatasetSpec("OR", "Orkut", "social", False, _orkut),
}

_CACHE: Dict[Tuple[str, str, int], Graph] = {}


def dataset_specs() -> Dict[str, DatasetSpec]:
    """All dataset specifications keyed by their two-letter code."""
    return dict(_SPECS)


def load_dataset(key: str, scale: str = "small", seed: int = 0) -> Graph:
    """Generate (or fetch from cache) one of the five stand-in datasets."""
    key = key.upper()
    if key not in _SPECS:
        raise KeyError(
            f"unknown dataset {key!r}; available: {sorted(_SPECS)}"
        )
    cache_key = (key, scale, seed)
    if cache_key not in _CACHE:
        _CACHE[cache_key] = _SPECS[key].generate(scale, seed)
    return _CACHE[cache_key]
