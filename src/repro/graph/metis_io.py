"""METIS graph-format IO.

The METIS format is the de-facto interchange format of the partitioning
community (KaHIP, KaFFPa, mt-metis and the original METIS all read it),
so supporting it lets users partition their existing datasets with this
library — and partition our stand-ins with external tools for
comparison.

Format: first line ``n m [fmt]``; line ``i+1`` lists the (1-indexed)
neighbours of vertex ``i``. Only the unweighted variant (fmt 0/absent)
is supported.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from .csr import Graph

__all__ = ["read_metis_graph", "write_metis_graph"]

PathLike = Union[str, "os.PathLike[str]"]


def write_metis_graph(graph: Graph, path: PathLike) -> None:
    """Write the graph's symmetric adjacency in METIS format."""
    indptr, indices = graph.symmetric_csr()
    num_edges = graph.undirected_edges().shape[0]
    with open(path, "w") as handle:
        handle.write(f"{graph.num_vertices} {num_edges}\n")
        for v in range(graph.num_vertices):
            nbrs = indices[indptr[v] : indptr[v + 1]]
            handle.write(" ".join(str(u + 1) for u in nbrs) + "\n")


def read_metis_graph(path: PathLike, name: str = "") -> Graph:
    """Read an unweighted METIS graph file."""
    with open(path) as handle:
        header = handle.readline().split()
        if len(header) < 2:
            raise ValueError(f"{path}: malformed METIS header")
        if len(header) >= 3 and header[2] not in ("0", "00", "000"):
            raise ValueError(
                f"{path}: weighted METIS graphs (fmt={header[2]}) are "
                "not supported"
            )
        num_vertices = int(header[0])
        declared_edges = int(header[1])
        sources = []
        targets = []
        vertex = 0
        for line in handle:
            line = line.strip()
            if line.startswith("%"):
                continue  # comment lines do not count as vertices
            if vertex >= num_vertices:
                if line:
                    raise ValueError(f"{path}: more lines than vertices")
                continue
            for field in line.split():
                u = int(field) - 1
                if not 0 <= u < num_vertices:
                    raise ValueError(
                        f"{path}: neighbour {field} out of range"
                    )
                if u > vertex:  # each undirected edge once
                    sources.append(vertex)
                    targets.append(u)
            vertex += 1
    if vertex != num_vertices:
        raise ValueError(
            f"{path}: header declares {num_vertices} vertices but "
            f"{vertex} adjacency lines found"
        )
    edges = (
        np.stack(
            [
                np.asarray(sources, dtype=np.int64),
                np.asarray(targets, dtype=np.int64),
            ],
            axis=1,
        )
        if sources
        else np.zeros((0, 2), dtype=np.int64)
    )
    graph = Graph(num_vertices, edges, directed=False, name=name)
    if graph.num_edges != declared_edges:
        raise ValueError(
            f"{path}: header declares {declared_edges} edges but "
            f"{graph.num_edges} were read"
        )
    return graph
