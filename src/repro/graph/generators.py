"""Synthetic graph generators standing in for the paper's datasets.

The paper evaluates on five real graphs from different categories (Table 1):
collaboration (Hollywood-2011), road (Dimacs9-USA), wiki (Enwiki-2021), web
(Eu-2015-tpd) and social (Orkut). Those datasets (58M-234M edges) are not
available offline, so each category is replaced by a generator that
reproduces its defining structural properties at a configurable, much
smaller scale:

====================  ======================================================
category              generator and preserved properties
====================  ======================================================
social                communities of Holme-Kim power-law cluster graphs
                      plus degree-preferential inter-community edges:
                      heavy-tailed degrees, high clustering, and the strong
                      community structure partitioners exploit on Orkut.
collaboration         affiliation (actor-movie clique) graph with genre
                      locality: overlapping cliques, very high average
                      degree, like Hollywood.
web                   host model: dense intra-host preferential linking,
                      sparse hub-directed inter-host links — the locality
                      that makes web graphs highly partitionable.
wiki                  topic communities with preferential attachment and a
                      global hub tail, like a wiki link graph.
road                  perturbed 2D lattice: near-planar, tiny constant
                      degree, enormous diameter, like a road network.
====================  ======================================================

Real-world graphs in all these categories are strongly clusterable — that
is precisely what separates in-memory partitioners from streaming ones in
the paper — so every non-road generator plants an explicit community
structure and then adds a controlled fraction of global edges.

All generators are deterministic given ``seed``.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from .csr import Graph

__all__ = [
    "rmat_graph",
    "rmat_edge_chunks",
    "powerlaw_cluster_graph",
    "affiliation_graph",
    "road_network_graph",
    "preferential_attachment_graph",
    "web_host_graph",
]

#: Rows drawn per internal R-MAT generation round. Fixed (not tied to
#: any store chunk size) so a given ``(scale, num_edges, seed)`` always
#: produces the same edge stream however the consumer re-chunks it.
_RMAT_BLOCK = 1 << 16


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _truncated_zipf(
    rng: np.random.Generator, size: int, exponent: float, lo: int, hi: int
) -> np.ndarray:
    """Sample ``size`` integers in ``[lo, hi]`` with a power-law pmf."""
    values = np.arange(lo, hi + 1, dtype=np.float64)
    pmf = values**-exponent
    pmf /= pmf.sum()
    return rng.choice(
        np.arange(lo, hi + 1, dtype=np.int64), size=size, p=pmf
    )


def _community_sizes(
    rng: np.random.Generator,
    num_vertices: int,
    mean_size: int,
    exponent: float = 1.6,
) -> List[int]:
    """Heavy-tailed community sizes covering exactly ``num_vertices``."""
    hi = max(4 * mean_size, 8)
    sizes: List[int] = []
    remaining = num_vertices
    while remaining > 0:
        size = int(
            _truncated_zipf(rng, 1, exponent, lo=max(mean_size // 4, 3), hi=hi)[0]
        )
        size = min(size, remaining)
        sizes.append(size)
        remaining -= size
    if sizes[-1] < 3 and len(sizes) > 1:
        sizes[-2] += sizes[-1]
        sizes.pop()
    return sizes


def _rewire_global(
    edges: np.ndarray,
    num_vertices: int,
    fraction: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Rewire a fraction of edges to global degree-preferential targets.

    This adds the long-range links that keep the graph connected and the
    degree tail heavy without destroying the planted communities.
    """
    if fraction <= 0 or edges.shape[0] == 0:
        return edges
    degrees = np.bincount(edges.ravel(), minlength=num_vertices).astype(
        np.float64
    )
    weights = degrees + 1.0
    weights /= weights.sum()
    chosen = rng.random(edges.shape[0]) < fraction
    idx = np.flatnonzero(chosen)
    targets = rng.choice(num_vertices, size=idx.size, p=weights)
    rewired = edges.copy()
    rewired[idx, 1] = targets
    keep = rewired[:, 0] != rewired[:, 1]
    return rewired[keep]


def _holme_kim_edges(
    num_vertices: int,
    edges_per_vertex: int,
    triangle_prob: float,
    rng: np.random.Generator,
    offset: int = 0,
) -> List[tuple]:
    """Holme-Kim edge list over ``offset .. offset+num_vertices-1``."""
    m = min(edges_per_vertex, max(num_vertices - 1, 1))
    out: List[tuple] = []
    repeated: List[int] = list(range(m))
    adjacency: List[set] = [set() for _ in range(num_vertices)]
    for i in range(m):  # seed clique over the first m vertices
        for j in range(i + 1, m):
            out.append((offset + i, offset + j))
            adjacency[i].add(j)
            adjacency[j].add(i)
    for new in range(m, num_vertices):
        chosen: set = set()
        target = int(repeated[rng.integers(len(repeated))])
        while len(chosen) < m:
            if target not in chosen and target != new:
                chosen.add(target)
                out.append((offset + new, offset + target))
                adjacency[new].add(target)
                adjacency[target].add(new)
            if len(chosen) == m:
                break
            if rng.random() < triangle_prob and adjacency[target]:
                candidates = adjacency[target] - chosen - {new}
                if candidates:
                    target = int(
                        rng.choice(np.fromiter(candidates, dtype=np.int64))
                    )
                    continue
            target = int(repeated[rng.integers(len(repeated))])
        repeated.extend(chosen)
        repeated.extend([new] * m)
    return out


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------
def _rmat_block(
    rng: np.random.Generator,
    rows: int,
    scale: int,
    a: float,
    b: float,
    c: float,
    directed: bool,
) -> np.ndarray:
    """Draw one ``(rows, 2)`` block of raw R-MAT edges.

    Per-level quadrant recursion over the whole block at once; self-loops
    are remapped to the next vertex, and undirected rows are canonicalised
    to ``lo <= hi``.
    """
    num_vertices = 1 << scale
    src = np.zeros(rows, dtype=np.int64)
    dst = np.zeros(rows, dtype=np.int64)
    for level in range(scale):
        r = rng.random(rows)
        right = (r >= a + c) | ((r >= a) & (r < a + b))
        down = r >= a + b
        bit = np.int64(1 << (scale - level - 1))
        src += down * bit
        dst += right * bit
    loops = src == dst
    dst[loops] = (dst[loops] + 1) % num_vertices
    if not directed:
        lo = np.minimum(src, dst)
        hi = np.maximum(src, dst)
        src, dst = lo, hi
    return np.stack([src, dst], axis=1)


def rmat_edge_chunks(
    scale: int,
    num_edges: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    directed: bool = True,
    distinct: bool = False,
) -> Iterator[np.ndarray]:
    """Stream R-MAT edges as numpy blocks without building the full list.

    Yields ``(b, 2)`` int64 blocks totalling exactly ``num_edges`` rows.
    With ``distinct=False`` (the default, Graph500 style) the stream is a
    multigraph — duplicates are kept — and peak memory is bounded by the
    internal generation block, independent of ``num_edges``; this is the
    mode the out-of-core pipeline spools from. With ``distinct=True``
    generation loops until ``num_edges`` *distinct* edges have been
    emitted (first occurrence in stream order wins); the duplicate filter
    keeps a packed-key set of everything emitted, so memory is O(num_edges)
    — it exists for exact graph construction, not for out-of-core use.

    The stream is deterministic in ``(scale, num_edges, seed, distinct)``
    and does not depend on how the consumer re-chunks it.
    """
    d = 1.0 - a - b - c
    if d < 0:
        raise ValueError("quadrant probabilities must sum to at most 1")
    if scale <= 0 or num_edges <= 0:
        raise ValueError("scale and num_edges must be positive")
    if distinct and 2 * scale > 62:
        raise ValueError("distinct mode supports scale <= 31")
    rng = np.random.default_rng(seed)
    if not distinct:
        remaining = num_edges
        while remaining > 0:
            rows = min(_RMAT_BLOCK, remaining)
            yield _rmat_block(rng, rows, scale, a, b, c, directed)
            remaining -= rows
        return
    # Distinct mode: filter each raw block against everything already
    # emitted (sorted packed keys), keeping first occurrences in stream
    # order, until the target count is reached.
    seen = np.empty(0, dtype=np.int64)
    emitted = 0
    dry_rounds = 0
    while emitted < num_edges:
        block = _rmat_block(rng, _RMAT_BLOCK, scale, a, b, c, directed)
        keys = (block[:, 0] << np.int64(scale)) | block[:, 1]
        if seen.size:
            pos = np.minimum(np.searchsorted(seen, keys), seen.size - 1)
            dup = seen[pos] == keys
        else:
            dup = np.zeros(keys.size, dtype=bool)
        uniq_keys, first = np.unique(keys, return_index=True)
        is_first = np.zeros(keys.size, dtype=bool)
        is_first[first] = True
        fresh = np.flatnonzero(is_first & ~dup)
        if fresh.size == 0:
            dry_rounds += 1
            if dry_rounds > 64:
                raise ValueError(
                    f"R-MAT(scale={scale}) saturated at {emitted} distinct "
                    f"edges; cannot reach num_edges={num_edges}"
                )
            continue
        dry_rounds = 0
        fresh = fresh[: num_edges - emitted]
        seen = np.union1d(seen, keys[fresh])
        emitted += fresh.size
        yield block[fresh]


def rmat_graph(
    scale: int,
    num_edges: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    directed: bool = True,
    name: str = "rmat",
) -> Graph:
    """Recursive-matrix (R-MAT) graph with ``2**scale`` vertices.

    Kept as a general-purpose skewed generator (Graph500 defaults); the EU
    stand-in uses :func:`web_host_graph` instead, which adds the host
    locality of real crawls. Built from :func:`rmat_edge_chunks` in
    ``distinct`` mode, which loops generation until ``num_edges`` distinct
    edges exist (rather than hoping a fixed oversample buffer suffices),
    so large or sparse configurations cannot come up short.
    """
    chunks = list(
        rmat_edge_chunks(
            scale, num_edges, a=a, b=b, c=c, seed=seed,
            directed=directed, distinct=True,
        )
    )
    edges = np.concatenate(chunks, axis=0)
    return Graph(1 << scale, edges, directed=directed, name=name)


def powerlaw_cluster_graph(
    num_vertices: int,
    edges_per_vertex: int,
    triangle_prob: float = 0.5,
    community_mean_size: int = 150,
    inter_fraction: float = 0.12,
    seed: int = 0,
    name: str = "powerlaw-cluster",
) -> Graph:
    """Social-network stand-in (Orkut-like).

    Communities with heavy-tailed sizes, each an independent Holme-Kim
    power-law cluster graph; ``inter_fraction`` of the edges are rewired to
    global degree-preferential targets.
    """
    if num_vertices <= edges_per_vertex:
        raise ValueError("num_vertices must exceed edges_per_vertex")
    if not 0.0 <= triangle_prob <= 1.0:
        raise ValueError("triangle_prob must be in [0, 1]")
    rng = np.random.default_rng(seed)
    sizes = _community_sizes(rng, num_vertices, community_mean_size)
    pairs: List[tuple] = []
    offset = 0
    for size in sizes:
        pairs.extend(
            _holme_kim_edges(
                size, edges_per_vertex, triangle_prob, rng, offset=offset
            )
        )
        offset += size
    edges = np.asarray(pairs, dtype=np.int64)
    edges = _rewire_global(edges, num_vertices, inter_fraction, rng)
    return Graph(num_vertices, edges, directed=False, name=name)


def affiliation_graph(
    num_actors: int,
    num_groups: int,
    mean_group_size: float = 8.0,
    group_size_exponent: float = 2.3,
    memberships_per_actor: float = 2.5,
    genre_mean_size: int = 400,
    global_star_fraction: float = 0.05,
    seed: int = 0,
    name: str = "affiliation",
) -> Graph:
    """Collaboration-graph stand-in (Hollywood-like).

    Every "movie" (group) becomes a clique over its cast. Movies belong to
    genres (communities): casts are sampled Zipf-preferentially *within*
    their genre's actors, with a small share of global stars crossing
    genres.
    """
    if num_actors <= 1 or num_groups <= 0:
        raise ValueError("need at least 2 actors and 1 group")
    rng = np.random.default_rng(seed)
    genre_sizes = _community_sizes(rng, num_actors, genre_mean_size)
    genre_bounds = np.concatenate([[0], np.cumsum(genre_sizes)])
    num_genres = len(genre_sizes)

    max_size = max(int(mean_group_size * 6), 4)
    sizes = _truncated_zipf(
        rng, num_groups, group_size_exponent, lo=2, hi=max_size
    )
    sizes = np.maximum(
        2, (sizes * (mean_group_size / max(sizes.mean(), 1e-9))).astype(int)
    )
    budget = int(memberships_per_actor * num_actors)
    if int(sizes.sum()) > budget:
        keep = np.searchsorted(np.cumsum(sizes), budget) + 1
        sizes = sizes[:keep]

    src_parts: List[np.ndarray] = []
    dst_parts: List[np.ndarray] = []
    # Per-genre Zipf popularity (big stars first within each genre).
    genre_weights = []
    for gsize in genre_sizes:
        w = 1.0 / np.arange(1, gsize + 1) ** 0.8
        genre_weights.append(w / w.sum())
    global_weights = 1.0 / np.arange(1, num_actors + 1) ** 0.8
    global_weights /= global_weights.sum()

    movie_genres = rng.integers(0, num_genres, size=sizes.shape[0])
    for size, genre in zip(sizes, movie_genres):
        lo = int(genre_bounds[genre])
        local = rng.choice(
            genre_sizes[genre], size=size, p=genre_weights[genre]
        ) + lo
        stars = rng.random(size) < global_star_fraction
        if stars.any():
            local[stars] = rng.choice(
                num_actors, size=int(stars.sum()), p=global_weights
            )
        cast = np.unique(local)
        if cast.size < 2:
            continue
        iu, ju = np.triu_indices(cast.size, k=1)
        src_parts.append(cast[iu])
        dst_parts.append(cast[ju])
    if not src_parts:
        raise ValueError("generated no edges; increase sizes")
    edges = np.stack(
        [np.concatenate(src_parts), np.concatenate(dst_parts)], axis=1
    )
    return Graph(num_actors, edges, directed=False, name=name)


def road_network_graph(
    width: int,
    height: int,
    rewire_prob: float = 0.02,
    drop_prob: float = 0.05,
    seed: int = 0,
    name: str = "road",
) -> Graph:
    """Road-like network: 2D lattice with sparse perturbations.

    Average degree stays near 2-3 and the diameter near ``width + height``,
    matching the structural profile of Dimacs9-USA. Directed (both arc
    directions are usually present, as in real road data).
    """
    if width < 2 or height < 2:
        raise ValueError("grid must be at least 2x2")
    rng = np.random.default_rng(seed)
    ids = np.arange(width * height, dtype=np.int64).reshape(height, width)
    horizontal = np.stack([ids[:, :-1].ravel(), ids[:, 1:].ravel()], axis=1)
    vertical = np.stack([ids[:-1, :].ravel(), ids[1:, :].ravel()], axis=1)
    base = np.concatenate([horizontal, vertical], axis=0)
    keep = rng.random(base.shape[0]) >= drop_prob
    base = base[keep]
    num_shortcuts = int(rewire_prob * base.shape[0])
    shortcuts = rng.integers(
        0, width * height, size=(num_shortcuts, 2), dtype=np.int64
    )
    shortcuts = shortcuts[shortcuts[:, 0] != shortcuts[:, 1]]
    one_way = np.concatenate([base, shortcuts], axis=0)
    reverse_mask = rng.random(one_way.shape[0]) < 0.9
    arcs = np.concatenate([one_way, one_way[reverse_mask][:, ::-1]], axis=0)
    return Graph(width * height, arcs, directed=True, name=name)


def preferential_attachment_graph(
    num_vertices: int,
    mean_out_degree: float = 12.0,
    out_degree_exponent: float = 2.1,
    topic_mean_size: int = 300,
    intra_fraction: float = 0.8,
    seed: int = 0,
    name: str = "pref-attach",
) -> Graph:
    """Wiki-link stand-in (Enwiki-like).

    Articles belong to topics (communities); out-links are heavy-tailed in
    count and point preferentially to popular pages, ``intra_fraction`` of
    them within the article's own topic.
    """
    if num_vertices < 3:
        raise ValueError("need at least 3 vertices")
    rng = np.random.default_rng(seed)
    topic_sizes = _community_sizes(rng, num_vertices, topic_mean_size)
    topic_bounds = np.concatenate([[0], np.cumsum(topic_sizes)])
    topic_of = np.repeat(
        np.arange(len(topic_sizes)), topic_sizes
    ).astype(np.int64)

    hi = max(int(mean_out_degree * 8), 4)
    out_deg = _truncated_zipf(
        rng, num_vertices, out_degree_exponent, lo=1, hi=hi
    )
    out_deg = np.maximum(
        1,
        (out_deg * (mean_out_degree / max(out_deg.mean(), 1e-9))).astype(int),
    )
    global_weights = 1.0 / np.arange(1, num_vertices + 1) ** 0.9
    perm = rng.permutation(num_vertices)
    global_weights = global_weights[np.argsort(perm)]
    global_weights /= global_weights.sum()

    sources = np.repeat(np.arange(num_vertices, dtype=np.int64), out_deg)
    intra = rng.random(sources.shape[0]) < intra_fraction
    targets = np.empty(sources.shape[0], dtype=np.int64)
    # Global links: popularity-preferential over all pages.
    n_global = int((~intra).sum())
    if n_global:
        targets[~intra] = rng.choice(
            num_vertices, size=n_global, p=global_weights
        )
    # Topic-internal links: Zipf within the source's topic.
    intra_idx = np.flatnonzero(intra)
    src_topics = topic_of[sources[intra_idx]]
    for topic in np.unique(src_topics):
        mask = intra_idx[src_topics == topic]
        lo = int(topic_bounds[topic])
        size = int(topic_sizes[topic])
        w = 1.0 / np.arange(1, size + 1) ** 0.9
        w /= w.sum()
        targets[mask] = rng.choice(size, size=mask.size, p=w) + lo
    keep = sources != targets
    edges = np.stack([sources[keep], targets[keep]], axis=1)
    return Graph(num_vertices, edges, directed=True, name=name)


def web_host_graph(
    num_vertices: int,
    mean_out_degree: float = 12.0,
    host_mean_size: int = 250,
    intra_fraction: float = 0.85,
    seed: int = 0,
    name: str = "web-host",
) -> Graph:
    """Web-crawl stand-in (Eu-2015-like host graph).

    Pages live on hosts (communities with heavy-tailed sizes). Most links
    are intra-host and hub-preferential (index pages); the rest point to
    popular pages anywhere — the strong locality of real crawls, which is
    why web graphs partition so well.
    """
    return preferential_attachment_graph(
        num_vertices,
        mean_out_degree=mean_out_degree,
        out_degree_exponent=1.9,
        topic_mean_size=host_mean_size,
        intra_fraction=intra_fraction,
        seed=seed,
        name=name,
    )
