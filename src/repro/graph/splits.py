"""Train/validation/test vertex splits.

The paper randomly splits every graph into 10% training, 10% validation and
80% test vertices; DistDGL's mini-batch sampling seeds from the training
vertices of each partition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import Graph

__all__ = ["VertexSplit", "random_split"]


@dataclass(frozen=True)
class VertexSplit:
    """Disjoint train/valid/test vertex id arrays covering all vertices."""

    train: np.ndarray
    valid: np.ndarray
    test: np.ndarray

    @property
    def num_vertices(self) -> int:
        """Vertices covered by train, valid and test together."""
        return len(self.train) + len(self.valid) + len(self.test)

    def train_mask(self, num_vertices: int) -> np.ndarray:
        """Boolean mask over all vertices: True on the training set."""
        mask = np.zeros(num_vertices, dtype=bool)
        mask[self.train] = True
        return mask

    def role_of(self, num_vertices: int) -> np.ndarray:
        """Per-vertex role codes: 0 = train, 1 = valid, 2 = test."""
        roles = np.full(num_vertices, 2, dtype=np.int8)
        roles[self.valid] = 1
        roles[self.train] = 0
        return roles


def random_split(
    graph: Graph,
    train_fraction: float = 0.1,
    valid_fraction: float = 0.1,
    seed: int = 0,
) -> VertexSplit:
    """Uniform random split, 10/10/80 by default as in the paper."""
    if train_fraction < 0 or valid_fraction < 0:
        raise ValueError("fractions must be non-negative")
    if train_fraction + valid_fraction > 1.0:
        raise ValueError("train + valid fraction exceeds 1")
    rng = np.random.default_rng(seed)
    order = rng.permutation(graph.num_vertices)
    num_train = int(round(train_fraction * graph.num_vertices))
    num_valid = int(round(valid_fraction * graph.num_vertices))
    return VertexSplit(
        train=np.sort(order[:num_train]),
        valid=np.sort(order[num_train : num_train + num_valid]),
        test=np.sort(order[num_train + num_valid :]),
    )
