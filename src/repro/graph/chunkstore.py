"""On-disk spool of fixed-size edge chunks.

The chunk store is the substrate of the out-of-core partitioning
pipeline (generate -> chunk -> partition -> shuffle, modeled on DGL's
chunked-graph dispatch): an edge stream is written as a directory of
``chunk-00000.npy`` files — each a ``(chunk_size, 2)`` int64 block,
the last one possibly shorter — plus a ``manifest.json`` carrying the
stream's dimensions and a content fingerprint. Readers stream the
chunks back one at a time, so neither side ever materialises the full
``(m, 2)`` edge array; peak memory is bounded by ``chunk_size``, not
by the number of edges.

The fingerprint hashes the concatenated raw bytes of the stream in
write order, so it is invariant to how the stream was split into
``append`` calls *and* to the chunk size — two spools of the same
edge sequence always agree, which makes it usable as a content cache
key across chunkings.

All chunk I/O is instrumented through the observability catalog
(``chunkstore.*`` metrics, labelled with the store's ``role``), so
the dashboard can show the chunk-phase mix of an out-of-core run.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass
from typing import Iterable, Iterator, Optional

import numpy as np

from ..obs import api as obs

__all__ = [
    "DEFAULT_STORE_CHUNK",
    "ChunkManifest",
    "EdgeChunkWriter",
    "EdgeChunkReader",
    "spool_edges",
    "spool_graph",
]

#: Default edges per on-disk chunk (4 MiB of int64 pairs).
DEFAULT_STORE_CHUNK = 1 << 18

_MANIFEST = "manifest.json"
_CHUNK_FMT = "chunk-{:05d}.npy"


@dataclass
class ChunkManifest:
    """The metadata record stored next to a spool's chunks."""

    num_vertices: int
    num_edges: int
    chunk_size: int
    num_chunks: int
    directed: bool
    fingerprint: str
    dtype: str = "int64"
    version: int = 1

    def save(self, directory: str) -> None:
        """Write the manifest JSON into ``directory`` (atomic replace)."""
        path = os.path.join(directory, _MANIFEST)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(asdict(self), handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)

    @classmethod
    def load(cls, directory: str) -> "ChunkManifest":
        """Read the manifest JSON from ``directory``."""
        path = os.path.join(directory, _MANIFEST)
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
        return cls(**doc)


class EdgeChunkWriter:
    """Append-only writer of an edge stream into fixed-size npy chunks.

    Parameters
    ----------
    directory:
        Target directory; created if missing. Must not already hold a
        spool (a fresh writer refuses to overwrite an existing
        manifest).
    chunk_size:
        Edges per chunk file; the last chunk may be shorter.
    num_vertices:
        Declared vertex-id space. When omitted it is inferred as
        ``max endpoint + 1`` over the stream.
    directed:
        Whether the stream's rows are directed arcs (recorded in the
        manifest; the store itself is agnostic).
    role:
        Label for the ``chunkstore.*`` metrics (``"spool"`` for
        primary stores, ``"bucket"`` for shuffle outputs).

    Use as a context manager or call :meth:`close` to flush the tail
    chunk and write the manifest.
    """

    def __init__(
        self,
        directory: str,
        chunk_size: int = DEFAULT_STORE_CHUNK,
        num_vertices: Optional[int] = None,
        directed: bool = False,
        role: str = "spool",
    ) -> None:
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        os.makedirs(directory, exist_ok=True)
        if os.path.exists(os.path.join(directory, _MANIFEST)):
            raise FileExistsError(
                f"{directory} already holds a chunk store"
            )
        self.directory = directory
        self.chunk_size = int(chunk_size)
        self.role = role
        self._declared_vertices = num_vertices
        self._directed = bool(directed)
        self._buffer = np.empty((chunk_size, 2), dtype=np.int64)
        self._filled = 0
        self._num_chunks = 0
        self._num_edges = 0
        self._max_vertex = -1
        self._digest = hashlib.sha1()
        self._closed = False

    # ------------------------------------------------------------------
    def append(self, edges: np.ndarray) -> None:
        """Append an ``(b, 2)`` block of edges to the stream."""
        if self._closed:
            raise RuntimeError("writer is closed")
        edges = np.ascontiguousarray(edges, dtype=np.int64)
        if edges.size == 0:
            return
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError("edges must be an (m, 2) array")
        if edges.min() < 0:
            raise ValueError("vertex ids must be non-negative")
        self._max_vertex = max(self._max_vertex, int(edges.max()))
        self._num_edges += edges.shape[0]
        offset = 0
        while offset < edges.shape[0]:
            take = min(
                self.chunk_size - self._filled, edges.shape[0] - offset
            )
            self._buffer[self._filled : self._filled + take] = edges[
                offset : offset + take
            ]
            self._filled += take
            offset += take
            if self._filled == self.chunk_size:
                self._flush_chunk()

    def _flush_chunk(self) -> None:
        if self._filled == 0:
            return
        chunk = self._buffer[: self._filled]
        # Hash the raw stream bytes: chunk boundaries do not matter,
        # only the edge sequence, so fingerprints are chunking-invariant.
        self._digest.update(chunk.tobytes())
        path = os.path.join(
            self.directory, _CHUNK_FMT.format(self._num_chunks)
        )
        np.save(path, chunk)
        if obs.enabled():
            obs.count("chunkstore.chunks_written", role=self.role)
            obs.count(
                "chunkstore.bytes_written", chunk.nbytes, role=self.role
            )
        self._num_chunks += 1
        self._filled = 0

    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Edges appended so far (flushed or buffered)."""
        return self._num_edges

    def close(self) -> ChunkManifest:
        """Flush the tail chunk, write the manifest, return it."""
        if self._closed:
            return self._manifest
        self._flush_chunk()
        num_vertices = self._declared_vertices
        if num_vertices is None:
            num_vertices = self._max_vertex + 1 if self._max_vertex >= 0 else 1
        elif self._max_vertex >= num_vertices:
            raise ValueError(
                f"edge endpoint {self._max_vertex} out of range for "
                f"declared num_vertices={num_vertices}"
            )
        self._manifest = ChunkManifest(
            num_vertices=int(num_vertices),
            num_edges=self._num_edges,
            chunk_size=self.chunk_size,
            num_chunks=self._num_chunks,
            directed=self._directed,
            fingerprint=self._digest.hexdigest(),
        )
        self._manifest.save(self.directory)
        self._buffer = np.empty((0, 2), dtype=np.int64)  # release
        self._closed = True
        return self._manifest

    def __enter__(self) -> "EdgeChunkWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()


class EdgeChunkReader:
    """Streaming reader over a spooled edge-chunk directory."""

    def __init__(self, directory: str, role: str = "spool") -> None:
        self.directory = directory
        self.role = role
        self.manifest = ChunkManifest.load(directory)

    # Mirrors the metadata the partitioners need from a Graph.
    @property
    def num_vertices(self) -> int:
        """Declared vertex-id space of the stream."""
        return self.manifest.num_vertices

    @property
    def num_edges(self) -> int:
        """Total edges across all chunks."""
        return self.manifest.num_edges

    @property
    def directed(self) -> bool:
        """Whether the stream's rows are directed arcs."""
        return self.manifest.directed

    @property
    def fingerprint(self) -> str:
        """Chunking-invariant content hash of the edge sequence."""
        return self.manifest.fingerprint

    def _chunk_path(self, index: int) -> str:
        return os.path.join(self.directory, _CHUNK_FMT.format(index))

    def iter_chunks(self) -> Iterator[np.ndarray]:
        """Yield each chunk as a fresh ``(b, 2)`` int64 array, in order."""
        instrumented = obs.enabled()
        for index in range(self.manifest.num_chunks):
            chunk = np.load(self._chunk_path(index))
            if instrumented:
                obs.count("chunkstore.chunks_read", role=self.role)
                obs.count(
                    "chunkstore.bytes_read", chunk.nbytes, role=self.role
                )
            yield chunk

    def read_all(self) -> np.ndarray:
        """Concatenate every chunk (small stores / tests only)."""
        chunks = list(self.iter_chunks())
        if not chunks:
            return np.zeros((0, 2), dtype=np.int64)
        return np.concatenate(chunks, axis=0)

    def verify(self) -> bool:
        """Re-hash the stream and compare against the manifest."""
        digest = hashlib.sha1()
        for chunk in self.iter_chunks():
            digest.update(np.ascontiguousarray(chunk).tobytes())
        return digest.hexdigest() == self.manifest.fingerprint

    def __len__(self) -> int:
        return self.manifest.num_chunks

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EdgeChunkReader({self.directory!r}, "
            f"|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"chunks={self.manifest.num_chunks})"
        )


def spool_edges(
    blocks: Iterable[np.ndarray],
    directory: str,
    chunk_size: int = DEFAULT_STORE_CHUNK,
    num_vertices: Optional[int] = None,
    directed: bool = False,
) -> EdgeChunkReader:
    """Spool an iterable of edge blocks into ``directory`` and open it."""
    with EdgeChunkWriter(
        directory,
        chunk_size=chunk_size,
        num_vertices=num_vertices,
        directed=directed,
    ) as writer:
        for block in blocks:
            writer.append(block)
    return EdgeChunkReader(directory)


def spool_graph(
    graph,
    directory: str,
    chunk_size: int = DEFAULT_STORE_CHUNK,
    undirected_view: bool = True,
) -> EdgeChunkReader:
    """Spool an in-memory :class:`~repro.graph.csr.Graph` into a store.

    With ``undirected_view`` (the default) the spooled stream is
    ``graph.undirected_edges()`` — the exact stream the in-memory edge
    partitioners consume — so out-of-core runs over the store are
    comparable (bit-identical, for the streaming algorithms) to
    ``partition(graph, ...)``. Otherwise the stored arc rows
    (``graph.edges``) are spooled as-is.
    """
    edges = graph.undirected_edges() if undirected_view else graph.edges
    directed = False if undirected_view else graph.directed
    with EdgeChunkWriter(
        directory,
        chunk_size=chunk_size,
        num_vertices=graph.num_vertices,
        directed=directed,
    ) as writer:
        for start in range(0, edges.shape[0], chunk_size):
            writer.append(edges[start : start + chunk_size])
    return EdgeChunkReader(directory)
