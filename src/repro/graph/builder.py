"""Incremental construction of :class:`~repro.graph.csr.Graph` objects."""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from ..obs import api as obs
from .csr import Graph

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Accumulates edges and produces an immutable :class:`Graph`.

    Duplicate edges and (for undirected graphs) mirrored duplicates are
    removed at :meth:`build` time. Self loops are allowed but most
    generators avoid them.

    For edge streams too large to finalize in memory, the pending edges
    can instead be spilled into an on-disk chunk store with
    :meth:`spill_to` and fed to the out-of-core partitioning path.
    """

    def __init__(self, directed: bool = False, name: str = "") -> None:
        self._directed = directed
        self._name = name
        self._sources: list[int] = []
        self._targets: list[int] = []
        self._chunks: list[np.ndarray] = []
        self._max_vertex = -1

    def add_edge(self, u: int, v: int) -> None:
        """Queue one edge ``u -> v``."""
        if u < 0 or v < 0:
            raise ValueError("vertex ids must be non-negative")
        self._sources.append(u)
        self._targets.append(v)
        self._max_vertex = max(self._max_vertex, u, v)

    def add_edges(self, pairs: Iterable[Tuple[int, int]]) -> None:
        """Queue an iterable of ``(u, v)`` pairs.

        Array-like input — a numpy array, or any sequence convertible to
        an ``(m, 2)`` integer array (e.g. a list of tuples) — is bulk
        delegated to :meth:`add_edge_array` instead of looping a python
        ``add_edge`` call per pair.
        """
        if isinstance(pairs, np.ndarray):
            self.add_edge_array(pairs)
            return
        if isinstance(pairs, (list, tuple)) and pairs:
            try:
                array = np.asarray(pairs, dtype=np.int64)
            except (TypeError, ValueError, OverflowError):
                array = None
            if array is not None and array.ndim == 2 and array.shape[1] == 2:
                self.add_edge_array(array)
                return
        for u, v in pairs:
            self.add_edge(int(u), int(v))

    def add_edge_array(self, edges: np.ndarray) -> None:
        """Bulk-add an ``(m, 2)`` array of edges."""
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if edges.size == 0:
            return
        if edges.min() < 0:
            raise ValueError("vertex ids must be non-negative")
        self._chunks.append(edges)
        self._max_vertex = max(self._max_vertex, int(edges.max()))

    @property
    def num_pending_edges(self) -> int:
        """Edges queued so far (scalar adds plus bulk chunks)."""
        return len(self._sources) + sum(c.shape[0] for c in self._chunks)

    def _pending_parts(self) -> list[np.ndarray]:
        parts = list(self._chunks)
        if self._sources:
            parts.append(
                np.stack(
                    [
                        np.asarray(self._sources, dtype=np.int64),
                        np.asarray(self._targets, dtype=np.int64),
                    ],
                    axis=1,
                )
            )
        return parts

    def spill_to(self, writer) -> int:
        """Flush all pending edges into an edge-chunk writer and clear them.

        ``writer`` is an :class:`~repro.graph.chunkstore.EdgeChunkWriter`
        (anything with an ``append(block)`` method works). The builder is
        left empty and can keep accumulating — repeated spills append to
        the same stream, which is how a generator loop keeps its peak
        memory bounded while targeting the out-of-core pipeline. Returns
        the number of edges spilled. The caller closes the writer.
        """
        spilled = 0
        for part in self._pending_parts():
            writer.append(part)
            spilled += part.shape[0]
        self._sources.clear()
        self._targets.clear()
        self._chunks.clear()
        if spilled and obs.enabled():
            obs.count("chunkstore.spills")
        return spilled

    def build(self, num_vertices: Optional[int] = None) -> Graph:
        """Finalize the builder into a graph.

        ``num_vertices`` defaults to ``max vertex id + 1``. The builder can
        be reused afterwards; building does not clear accumulated edges.
        """
        parts = self._pending_parts()
        if parts:
            edges = np.concatenate(parts, axis=0)
        else:
            edges = np.zeros((0, 2), dtype=np.int64)
        if num_vertices is None:
            num_vertices = self._max_vertex + 1 if self._max_vertex >= 0 else 1
        return Graph(
            num_vertices, edges, directed=self._directed, name=self._name
        )
