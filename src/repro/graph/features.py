"""Synthetic node-classification tasks for the stand-in graphs.

The study measures systems, not accuracy, but the executable trainers
need a *learnable* task to prove end-to-end correctness. This module
generates the standard planted task the examples and tests use: labels
follow the generators' planted communities (contiguous id blocks), and
features are a noisy encoding of the label with controllable
signal-to-noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import Graph

__all__ = ["ClassificationTask", "planted_community_task"]


@dataclass(frozen=True)
class ClassificationTask:
    """Features + labels for a node-classification problem."""

    features: np.ndarray
    labels: np.ndarray

    @property
    def num_classes(self) -> int:
        """Number of distinct labels."""
        return int(self.labels.max()) + 1

    @property
    def feature_size(self) -> int:
        """Feature dimensionality per vertex."""
        return int(self.features.shape[1])


def planted_community_task(
    graph: Graph,
    num_classes: int = 8,
    feature_size: int = 16,
    signal: float = 1.5,
    noise: float = 0.5,
    label_mode: str = "blocks",
    seed: int = 0,
) -> ClassificationTask:
    """Create a learnable classification task on ``graph``.

    ``label_mode``:

    * ``"blocks"`` — labels are contiguous vertex-id blocks, matching the
      community layout of the synthetic generators (labels correlate with
      graph structure, so neighbour aggregation helps);
    * ``"random"`` — labels are uniform (features carry all the signal).

    Features are ``noise * N(0, 1)`` with ``signal`` added on the label's
    coordinate (wrapped if ``num_classes > feature_size``).
    """
    if num_classes < 2:
        raise ValueError("need at least two classes")
    if feature_size < 1:
        raise ValueError("feature_size must be positive")
    if signal < 0 or noise < 0:
        raise ValueError("signal and noise must be non-negative")
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    if label_mode == "blocks":
        labels = np.arange(n, dtype=np.int64) * num_classes // n
    elif label_mode == "random":
        labels = rng.integers(0, num_classes, size=n)
    else:
        raise ValueError(f"unknown label_mode {label_mode!r}")
    features = rng.normal(0.0, noise, size=(n, feature_size))
    features[np.arange(n), labels % feature_size] += signal
    return ClassificationTask(features=features, labels=labels)
