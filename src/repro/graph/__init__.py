"""Graph substrate: storage, generation, datasets, splits, IO and stats."""

from .builder import GraphBuilder
from .chunkstore import (
    ChunkManifest,
    EdgeChunkReader,
    EdgeChunkWriter,
    spool_edges,
    spool_graph,
)
from .csr import Graph, build_csr
from .datasets import DATASET_KEYS, DatasetSpec, dataset_specs, load_dataset
from .generators import (
    affiliation_graph,
    powerlaw_cluster_graph,
    preferential_attachment_graph,
    rmat_edge_chunks,
    rmat_graph,
    road_network_graph,
    web_host_graph,
)
from .io import read_edge_list, write_edge_list
from .metis_io import read_metis_graph, write_metis_graph
from .features import ClassificationTask, planted_community_task
from .splits import VertexSplit, random_split
from .stats import GraphStats, graph_stats
from .transform import (
    filter_by_degree,
    largest_connected_component,
    relabel_compact,
    symmetrized,
)

__all__ = [
    "Graph",
    "GraphBuilder",
    "build_csr",
    "ChunkManifest",
    "EdgeChunkReader",
    "EdgeChunkWriter",
    "spool_edges",
    "spool_graph",
    "rmat_edge_chunks",
    "DATASET_KEYS",
    "DatasetSpec",
    "dataset_specs",
    "load_dataset",
    "affiliation_graph",
    "powerlaw_cluster_graph",
    "preferential_attachment_graph",
    "rmat_graph",
    "road_network_graph",
    "web_host_graph",
    "read_edge_list",
    "write_edge_list",
    "read_metis_graph",
    "write_metis_graph",
    "VertexSplit",
    "random_split",
    "GraphStats",
    "graph_stats",
    "ClassificationTask",
    "planted_community_task",
    "largest_connected_component",
    "filter_by_degree",
    "relabel_compact",
    "symmetrized",
]
