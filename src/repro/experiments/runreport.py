"""Consolidated run reports for saved sweeps (markdown + JSON).

:func:`build_run_report` folds a list of experiment records — from one
engine or both, with or without fault and obs fields — into a single
summary: sweep coverage, headline speedups over the Random baseline,
fault/recovery accounting, and aggregated telemetry from the records'
``obs_metrics`` summaries. ``scripts/build_run_report.py`` wraps it for
the command line.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .analysis import speedup_summary
from .records import DistDglRecord, DistGnnRecord

__all__ = ["build_run_report"]


def _engine_of(record) -> str:
    return "distgnn" if isinstance(record, DistGnnRecord) else "distdgl"


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _engine_summary(records: List) -> Dict[str, object]:
    summary: Dict[str, object] = {
        "num_records": len(records),
        "mean_epoch_seconds": _mean([r.epoch_seconds for r in records]),
        "mean_network_bytes": _mean([r.network_bytes for r in records]),
        "mean_partitioning_seconds": _mean(
            [r.partitioning_seconds for r in records]
        ),
    }
    oom = sum(1 for r in records if getattr(r, "out_of_memory", False))
    if oom:
        summary["out_of_memory_runs"] = oom
    return summary


def _fault_summary(records: List) -> Optional[Dict[str, object]]:
    faulty = [r for r in records if r.fault_config is not None]
    if not faulty:
        return None
    return {
        "num_fault_records": len(faulty),
        "crashes": sum(r.crashes for r in faulty),
        "slowdowns": sum(r.slowdowns for r in faulty),
        "lost_messages": sum(r.lost_messages for r in faulty),
        "recovery_seconds_total": sum(
            r.recovery_seconds for r in faulty
        ),
        "mean_recovery_fraction": _mean(
            [
                r.recovery_seconds / r.makespan_seconds
                for r in faulty
                if r.makespan_seconds > 0
            ]
        ),
    }


def _comm_summary(records: List) -> Optional[Dict[str, object]]:
    """Communication-reduction section: per-comm-config tradeoff.

    Present only when at least one record carries a ``comm_config``
    (see ``docs/communication.md``); the table mirrors the dashboard's
    tradeoff panel, keyed by the config label.
    """
    from ..obs.analysis import traffic_accuracy_tradeoff

    tradeoff = traffic_accuracy_tradeoff(records)
    if not tradeoff:
        return None
    configs: Dict[str, Dict[str, float]] = {}
    for engine, by_partitioner in tradeoff.items():
        for points in by_partitioner.values():
            for point in points:
                entry = configs.setdefault(
                    point["comm"],
                    {
                        "cells": 0,
                        "wire_bytes": 0.0,
                        "saved_bytes": 0.0,
                        "codec_seconds": 0.0,
                        "accuracy_proxy_error": 0.0,
                        "frontier_cells": 0,
                    },
                )
                entry["cells"] += point["cells"]
                entry["wire_bytes"] += (
                    point["wire_bytes"] * point["cells"]
                )
                entry["saved_bytes"] += (
                    point["saved_bytes"] * point["cells"]
                )
                entry["codec_seconds"] += (
                    point["codec_seconds"] * point["cells"]
                )
                entry["accuracy_proxy_error"] = max(
                    entry["accuracy_proxy_error"],
                    point["accuracy_proxy_error"],
                )
                if point["on_frontier"]:
                    entry["frontier_cells"] += point["cells"]
    for entry in configs.values():
        raw = entry["wire_bytes"] + entry["saved_bytes"]
        entry["saved_fraction"] = (
            entry["saved_bytes"] / raw if raw else 0.0
        )
    return {
        "tradeoff": tradeoff,
        "configs": dict(sorted(configs.items())),
    }


def _obs_summary(records: List) -> Optional[Dict[str, object]]:
    observed = [r for r in records if r.obs_metrics]
    if not observed:
        return None
    phase_seconds: Dict[str, float] = {}
    marks: Dict[str, int] = {}
    bytes_sent = bytes_received = 0.0
    lost = 0
    memory_peaks: Dict[str, float] = {}
    traffic_phase: Dict[str, float] = {}
    cross_traffic = 0.0
    for record in observed:
        metrics = record.obs_metrics
        for phase, seconds in metrics.get("phase_seconds", {}).items():
            phase_seconds[phase] = phase_seconds.get(phase, 0.0) + seconds
        for kind, count in metrics.get("marks", {}).items():
            marks[kind] = marks.get(kind, 0) + count
        bytes_sent += metrics.get("bytes_sent_total", 0.0)
        bytes_received += metrics.get("bytes_received_total", 0.0)
        lost += metrics.get("lost_messages_total", 0)
        for category, peaks in metrics.get(
            "memory_category_peaks", {}
        ).items():
            memory_peaks[category] = max(
                memory_peaks.get(category, 0.0), max(peaks)
            )
        for phase, total in metrics.get(
            "traffic_phase_bytes", {}
        ).items():
            traffic_phase[phase] = (
                traffic_phase.get(phase, 0.0) + float(total)
            )
        matrix = metrics.get("traffic_matrix")
        if matrix:
            cross_traffic += sum(sum(row) for row in matrix)
    summary = {
        "num_observed_records": len(observed),
        "phase_seconds": dict(sorted(phase_seconds.items())),
        "marks": dict(sorted(marks.items())),
        "bytes_sent_total": bytes_sent,
        "bytes_received_total": bytes_received,
        "lost_messages_total": lost,
    }
    if memory_peaks:
        summary["memory_category_peaks"] = dict(
            sorted(memory_peaks.items())
        )
    if traffic_phase:
        summary["traffic_phase_bytes"] = dict(
            sorted(traffic_phase.items())
        )
        summary["traffic_matrix_bytes_total"] = cross_traffic
    return summary


def _analysis_summary(records: List) -> Dict[str, object]:
    """Diagnosis section: per-partitioner phase mix plus findings.

    Delegates to :mod:`repro.obs.analysis` (imported lazily —
    ``experiments.__init__`` loads this module, and the analysis package
    imports experiment loaders, so a top-level import would cycle).
    """
    from ..obs.analysis import (
        build_analysis_report,
        per_partitioner_breakdown,
    )
    from ..obs.analysis.load import RunData

    report = build_analysis_report(RunData(label="report", records=records))
    return {
        "per_partitioner": per_partitioner_breakdown(records),
        "findings": [f.to_dict() for f in report.findings],
        "by_severity": report.severity_counts(),
        "dominant_phase": report.summary.get("dominant_phase"),
    }


def _speedup_rows(records: List) -> List[Tuple[str, str, int, float]]:
    rows = []
    for (graph, partitioner, k), summary in sorted(
        speedup_summary(records).items()
    ):
        if partitioner == "random":
            continue
        rows.append((graph, partitioner, k, summary.mean))
    return rows


def _render_markdown(report: Dict[str, object]) -> str:
    lines: List[str] = ["# Run report", ""]
    lines.append(
        f"{report['num_records']} records | graphs: "
        f"{', '.join(report['graphs'])} | machines: "
        f"{', '.join(str(k) for k in report['machine_counts'])}"
    )
    lines.append("")

    lines.append("## Engines")
    lines.append("")
    lines.append(
        "| Engine | Records | Mean epoch s | Mean net MB "
        "| Mean partition s |"
    )
    lines.append("|---|---|---|---|---|")
    for engine, summary in sorted(report["engines"].items()):
        lines.append(
            f"| {engine} | {summary['num_records']} "
            f"| {summary['mean_epoch_seconds']:.4f} "
            f"| {summary['mean_network_bytes'] / 1e6:.2f} "
            f"| {summary['mean_partitioning_seconds']:.3f} |"
        )
    lines.append("")

    speedups = report["speedups"]
    if speedups:
        lines.append("## Speedup over Random (mean per cell)")
        lines.append("")
        lines.append("| Graph | Partitioner | Machines | Speedup |")
        lines.append("|---|---|---|---|")
        for graph, partitioner, k, mean in speedups:
            lines.append(
                f"| {graph} | {partitioner} | {k} | {mean:.2f}x |"
            )
        lines.append("")

    faults = report["faults"]
    if faults:
        lines.append("## Faults and recovery")
        lines.append("")
        lines.append(
            f"- fault records: {faults['num_fault_records']}"
        )
        lines.append(
            f"- crashes / slowdowns / lost messages: "
            f"{faults['crashes']} / {faults['slowdowns']} / "
            f"{faults['lost_messages']}"
        )
        lines.append(
            f"- recovery seconds (total): "
            f"{faults['recovery_seconds_total']:.4f}"
        )
        lines.append(
            f"- mean recovery fraction of makespan: "
            f"{faults['mean_recovery_fraction'] * 100:.2f}%"
        )
        lines.append("")

    comm = report["comm"]
    if comm:
        lines.append(
            "## Communication reduction (see docs/communication.md)"
        )
        lines.append("")
        lines.append(
            "| Comm config | Cells | Wire MB/epoch | Saved "
            "| Codec s/epoch | Accuracy error |"
        )
        lines.append("|---|---|---|---|---|---|")
        for label, entry in comm["configs"].items():
            cells = entry["cells"]
            lines.append(
                f"| {label} | {cells} "
                f"| {entry['wire_bytes'] / cells / 1e6:.2f} "
                f"| {entry['saved_fraction'] * 100:.1f}% "
                f"| {entry['codec_seconds'] / cells:.5f} "
                f"| {entry['accuracy_proxy_error']:.4f} |"
            )
        lines.append("")

    telemetry = report["obs"]
    if telemetry:
        lines.append("## Telemetry (from record obs_metrics)")
        lines.append("")
        lines.append(
            f"- observed records: {telemetry['num_observed_records']}"
        )
        lines.append(
            f"- traffic: {telemetry['bytes_sent_total'] / 1e6:.2f} MB "
            f"sent, {telemetry['bytes_received_total'] / 1e6:.2f} MB "
            "received"
        )
        if telemetry["marks"]:
            marks = ", ".join(
                f"{kind}={count}"
                for kind, count in telemetry["marks"].items()
            )
            lines.append(f"- timeline marks: {marks}")
        if telemetry.get("memory_category_peaks"):
            peaks = ", ".join(
                f"{category}={peak / 1e6:.1f} MB"
                for category, peak
                in telemetry["memory_category_peaks"].items()
            )
            lines.append(f"- memory peaks by category (worst machine): "
                         f"{peaks}")
        if telemetry.get("traffic_phase_bytes"):
            top = sorted(
                telemetry["traffic_phase_bytes"].items(),
                key=lambda kv: (-kv[1], kv[0]),
            )[:5]
            phases = ", ".join(
                f"{phase}={total / 1e6:.2f} MB" for phase, total in top
            )
            lines.append(
                f"- pairwise traffic "
                f"({telemetry['traffic_matrix_bytes_total'] / 1e6:.2f} "
                f"MB attributed src->dst), top phases: {phases}"
            )
        lines.append("")
        lines.append("| Phase | Total simulated s |")
        lines.append("|---|---|")
        for phase, seconds in telemetry["phase_seconds"].items():
            lines.append(f"| {phase} | {seconds:.4f} |")
        lines.append("")
    else:
        lines.append(
            "_No telemetry in these records — rerun with "
            "`--obs-level metrics` to populate `obs_metrics`._"
        )
        lines.append("")

    analysis = report["analysis"]
    lines.append("## Analysis (see docs/analysis.md)")
    lines.append("")
    if analysis["dominant_phase"]:
        lines.append(f"- dominant phase: `{analysis['dominant_phase']}`")
    findings = analysis["findings"]
    if findings:
        by_severity = analysis["by_severity"]
        lines.append(
            f"- findings: {len(findings)} "
            f"({by_severity.get('critical', 0)} critical, "
            f"{by_severity.get('warning', 0)} warning, "
            f"{by_severity.get('info', 0)} info)"
        )
        lines.append("")
        lines.append("| Severity | Kind | Message |")
        lines.append("|---|---|---|")
        for finding in findings:
            lines.append(
                f"| {finding['severity']} | {finding['kind']} "
                f"| {finding['message']} |"
            )
    else:
        lines.append("- findings: none — nothing anomalous detected")
    lines.append("")

    return "\n".join(lines)


def build_run_report(records: Sequence) -> Tuple[str, Dict[str, object]]:
    """Fold ``records`` into ``(markdown, report_dict)``.

    Accepts any mix of :class:`~.records.DistGnnRecord` and
    :class:`~.records.DistDglRecord`; the fault and telemetry sections
    appear only when the corresponding fields are populated.
    """
    records = list(records)
    if not records:
        raise ValueError("cannot build a run report from zero records")
    engines: Dict[str, List] = {}
    for record in records:
        engines.setdefault(_engine_of(record), []).append(record)
    report: Dict[str, object] = {
        "num_records": len(records),
        "graphs": sorted({r.graph for r in records}),
        "partitioners": sorted({r.partitioner for r in records}),
        "machine_counts": sorted({r.num_machines for r in records}),
        "engines": {
            engine: _engine_summary(engine_records)
            for engine, engine_records in engines.items()
        },
        "speedups": [
            row
            for engine_records in engines.values()
            for row in _speedup_rows(engine_records)
        ],
        "faults": _fault_summary(records),
        "comm": _comm_summary(records),
        "obs": _obs_summary(records),
        "analysis": _analysis_summary(records),
    }
    return _render_markdown(report), report
