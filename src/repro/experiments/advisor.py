"""Partitioner selection advisor (paper RQ-5 operationalised).

The paper closes by noting that invested partitioning time amortizes and
that partitioner selection matters (the authors' companion work, EASE
[32], learns such recommendations). This module provides a pragmatic
advisor: it measures every candidate on a *sampled subgraph* — orders of
magnitude cheaper than partitioning the full graph — extrapolates the
partitioning cost, simulates the training cost under the cost model, and
recommends the partitioner minimising total time for the planned number
of epochs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..costmodel import DEFAULT_COST_MODEL, CostModel
from ..distgnn import DistGnnEngine
from ..graph import Graph
from ..partitioning import make_edge_partitioner
from .config import TrainingParams

__all__ = ["Recommendation", "CandidateEstimate", "recommend_edge_partitioner"]


@dataclass(frozen=True)
class CandidateEstimate:
    """Extrapolated cost profile of one candidate partitioner."""

    name: str
    partitioning_seconds: float
    epoch_seconds: float
    total_seconds: float
    replication_factor: float


@dataclass(frozen=True)
class Recommendation:
    """Advisor output: the winner plus every candidate's estimate."""

    best: str
    planned_epochs: int
    estimates: List[CandidateEstimate]

    def as_rows(self):
        """Candidate estimates as printable table rows."""
        return [
            (
                e.name,
                e.partitioning_seconds,
                e.epoch_seconds,
                e.total_seconds,
            )
            for e in self.estimates
        ]


def _sample_subgraph(
    graph: Graph, fraction: float, seed: int
) -> Graph:
    """Random induced subgraph with ~``fraction`` of the vertices."""
    rng = np.random.default_rng(seed)
    size = max(int(fraction * graph.num_vertices), 50)
    size = min(size, graph.num_vertices)
    keep = rng.choice(graph.num_vertices, size=size, replace=False)
    return graph.subgraph(np.sort(keep))


def recommend_edge_partitioner(
    graph: Graph,
    num_machines: int,
    planned_epochs: int,
    params: Optional[TrainingParams] = None,
    candidates: Sequence[str] = (
        "random", "dbh", "hdrf", "2ps-l", "hep10", "hep100",
    ),
    sample_fraction: float = 0.3,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    seed: int = 0,
) -> Recommendation:
    """Recommend a vertex-cut partitioner for a DistGNN-style workload.

    Candidates are evaluated on a sampled induced subgraph; the measured
    partitioning time is extrapolated linearly in the edge count (all
    candidates are (near-)linear in |E| for fixed k), and the training
    cost comes from the analytic engine on the sampled partition, scaled
    by the edge ratio. Rankings — not absolute seconds — are the output
    that matters, mirroring the amortization tables.
    """
    if planned_epochs < 1:
        raise ValueError("planned_epochs must be positive")
    if not 0 < sample_fraction <= 1:
        raise ValueError("sample_fraction must be in (0, 1]")
    params = params or TrainingParams()
    sample = _sample_subgraph(graph, sample_fraction, seed)
    edge_ratio = max(
        graph.undirected_edges().shape[0]
        / max(sample.undirected_edges().shape[0], 1),
        1.0,
    )

    estimates = []
    for name in candidates:
        partitioner = make_edge_partitioner(name)
        start = time.perf_counter()
        partition = partitioner.partition(sample, num_machines, seed=seed)
        sample_seconds = time.perf_counter() - start
        engine = DistGnnEngine(
            partition,
            feature_size=params.feature_size,
            hidden_dim=params.hidden_dim,
            num_layers=params.num_layers,
            num_classes=params.num_classes,
            cost_model=cost_model,
        )
        breakdown = engine.simulate_epoch()
        part_seconds = (
            sample_seconds
            * edge_ratio
            * cost_model.partitioning_time_scale
        )
        epoch_seconds = breakdown.epoch_seconds * edge_ratio
        if name == "random":
            part_seconds = 0.0  # the paper treats Random as free
        estimates.append(
            CandidateEstimate(
                name=name,
                partitioning_seconds=part_seconds,
                epoch_seconds=epoch_seconds,
                total_seconds=part_seconds
                + planned_epochs * epoch_seconds,
                replication_factor=float(
                    partition.vertex_counts().sum()
                    / max(
                        np.count_nonzero(partition.copies_per_vertex()), 1
                    )
                ),
            )
        )
    best = min(estimates, key=lambda e: e.total_seconds)
    return Recommendation(
        best=best.name, planned_epochs=planned_epochs, estimates=estimates
    )
