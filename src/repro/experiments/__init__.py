"""Experiment harness: sweeps, runners, amortization, correlation."""

from .amortization import (
    AmortizationResult,
    amortization_table,
    epochs_to_amortize,
)
from .advisor import (
    CandidateEstimate,
    Recommendation,
    recommend_edge_partitioner,
)
from .analysis import (
    DistributionSummary,
    robustness_summary,
    speedup_summary,
    summarize,
)
from .export import load_records, records_to_json, save_records
from .cache import (
    CacheEntryError,
    cache_size,
    cached_edge_partition,
    cached_vertex_partition,
    clear_cache,
    set_cache_capacity,
)
from .config import (
    BATCH_SIZE_SCALE,
    FEATURE_SIZES,
    HIDDEN_DIMENSIONS,
    LAYER_COUNTS,
    MACHINE_COUNTS,
    PAPER_BATCH_SIZES,
    CommConfig,
    FaultConfig,
    TrainingParams,
    comm_grid,
    parameter_grid,
    reduced_grid,
    scaled_batch_size,
)
from .correlation import pearson, r_squared
from .executor import CellExecutor, CellTask, execute_cells, fifo_schedule
from .parallel import (
    close_bus_writer,
    run_distdgl_grid_parallel,
    run_distgnn_grid_parallel,
)
from .records import DistDglRecord, DistGnnRecord
from .report import format_series, format_table, print_series, print_table
from .runreport import build_run_report
from .runner import (
    run_distdgl,
    run_distdgl_grid,
    run_distgnn,
    run_distgnn_grid,
    speedup_vs_random,
)

__all__ = [
    "TrainingParams",
    "FaultConfig",
    "CommConfig",
    "comm_grid",
    "HIDDEN_DIMENSIONS",
    "FEATURE_SIZES",
    "LAYER_COUNTS",
    "MACHINE_COUNTS",
    "PAPER_BATCH_SIZES",
    "BATCH_SIZE_SCALE",
    "scaled_batch_size",
    "parameter_grid",
    "reduced_grid",
    "cached_edge_partition",
    "cached_vertex_partition",
    "clear_cache",
    "set_cache_capacity",
    "cache_size",
    "CacheEntryError",
    "DistGnnRecord",
    "DistDglRecord",
    "run_distgnn",
    "run_distgnn_grid",
    "run_distdgl",
    "run_distdgl_grid",
    "run_distgnn_grid_parallel",
    "run_distdgl_grid_parallel",
    "CellTask",
    "CellExecutor",
    "execute_cells",
    "fifo_schedule",
    "close_bus_writer",
    "speedup_vs_random",
    "epochs_to_amortize",
    "amortization_table",
    "AmortizationResult",
    "pearson",
    "r_squared",
    "format_table",
    "print_table",
    "format_series",
    "print_series",
    "build_run_report",
    "DistributionSummary",
    "summarize",
    "speedup_summary",
    "robustness_summary",
    "records_to_json",
    "save_records",
    "load_records",
    "Recommendation",
    "CandidateEstimate",
    "recommend_edge_partitioner",
]
