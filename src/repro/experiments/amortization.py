"""Partitioning-time amortization analysis (paper Tables 4 and 5).

The number of epochs until partitioning pays for itself is

    epochs = partitioning_time / (epoch_time_random - epoch_time_partitioner)

with random partitioning assumed free (paper Section 4.3(5)). A slowdown
(denominator <= 0) means amortization is impossible ("no" in the tables).

Our partitioner implementations run on the host, while training times are
simulated cluster seconds; ``CostModel.partitioning_time_scale`` converts
between the two axes. The *ranking* (which partitioner amortizes after how
many epochs relative to the others) is invariant to that single constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..costmodel import DEFAULT_COST_MODEL, CostModel

__all__ = ["AmortizationResult", "epochs_to_amortize", "amortization_table"]


@dataclass(frozen=True)
class AmortizationResult:
    """Epochs needed for a partitioner to pay for itself (None = never)."""
    graph: str
    partitioner: str
    epochs: Optional[float]  # None = "no" (slowdown, never amortizes)

    def formatted(self) -> str:
        """Human-readable epoch count ('no' when it never amortizes)."""
        return "no" if self.epochs is None else f"{self.epochs:.2f}"


def epochs_to_amortize(
    partitioning_seconds: float,
    epoch_seconds_random: float,
    epoch_seconds_partitioner: float,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> Optional[float]:
    """Epochs until the partitioning investment is repaid, or None."""
    saving = epoch_seconds_random - epoch_seconds_partitioner
    if saving <= 0:
        return None
    scaled = partitioning_seconds * cost_model.partitioning_time_scale
    return scaled / saving


def amortization_table(
    records: Sequence,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> Dict[str, Dict[str, AmortizationResult]]:
    """Average epochs-to-amortize per (graph, partitioner) over all other
    sweep dimensions — the layout of the paper's Tables 4 and 5.
    """
    by_cell: Dict[tuple, list] = {}
    baselines = {
        (r.graph, r.num_machines, r.params): r.epoch_seconds
        for r in records
        if r.partitioner.lower() == "random"
    }
    for r in records:
        if r.partitioner.lower() == "random":
            continue
        base = baselines.get((r.graph, r.num_machines, r.params))
        if base is None:
            continue
        epochs = epochs_to_amortize(
            r.partitioning_seconds, base, r.epoch_seconds, cost_model
        )
        by_cell.setdefault((r.graph, r.partitioner), []).append(epochs)

    table: Dict[str, Dict[str, AmortizationResult]] = {}
    for (graph, partitioner), values in by_cell.items():
        # One slowdown configuration makes the average undefined -> "no",
        # as the paper marks 2PS-L on EU.
        if any(v is None for v in values):
            result = AmortizationResult(graph, partitioner, None)
        else:
            result = AmortizationResult(
                graph, partitioner, sum(values) / len(values)
            )
        table.setdefault(graph, {})[partitioner] = result
    return table
