"""Reusable cell executor: submit/collect fan-out with prompt aborts.

The sweep's unit of distribution is the *cell* — one independent,
deterministic task (for the grid runners: a ``(machines, partitioner)``
pair running its whole parameter grid on one cached partition). This
module owns the machinery that was previously inlined in
:mod:`.parallel`: fanning cells out over a
:class:`~concurrent.futures.ProcessPoolExecutor`, collecting results in
task order, invoking a per-cell callback, and cancelling *promptly*
when something aborts.

Three layers, smallest first:

* :class:`CellTask` — a picklable description of one cell: an ordinal
  ``index`` (the identity handed to callbacks and the telemetry bus), a
  module-level function, its arguments, and an optional content ``key``
  (the serve scheduler dedupes identical cells across jobs on it).
* :class:`CellExecutor` — submit/collect over a lazily-created process
  pool, falling back to inline execution for ``workers <= 1``.
  :meth:`CellExecutor.cancel` uses ``shutdown(wait=False,
  cancel_futures=True)``, so an abort drops every not-yet-started cell
  and returns immediately instead of blocking until running cells
  drain (the old ``future.cancel()`` loop stalled ``--abort-on`` for a
  whole cell).
* :func:`execute_cells` — the batch driver the grid runners and
  ``run_full_sweep.py`` sit on: run every task, return results aligned
  with the task list, fire ``cell_callback(task.index, result)`` in
  task order, and on any exception (a cell's or the callback's) cancel
  the rest promptly and re-raise.

Scheduling is pluggable: ``schedule(tasks)`` returns a permutation of
``range(len(tasks))`` giving the *submission* order. Results and
callbacks always follow task order regardless of the schedule, so a
reordering schedule can improve pool utilisation (e.g. longest cell
first) without changing observable results — the default is FIFO.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

__all__ = [
    "CellTask",
    "CellExecutor",
    "execute_cells",
    "fifo_schedule",
]


@dataclass(frozen=True)
class CellTask:
    """One unit of sweep work for the executor.

    ``fn`` must be a module-level callable (it crosses process
    boundaries by pickle) returning the cell's result — for the grid
    runners, the cell's list of records. ``index`` is the cell's global
    ordinal: it is what ``cell_callback`` receives and what the
    telemetry bus keys events on. ``key`` is an optional hashable
    content identity; executors ignore it, but the serve scheduler uses
    it to recognise identical cells across jobs and compute them once.
    """

    index: int
    fn: Callable
    args: Tuple = ()
    key: Optional[object] = field(default=None, compare=False)

    def run(self):
        """Execute the cell inline and return its result.

        The span and profile scope are shared no-ops while
        observability and profiling are off (the default), so the
        inline path stays inside the perf gate.
        """
        from ..obs import api as obs
        from ..obs.profiling import capture as profiling

        with obs.span("executor.cell"):
            with profiling.profile_scope("executor.cell"):
                return self.fn(*self.args)


def fifo_schedule(tasks: Sequence[CellTask]) -> List[int]:
    """The default schedule: submit cells in task-list order."""
    return list(range(len(tasks)))


class CellExecutor:
    """Submit/collect wrapper over a process pool, with prompt aborts.

    ``workers=None`` lets the pool pick (CPU count); ``workers <= 1``
    executes inline in the calling thread (no pool, no pickling). The
    pool is created lazily on the first parallel submission, so an
    executor constructed and never used costs nothing.

    Use as a context manager for the common case: ``__exit__`` waits
    for completion on the clean path and cancels promptly when exiting
    on an exception.
    """

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is not None and workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.workers = workers
        self._pool: Optional[ProcessPoolExecutor] = None
        self._cancelled = False

    @property
    def inline(self) -> bool:
        """True when cells run in the calling thread (workers <= 1)."""
        return self.workers is not None and self.workers <= 1

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def submit(self, task: CellTask) -> "CellHandle":
        """Submit one cell; inline executors run it before returning."""
        if self._cancelled:
            raise RuntimeError("executor was cancelled")
        if self.inline:
            return CellHandle(task, result=task.run())
        future = self._ensure_pool().submit(task.fn, *task.args)
        return CellHandle(task, future=future)

    def cancel(self) -> None:
        """Abort promptly: drop every not-yet-started cell.

        Uses ``shutdown(wait=False, cancel_futures=True)`` — pending
        futures are cancelled and the call returns immediately; cells
        already executing run to completion in the background (their
        worker processes exit afterwards), but nobody waits on them.
        """
        self._cancelled = True
        if self._pool is not None:
            # Keep the pool strongly referenced: its manager thread
            # reads the cancel flag through a weakref, and dropping
            # the last reference here races it into drain mode (run
            # every pending cell) instead of cancelling them.
            self._pool.shutdown(wait=False, cancel_futures=True)

    def shutdown(self, wait: bool = True) -> None:
        """Release the pool; with ``wait`` the workers are joined."""
        if self._pool is not None:
            self._pool.shutdown(wait=wait)
            self._pool = None

    def __enter__(self) -> "CellExecutor":
        """Context-manager entry: the executor itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Wait on the clean path; cancel promptly on an exception."""
        if exc_type is not None:
            self.cancel()
        else:
            self.shutdown(wait=True)


class CellHandle:
    """A submitted cell: resolves to its result (or raises its error)."""

    def __init__(self, task: CellTask, future=None, result=None) -> None:
        self.task = task
        self._future = future
        self._result = result

    def result(self):
        """Block until the cell finishes and return its result."""
        if self._future is not None:
            return self._future.result()
        return self._result

    def done(self) -> bool:
        """True once the cell has finished (inline cells always have)."""
        if self._future is not None:
            return self._future.done()
        return True


def execute_cells(
    tasks: Sequence[CellTask],
    workers: Optional[int] = None,
    cell_callback: Optional[Callable[[int, object], None]] = None,
    schedule: Optional[Callable[[Sequence[CellTask]], Sequence[int]]] = None,
) -> List:
    """Run every task and return results aligned with the task list.

    ``cell_callback(task.index, result)`` fires once per cell in *task
    order* — a cell that finishes early waits for its predecessors'
    callbacks, which is what lets alert rules abort deterministically.
    Any exception (from a cell or the callback) cancels all pending
    cells promptly and propagates.

    ``schedule`` permutes the submission order only (see module docs);
    it must return a permutation of ``range(len(tasks))``.
    """
    tasks = list(tasks)
    order = list((schedule or fifo_schedule)(tasks))
    if sorted(order) != list(range(len(tasks))):
        raise ValueError(
            "schedule must return a permutation of range(len(tasks)), "
            f"got {order!r} for {len(tasks)} tasks"
        )
    results: List = [None] * len(tasks)
    finished = [False] * len(tasks)
    flushed = 0

    def flush() -> None:
        """Fire callbacks for the finished prefix, in task order."""
        nonlocal flushed
        while flushed < len(tasks) and finished[flushed]:
            if cell_callback is not None:
                cell_callback(
                    tasks[flushed].index, results[flushed]
                )
            flushed += 1

    executor = CellExecutor(workers)
    if executor.inline:
        # No pool to cancel: an exception simply stops the loop before
        # later cells start, which is already the prompt abort.
        for position in order:
            results[position] = tasks[position].run()
            finished[position] = True
            flush()
        return results
    with executor:
        handles: List[Optional[CellHandle]] = [None] * len(tasks)
        for position in order:
            handles[position] = executor.submit(tasks[position])
        for position in range(len(tasks)):
            results[position] = handles[position].result()
            finished[position] = True
            flush()
    return results
