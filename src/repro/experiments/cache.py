"""Process-wide partition cache.

Partitioning is by far the most expensive step of every experiment and is
fully deterministic given (algorithm, graph, k, seed), so results are
cached per process. The wall-clock partitioning time of the *first* run is
kept alongside the assignment — it feeds the amortization analysis.
"""

from __future__ import annotations

from typing import Dict, Tuple, Union

from ..graph import Graph
from ..partitioning import (
    EdgePartition,
    VertexPartition,
    make_edge_partitioner,
    make_vertex_partitioner,
)

__all__ = ["cached_edge_partition", "cached_vertex_partition", "clear_cache"]

_CacheKey = Tuple[str, str, str, int, int]
_Entry = Tuple[Union[EdgePartition, VertexPartition], float]

_CACHE: Dict[_CacheKey, _Entry] = {}


def _key(
    family: str, name: str, graph: Graph, k: int, seed: int
) -> _CacheKey:
    # Key on the graph's content fingerprint, not id(graph): ids are
    # recycled after garbage collection, which could silently serve a
    # partition of a *different* graph to a later experiment.
    return (family, name.lower(), graph.fingerprint(), k, seed)


def cached_edge_partition(
    graph: Graph, name: str, num_partitions: int, seed: int = 0
) -> Tuple[EdgePartition, float]:
    """Partition (or fetch) and return ``(partition, seconds)``."""
    key = _key("edge", name, graph, num_partitions, seed)
    if key not in _CACHE:
        partitioner = make_edge_partitioner(name)
        partition = partitioner.partition(graph, num_partitions, seed=seed)
        assert partitioner.last_partitioning_seconds is not None
        _CACHE[key] = (partition, partitioner.last_partitioning_seconds)
    partition, seconds = _CACHE[key]
    assert isinstance(partition, EdgePartition)
    return partition, seconds


def cached_vertex_partition(
    graph: Graph, name: str, num_partitions: int, seed: int = 0
) -> Tuple[VertexPartition, float]:
    """Partition (or fetch) and return ``(partition, seconds)``."""
    key = _key("vertex", name, graph, num_partitions, seed)
    if key not in _CACHE:
        partitioner = make_vertex_partitioner(name)
        partition = partitioner.partition(graph, num_partitions, seed=seed)
        assert partitioner.last_partitioning_seconds is not None
        _CACHE[key] = (partition, partitioner.last_partitioning_seconds)
    partition, seconds = _CACHE[key]
    assert isinstance(partition, VertexPartition)
    return partition, seconds


def clear_cache() -> None:
    """Drop every cached partition (frees memory between sweeps)."""
    _CACHE.clear()
