"""Process-wide partition cache.

Partitioning is by far the most expensive step of every experiment and is
fully deterministic given (algorithm, graph, k, seed), so results are
cached per process. The wall-clock partitioning time of the *first* run is
kept alongside the assignment — it feeds the amortization analysis.

The cache is a bounded LRU: long sweeps (many graphs x partitioners x k x
seeds, and especially long-running fault sweeps) would otherwise grow the
process's memory without limit. Validation raises real exceptions rather
than ``assert`` — ``python -O`` strips asserts, which would silently turn
a wrong-family cache hit into corrupt downstream results.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Tuple, Union

from ..graph import Graph
from ..obs import api as obs
from ..partitioning import (
    EdgePartition,
    VertexPartition,
    make_edge_partitioner,
    make_vertex_partitioner,
)

__all__ = [
    "cached_edge_partition",
    "cached_vertex_partition",
    "clear_cache",
    "set_cache_capacity",
    "cache_size",
    "CacheEntryError",
]

_CacheKey = Tuple[str, str, str, int, int]
_Entry = Tuple[Union[EdgePartition, VertexPartition], float]

#: Entries, most-recently-used last. Bounded by ``_capacity``.
_CACHE: "OrderedDict[_CacheKey, _Entry]" = OrderedDict()

#: Default LRU capacity: generous for one sweep's working set (graphs x
#: partitioners x machine counts) while bounding a long process.
DEFAULT_CACHE_CAPACITY = 128

_capacity = DEFAULT_CACHE_CAPACITY


class CacheEntryError(RuntimeError):
    """A cache entry is inconsistent with what the caller asked for.

    This is a real exception (not ``assert``) on purpose: it must keep
    firing under ``python -O``, where a silent wrong-family hit would
    corrupt every result derived from it.
    """


def set_cache_capacity(capacity: int) -> None:
    """Set the LRU bound; evicts immediately if over the new capacity."""
    if capacity < 1:
        raise ValueError("cache capacity must be >= 1")
    global _capacity
    _capacity = capacity
    while len(_CACHE) > _capacity:
        _CACHE.popitem(last=False)


def cache_size() -> int:
    """Number of partitions currently cached."""
    return len(_CACHE)


def _key(
    family: str, name: str, graph: Graph, k: int, seed: int
) -> _CacheKey:
    # Key on the graph's content fingerprint, not id(graph): ids are
    # recycled after garbage collection, which could silently serve a
    # partition of a *different* graph to a later experiment.
    return (family, name.lower(), graph.fingerprint(), k, seed)


def _insert(key: _CacheKey, entry: _Entry) -> None:
    _CACHE[key] = entry
    _CACHE.move_to_end(key)
    while len(_CACHE) > _capacity:
        _CACHE.popitem(last=False)
        obs.count("partition_cache.evictions")


def _lookup(key: _CacheKey) -> Union[_Entry, None]:
    entry = _CACHE.get(key)
    if entry is not None:
        _CACHE.move_to_end(key)
        obs.count("partition_cache.hits")
    else:
        obs.count("partition_cache.misses")
    return entry


def cached_edge_partition(
    graph: Graph, name: str, num_partitions: int, seed: int = 0
) -> Tuple[EdgePartition, float]:
    """Partition (or fetch) and return ``(partition, seconds)``."""
    key = _key("edge", name, graph, num_partitions, seed)
    entry = _lookup(key)
    if entry is None:
        partitioner = make_edge_partitioner(name)
        partition = partitioner.partition(graph, num_partitions, seed=seed)
        seconds = partitioner.last_partitioning_seconds
        if seconds is None:
            raise CacheEntryError(
                f"partitioner {name!r} did not record a partitioning time"
            )
        entry = (partition, seconds)
        _insert(key, entry)
    partition, seconds = entry
    if not isinstance(partition, EdgePartition):
        raise CacheEntryError(
            f"cache entry for {key!r} holds a "
            f"{type(partition).__name__}, expected an EdgePartition"
        )
    return partition, seconds


def cached_vertex_partition(
    graph: Graph, name: str, num_partitions: int, seed: int = 0
) -> Tuple[VertexPartition, float]:
    """Partition (or fetch) and return ``(partition, seconds)``."""
    key = _key("vertex", name, graph, num_partitions, seed)
    entry = _lookup(key)
    if entry is None:
        partitioner = make_vertex_partitioner(name)
        partition = partitioner.partition(graph, num_partitions, seed=seed)
        seconds = partitioner.last_partitioning_seconds
        if seconds is None:
            raise CacheEntryError(
                f"partitioner {name!r} did not record a partitioning time"
            )
        entry = (partition, seconds)
        _insert(key, entry)
    partition, seconds = entry
    if not isinstance(partition, VertexPartition):
        raise CacheEntryError(
            f"cache entry for {key!r} holds a "
            f"{type(partition).__name__}, expected a VertexPartition"
        )
    return partition, seconds


def clear_cache() -> None:
    """Drop every cached partition (frees memory between sweeps)."""
    _CACHE.clear()
