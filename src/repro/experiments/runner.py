"""Experiment runner: one call per (graph, partitioner, k, params) cell.

Wraps partitioning (cached), engine construction and epoch simulation into
flat result records, with the out-of-memory behaviour the paper reports
(random partitioning pushing machines over budget) surfaced as a flag
rather than an exception.

A :class:`~.config.FaultConfig` turns any run into a fault sweep: the
config deterministically expands into a fault plan for the cell's cluster
size, the engines recover under the configured policy, and the records
gain recovery accounting (crashes, re-executed epochs, degraded steps,
recovery/checkpoint seconds, makespan), so partitioners can be compared
by robustness as well as by raw epoch time.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence

from ..cluster import OutOfMemoryError
from ..costmodel import DEFAULT_COST_MODEL, CostModel
from ..distdgl import DistDglEngine
from ..distgnn import DistGnnEngine
from ..graph import Graph, VertexSplit, random_split
from ..obs import api as obs
from ..partitioning import (
    edge_partition_quality,
    vertex_partition_quality,
)
from .cache import cached_edge_partition, cached_vertex_partition
from .config import CommConfig, FaultConfig, TrainingParams
from .records import DistDglRecord, DistGnnRecord

__all__ = [
    "run_distgnn",
    "run_distgnn_grid",
    "run_distdgl",
    "run_distdgl_grid",
    "speedup_vs_random",
]


def _obs_record_metrics(
    engine, comm_config: Optional[CommConfig] = None
) -> Dict[str, object]:
    """Deterministic telemetry summary embedded in a result record.

    Every quantity is derived from *simulated* cluster state (timeline,
    fabric, memory ledger) — never from a wall clock — so serial and
    process-parallel sweeps produce identical records. The ``comm``
    section appears only when a non-default ``comm_config`` is active,
    keeping default-knob records identical to pre-comm ones.
    """
    cluster = engine.cluster
    timeline = cluster.timeline
    marks: Dict[str, int] = {}
    for mark in timeline.marks:
        marks[mark.kind] = marks.get(mark.kind, 0) + 1
    cluster.check_traffic_invariant()
    cluster.emit_resource_metrics()
    comm = engine.comm_summary()
    codec_name = engine._codec.name
    if obs.enabled() and comm.raw_bytes > 0:
        obs.count("comm.raw_bytes", comm.raw_bytes, codec=codec_name)
        obs.count("comm.wire_bytes", comm.wire_bytes, codec=codec_name)
        obs.count("comm.saved_bytes", comm.saved_bytes, codec=codec_name)
        obs.count(
            "comm.codec_seconds", comm.codec_seconds, codec=codec_name
        )
        if comm.stale_epochs:
            obs.count("comm.stale_epochs", comm.stale_epochs)
        obs.gauge("comm.cache_hit_rate", comm.cache_hit_rate)
    matrix = cluster.fabric.traffic_matrix()
    metrics: Dict[str, object] = {
        "phase_seconds": timeline.phase_totals(),
        "marks": marks,
        "bytes_sent_total": float(cluster.fabric.sent.sum()),
        "bytes_received_total": float(cluster.fabric.received.sum()),
        "lost_messages_total": int(cluster.fabric.lost_messages.sum()),
        "memory_peak_bytes_max": float(
            cluster.memory_per_machine().max()
        ),
        # Resource depth (PR 5): pairwise traffic and the per-phase
        # memory profile, all simulated quantities.
        "traffic_matrix": [
            [float(x) for x in row] for row in matrix
        ],
        "traffic_phase_bytes": {
            phase: float(m.sum())
            for phase, m in cluster.fabric.traffic_matrix_phases().items()
        },
        "memory_category_peaks": cluster.memory_category_peaks(),
        "memory_timeline": {
            phase: [float(x) for x in watermark]
            for phase, watermark
            in cluster.memory_watermark_timeline().items()
        },
    }
    if comm_config:
        metrics["comm"] = comm.as_dict()
    return metrics


def run_distgnn(
    graph: Graph,
    partitioner: str,
    num_machines: int,
    params: TrainingParams,
    seed: int = 0,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    enforce_memory_budget: bool = False,
    fault_config: Optional[FaultConfig] = None,
    num_epochs: int = 1,
    comm_config: Optional[CommConfig] = None,
) -> DistGnnRecord:
    """Simulate one DistGNN full-batch configuration.

    ``comm_config`` applies the communication-reduction knobs DistGNN
    supports — ``compression`` and ``refresh_interval`` (cd-r delayed
    aggregation); ``cache_fraction`` is a DistDGL mechanism and is
    ignored here. The partition itself is comm-independent, so the
    partition cache is shared across comm configurations.
    """
    if num_epochs < 1:
        raise ValueError("num_epochs must be >= 1")
    run_started = time.perf_counter()
    comm = comm_config or CommConfig()
    partition, part_seconds = cached_edge_partition(
        graph, partitioner, num_machines, seed
    )
    quality = edge_partition_quality(partition)
    engine = DistGnnEngine(
        partition,
        feature_size=params.feature_size,
        hidden_dim=params.hidden_dim,
        num_layers=params.num_layers,
        num_classes=params.num_classes,
        cost_model=cost_model,
        compression=comm.compression,
        refresh_interval=comm.refresh_interval,
    )
    out_of_memory = False
    if enforce_memory_budget:
        try:
            engine.check_memory_budget()
        except OutOfMemoryError:
            out_of_memory = True
    if fault_config:
        breakdowns = engine.simulate_training(
            num_epochs,
            fault_plan=fault_config.plan(num_machines, num_epochs),
            recovery=fault_config.policy(),
        )
    else:
        breakdowns = engine.simulate_training(num_epochs)
    n = len(breakdowns)
    timeline = engine.cluster.timeline
    summary = engine.fault_summary
    obs_metrics = None
    if obs.enabled():
        obs_metrics = _obs_record_metrics(engine, comm_config)
        obs.count("experiments.runs", engine="distgnn")
        obs.observe(
            "experiments.run_seconds",
            time.perf_counter() - run_started,
            engine="distgnn",
        )
        if out_of_memory:
            obs.count("experiments.oom_runs")
    return DistGnnRecord(
        graph=graph.name,
        partitioner=partitioner,
        num_machines=num_machines,
        params=params,
        epoch_seconds=sum(b.epoch_seconds for b in breakdowns) / n,
        forward_seconds=sum(b.forward_seconds for b in breakdowns) / n,
        backward_seconds=sum(b.backward_seconds for b in breakdowns) / n,
        sync_seconds=sum(b.sync_seconds for b in breakdowns) / n,
        network_bytes=sum(b.network_bytes for b in breakdowns) / n,
        total_memory_bytes=engine.total_memory(),
        memory_balance=engine.memory_utilization_balance(),
        replication_factor=quality.replication_factor,
        edge_balance=quality.edge_balance,
        vertex_balance=quality.vertex_balance,
        partitioning_seconds=part_seconds,
        out_of_memory=out_of_memory,
        memory_per_machine=tuple(engine.memory_per_machine()),
        num_epochs=num_epochs,
        makespan_seconds=timeline.total_seconds,
        crashes=summary.crashes,
        slowdowns=summary.slowdowns,
        lost_messages=summary.lost_messages,
        reexecuted_epochs=summary.reexecuted_epochs,
        recovery_seconds=timeline.recovery_seconds(),
        checkpoint_seconds=timeline.checkpoint_seconds(),
        fault_config=fault_config,
        comm_config=comm_config,
        # Per-epoch means, same normalization as network_bytes, so
        # saved / (network + saved) is the wire reduction directly.
        traffic_saved_bytes=(
            engine.comm.saved_bytes / max(engine.comm.total_epochs, 1)
        ),
        codec_seconds=(
            engine.comm.codec_seconds / max(engine.comm.total_epochs, 1)
        ),
        accuracy_proxy_error=engine.comm.accuracy_proxy_error,
        staleness_epochs=engine.comm.stale_epochs,
        obs_metrics=obs_metrics,
    )


def run_distgnn_grid(
    graph: Graph,
    partitioners: Sequence[str],
    machine_counts: Sequence[int],
    grid: Iterable[TrainingParams],
    seed: int = 0,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    fault_config: Optional[FaultConfig] = None,
    num_epochs: int = 1,
    comm_config: Optional[CommConfig] = None,
) -> List[DistGnnRecord]:
    """Run :func:`run_distgnn` over partitioners x machines x params."""
    grid = list(grid)
    records = []
    for k in machine_counts:
        for name in partitioners:
            for params in grid:
                records.append(
                    run_distgnn(
                        graph, name, k, params, seed, cost_model,
                        fault_config=fault_config, num_epochs=num_epochs,
                        comm_config=comm_config,
                    )
                )
    return records


def run_distdgl(
    graph: Graph,
    partitioner: str,
    num_machines: int,
    params: TrainingParams,
    split: Optional[VertexSplit] = None,
    num_epochs: int = 1,
    seed: int = 0,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    fault_config: Optional[FaultConfig] = None,
    comm_config: Optional[CommConfig] = None,
) -> DistDglRecord:
    """Run one DistDGL mini-batch configuration (sampling is executed).

    ``comm_config`` applies the communication-reduction knobs DistDGL
    supports — ``compression`` (on remote feature fetches) and
    ``cache_fraction`` (PaGraph-style static cache);
    ``refresh_interval`` is a DistGNN mechanism and is ignored here.
    """
    if num_epochs < 1:
        raise ValueError("num_epochs must be >= 1")
    run_started = time.perf_counter()
    comm = comm_config or CommConfig()
    if split is None:
        split = random_split(graph, seed=seed)
    partition, part_seconds = cached_vertex_partition(
        graph, partitioner, num_machines, seed
    )
    quality = vertex_partition_quality(partition, split.train)
    engine = DistDglEngine(
        partition,
        split,
        arch=params.arch,
        feature_size=params.feature_size,
        hidden_dim=params.hidden_dim,
        num_layers=params.num_layers,
        num_classes=params.num_classes,
        global_batch_size=params.global_batch_size,
        cost_model=cost_model,
        seed=seed,
        cache_fraction=comm.cache_fraction,
        compression=comm.compression,
    )
    if fault_config:
        reports = engine.run_training(
            num_epochs,
            fault_plan=fault_config.plan(num_machines, num_epochs),
            recovery=fault_config.policy(),
        )
    else:
        reports = engine.run_training(num_epochs)
    epoch_seconds = sum(r.epoch_seconds for r in reports) / len(reports)
    phases = {
        phase: sum(r.phase_seconds()[phase] for r in reports) / len(reports)
        for phase in reports[0].phase_seconds()
    }
    timeline = engine.cluster.timeline
    summary = engine.fault_summary
    obs_metrics = None
    if obs.enabled():
        obs_metrics = _obs_record_metrics(engine, comm_config)
        obs.count("experiments.runs", engine="distdgl")
        obs.observe(
            "experiments.run_seconds",
            time.perf_counter() - run_started,
            engine="distdgl",
        )
    return DistDglRecord(
        graph=graph.name,
        partitioner=partitioner,
        num_machines=num_machines,
        params=params,
        epoch_seconds=epoch_seconds,
        phase_seconds=phases,
        network_bytes=sum(r.network_bytes for r in reports) / len(reports),
        remote_input_vertices=int(
            sum(r.remote_input_vertices for r in reports) / len(reports)
        ),
        local_input_vertices=int(
            sum(r.local_input_vertices for r in reports) / len(reports)
        ),
        input_vertex_balance=float(
            sum(r.mean_input_vertex_balance for r in reports) / len(reports)
        ),
        training_time_balance=float(
            sum(r.training_time_balance() for r in reports) / len(reports)
        ),
        edge_cut=quality.edge_cut,
        vertex_balance=quality.vertex_balance,
        training_vertex_balance=quality.training_vertex_balance,
        partitioning_seconds=part_seconds,
        num_epochs=num_epochs,
        makespan_seconds=timeline.total_seconds,
        crashes=summary.crashes,
        slowdowns=summary.slowdowns,
        lost_messages=summary.lost_messages,
        retries=summary.retries,
        degraded_steps=summary.degraded_steps,
        recovery_seconds=timeline.recovery_seconds(),
        fault_config=fault_config,
        comm_config=comm_config,
        # Per-epoch means, same normalization as network_bytes.
        traffic_saved_bytes=(
            engine.comm.saved_bytes / max(engine.comm.total_epochs, 1)
        ),
        codec_seconds=(
            engine.comm.codec_seconds / max(engine.comm.total_epochs, 1)
        ),
        accuracy_proxy_error=engine.comm.accuracy_proxy_error,
        cache_hit_rate=engine.comm_summary().cache_hit_rate,
        obs_metrics=obs_metrics,
    )


def run_distdgl_grid(
    graph: Graph,
    partitioners: Sequence[str],
    machine_counts: Sequence[int],
    grid: Iterable[TrainingParams],
    split: Optional[VertexSplit] = None,
    seed: int = 0,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    fault_config: Optional[FaultConfig] = None,
    num_epochs: int = 1,
    comm_config: Optional[CommConfig] = None,
) -> List[DistDglRecord]:
    """Run :func:`run_distdgl` over partitioners x machines x params."""
    if split is None:
        split = random_split(graph, seed=seed)
    grid = list(grid)
    records = []
    for k in machine_counts:
        for name in partitioners:
            for params in grid:
                records.append(
                    run_distdgl(
                        graph, name, k, params, split=split,
                        num_epochs=num_epochs, seed=seed,
                        cost_model=cost_model, fault_config=fault_config,
                        comm_config=comm_config,
                    )
                )
    return records


def speedup_vs_random(records: Sequence) -> dict:
    """Speedup of each record over the Random baseline with the same
    (graph, k, params); keyed by (graph, partitioner, k, params).
    """
    baselines = {
        (r.graph, r.num_machines, r.params): r.epoch_seconds
        for r in records
        if r.partitioner.lower() == "random"
    }
    speedups = {}
    for r in records:
        base = baselines.get((r.graph, r.num_machines, r.params))
        if base is None or r.epoch_seconds <= 0:
            continue
        speedups[
            (r.graph, r.partitioner, r.num_machines, r.params)
        ] = base / r.epoch_seconds
    return speedups
