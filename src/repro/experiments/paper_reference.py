"""The paper's reported numbers, transcribed for comparison.

Every value below is taken verbatim from the paper's text or tables, so
the benchmark reports (and ``EXPERIMENTS.md``) can put measured results
side by side with what the authors reported on their 32-machine cluster
and full-size graphs. Absolute magnitudes are *not* expected to match a
scaled-down simulation; orderings and trends are.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

__all__ = [
    "DISTGNN_MAX_SPEEDUP",
    "DISTGNN_OR_MEAN_SPEEDUPS",
    "DISTGNN_SCALEOUT_SPEEDUPS",
    "DISTGNN_RF_PCT_OF_RANDOM",
    "DISTGNN_MEMORY_REDUCTION_PCT",
    "REPLICATION_FACTOR_OR_32",
    "TABLE_4_AMORTIZATION",
    "TABLE_5_AMORTIZATION",
    "DISTDGL_MAX_SPEEDUPS",
    "DISTDGL_FEATURE_SIZE_SPEEDUPS",
    "DISTDGL_HIDDEN_DIM_SPEEDUPS",
    "DISTDGL_SCALEOUT_SPEEDUPS",
    "DISTDGL_BATCH_SIZE_SPEEDUPS",
    "EDGE_CUT_EXAMPLES_32",
    "VERTEX_BALANCE_RANGES",
    "CORRELATION_CLAIMS",
]

#: Section 4.3: largest DistGNN speedups over Random per graph (HEP100).
DISTGNN_MAX_SPEEDUP: Dict[str, float] = {
    "EU": 3.53, "EN": 6.18, "OR": 8.15, "HW": 10.41,
}

#: Section 4.3: average speedups on OR by partitioner and machine count.
DISTGNN_OR_MEAN_SPEEDUPS: Dict[Tuple[str, int], float] = {
    ("dbh", 8): 1.40, ("2ps-l", 8): 1.46, ("hdrf", 8): 1.44,
    ("hep10", 8): 2.96, ("hep100", 8): 3.68,
    ("dbh", 16): 1.62, ("2ps-l", 16): 1.61, ("hdrf", 16): 1.75,
    ("hep10", 16): 4.37, ("hep100", 16): 7.16,
    ("dbh", 32): 1.74, ("2ps-l", 32): 1.95, ("hdrf", 32): 2.00,
    ("hep10", 32): 5.67, ("hep100", 32): 7.16,
}

#: Section 4.3(4): all-graph average speedups at 4 vs 32 machines.
DISTGNN_SCALEOUT_SPEEDUPS: Dict[str, Tuple[float, float]] = {
    "2ps-l": (1.57, 1.79),
    "dbh": (1.37, 1.70),
    "hdrf": (1.49, 2.06),
    "hep10": (1.95, 5.41),
    "hep100": (2.47, 6.77),
}

#: Section 4.3(4): replication factor in % of Random, 4 -> 32 machines.
DISTGNN_RF_PCT_OF_RANDOM: Dict[str, Tuple[float, float]] = {
    "2ps-l": (56.74, 39.99),
    "dbh": (76.49, 60.81),
    "hdrf": (62.16, 48.58),
    "hep10": (49.27, 14.05),
    "hep100": (36.05, 11.37),
}

#: Section 4.3: HEP100 memory reduction vs Random (percent saved) on
#: (EU, OR, HW, EN) at 8/16/32 machines.
DISTGNN_MEMORY_REDUCTION_PCT: Dict[int, Tuple[float, float, float, float]] = {
    8: (37.0, 53.0, 56.0, 60.0),
    16: (44.0, 60.0, 65.0, 63.0),
    32: (40.0, 67.0, 66.0, 63.0),
}

#: Figure 2b example: RF on OR at 32 partitions.
REPLICATION_FACTOR_OR_32: Dict[str, float] = {
    "hep100": 2.52, "random": 22.2,
}

#: Table 4 (DistGNN): mean epochs to amortize; None == "no".
TABLE_4_AMORTIZATION: Dict[str, Dict[str, Optional[float]]] = {
    "EN": {"dbh": 1.39, "2ps-l": 4.57, "hdrf": 4.64,
           "hep10": 3.35, "hep100": 4.29},
    "EU": {"dbh": 3.79, "2ps-l": None, "hdrf": 8.8,
           "hep10": 10.15, "hep100": 12.0},
    "HW": {"dbh": 3.05, "2ps-l": 4.22, "hdrf": 7.26,
           "hep10": 4.48, "hep100": 4.7},
    "OR": {"dbh": 3.83, "2ps-l": 7.39, "hdrf": 11.69,
           "hep10": 6.64, "hep100": 7.03},
}

#: Table 5 (DistDGL): mean epochs to amortize; None == "no".
TABLE_5_AMORTIZATION: Dict[str, Dict[str, Optional[float]]] = {
    "DI": {"bytegnn": 0.93, "kahip": 2.61, "ldg": 0.1,
           "spinner": 14.37, "metis": 1.13},
    "EN": {"bytegnn": 2.16, "kahip": 2501.93, "ldg": 0.39,
           "spinner": 54.07, "metis": 16.79},
    "EU": {"bytegnn": None, "kahip": 1197.25, "ldg": None,
           "spinner": 53.8, "metis": 8.14},
    "HW": {"bytegnn": 0.68, "kahip": 347.51, "ldg": 0.47,
           "spinner": 77.78, "metis": 10.7},
    "OR": {"bytegnn": 3.14, "kahip": 223.19, "ldg": 0.27,
           "spinner": 70.19, "metis": 14.59},
}

#: Section 5.3: largest DistDGL (GraphSage) speedups at 4/8/16/32
#: machines, achieved by KaHIP and METIS.
DISTDGL_MAX_SPEEDUPS: Dict[int, float] = {4: 1.84, 8: 1.84, 16: 3.09, 32: 3.47}

#: Section 5.3(1): KaHIP speedup at feature size 16 vs 512 (4 machines).
DISTDGL_FEATURE_SIZE_SPEEDUPS: Dict[str, Tuple[float, float]] = {
    "kahip": (1.23, 1.52),
}

#: Section 5.3(2): speedups at hidden dimension 16 vs 512.
DISTDGL_HIDDEN_DIM_SPEEDUPS: Dict[str, Tuple[float, float]] = {
    "kahip": (1.38, 1.19),
    "metis": (1.31, 1.15),
}

#: Section 5.3(4): speedups at 4 vs 32 machines (non-road graphs).
DISTDGL_SCALEOUT_SPEEDUPS: Dict[str, Tuple[float, float]] = {
    "kahip": (1.32, 1.25),
    "metis": (1.27, 1.19),
}

#: Section 5.4: speedups at batch size 512 vs 32768 (feature size 512).
DISTDGL_BATCH_SIZE_SPEEDUPS: Dict[str, Tuple[float, float]] = {
    "kahip": (1.27, 1.91),
    "metis": (1.13, 1.65),
}

#: Section 5.2: edge-cut examples at 32 partitions.
EDGE_CUT_EXAMPLES_32: Dict[Tuple[str, str], float] = {
    ("DI", "kahip"): 0.001,
    ("EU", "kahip"): 0.12,
    ("DI", "random"): 0.68,
    ("EU", "random"): 0.93,
}

#: Section 4.2: vertex-imbalance ranges of 2PS-L/HEP10/HEP100.
VERTEX_BALANCE_RANGES: Dict[int, Tuple[float, float]] = {
    4: (1.18, 1.89),
    32: (1.18, 2.44),
}

#: R^2 claims (Figures 3 and 9 discussion).
CORRELATION_CLAIMS: Dict[str, float] = {
    "rf_vs_traffic": 0.98,
    "rf_vs_memory": 0.99,
}
