"""Process-parallel grid runners.

The serial grid in :mod:`.runner` iterates ``machines x partitioners x
params``; each ``(machines, partitioner)`` pair — one *cell* — shares a
single cached partition across all its parameter configurations, and
cells are completely independent of each other. The runners here fan the
cells out over a :class:`~concurrent.futures.ProcessPoolExecutor`: each
worker computes its cell's partition exactly once (the partition cache
is per process) and runs the cell's parameter grid serially, so no
partition is ever computed twice and no partition is shipped between
processes. Every simulation is deterministic given its seed, so the
parallel runners return record-for-record the same results as the
serial ones (equivalence-tested), in the same order.

``workers=None`` lets the executor pick (CPU count); ``workers<=1``
falls back to the serial runner in-process.

Observability: the coordinator's obs *level* is re-applied inside every
worker process, and each record carries its own deterministic
``obs_metrics`` summary (simulated quantities only), so serial and
parallel sweeps stay record-identical. Worker-process registries and
trace sinks are per process and are not merged back — stream traces
(``--obs-out``) from serial runs.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, List, Optional, Sequence

from ..costmodel import DEFAULT_COST_MODEL, CostModel
from ..graph import Graph, VertexSplit, random_split
from ..obs import api as obs
from .config import FaultConfig, TrainingParams
from .records import DistDglRecord, DistGnnRecord
from .runner import (
    run_distdgl,
    run_distdgl_grid,
    run_distgnn,
    run_distgnn_grid,
)

__all__ = ["run_distgnn_grid_parallel", "run_distdgl_grid_parallel"]


def _distgnn_cell(
    graph: Graph,
    partitioner: str,
    num_machines: int,
    grid: Sequence[TrainingParams],
    seed: int,
    cost_model: CostModel,
    fault_config: Optional[FaultConfig],
    num_epochs: int,
    obs_level: str = "off",
) -> List[DistGnnRecord]:
    """One (machines, partitioner) cell of the DistGNN grid."""
    obs.configure(obs_level)
    return [
        run_distgnn(
            graph, partitioner, num_machines, params, seed, cost_model,
            fault_config=fault_config, num_epochs=num_epochs,
        )
        for params in grid
    ]


def _distdgl_cell(
    graph: Graph,
    partitioner: str,
    num_machines: int,
    grid: Sequence[TrainingParams],
    split: VertexSplit,
    seed: int,
    cost_model: CostModel,
    fault_config: Optional[FaultConfig],
    num_epochs: int,
    obs_level: str = "off",
) -> List[DistDglRecord]:
    """One (machines, partitioner) cell of the DistDGL grid."""
    obs.configure(obs_level)
    return [
        run_distdgl(
            graph, partitioner, num_machines, params, split=split,
            num_epochs=num_epochs, seed=seed, cost_model=cost_model,
            fault_config=fault_config,
        )
        for params in grid
    ]


def run_distgnn_grid_parallel(
    graph: Graph,
    partitioners: Sequence[str],
    machine_counts: Sequence[int],
    grid: Iterable[TrainingParams],
    seed: int = 0,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    workers: Optional[int] = None,
    fault_config: Optional[FaultConfig] = None,
    num_epochs: int = 1,
) -> List[DistGnnRecord]:
    """Parallel :func:`~.runner.run_distgnn_grid` (same records, same order)."""
    grid = list(grid)
    if workers is not None and workers <= 1:
        return run_distgnn_grid(
            graph, partitioners, machine_counts, grid, seed, cost_model,
            fault_config=fault_config, num_epochs=num_epochs,
        )
    records: List[DistGnnRecord] = []
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(
                _distgnn_cell, graph, name, k, grid, seed, cost_model,
                fault_config, num_epochs, obs.level(),
            )
            for k in machine_counts
            for name in partitioners
        ]
        for future in futures:
            records.extend(future.result())
    return records


def run_distdgl_grid_parallel(
    graph: Graph,
    partitioners: Sequence[str],
    machine_counts: Sequence[int],
    grid: Iterable[TrainingParams],
    split: Optional[VertexSplit] = None,
    seed: int = 0,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    workers: Optional[int] = None,
    fault_config: Optional[FaultConfig] = None,
    num_epochs: int = 1,
) -> List[DistDglRecord]:
    """Parallel :func:`~.runner.run_distdgl_grid` (same records, same order)."""
    if split is None:
        split = random_split(graph, seed=seed)
    grid = list(grid)
    if workers is not None and workers <= 1:
        return run_distdgl_grid(
            graph, partitioners, machine_counts, grid,
            split=split, seed=seed, cost_model=cost_model,
            fault_config=fault_config, num_epochs=num_epochs,
        )
    records: List[DistDglRecord] = []
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(
                _distdgl_cell, graph, name, k, grid, split, seed,
                cost_model, fault_config, num_epochs, obs.level(),
            )
            for k in machine_counts
            for name in partitioners
        ]
        for future in futures:
            records.extend(future.result())
    return records
