"""Process-parallel grid runners.

The serial grid in :mod:`.runner` iterates ``machines x partitioners x
params``; each ``(machines, partitioner)`` pair — one *cell* — shares a
single cached partition across all its parameter configurations, and
cells are completely independent of each other. The runners here build
:class:`~.executor.CellTask` lists and hand them to
:func:`~.executor.execute_cells`: each worker computes its cell's
partition exactly once (the partition cache is per process) and runs
the cell's parameter grid serially, so no partition is ever computed
twice and no partition is shipped between processes. Every simulation
is deterministic given its seed, so the parallel runners return
record-for-record the same results as the serial ones
(equivalence-tested), in the same order.

``workers=None`` lets the executor pick (CPU count); ``workers<=1``
falls back to the serial runner in-process.

Observability: the coordinator's obs *level* is re-applied inside every
worker process, and each record carries its own deterministic
``obs_metrics`` summary (simulated quantities only), so serial and
parallel sweeps stay record-identical. Worker-process registries and
trace sinks are per process and are not merged back — stream traces
(``--obs-out``) from serial runs.

Live telemetry: with ``bus_dir`` set, every worker appends
cell-start/record-done/cell-done/heartbeat events to its own JSONL
stream in the bus directory (see :mod:`repro.obs.live.bus`), which
``repro obs watch`` tails; cell indices are global submission order
(``cell_offset`` threads the running index across multiple grid
invocations of one sweep). Worker-process writers are closed by the
``atexit`` hook :class:`~repro.obs.live.bus.BusWriter` registers; the
in-process (``workers<=1``) path closes its writer when the sweep
returns, so back-to-back sweeps in one process never share a stream or
its cseq state.

With ``cell_callback`` set, the coordinator invokes it as
``callback(cell_index, records)`` for every finished cell *in
submission order*; the callback raising (e.g.
:class:`~repro.obs.live.rules.SweepAborted` from an alert rule)
cancels all not-yet-started cells promptly — the executor drops them
with ``shutdown(wait=False, cancel_futures=True)`` rather than waiting
for running cells to drain — and propagates: the early-stop path of
``run_full_sweep.py --abort-on``. Both features also work on the
``workers<=1`` path, which then drives the same per-cell helpers
in-process in the same order.
"""

from __future__ import annotations

import contextlib
import os
import time
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..costmodel import DEFAULT_COST_MODEL, CostModel
from ..graph import Graph, VertexSplit, random_split
from ..obs import api as obs
from .config import CommConfig, FaultConfig, TrainingParams
from .executor import CellTask, execute_cells
from .records import DistDglRecord, DistGnnRecord
from .runner import (
    run_distdgl,
    run_distdgl_grid,
    run_distgnn,
    run_distgnn_grid,
)

__all__ = ["run_distgnn_grid_parallel", "run_distdgl_grid_parallel"]

#: Per-process bus writers, keyed by bus directory: a worker process
#: reuses one stream file (and one cseq state) across all its cells.
#: Writers register an atexit close (pool teardown flushes them); the
#: in-process sweep path closes and evicts its writer per sweep via
#: :func:`close_bus_writer`.
_BUS_WRITERS: Dict[str, object] = {}


def _bus_writer(bus_dir: str):
    """The process-local :class:`~repro.obs.live.bus.BusWriter`."""
    writer = _BUS_WRITERS.get(bus_dir)
    if writer is None:
        from ..obs.live.bus import BusWriter

        writer = BusWriter(bus_dir, f"pid{os.getpid()}")
        _BUS_WRITERS[bus_dir] = writer
    return writer


def close_bus_writer(bus_dir: Optional[str]) -> None:
    """Close and evict this process's writer for ``bus_dir``, if any.

    The in-process (``workers<=1``) sweep path calls this when a sweep
    finishes so its streams are flushed deterministically and the next
    sweep — possibly into a different bus directory — starts from a
    fresh writer with fresh cseq state instead of silently sharing the
    old one.
    """
    if bus_dir is None:
        return
    writer = _BUS_WRITERS.pop(bus_dir, None)
    if writer is not None:
        writer.close()


def _cell_obs(
    obs_level: str,
    trace_out: Optional[str],
    trace_ctx: Optional[Dict[str, object]],
) -> Callable[[], None]:
    """Apply one cell's observability scope; returns the finalizer.

    ``trace_out`` (a JSONL path) attaches a fresh trace sink and
    ``trace_ctx`` stamps the ambient trace context (the serve daemon's
    ``job``/``tenant`` attribution), so every engine event the cell
    emits carries the caller's identity. The finalizer closes the sink
    and clears the context so the next cell in this process starts
    clean.
    """
    obs.configure(obs_level)
    if not trace_out:
        return lambda: None
    from ..obs.sink import JsonlSink

    obs.set_sink(JsonlSink(trace_out))
    obs.set_trace_context(**(trace_ctx or {}))

    def finish() -> None:
        obs.set_sink(None)
        obs.clear_trace_context()

    return finish


@contextlib.contextmanager
def _cell_profile(profile_out: Optional[str], cell: int):
    """Capture this cell's run under cProfile, saved to ``profile_out``.

    A no-op when ``profile_out`` is ``None`` (every sweep without
    ``--profile-out`` / serve trace level). The capture is explicit —
    independent of the ambient ``profile_scope`` switch — and crosses
    process boundaries by riding the cell-task args, since pool
    workers never pass through :meth:`CellTask.run`.
    """
    if not profile_out:
        yield
        return
    from ..obs.profiling import capture as profiling

    with profiling.capture(f"cell-{cell:06d}") as cap:
        yield
    if cap.profile is not None:
        cap.profile.save(profile_out)


def _profile_path(
    profile_dir: Optional[str], cell: int
) -> Optional[str]:
    """The per-cell profile artifact path under ``profile_dir``."""
    if profile_dir is None:
        return None
    return os.path.join(profile_dir, f"profile-cell-{cell:06d}.json")


def _distgnn_cell(
    graph: Graph,
    partitioner: str,
    num_machines: int,
    grid: Sequence[TrainingParams],
    seed: int,
    cost_model: CostModel,
    fault_config: Optional[FaultConfig],
    comm_config: Optional[CommConfig],
    num_epochs: int,
    obs_level: str = "off",
    cell: int = -1,
    bus_dir: Optional[str] = None,
    trace_out: Optional[str] = None,
    trace_ctx: Optional[Dict[str, object]] = None,
    profile_out: Optional[str] = None,
) -> List[DistGnnRecord]:
    """One (machines, partitioner) cell of the DistGNN grid."""
    finish_obs = _cell_obs(obs_level, trace_out, trace_ctx)
    writer = _bus_writer(bus_dir) if bus_dir else None
    started = time.perf_counter()
    if writer:
        writer.cell_start(
            cell, "distgnn", graph.name, partitioner, num_machines,
            len(grid),
        )
    try:
        obs.event("span-begin", "serve.cell", cell=cell)
        records = []
        with _cell_profile(profile_out, cell):
            for index, params in enumerate(grid):
                record = run_distgnn(
                    graph, partitioner, num_machines, params, seed,
                    cost_model, fault_config=fault_config,
                    num_epochs=num_epochs, comm_config=comm_config,
                )
                records.append(record)
                if writer:
                    writer.record_done(cell, index, record, "distgnn")
                    writer.heartbeat()
        obs.event(
            "span-end", "serve.cell", cell=cell,
            seconds=round(time.perf_counter() - started, 9),
        )
    finally:
        finish_obs()
    if writer:
        writer.cell_done(
            cell, len(records), time.perf_counter() - started
        )
    return records


def _distdgl_cell(
    graph: Graph,
    partitioner: str,
    num_machines: int,
    grid: Sequence[TrainingParams],
    split: VertexSplit,
    seed: int,
    cost_model: CostModel,
    fault_config: Optional[FaultConfig],
    comm_config: Optional[CommConfig],
    num_epochs: int,
    obs_level: str = "off",
    cell: int = -1,
    bus_dir: Optional[str] = None,
    trace_out: Optional[str] = None,
    trace_ctx: Optional[Dict[str, object]] = None,
    profile_out: Optional[str] = None,
) -> List[DistDglRecord]:
    """One (machines, partitioner) cell of the DistDGL grid."""
    finish_obs = _cell_obs(obs_level, trace_out, trace_ctx)
    writer = _bus_writer(bus_dir) if bus_dir else None
    started = time.perf_counter()
    if writer:
        writer.cell_start(
            cell, "distdgl", graph.name, partitioner, num_machines,
            len(grid),
        )
    try:
        obs.event("span-begin", "serve.cell", cell=cell)
        records = []
        with _cell_profile(profile_out, cell):
            for index, params in enumerate(grid):
                record = run_distdgl(
                    graph, partitioner, num_machines, params,
                    split=split, num_epochs=num_epochs, seed=seed,
                    cost_model=cost_model, fault_config=fault_config,
                    comm_config=comm_config,
                )
                records.append(record)
                if writer:
                    writer.record_done(cell, index, record, "distdgl")
                    writer.heartbeat()
        obs.event(
            "span-end", "serve.cell", cell=cell,
            seconds=round(time.perf_counter() - started, 9),
        )
    finally:
        finish_obs()
    if writer:
        writer.cell_done(
            cell, len(records), time.perf_counter() - started
        )
    return records


def _run_grid_cells(
    tasks: List[CellTask],
    workers: Optional[int],
    cell_callback: Optional[Callable[[int, List], None]],
    bus_dir: Optional[str],
) -> List:
    """Fan the cell tasks out and flatten results in task order.

    The in-process path closes its bus writer when the sweep finishes
    (flushes the streams; fresh cseq state for the next sweep); pool
    workers close theirs via the writer's atexit hook at process exit.
    """
    inline = workers is not None and workers <= 1
    try:
        cell_results = execute_cells(
            tasks, workers=workers, cell_callback=cell_callback
        )
    finally:
        if inline:
            close_bus_writer(bus_dir)
    records: List = []
    for cell_records in cell_results:
        records.extend(cell_records)
    return records


def run_distgnn_grid_parallel(
    graph: Graph,
    partitioners: Sequence[str],
    machine_counts: Sequence[int],
    grid: Iterable[TrainingParams],
    seed: int = 0,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    workers: Optional[int] = None,
    fault_config: Optional[FaultConfig] = None,
    num_epochs: int = 1,
    bus_dir: Optional[str] = None,
    cell_callback: Optional[Callable[[int, List], None]] = None,
    cell_offset: int = 0,
    comm_config: Optional[CommConfig] = None,
    profile_dir: Optional[str] = None,
) -> List[DistGnnRecord]:
    """Parallel :func:`~.runner.run_distgnn_grid` (same records, same order)."""
    grid = list(grid)
    cells = [
        (k, name) for k in machine_counts for name in partitioners
    ]
    if profile_dir is not None:
        os.makedirs(profile_dir, exist_ok=True)
    if (
        workers is not None and workers <= 1
        and bus_dir is None and cell_callback is None
        and profile_dir is None
    ):
        return run_distgnn_grid(
            graph, partitioners, machine_counts, grid, seed,
            cost_model, fault_config=fault_config,
            num_epochs=num_epochs, comm_config=comm_config,
        )
    tasks = [
        CellTask(
            index=cell_offset + index,
            fn=_distgnn_cell,
            args=(
                graph, name, k, grid, seed, cost_model, fault_config,
                comm_config, num_epochs, obs.level(),
                cell_offset + index, bus_dir, None, None,
                _profile_path(profile_dir, cell_offset + index),
            ),
        )
        for index, (k, name) in enumerate(cells)
    ]
    return _run_grid_cells(tasks, workers, cell_callback, bus_dir)


def run_distdgl_grid_parallel(
    graph: Graph,
    partitioners: Sequence[str],
    machine_counts: Sequence[int],
    grid: Iterable[TrainingParams],
    split: Optional[VertexSplit] = None,
    seed: int = 0,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    workers: Optional[int] = None,
    fault_config: Optional[FaultConfig] = None,
    num_epochs: int = 1,
    bus_dir: Optional[str] = None,
    cell_callback: Optional[Callable[[int, List], None]] = None,
    cell_offset: int = 0,
    comm_config: Optional[CommConfig] = None,
    profile_dir: Optional[str] = None,
) -> List[DistDglRecord]:
    """Parallel :func:`~.runner.run_distdgl_grid` (same records, same order)."""
    if split is None:
        split = random_split(graph, seed=seed)
    grid = list(grid)
    cells = [
        (k, name) for k in machine_counts for name in partitioners
    ]
    if profile_dir is not None:
        os.makedirs(profile_dir, exist_ok=True)
    if (
        workers is not None and workers <= 1
        and bus_dir is None and cell_callback is None
        and profile_dir is None
    ):
        return run_distdgl_grid(
            graph, partitioners, machine_counts, grid,
            split=split, seed=seed, cost_model=cost_model,
            fault_config=fault_config, num_epochs=num_epochs,
            comm_config=comm_config,
        )
    tasks = [
        CellTask(
            index=cell_offset + index,
            fn=_distdgl_cell,
            args=(
                graph, name, k, grid, split, seed, cost_model,
                fault_config, comm_config, num_epochs, obs.level(),
                cell_offset + index, bus_dir, None, None,
                _profile_path(profile_dir, cell_offset + index),
            ),
        )
        for index, (k, name) in enumerate(cells)
    ]
    return _run_grid_cells(tasks, workers, cell_callback, bus_dir)
