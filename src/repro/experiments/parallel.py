"""Process-parallel grid runners.

The serial grid in :mod:`.runner` iterates ``machines x partitioners x
params``; each ``(machines, partitioner)`` pair — one *cell* — shares a
single cached partition across all its parameter configurations, and
cells are completely independent of each other. The runners here fan the
cells out over a :class:`~concurrent.futures.ProcessPoolExecutor`: each
worker computes its cell's partition exactly once (the partition cache
is per process) and runs the cell's parameter grid serially, so no
partition is ever computed twice and no partition is shipped between
processes. Every simulation is deterministic given its seed, so the
parallel runners return record-for-record the same results as the
serial ones (equivalence-tested), in the same order.

``workers=None`` lets the executor pick (CPU count); ``workers<=1``
falls back to the serial runner in-process.

Observability: the coordinator's obs *level* is re-applied inside every
worker process, and each record carries its own deterministic
``obs_metrics`` summary (simulated quantities only), so serial and
parallel sweeps stay record-identical. Worker-process registries and
trace sinks are per process and are not merged back — stream traces
(``--obs-out``) from serial runs.

Live telemetry: with ``bus_dir`` set, every worker appends
cell-start/record-done/cell-done/heartbeat events to its own JSONL
stream in the bus directory (see :mod:`repro.obs.live.bus`), which
``repro obs watch`` tails; cell indices are global submission order
(``cell_offset`` threads the running index across multiple grid
invocations of one sweep). With ``cell_callback`` set, the coordinator
invokes it as ``callback(cell_index, records)`` for every finished
cell *in submission order*; the callback raising (e.g.
:class:`~repro.obs.live.rules.SweepAborted` from an alert rule)
cancels all not-yet-started cells and propagates — the early-stop path
of ``run_full_sweep.py --abort-on``. Both features also work on the
``workers<=1`` path, which then drives the same per-cell helpers
in-process in the same order.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..costmodel import DEFAULT_COST_MODEL, CostModel
from ..graph import Graph, VertexSplit, random_split
from ..obs import api as obs
from .config import FaultConfig, TrainingParams
from .records import DistDglRecord, DistGnnRecord
from .runner import (
    run_distdgl,
    run_distdgl_grid,
    run_distgnn,
    run_distgnn_grid,
)

__all__ = ["run_distgnn_grid_parallel", "run_distdgl_grid_parallel"]

#: Per-process bus writers, keyed by bus directory: a worker process
#: reuses one stream file (and one cseq state) across all its cells.
_BUS_WRITERS: Dict[str, object] = {}


def _bus_writer(bus_dir: str):
    """The process-local :class:`~repro.obs.live.bus.BusWriter`."""
    writer = _BUS_WRITERS.get(bus_dir)
    if writer is None:
        from ..obs.live.bus import BusWriter

        writer = BusWriter(bus_dir, f"pid{os.getpid()}")
        _BUS_WRITERS[bus_dir] = writer
    return writer


def _distgnn_cell(
    graph: Graph,
    partitioner: str,
    num_machines: int,
    grid: Sequence[TrainingParams],
    seed: int,
    cost_model: CostModel,
    fault_config: Optional[FaultConfig],
    num_epochs: int,
    obs_level: str = "off",
    cell: int = -1,
    bus_dir: Optional[str] = None,
) -> List[DistGnnRecord]:
    """One (machines, partitioner) cell of the DistGNN grid."""
    obs.configure(obs_level)
    writer = _bus_writer(bus_dir) if bus_dir else None
    started = time.perf_counter()
    if writer:
        writer.cell_start(
            cell, "distgnn", graph.name, partitioner, num_machines,
            len(grid),
        )
    records = []
    for index, params in enumerate(grid):
        record = run_distgnn(
            graph, partitioner, num_machines, params, seed, cost_model,
            fault_config=fault_config, num_epochs=num_epochs,
        )
        records.append(record)
        if writer:
            writer.record_done(cell, index, record, "distgnn")
            writer.heartbeat()
    if writer:
        writer.cell_done(
            cell, len(records), time.perf_counter() - started
        )
    return records


def _distdgl_cell(
    graph: Graph,
    partitioner: str,
    num_machines: int,
    grid: Sequence[TrainingParams],
    split: VertexSplit,
    seed: int,
    cost_model: CostModel,
    fault_config: Optional[FaultConfig],
    num_epochs: int,
    obs_level: str = "off",
    cell: int = -1,
    bus_dir: Optional[str] = None,
) -> List[DistDglRecord]:
    """One (machines, partitioner) cell of the DistDGL grid."""
    obs.configure(obs_level)
    writer = _bus_writer(bus_dir) if bus_dir else None
    started = time.perf_counter()
    if writer:
        writer.cell_start(
            cell, "distdgl", graph.name, partitioner, num_machines,
            len(grid),
        )
    records = []
    for index, params in enumerate(grid):
        record = run_distdgl(
            graph, partitioner, num_machines, params, split=split,
            num_epochs=num_epochs, seed=seed, cost_model=cost_model,
            fault_config=fault_config,
        )
        records.append(record)
        if writer:
            writer.record_done(cell, index, record, "distdgl")
            writer.heartbeat()
    if writer:
        writer.cell_done(
            cell, len(records), time.perf_counter() - started
        )
    return records


def _collect_cells(
    pool: ProcessPoolExecutor,
    futures: List,
    records: List,
    cell_callback: Optional[Callable[[int, List], None]],
    cell_offset: int,
) -> None:
    """Gather cell futures in submission order, invoking the callback
    per cell; a callback (or cell) exception cancels every pending
    cell before propagating, so ``--abort-on`` stops the sweep without
    burning the rest of the grid."""
    try:
        for index, future in enumerate(futures):
            cell_records = future.result()
            records.extend(cell_records)
            if cell_callback is not None:
                cell_callback(cell_offset + index, cell_records)
    except BaseException:
        for future in futures:
            future.cancel()
        raise


def run_distgnn_grid_parallel(
    graph: Graph,
    partitioners: Sequence[str],
    machine_counts: Sequence[int],
    grid: Iterable[TrainingParams],
    seed: int = 0,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    workers: Optional[int] = None,
    fault_config: Optional[FaultConfig] = None,
    num_epochs: int = 1,
    bus_dir: Optional[str] = None,
    cell_callback: Optional[Callable[[int, List], None]] = None,
    cell_offset: int = 0,
) -> List[DistGnnRecord]:
    """Parallel :func:`~.runner.run_distgnn_grid` (same records, same order)."""
    grid = list(grid)
    cells = [
        (k, name) for k in machine_counts for name in partitioners
    ]
    if workers is not None and workers <= 1:
        if bus_dir is None and cell_callback is None:
            return run_distgnn_grid(
                graph, partitioners, machine_counts, grid, seed,
                cost_model, fault_config=fault_config,
                num_epochs=num_epochs,
            )
        records: List[DistGnnRecord] = []
        for index, (k, name) in enumerate(cells):
            cell_records = _distgnn_cell(
                graph, name, k, grid, seed, cost_model, fault_config,
                num_epochs, obs.level(), cell_offset + index, bus_dir,
            )
            records.extend(cell_records)
            if cell_callback is not None:
                cell_callback(cell_offset + index, cell_records)
        return records
    records = []
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(
                _distgnn_cell, graph, name, k, grid, seed, cost_model,
                fault_config, num_epochs, obs.level(),
                cell_offset + index, bus_dir,
            )
            for index, (k, name) in enumerate(cells)
        ]
        _collect_cells(
            pool, futures, records, cell_callback, cell_offset
        )
    return records


def run_distdgl_grid_parallel(
    graph: Graph,
    partitioners: Sequence[str],
    machine_counts: Sequence[int],
    grid: Iterable[TrainingParams],
    split: Optional[VertexSplit] = None,
    seed: int = 0,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    workers: Optional[int] = None,
    fault_config: Optional[FaultConfig] = None,
    num_epochs: int = 1,
    bus_dir: Optional[str] = None,
    cell_callback: Optional[Callable[[int, List], None]] = None,
    cell_offset: int = 0,
) -> List[DistDglRecord]:
    """Parallel :func:`~.runner.run_distdgl_grid` (same records, same order)."""
    if split is None:
        split = random_split(graph, seed=seed)
    grid = list(grid)
    cells = [
        (k, name) for k in machine_counts for name in partitioners
    ]
    if workers is not None and workers <= 1:
        if bus_dir is None and cell_callback is None:
            return run_distdgl_grid(
                graph, partitioners, machine_counts, grid,
                split=split, seed=seed, cost_model=cost_model,
                fault_config=fault_config, num_epochs=num_epochs,
            )
        records: List[DistDglRecord] = []
        for index, (k, name) in enumerate(cells):
            cell_records = _distdgl_cell(
                graph, name, k, grid, split, seed, cost_model,
                fault_config, num_epochs, obs.level(),
                cell_offset + index, bus_dir,
            )
            records.extend(cell_records)
            if cell_callback is not None:
                cell_callback(cell_offset + index, cell_records)
        return records
    records = []
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(
                _distdgl_cell, graph, name, k, grid, split, seed,
                cost_model, fault_config, num_epochs, obs.level(),
                cell_offset + index, bus_dir,
            )
            for index, (k, name) in enumerate(cells)
        ]
        _collect_cells(
            pool, futures, records, cell_callback, cell_offset
        )
    return records
