"""Experiment configuration mirroring the paper's methodology (Section 3).

Table 3 hyper-parameters: hidden dimension and feature size in
{16, 64, 512}, layers in {2, 3, 4}. Clusters of 4, 8, 16 and 32 machines.
Batch sizes for the Figure 26 sweep are the paper's 512..32768 divided by
``BATCH_SIZE_SCALE`` — our graphs are ~500x smaller than the paper's, so
the training-vertex pools are scaled accordingly (the mapping is recorded
with every result).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from itertools import product
from typing import Iterator, Optional, Sequence, Tuple

from ..cluster import FaultPlan, RecoveryPolicy
from ..comm import CommConfig, comm_grid

__all__ = [
    "TrainingParams",
    "FaultConfig",
    "CommConfig",
    "comm_grid",
    "HIDDEN_DIMENSIONS",
    "FEATURE_SIZES",
    "LAYER_COUNTS",
    "MACHINE_COUNTS",
    "PAPER_BATCH_SIZES",
    "BATCH_SIZE_SCALE",
    "scaled_batch_size",
    "parameter_grid",
    "reduced_grid",
]

#: Table 3 values.
HIDDEN_DIMENSIONS: Tuple[int, ...] = (16, 64, 512)
FEATURE_SIZES: Tuple[int, ...] = (16, 64, 512)
LAYER_COUNTS: Tuple[int, ...] = (2, 3, 4)
#: Cluster sizes used throughout the evaluation.
MACHINE_COUNTS: Tuple[int, ...] = (4, 8, 16, 32)
#: Figure 26 batch sizes (paper scale).
PAPER_BATCH_SIZES: Tuple[int, ...] = (512, 1024, 2048, 4096, 8192, 16384, 32768)
#: Our graphs are ~500x smaller; batch sizes shrink by this factor so the
#: batch-to-training-set ratio matches the paper's regime.
BATCH_SIZE_SCALE: int = 64


def scaled_batch_size(paper_batch_size: int) -> int:
    """Map a paper-scale global batch size onto our graph scale."""
    return max(paper_batch_size // BATCH_SIZE_SCALE, 1)


@dataclass(frozen=True)
class TrainingParams:
    """One GNN training configuration of the sweep."""

    feature_size: int = 64
    hidden_dim: int = 64
    num_layers: int = 3
    arch: str = "sage"
    num_classes: int = 10
    global_batch_size: int = 16  # paper-scale 1024 / BATCH_SIZE_SCALE

    def with_(self, **changes) -> "TrainingParams":
        """Copy with the given fields replaced."""
        return replace(self, **changes)

    def label(self) -> str:
        """Compact human-readable label for sweep output."""
        return (
            f"{self.arch} f{self.feature_size} h{self.hidden_dim} "
            f"L{self.num_layers}"
        )


@dataclass(frozen=True)
class FaultConfig:
    """Fault-injection settings for one sweep (plain values only, so the
    config pickles across the process-parallel runners and serializes
    into result records).

    A config expands into a :class:`~repro.cluster.FaultPlan` via
    :meth:`plan` — deterministically, from ``seed`` and the cluster
    size — and into a :class:`~repro.cluster.RecoveryPolicy` via
    :meth:`policy`, so the serial and parallel runners reconstruct
    identical failures from the same config.
    """

    crash_rate: float = 0.0
    slowdown_rate: float = 0.0
    loss_rate: float = 0.0
    slowdown_factor: float = 4.0
    checkpoint_every: int = 5
    max_retries: int = 3
    backoff_base_seconds: float = 0.05
    backoff_factor: float = 2.0
    detection_timeout_seconds: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        for label, rate in (
            ("crash_rate", self.crash_rate),
            ("slowdown_rate", self.slowdown_rate),
            ("loss_rate", self.loss_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{label} must be in [0, 1], got {rate}")
        # Policy construction validates the remaining fields.
        self.policy()

    def __bool__(self) -> bool:
        return (
            self.crash_rate > 0
            or self.slowdown_rate > 0
            or self.loss_rate > 0
        )

    def with_(self, **changes) -> "FaultConfig":
        """Copy with the given fields replaced."""
        return replace(self, **changes)

    def plan(self, num_machines: int, num_epochs: int) -> FaultPlan:
        """The deterministic fault plan for one (cluster, run) shape."""
        return FaultPlan.generate(
            num_machines,
            num_epochs,
            crash_rate=self.crash_rate,
            slowdown_rate=self.slowdown_rate,
            loss_rate=self.loss_rate,
            slowdown_factor=self.slowdown_factor,
            seed=self.seed,
        )

    def policy(self) -> RecoveryPolicy:
        """The recovery policy induced by this configuration."""
        return RecoveryPolicy(
            checkpoint_every=self.checkpoint_every,
            max_retries=self.max_retries,
            backoff_base_seconds=self.backoff_base_seconds,
            backoff_factor=self.backoff_factor,
            detection_timeout_seconds=self.detection_timeout_seconds,
        )


def parameter_grid(
    arch: str = "sage",
    feature_sizes: Optional[Sequence[int]] = None,
    hidden_dims: Optional[Sequence[int]] = None,
    layer_counts: Optional[Sequence[int]] = None,
) -> Iterator[TrainingParams]:
    """The full Table 3 cross product (27 configurations per arch)."""
    for feature, hidden, layers in product(
        feature_sizes or FEATURE_SIZES,
        hidden_dims or HIDDEN_DIMENSIONS,
        layer_counts or LAYER_COUNTS,
    ):
        yield TrainingParams(
            feature_size=feature,
            hidden_dim=hidden,
            num_layers=layers,
            arch=arch,
        )


def reduced_grid(arch: str = "sage") -> Iterator[TrainingParams]:
    """A corner-covering subset of the grid for quick benchmark runs:
    all three values of each dimension appear while the others stay at
    their middle value, plus the extreme corners.
    """
    base = TrainingParams(arch=arch)
    seen = set()
    candidates = [base]
    for feature in FEATURE_SIZES:
        candidates.append(base.with_(feature_size=feature))
    for hidden in HIDDEN_DIMENSIONS:
        candidates.append(base.with_(hidden_dim=hidden))
    for layers in LAYER_COUNTS:
        candidates.append(base.with_(num_layers=layers))
    candidates.append(
        base.with_(feature_size=512, hidden_dim=16, num_layers=4)
    )
    candidates.append(
        base.with_(feature_size=16, hidden_dim=512, num_layers=2)
    )
    for params in candidates:
        if params not in seen:
            seen.add(params)
            yield params
