"""JSON export/import of experiment records.

The benchmark harness regenerates everything from scratch, but sweeps are
expensive enough that users will want to persist records and post-process
them elsewhere (notebooks, plotting).
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import List, Sequence, Union

from .config import CommConfig, FaultConfig, TrainingParams
from .records import DistDglRecord, DistGnnRecord

__all__ = ["records_to_json", "save_records", "load_records"]

Record = Union[DistGnnRecord, DistDglRecord]

_KINDS = {
    "distgnn": DistGnnRecord,
    "distdgl": DistDglRecord,
}


def _record_kind(record: Record) -> str:
    for kind, cls in _KINDS.items():
        if isinstance(record, cls):
            return kind
    raise TypeError(f"unsupported record type {type(record).__name__}")


def records_to_json(records: Sequence[Record]) -> str:
    """Serialize records (of either engine) to a JSON string."""
    payload = []
    for record in records:
        data = dataclasses.asdict(record)
        data["params"] = dataclasses.asdict(record.params)
        if record.fault_config is not None:
            data["fault_config"] = dataclasses.asdict(record.fault_config)
        if record.comm_config is not None:
            data["comm_config"] = dataclasses.asdict(record.comm_config)
        if data.get("memory_per_machine") is not None:
            data["memory_per_machine"] = [
                float(x) for x in data["memory_per_machine"]
            ]
        payload.append({"kind": _record_kind(record), "data": data})
    return json.dumps(payload, indent=2)


def save_records(records: Sequence[Record], path: Union[str, os.PathLike]) -> None:
    """Write :func:`records_to_json` output to ``path``."""
    with open(path, "w") as handle:
        handle.write(records_to_json(records))


def load_records(path: Union[str, os.PathLike]) -> List[Record]:
    """Load records written by :func:`save_records`."""
    with open(path) as handle:
        payload = json.load(handle)
    records: List[Record] = []
    for entry in payload:
        kind = entry["kind"]
        if kind not in _KINDS:
            raise ValueError(f"unknown record kind {kind!r}")
        data = dict(entry["data"])
        data["params"] = TrainingParams(**data["params"])
        if data.get("fault_config") is not None:
            data["fault_config"] = FaultConfig(**data["fault_config"])
        if data.get("comm_config") is not None:
            data["comm_config"] = CommConfig(**data["comm_config"])
        if data.get("memory_per_machine") is not None:
            data["memory_per_machine"] = tuple(data["memory_per_machine"])
        records.append(_KINDS[kind](**data))
    return records
