"""Result records produced by the experiment runner."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from .config import CommConfig, FaultConfig, TrainingParams

__all__ = ["DistGnnRecord", "DistDglRecord"]


@dataclass(frozen=True)
class DistGnnRecord:
    """One DistGNN experiment: graph x partitioner x k x params.

    ``epoch_seconds`` is the mean over the run's *logical* epochs;
    ``makespan_seconds`` is the full simulated wall clock including
    checkpoints and recovery, so ``makespan - num_epochs * epoch_seconds``
    is the run's fault overhead ("time-to-accuracy under failures").
    """

    graph: str
    partitioner: str
    num_machines: int
    params: TrainingParams
    epoch_seconds: float
    forward_seconds: float
    backward_seconds: float
    sync_seconds: float
    network_bytes: float
    total_memory_bytes: float
    memory_balance: float
    replication_factor: float
    edge_balance: float
    vertex_balance: float
    partitioning_seconds: float
    out_of_memory: bool = False
    memory_per_machine: Optional[tuple] = None
    # Fault-sweep fields (defaults keep pre-fault records loadable).
    num_epochs: int = 1
    makespan_seconds: float = 0.0
    crashes: int = 0
    slowdowns: int = 0
    lost_messages: int = 0
    reexecuted_epochs: int = 0
    recovery_seconds: float = 0.0
    checkpoint_seconds: float = 0.0
    fault_config: Optional[FaultConfig] = None
    # Comm-sweep fields (defaults keep pre-comm records loadable).
    comm_config: Optional[CommConfig] = None
    traffic_saved_bytes: float = 0.0
    codec_seconds: float = 0.0
    accuracy_proxy_error: float = 0.0
    staleness_epochs: int = 0
    #: Deterministic telemetry summary (phase totals, traffic, marks),
    #: populated only when observability is enabled for the run.
    obs_metrics: Optional[Dict[str, object]] = field(
        hash=False, default=None
    )


@dataclass(frozen=True)
class DistDglRecord:
    """One DistDGL experiment: graph x partitioner x k x params.

    Fault fields mirror :class:`DistGnnRecord`, with the mini-batch
    recovery shape: retried steps with exponential backoff and graceful
    degradation to the surviving workers instead of checkpoint/restart.
    """

    graph: str
    partitioner: str
    num_machines: int
    params: TrainingParams
    epoch_seconds: float
    phase_seconds: Dict[str, float] = field(hash=False, default=None)
    network_bytes: float = 0.0
    remote_input_vertices: int = 0
    local_input_vertices: int = 0
    input_vertex_balance: float = 1.0
    training_time_balance: float = 1.0
    edge_cut: float = 0.0
    vertex_balance: float = 1.0
    training_vertex_balance: float = 1.0
    partitioning_seconds: float = 0.0
    # Fault-sweep fields (defaults keep pre-fault records loadable).
    num_epochs: int = 1
    makespan_seconds: float = 0.0
    crashes: int = 0
    slowdowns: int = 0
    lost_messages: int = 0
    retries: int = 0
    degraded_steps: int = 0
    recovery_seconds: float = 0.0
    fault_config: Optional[FaultConfig] = None
    # Comm-sweep fields (defaults keep pre-comm records loadable).
    comm_config: Optional[CommConfig] = None
    traffic_saved_bytes: float = 0.0
    codec_seconds: float = 0.0
    accuracy_proxy_error: float = 0.0
    cache_hit_rate: float = 0.0
    #: Deterministic telemetry summary (phase totals, traffic, marks),
    #: populated only when observability is enabled for the run.
    obs_metrics: Optional[Dict[str, object]] = field(
        hash=False, default=None
    )
