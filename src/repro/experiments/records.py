"""Result records produced by the experiment runner."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from .config import TrainingParams

__all__ = ["DistGnnRecord", "DistDglRecord"]


@dataclass(frozen=True)
class DistGnnRecord:
    """One DistGNN experiment: graph x partitioner x k x params."""

    graph: str
    partitioner: str
    num_machines: int
    params: TrainingParams
    epoch_seconds: float
    forward_seconds: float
    backward_seconds: float
    sync_seconds: float
    network_bytes: float
    total_memory_bytes: float
    memory_balance: float
    replication_factor: float
    edge_balance: float
    vertex_balance: float
    partitioning_seconds: float
    out_of_memory: bool = False
    memory_per_machine: Optional[tuple] = None


@dataclass(frozen=True)
class DistDglRecord:
    """One DistDGL experiment: graph x partitioner x k x params."""

    graph: str
    partitioner: str
    num_machines: int
    params: TrainingParams
    epoch_seconds: float
    phase_seconds: Dict[str, float] = field(hash=False, default=None)
    network_bytes: float = 0.0
    remote_input_vertices: int = 0
    local_input_vertices: int = 0
    input_vertex_balance: float = 1.0
    training_time_balance: float = 1.0
    edge_cut: float = 0.0
    vertex_balance: float = 1.0
    training_vertex_balance: float = 1.0
    partitioning_seconds: float = 0.0
