"""Plain-text reporting of tables and figure series.

The benchmark harness prints the same rows/series as the paper's figures
and tables; these helpers keep that output consistent and readable.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["format_table", "print_table", "format_series", "print_series"]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str = ""
) -> str:
    """Fixed-width table; cells are str()-ed, floats get 2 decimals."""
    def fmt(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.2f}"
        return str(cell)

    text_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in text_rows)) if text_rows
        else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append(
            "  ".join(c.rjust(w) for c, w in zip(row, widths))
        )
    return "\n".join(lines)


def print_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str = ""
) -> None:
    """Print :func:`format_table` output with a leading blank line."""
    print()
    print(format_table(headers, rows, title))


def format_series(
    name: str, xs: Sequence, ys: Sequence[float], unit: str = ""
) -> str:
    """One figure series as ``name: x=y x=y ...``."""
    points = " ".join(
        f"{x}={y:.3g}{unit}" for x, y in zip(xs, ys)
    )
    return f"{name:>10s}: {points}"


def print_series(
    title: str, series: Dict[str, Sequence[float]], xs: Sequence, unit: str = ""
) -> None:
    """Print one :func:`format_series` line per entry of ``series``."""
    print()
    print(title)
    for name, ys in series.items():
        print(format_series(name, xs, ys, unit))
