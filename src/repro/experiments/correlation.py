"""Correlation helpers for the paper's R^2 claims (Figures 3, 5, 9)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["r_squared", "pearson"]


def pearson(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson correlation coefficient."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.size < 2:
        raise ValueError("need two equal-length series of >= 2 points")
    if x.std() == 0 or y.std() == 0:
        raise ValueError("constant series has no correlation")
    return float(np.corrcoef(x, y)[0, 1])


def r_squared(x: Sequence[float], y: Sequence[float]) -> float:
    """Coefficient of determination of the linear fit y ~ x."""
    return pearson(x, y) ** 2
