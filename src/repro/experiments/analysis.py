"""Statistical summaries over experiment records.

The paper's "distribution" figures (7, 9, 16) report, per cell, the
spread of a metric over all sweep configurations; these helpers compute
those summaries from flat record lists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Sequence, Tuple

import numpy as np

__all__ = [
    "DistributionSummary",
    "summarize",
    "speedup_summary",
    "robustness_summary",
]


@dataclass(frozen=True)
class DistributionSummary:
    """Five-number-ish summary of one cell's metric distribution."""

    mean: float
    minimum: float
    q25: float
    median: float
    q75: float
    maximum: float
    count: int

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "DistributionSummary":
        """Summarize a non-empty sequence of values."""
        if not len(values):
            raise ValueError("cannot summarize an empty distribution")
        arr = np.asarray(values, dtype=np.float64)
        return cls(
            mean=float(arr.mean()),
            minimum=float(arr.min()),
            q25=float(np.percentile(arr, 25)),
            median=float(np.percentile(arr, 50)),
            q75=float(np.percentile(arr, 75)),
            maximum=float(arr.max()),
            count=int(arr.size),
        )

    @property
    def spread(self) -> float:
        """Range of the distribution (maximum minus minimum)."""
        return self.maximum - self.minimum


def summarize(
    records: Sequence,
    metric: Callable[[object], float],
    group_by: Callable[[object], Tuple] = lambda r: (
        r.graph, r.partitioner, r.num_machines,
    ),
) -> Dict[Tuple, DistributionSummary]:
    """Group records and summarize ``metric`` per group."""
    groups: Dict[Tuple, list] = {}
    for record in records:
        groups.setdefault(group_by(record), []).append(metric(record))
    return {
        key: DistributionSummary.from_values(values)
        for key, values in groups.items()
    }


def speedup_summary(
    records: Sequence,
    baseline: str = "random",
) -> Dict[Tuple, DistributionSummary]:
    """Speedup-over-baseline distributions per (graph, partitioner, k).

    The baseline record for every (graph, k, params) combination must be
    present in ``records``.
    """
    base = {
        (r.graph, r.num_machines, r.params): r.epoch_seconds
        for r in records
        if r.partitioner.lower() == baseline
    }
    groups: Dict[Tuple, list] = {}
    for r in records:
        reference = base.get((r.graph, r.num_machines, r.params))
        if reference is None:
            raise ValueError(
                f"missing {baseline!r} baseline for "
                f"({r.graph}, {r.num_machines}, {r.params.label()})"
            )
        key = (r.graph, r.partitioner, r.num_machines)
        groups.setdefault(key, []).append(reference / r.epoch_seconds)
    return {
        key: DistributionSummary.from_values(values)
        for key, values in groups.items()
    }


def robustness_summary(
    records: Sequence,
) -> Dict[Tuple, DistributionSummary]:
    """Recovery-overhead distributions per (graph, partitioner, k).

    The metric is the fraction of the run's makespan spent on recovery
    (failure detection, backoff, restore/restart, replayed epochs) —
    skewed partitions lose more state per crash and re-balance worse
    after degradation, so this is the robustness axis of a fault sweep.
    Records without fault accounting (``makespan_seconds == 0``)
    contribute an overhead of 0.
    """

    def overhead(record) -> float:
        if record.makespan_seconds <= 0:
            return 0.0
        return record.recovery_seconds / record.makespan_seconds

    return summarize(records, overhead)
