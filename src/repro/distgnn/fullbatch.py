"""Real (executed) distributed full-batch GraphSAGE training.

This is the functional counterpart of :class:`~repro.distgnn.engine.
DistGnnEngine`'s cost accounting: it actually trains a GraphSAGE model
over an edge partition, computing each layer's neighbour aggregation as
*per-machine partial aggregates* over each partition's local edges which
are then reduced across replicas — exactly DistGNN's communication
pattern. The result is bit-wise equivalent (up to float association) to
centralized full-graph training, which the test suite asserts.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..gnn import Adam, GnnModel, accuracy, build_model, softmax_cross_entropy
from ..gnn.activations import relu, relu_grad
from ..partitioning import EdgePartition

__all__ = ["DistributedFullBatchTrainer"]


class DistributedFullBatchTrainer:
    """Trains GraphSAGE full-batch over an edge partition.

    Parameters
    ----------
    partition:
        Vertex-cut partition; each partition plays one machine.
    features / labels:
        Global ``(n, f)`` features and ``(n,)`` integer labels.
    train_mask:
        Boolean mask of training vertices (paper: 10% random split).
    hidden_dim / num_layers / num_classes / seed:
        Model shape, as in the paper's sweeps.
    """

    def __init__(
        self,
        partition: EdgePartition,
        features: np.ndarray,
        labels: np.ndarray,
        train_mask: np.ndarray,
        hidden_dim: int = 32,
        num_layers: int = 2,
        num_classes: Optional[int] = None,
        learning_rate: float = 0.01,
        seed: int = 0,
    ) -> None:
        n = partition.graph.num_vertices
        if features.shape[0] != n or labels.shape[0] != n:
            raise ValueError("features/labels must cover every vertex")
        self.partition = partition
        self.features = features.astype(np.float64)
        self.labels = labels.astype(np.int64)
        self.train_mask = train_mask.astype(bool)
        if num_classes is None:
            num_classes = int(labels.max()) + 1
        self.model: GnnModel = build_model(
            "sage",
            features.shape[1],
            hidden_dim,
            num_classes,
            num_layers,
            seed=seed,
        )
        self.optimizer = Adam(lr=learning_rate)
        # Per-machine local edge arrays: the distributed aggregation units.
        self._machine_edges: List[np.ndarray] = [
            partition.partition_edges(p)
            for p in range(partition.num_partitions)
        ]
        degrees = np.zeros(n, dtype=np.int64)
        for edges in self._machine_edges:
            np.add.at(degrees, edges[:, 0], 1)
            np.add.at(degrees, edges[:, 1], 1)
        self._degrees = np.maximum(degrees, 1).astype(np.float64)
        self._cache: Dict[str, list] = {}

    # ------------------------------------------------------------------
    # The distributed primitive
    # ------------------------------------------------------------------
    def _aggregate(self, states: np.ndarray) -> np.ndarray:
        """Sum neighbour states via per-machine partial aggregates.

        Machine ``i`` scatters messages along its local edges only; the
        per-vertex partials are then reduced across machines (in DistGNN:
        replicas push partials to the vertex master). The reduction over
        machine-partials is the line below the loop.
        """
        total = np.zeros_like(states)
        partial = np.empty_like(states)
        for edges in self._machine_edges:
            if edges.size == 0:
                continue
            partial.fill(0.0)
            np.add.at(partial, edges[:, 0], states[edges[:, 1]])
            np.add.at(partial, edges[:, 1], states[edges[:, 0]])
            total += partial  # master-side reduction of this machine's push
        return total

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def _forward(self) -> np.ndarray:
        h = self.features
        inputs: list = []
        means: list = []
        pre_acts: list = []
        for i, layer in enumerate(self.model.layers):
            mean = self._aggregate(h) / self._degrees[:, None]
            out = (
                h @ layer.params["w_self"]
                + mean @ layer.params["w_neigh"]
                + layer.params["bias"]
            )
            inputs.append(h)
            means.append(mean)
            if i < len(self.model.layers) - 1:
                pre_acts.append(out)
                h = relu(out)
            else:
                h = out
        self._cache = {"inputs": inputs, "means": means, "pre": pre_acts}
        return h

    def _backward(self, d_logits: np.ndarray) -> None:
        upstream = d_logits
        layers = self.model.layers
        for i in reversed(range(len(layers))):
            if i < len(layers) - 1:
                upstream = relu_grad(self._cache["pre"][i], upstream)
            layer = layers[i]
            x = self._cache["inputs"][i]
            mean = self._cache["means"][i]
            layer.grads["w_self"] += x.T @ upstream
            layer.grads["w_neigh"] += mean.T @ upstream
            layer.grads["bias"] += upstream.sum(axis=0)
            d_mean = upstream @ layer.params["w_neigh"].T
            d_sums = d_mean / self._degrees[:, None]
            # The gradient aggregation reuses the same distributed
            # primitive (the adjacency is symmetric).
            upstream = upstream @ layer.params["w_self"].T
            upstream += self._aggregate(d_sums)
        self._cache = {}

    def train_epoch(self) -> float:
        """One full-batch epoch; returns the training loss."""
        self.model.zero_grad()
        logits = self._forward()
        loss, d_logits = softmax_cross_entropy(
            logits[self.train_mask], self.labels[self.train_mask]
        )
        d_full = np.zeros_like(logits)
        d_full[self.train_mask] = d_logits
        self._backward(d_full)
        self.optimizer.step(self.model.parameters())
        return loss

    def train(self, num_epochs: int) -> List[float]:
        """Train ``num_epochs`` full-batch epochs and return the losses."""
        return [self.train_epoch() for _ in range(num_epochs)]

    def evaluate(self, mask: np.ndarray) -> float:
        """Full-graph accuracy over the vertices selected by ``mask``."""
        logits = self._forward()
        self._cache = {}
        return accuracy(logits[mask], self.labels[mask])
