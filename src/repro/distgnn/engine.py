"""DistGNN-style full-batch distributed training engine.

Models the system the paper pairs with *edge partitioning* (vertex-cut):
every machine owns one edge partition; cut vertices are replicated, one
replica per vertex being the *master* (it holds the authoritative state and
runs the neural-network update). Each epoch consists of, per layer:

1. local partial aggregation over the partition's edges,
2. replica synchronisation (partial aggregates to masters, updated
   representations back to replicas) — the traffic the replication factor
   governs,
3. the dense transform on the masters,

followed by the backward mirror of the same phases, a gradient all-reduce,
and the optimizer step. Phase times come from the cost model; the epoch
time is the sum over barrier-separated phases of the slowest machine
(straggler) in each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..cluster import Cluster, FaultPlan, FaultSummary, RecoveryPolicy
from ..comm import CommSummary, make_codec
from ..costmodel import (
    DEFAULT_COST_MODEL,
    BACKWARD_FACTOR,
    CostModel,
    aggregation_bytes,
    gemm_flops,
)
from ..obs import api as obs
from ..obs.profiling import capture as profiling
from ..partitioning import EdgePartition

__all__ = ["DistGnnEngine", "EpochBreakdown"]


@dataclass(frozen=True)
class EpochBreakdown:
    """Straggler seconds per phase for one full-batch epoch."""

    forward_seconds: float
    backward_seconds: float
    sync_seconds: float
    optimizer_seconds: float
    network_bytes: float

    @property
    def epoch_seconds(self) -> float:
        """Total simulated epoch time (forward + backward + sync + optimizer)."""
        return (
            self.forward_seconds
            + self.backward_seconds
            + self.sync_seconds
            + self.optimizer_seconds
        )


class DistGnnEngine:
    """Cost-accounted full-batch training over an edge partition.

    Parameters mirror the paper's sweep dimensions (Table 3). DistGNN only
    supports GraphSAGE (paper Section 4.1), so no ``arch`` parameter.
    """

    def __init__(
        self,
        partition: EdgePartition,
        feature_size: int,
        hidden_dim: int,
        num_layers: int,
        num_classes: int = 10,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        machine_speeds: np.ndarray | None = None,
        compression: str = "none",
        refresh_interval: int = 1,
    ) -> None:
        """``compression`` names a :mod:`repro.comm` codec applied to
        the halo syncs and the gradient all-reduce; ``refresh_interval``
        is cd-r delayed aggregation (Md et al., SC 2021): halo syncs run
        only every r-th epoch and the replicas compute on stale
        aggregates in between. The defaults execute the exact baseline
        code path bit for bit.
        """
        if feature_size <= 0 or hidden_dim <= 0 or num_layers <= 0:
            raise ValueError("model dimensions must be positive")
        if refresh_interval < 1:
            raise ValueError("refresh_interval must be >= 1")
        self.partition = partition
        self.feature_size = feature_size
        self.hidden_dim = hidden_dim
        self.num_layers = num_layers
        self.num_classes = num_classes
        self.cost_model = cost_model
        self.num_machines = partition.num_partitions
        self.refresh_interval = refresh_interval
        self._codec = make_codec(compression)
        #: Comm-reduction accounting (raw vs wire bytes, codec time,
        #: stale epochs) accumulated over every simulated epoch.
        self.comm = CommSummary(
            codec_error=(
                0.0 if self._codec.is_null()
                else self._codec.error_per_value
            )
        )
        self._epoch_index = 0

        self.dims = (
            [feature_size] + [hidden_dim] * (num_layers - 1) + [num_classes]
        )
        self.cluster = Cluster(
            self.num_machines, cost_model, machine_speeds=machine_speeds
        )
        #: Counters of the last faulty run (all zero when none was run).
        self.fault_summary = FaultSummary()
        self._collect_partition_stats()
        self._account_memory()

    # ------------------------------------------------------------------
    # Partition statistics
    # ------------------------------------------------------------------
    def _collect_partition_stats(self) -> None:
        part = self.partition
        k = self.num_machines
        self.edges_per_machine = part.edge_counts().astype(np.float64)
        self.vertices_per_machine = part.vertex_counts().astype(np.float64)
        copies = part.copies_per_vertex()
        masters = part.masters()
        self.masters_per_machine = np.bincount(
            masters, minlength=k
        ).astype(np.float64)
        # Per machine: replicas that are NOT the master (they sync).
        pairs = part.replica_pairs()
        is_master_replica = masters[pairs[:, 1]] == pairs[:, 0]
        self.nonmaster_per_machine = np.bincount(
            pairs[~is_master_replica, 0], minlength=k
        ).astype(np.float64)
        # Per machine: sync counterparties of the masters it hosts:
        # sum over mastered vertices of (copies - 1).
        excess = (copies[pairs[:, 1]] - 1) * is_master_replica
        self.master_excess_per_machine = np.bincount(
            pairs[:, 0], weights=excess, minlength=k
        ).astype(np.float64)
        # Pairwise sync topology: pair_counts[i, j] = non-master replicas
        # hosted on machine i whose master lives on machine j. Row sums
        # equal nonmaster_per_machine, column sums master_excess — the
        # basis of the src x dst traffic matrices.
        nonmaster_pairs = pairs[~is_master_replica]
        flat = nonmaster_pairs[:, 0] * k + masters[nonmaster_pairs[:, 1]]
        self.pair_counts = (
            np.bincount(flat, minlength=k * k)
            .reshape(k, k)
            .astype(np.float64)
        )

        self.num_params = sum(
            2 * self.dims[i] * self.dims[i + 1] + self.dims[i + 1]
            for i in range(self.num_layers)
        )

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def _account_memory(self) -> None:
        cm = self.cost_model
        activation_dims = sum(self.dims[1:])  # one stored output per layer
        for i in range(self.num_machines):
            edges = self.edges_per_machine[i]
            vertices = self.vertices_per_machine[i]
            # Forward + reverse CSR over the local edges plus per-edge halo
            # metadata (DistGNN tracks, per edge, whether the counterpart
            # is a replica and where its master lives).
            self.cluster.allocate(
                i, "structure", (5 * edges + 2 * vertices) * cm.index_bytes
            )
            self.cluster.allocate(
                i, "features", cm.feature_bytes(vertices, self.feature_size)
            )
            # Intermediate representations are kept for the backward pass,
            # one per vertex copy and layer (gradients are transient: they
            # live only while the layer's backward step runs).
            self.cluster.allocate(
                i,
                "activations",
                cm.feature_bytes(vertices, activation_dims),
            )
            # Model + optimizer state is identical on every machine and
            # partitioner-independent; at the paper's graph scale it is a
            # negligible share of the footprint (<0.1%), so including it
            # at our deliberately reduced graph scale would only distort
            # the relative footprints the study compares. It is therefore
            # excluded from the ledger.
            # Halo exchanges are streamed in chunks; the resident buffer
            # holds a slice of the replica payload, not all of it.
            max_dim = max(self.dims)
            chunk_fraction = 0.1
            self.cluster.allocate(
                i,
                "comm-buffers",
                2
                * chunk_fraction
                * cm.feature_bytes(self.nonmaster_per_machine[i], max_dim),
            )

    def memory_per_machine(self) -> np.ndarray:
        """Peak bytes per machine (paper's memory footprint metric)."""
        return self.cluster.memory_per_machine()

    def total_memory(self) -> float:
        """Total peak memory across all machines."""
        return float(self.memory_per_machine().sum())

    def memory_utilization_balance(self) -> float:
        """max/mean of per-machine peak memory (paper Figure 5)."""
        return self.cluster.memory_utilization_balance()

    def check_memory_budget(self) -> None:
        """Raise OutOfMemoryError when a machine exceeds the budget."""
        self.cluster.check_memory_budget()

    # ------------------------------------------------------------------
    # Epoch simulation
    # ------------------------------------------------------------------
    def _layer_compute_seconds(
        self, dim_in: int, dim_out: int
    ) -> np.ndarray:
        """Per-machine forward seconds for one layer."""
        cm = self.cost_model
        # Aggregation: every local edge moves a dim_in message both ways.
        agg_bytes = aggregation_bytes(
            2 * self.edges_per_machine, dim_in, cm.float_bytes
        )
        agg_flops = 2.0 * 2 * self.edges_per_machine * dim_in
        # Dense transform on mastered vertices (two GEMMs for SAGE).
        transform = 2.0 * gemm_flops(
            self.masters_per_machine, dim_in, dim_out
        )
        return (
            cm.memory_seconds(agg_bytes)
            + cm.compute_seconds(agg_flops + transform)
        )

    def _layer_sync(
        self, dim_in: int, dim_out: int
    ) -> tuple[np.ndarray, np.ndarray, float]:
        """Per-machine (sent, received) bytes for one layer's halo sync."""
        cm = self.cost_model
        push = cm.feature_bytes(self.nonmaster_per_machine, dim_in)
        push_recv = cm.feature_bytes(self.master_excess_per_machine, dim_in)
        bcast = cm.feature_bytes(self.master_excess_per_machine, dim_out)
        bcast_recv = cm.feature_bytes(self.nonmaster_per_machine, dim_out)
        sent = push + bcast
        received = push_recv + bcast_recv
        return sent, received, float(sent.sum())

    def _layer_sync_matrix(self, dim_in: int, dim_out: int) -> np.ndarray:
        """``src x dst`` bytes of one layer's halo sync.

        Replica machine ``i`` pushes ``dim_in`` partial aggregates to
        the master machine ``j`` and receives the ``dim_out`` result
        back, so the matrix is the pair-count matrix weighted one way
        plus its transpose weighted the other. Row/column sums equal the
        sent/received vectors of :meth:`_layer_sync`; the backward sync
        is the same matrix with the dimensions swapped.
        """
        cm = self.cost_model
        return (
            cm.feature_bytes(self.pair_counts, dim_in)
            + cm.feature_bytes(self.pair_counts, dim_out).T
        )

    def _allreduce_matrix(self, grad_bytes: float) -> np.ndarray:
        """``src x dst`` bytes of the ring gradient all-reduce."""
        k = self.num_machines
        matrix = np.zeros((k, k), dtype=np.float64)
        if k > 1:
            per_link = 2.0 * grad_bytes * (k - 1) / k
            for i in range(k):
                matrix[i, (i + 1) % k] = per_link
        return matrix

    def _run_sync_phase(
        self,
        name: str,
        sent: np.ndarray,
        received: np.ndarray,
        matrix: np.ndarray,
    ) -> tuple[float, float]:
        """Run one halo-sync comm phase through the codec.

        Returns ``(straggler seconds, wire bytes)``. The null codec
        takes the exact baseline path; otherwise the payload shrinks
        by the codec ratio and every machine is charged a ``codec``
        compute phase for its encode+decode passes over the raw bytes.
        """
        codec = self._codec
        raw_total = float(sent.sum())
        self.comm.raw_bytes += raw_total
        if codec.is_null():
            self.comm.wire_bytes += raw_total
            seconds = self.cluster.run_comm_phase(
                name, sent, received, matrix=matrix
            )
            return seconds, raw_total
        codec_seconds = (
            codec.work_factor * (sent + received)
            / self.cost_model.memory_bandwidth
        )
        self.comm.codec_seconds += float(codec_seconds.sum())
        wire_sent = codec.wire_bytes(sent)
        wire_total = float(wire_sent.sum())
        self.comm.wire_bytes += wire_total
        seconds = self.cluster.run_compute_phase("codec", codec_seconds)
        seconds += self.cluster.run_comm_phase(
            name,
            wire_sent,
            codec.wire_bytes(received),
            matrix=codec.wire_bytes(matrix),
        )
        return seconds, wire_total

    def simulate_epoch(
        self, speed_multipliers: np.ndarray | None = None
    ) -> EpochBreakdown:
        """Account one epoch; updates the cluster timeline and fabric.

        ``speed_multipliers`` (optional, per machine, >= 1) stretch a
        machine's compute phases — transient stragglers injected by a
        :class:`~repro.cluster.FaultPlan` slowdown event.

        With ``refresh_interval`` r > 1, only every r-th epoch runs
        the halo syncs (the first epoch always does); the epochs in
        between compute on stale replica aggregates, moving no halo
        bytes and paying no sync time — the gradient all-reduce still
        runs every epoch, as in cd-r, so the model stays consistent.
        """
        cm = self.cost_model
        cluster = self.cluster
        codec = self._codec
        if speed_multipliers is None:
            stretch = np.ones(self.num_machines)
        else:
            stretch = np.asarray(speed_multipliers, dtype=np.float64)
        stale = (
            self.refresh_interval > 1
            and self._epoch_index % self.refresh_interval != 0
        )
        self._epoch_index += 1
        self.comm.total_epochs += 1
        if stale:
            self.comm.stale_epochs += 1
        forward = backward = 0.0
        total_bytes = 0.0
        for layer in range(self.num_layers):
            dim_in, dim_out = self.dims[layer], self.dims[layer + 1]
            compute = self._layer_compute_seconds(dim_in, dim_out) * stretch
            sent, received, layer_bytes = self._layer_sync(dim_in, dim_out)

            forward += cluster.run_compute_phase(
                f"forward-l{layer}", compute
            )
            if not stale:
                seconds, wire = self._run_sync_phase(
                    f"forward-sync-l{layer}", sent, received,
                    self._layer_sync_matrix(dim_in, dim_out),
                )
                forward += seconds
                total_bytes += wire
            else:
                # Skipped sync: the bytes it would have moved are the
                # delayed-aggregation saving.
                self.comm.raw_bytes += layer_bytes
            # Backward mirrors the forward: same sync volume (gradients
            # flow along the same replica links), ~2x the compute.
            backward += cluster.run_compute_phase(
                f"backward-l{layer}", BACKWARD_FACTOR * compute
            )
            if not stale:
                seconds, wire = self._run_sync_phase(
                    f"backward-sync-l{layer}", received, sent,
                    self._layer_sync_matrix(dim_out, dim_in),
                )
                backward += seconds
                total_bytes += wire
            else:
                self.comm.raw_bytes += float(received.sum())

        grad_bytes = self.num_params * cm.float_bytes
        ring_factor = 2.0 * max(self.num_machines - 1, 0)
        self.comm.raw_bytes += grad_bytes * ring_factor
        if codec.is_null():
            wire_grad_bytes = grad_bytes
        else:
            wire_grad_bytes = codec.wire_bytes(grad_bytes)
            # Each machine encodes its own gradient once and decodes
            # the reduced result once.
            codec_seconds = np.full(
                self.num_machines,
                codec.codec_seconds(2.0 * grad_bytes, cm),
            )
            self.comm.codec_seconds += float(codec_seconds.sum())
            backward += cluster.run_compute_phase("codec", codec_seconds)
        self.comm.wire_bytes += wire_grad_bytes * ring_factor
        sync_seconds = cm.allreduce_seconds(
            wire_grad_bytes, self.num_machines
        )
        cluster.add_phase(
            "gradient-allreduce",
            np.full(self.num_machines, sync_seconds),
        )
        allreduce_matrix = self._allreduce_matrix(wire_grad_bytes)
        cluster.record_traffic(
            "gradient-allreduce",
            allreduce_matrix.sum(axis=1),
            allreduce_matrix.sum(axis=0),
            matrix=allreduce_matrix,
        )
        total_bytes += wire_grad_bytes * ring_factor

        optimizer_seconds = cm.compute_seconds(6.0 * self.num_params)
        cluster.add_phase(
            "optimizer",
            np.full(self.num_machines, optimizer_seconds) * stretch,
        )
        breakdown = EpochBreakdown(
            forward_seconds=forward,
            backward_seconds=backward,
            sync_seconds=sync_seconds,
            optimizer_seconds=optimizer_seconds,
            network_bytes=total_bytes,
        )
        if obs.enabled():
            obs.count("distgnn.epochs")
            obs.observe("distgnn.epoch_seconds", breakdown.epoch_seconds)
            obs.count("distgnn.network_bytes", total_bytes)
        return breakdown

    # ------------------------------------------------------------------
    # Fault handling
    # ------------------------------------------------------------------
    def _model_state_bytes(self) -> float:
        """Checkpoint payload per machine: weights + two Adam moments."""
        return 3.0 * self.num_params * self.cost_model.float_bytes

    def _partition_state_bytes(self) -> np.ndarray:
        """Per-machine graph + feature bytes a restarted worker reloads.

        This is where partition skew hurts recovery: the machine holding
        the biggest partition is the restore straggler.
        """
        cm = self.cost_model
        structure = (
            5 * self.edges_per_machine + 2 * self.vertices_per_machine
        ) * cm.index_bytes
        features = cm.feature_bytes(
            self.vertices_per_machine, self.feature_size
        )
        return structure + features

    def _run_crash_recovery(
        self, epoch: int, crashes, recovery: RecoveryPolicy
    ) -> None:
        """Charge detection, restore and replay for a crash at ``epoch``.

        The crash strikes at the epoch boundary: everything since the
        last checkpoint — ``epoch % checkpoint_every`` epochs — is lost
        and re-executed (as ``replay:*`` phases), after a restore whose
        cost covers model state plus the crashed machines' partition
        state.
        """
        cm = self.cost_model
        cluster = self.cluster
        k = self.num_machines
        crashed = sorted({event.machine % k for event in crashes})
        for machine in crashed:
            cluster.machines[machine].record_crash()
            cluster.timeline.add_mark(
                f"crash:machine-{machine}", "fault", machine
            )
        self.fault_summary.crashes += len(crashes)
        obs.count("distgnn.fault_events", len(crashes), kind="crash")
        cluster.add_phase(
            "fault-detect",
            np.full(k, recovery.detection_timeout_seconds),
            interrupted=True,
        )
        restore = np.full(k, cm.transfer_seconds(self._model_state_bytes()))
        partition_state = self._partition_state_bytes()
        for machine in crashed:
            restore[machine] = cm.transfer_seconds(
                self._model_state_bytes() + float(partition_state[machine])
            )
            cluster.machines[machine].record_restart()
        cluster.add_phase("fault-restore", restore)
        cluster.timeline.add_mark("restore-checkpoint", "recovery")
        lost_epochs = epoch % recovery.checkpoint_every
        self.fault_summary.reexecuted_epochs += lost_epochs
        obs.count("distgnn.replayed_epochs", lost_epochs)
        cluster.phase_prefix = "replay:"
        try:
            for _ in range(lost_epochs):
                self.simulate_epoch()
        finally:
            cluster.phase_prefix = ""

    def simulate_training(
        self,
        num_epochs: int,
        fault_plan: FaultPlan | None = None,
        recovery: RecoveryPolicy | None = None,
    ) -> List[EpochBreakdown]:
        """Run ``num_epochs`` (full-batch epochs are deterministic).

        With a ``fault_plan``, injected crashes trigger checkpoint/restart
        recovery under ``recovery`` (defaulted), slowdowns stretch the
        affected machines' compute phases, and lost messages charge a
        retransmit stall. The returned breakdowns cover the ``num_epochs``
        *logical* epochs; recovery work appears in the cluster timeline
        (``fault-*``, ``replay:*`` and ``checkpoint`` phases) and in
        :attr:`fault_summary`.
        """
        if fault_plan is None and recovery is None:
            with profiling.profile_scope("distgnn.epochs"):
                return [
                    self.simulate_epoch() for _ in range(num_epochs)
                ]
        if fault_plan is None:
            fault_plan = FaultPlan()
        if recovery is None:
            recovery = RecoveryPolicy()
        cm = self.cost_model
        cluster = self.cluster
        k = self.num_machines
        self.fault_summary = FaultSummary()
        breakdowns: List[EpochBreakdown] = []
        for epoch in range(num_epochs):
            crashes = fault_plan.crashes_at(epoch)
            if crashes:
                self._run_crash_recovery(epoch, crashes, recovery)
            slowdowns = fault_plan.slowdowns_at(epoch)
            stretch = np.ones(k)
            for event in slowdowns:
                cluster.timeline.add_mark(
                    f"slowdown:machine-{event.machine % k}",
                    "fault",
                    event.machine % k,
                )
                stretch[event.machine % k] *= event.magnitude
            self.fault_summary.slowdowns += len(slowdowns)
            obs.count(
                "distgnn.fault_events", len(slowdowns), kind="slowdown"
            )
            breakdowns.append(
                self.simulate_epoch(
                    speed_multipliers=stretch if slowdowns else None
                )
            )
            for event in fault_plan.losses_at(epoch):
                machine = event.machine % k
                cluster.fabric.record_lost_message(machine)
                cluster.timeline.add_mark(
                    f"lost-message:machine-{machine}", "fault", machine
                )
                retransmit = np.zeros(k)
                retransmit[machine] = (
                    recovery.detection_timeout_seconds
                    + cm.transfer_seconds(
                        cm.feature_bytes(
                            self.nonmaster_per_machine[machine],
                            self.feature_size,
                        )
                    )
                )
                cluster.add_phase("fault-retransmit", retransmit)
                self.fault_summary.lost_messages += 1
                obs.count("distgnn.fault_events", kind="lost-message")
            if (epoch + 1) % recovery.checkpoint_every == 0 \
                    and epoch + 1 < num_epochs:
                cluster.add_phase(
                    "checkpoint",
                    np.full(
                        k, cm.transfer_seconds(self._model_state_bytes())
                    ),
                )
                cluster.timeline.add_mark("checkpoint", "checkpoint")
                self.fault_summary.checkpoints += 1
                obs.count("distgnn.checkpoints")
        return breakdowns

    def phase_summary(self) -> Dict[str, float]:
        """Total simulated seconds per phase name."""
        return self.cluster.timeline.phase_totals()

    def comm_summary(self) -> CommSummary:
        """Accumulated communication-reduction accounting."""
        return self.comm
