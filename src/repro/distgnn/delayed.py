"""Delayed partial aggregation (DistGNN's cd-r optimisation).

Md et al., SC 2021, Section 4: instead of synchronising every replica's
partial aggregate every epoch, DistGNN's ``cd-r`` variants let each
machine reuse *stale* remote partials for up to ``r`` epochs, cutting the
halo-synchronisation traffic by ~``(r-1)/r`` at the cost of slightly
stale gradients. The paper under reproduction benchmarks the synchronous
variant; this module implements cd-r in the executable trainer as a
documented extension, so the communication/accuracy trade-off can be
studied end to end.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..partitioning import EdgePartition
from .fullbatch import DistributedFullBatchTrainer

__all__ = ["DelayedAggregationTrainer"]


class DelayedAggregationTrainer(DistributedFullBatchTrainer):
    """Full-batch GraphSAGE with cd-r delayed partial aggregation.

    ``refresh_interval = 1`` degenerates to the exact synchronous trainer
    (and the test suite asserts bit-equality in that case). For
    ``r > 1``, each machine refreshes its *remote* partial-aggregate
    contribution only every ``r`` epochs; in between, the cached stale
    partials are reused and only the local partial is recomputed.
    """

    def __init__(
        self,
        partition: EdgePartition,
        features: np.ndarray,
        labels: np.ndarray,
        train_mask: np.ndarray,
        refresh_interval: int = 2,
        **kwargs,
    ) -> None:
        if refresh_interval < 1:
            raise ValueError("refresh_interval must be >= 1")
        super().__init__(partition, features, labels, train_mask, **kwargs)
        self.refresh_interval = refresh_interval
        self._epoch_counter = 0
        # Stale remote partials, keyed by aggregate-call index within the
        # epoch (the call sequence — L forward + L backward aggregations —
        # is deterministic, so indices align across epochs).
        self._stale_forward: Dict[int, np.ndarray] = {}
        self._aggregate_calls = 0
        self.synchronised_bytes = 0.0
        self.saved_bytes = 0.0
        # Owner machine per vertex: the master holds the fresh total; the
        # "remote" share of vertex v's aggregate is what machines other
        # than the master contributed.
        self._masters = partition.masters()
        self._local_edges_of_master: List[np.ndarray] = []
        for machine, edges in enumerate(self._machine_edges):
            if edges.size == 0:
                self._local_edges_of_master.append(edges)
                continue
            keep = (self._masters[edges[:, 0]] == machine) | (
                self._masters[edges[:, 1]] == machine
            )
            self._local_edges_of_master.append(edges[keep])

    # ------------------------------------------------------------------
    def _aggregate(self, states: np.ndarray) -> np.ndarray:
        """Aggregate with staleness: remote shares refresh every r epochs.

        The aggregate for every vertex is split into a *local* share
        (edges stored on the vertex's master machine — always fresh) and
        a *remote* share (edges on other machines — refreshed every
        ``refresh_interval`` epochs, reused stale otherwise).
        """
        call_id = self._aggregate_calls
        self._aggregate_calls += 1
        fresh_epoch = (
            self._epoch_counter % self.refresh_interval == 0
            or call_id not in self._stale_forward
        )
        dim_bytes = states.shape[1] * 8.0

        local = np.zeros_like(states)
        partial = np.empty_like(states)
        for edges in self._local_edges_of_master:
            if edges.size == 0:
                continue
            partial.fill(0.0)
            np.add.at(partial, edges[:, 0], states[edges[:, 1]])
            np.add.at(partial, edges[:, 1], states[edges[:, 0]])
            local += partial

        if fresh_epoch:
            total = super()._aggregate(states)
            remote = total - local
            self._stale_forward[call_id] = remote
            copies = self.partition.copies_per_vertex()
            self.synchronised_bytes += float(
                np.maximum(copies - 1, 0).sum()
            ) * dim_bytes
            return total
        remote = self._stale_forward[call_id]
        copies = self.partition.copies_per_vertex()
        self.saved_bytes += float(
            np.maximum(copies - 1, 0).sum()
        ) * dim_bytes
        return local + remote

    def train_epoch(self) -> float:
        """Train one epoch, counting aggregator calls for staleness accounting."""
        self._aggregate_calls = 0
        loss = super().train_epoch()
        self._epoch_counter += 1
        return loss

    @property
    def communication_saving(self) -> float:
        """Fraction of halo traffic avoided so far."""
        total = self.synchronised_bytes + self.saved_bytes
        return self.saved_bytes / total if total > 0 else 0.0


def compare_with_synchronous(
    partition: EdgePartition,
    features: np.ndarray,
    labels: np.ndarray,
    train_mask: np.ndarray,
    refresh_interval: int,
    num_epochs: int,
    seed: int = 0,
    hidden_dim: int = 16,
    num_layers: int = 2,
) -> Dict[str, object]:
    """Train synchronous and cd-r side by side; returns both loss curves
    and the delayed trainer's measured communication saving."""
    sync = DistributedFullBatchTrainer(
        partition, features, labels, train_mask,
        hidden_dim=hidden_dim, num_layers=num_layers, seed=seed,
    )
    delayed = DelayedAggregationTrainer(
        partition, features, labels, train_mask,
        refresh_interval=refresh_interval,
        hidden_dim=hidden_dim, num_layers=num_layers, seed=seed,
    )
    return {
        "synchronous_losses": sync.train(num_epochs),
        "delayed_losses": delayed.train(num_epochs),
        "communication_saving": delayed.communication_saving,
    }
