"""DistGNN-style full-batch distributed training over edge partitions."""

from .delayed import DelayedAggregationTrainer, compare_with_synchronous
from .engine import DistGnnEngine, EpochBreakdown
from .fullbatch import DistributedFullBatchTrainer

__all__ = [
    "DistGnnEngine",
    "EpochBreakdown",
    "DistributedFullBatchTrainer",
    "DelayedAggregationTrainer",
    "compare_with_synchronous",
]
