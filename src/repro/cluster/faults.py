"""Deterministic fault injection and recovery for the simulated cluster.

The paper's benchmark assumes a 32-machine cluster where no worker ever
fails, but both substrate systems are built for environments where they
do: DistDGL layers sampler/server retry and restartable trainers over its
partitioned graph, and DistGNN's full-batch BSP epochs are the classic
checkpoint/restart workload. This module represents failures explicitly:

* :class:`FaultEvent` — one injected fault: a machine crash, a transient
  slowdown (straggler) or a lost message, pinned to an epoch (and, for
  mini-batch training, a step within it).
* :class:`FaultPlan` — an immutable, seeded schedule of fault events.
  ``FaultPlan.generate`` draws events from per-(epoch, machine) Bernoulli
  trials with a dedicated ``numpy`` generator, so a plan is a pure
  function of its arguments: the same seed always yields the same
  failures, which keeps fault sweeps record-identical between the serial
  and process-parallel runners.
* :class:`RecoveryPolicy` — how the engines respond: checkpoint/restart
  every ``checkpoint_every`` epochs (full-batch), per-minibatch retry
  with exponential backoff plus graceful degradation to the surviving
  workers (mini-batch).
* :class:`FaultSummary` — mutable counters an engine fills in while it
  simulates a faulty run; the time side of recovery is charged through
  the cluster timeline (phases named ``fault-*``, ``replay:*`` and
  ``checkpoint``) so it shows up in the Chrome trace like any other
  phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "RecoveryPolicy",
    "FaultSummary",
]

#: The three failure modes the simulator injects.
FAULT_KINDS: Tuple[str, ...] = ("crash", "slowdown", "lost-message")

_KIND_ORDER = {kind: i for i, kind in enumerate(FAULT_KINDS)}


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault.

    ``epoch`` pins the event to a training epoch. ``step`` is only
    meaningful for mini-batch training, where it selects the step within
    the epoch (taken modulo the epoch's step count, so plans are valid
    for any batch size); full-batch training ignores it. ``magnitude``
    is the slowdown factor for ``slowdown`` events (2.0 = half speed)
    and unused otherwise.
    """

    kind: str
    epoch: int
    machine: int
    step: int = 0
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if self.epoch < 0:
            raise ValueError("fault epoch must be non-negative")
        if self.machine < 0:
            raise ValueError("fault machine must be non-negative")
        if self.step < 0:
            raise ValueError("fault step must be non-negative")
        if self.kind == "slowdown" and self.magnitude < 1.0:
            raise ValueError(
                "slowdown magnitude is a stretch factor and must be >= 1"
            )


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of fault events, sorted deterministically."""

    events: Tuple[FaultEvent, ...] = ()
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        events = tuple(
            sorted(
                self.events,
                key=lambda e: (
                    e.epoch, e.step, _KIND_ORDER[e.kind], e.machine
                ),
            )
        )
        for event in events:
            if not isinstance(event, FaultEvent):
                raise TypeError(
                    f"FaultPlan takes FaultEvent instances, got "
                    f"{type(event).__name__}"
                )
        object.__setattr__(self, "events", events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def events_at(self, epoch: int) -> Tuple[FaultEvent, ...]:
        """All fault events scheduled for ``epoch``."""
        return tuple(e for e in self.events if e.epoch == epoch)

    def crashes_at(self, epoch: int) -> Tuple[FaultEvent, ...]:
        """Crash events scheduled for ``epoch``."""
        return tuple(
            e for e in self.events
            if e.epoch == epoch and e.kind == "crash"
        )

    def slowdowns_at(self, epoch: int) -> Tuple[FaultEvent, ...]:
        """Slowdown events scheduled for ``epoch``."""
        return tuple(
            e for e in self.events
            if e.epoch == epoch and e.kind == "slowdown"
        )

    def losses_at(self, epoch: int) -> Tuple[FaultEvent, ...]:
        """Lost-message events scheduled for ``epoch``."""
        return tuple(
            e for e in self.events
            if e.epoch == epoch and e.kind == "lost-message"
        )

    @classmethod
    def generate(
        cls,
        num_machines: int,
        num_epochs: int,
        crash_rate: float = 0.0,
        slowdown_rate: float = 0.0,
        loss_rate: float = 0.0,
        slowdown_factor: float = 4.0,
        seed: int = 0,
    ) -> "FaultPlan":
        """Draw a plan from per-(epoch, machine) Bernoulli trials.

        Each rate is the probability that the corresponding fault strikes
        a given machine in a given epoch. All randomness comes from one
        ``default_rng(seed)`` consumed in a fixed order, so the plan is a
        pure function of the arguments.
        """
        if num_machines <= 0:
            raise ValueError("need at least one machine")
        if num_epochs < 0:
            raise ValueError("num_epochs must be non-negative")
        for label, rate in (
            ("crash_rate", crash_rate),
            ("slowdown_rate", slowdown_rate),
            ("loss_rate", loss_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{label} must be in [0, 1], got {rate}")
        if slowdown_factor < 1.0:
            raise ValueError("slowdown_factor must be >= 1")
        rng = np.random.default_rng(seed)
        shape = (num_epochs, num_machines)
        crash_draw = rng.random(shape)
        slow_draw = rng.random(shape)
        loss_draw = rng.random(shape)
        step_draw = rng.integers(0, 1 << 30, size=shape)
        events = []
        for epoch in range(num_epochs):
            for machine in range(num_machines):
                step = int(step_draw[epoch, machine])
                if crash_draw[epoch, machine] < crash_rate:
                    events.append(
                        FaultEvent("crash", epoch, machine, step=step)
                    )
                if slow_draw[epoch, machine] < slowdown_rate:
                    events.append(
                        FaultEvent(
                            "slowdown", epoch, machine,
                            magnitude=slowdown_factor,
                        )
                    )
                if loss_draw[epoch, machine] < loss_rate:
                    events.append(
                        FaultEvent(
                            "lost-message", epoch, machine, step=step
                        )
                    )
        return cls(events=tuple(events), seed=seed)


@dataclass(frozen=True)
class RecoveryPolicy:
    """How the engines respond to injected faults.

    Full-batch (DistGNN): a checkpoint of model + optimizer state is
    written every ``checkpoint_every`` epochs; on a crash the cluster
    stalls for ``detection_timeout_seconds``, restores the last
    checkpoint (restore time covers model state plus re-loading the
    crashed partitions' graph structure and features, so skewed
    partitions pay more) and re-executes the epochs since it.

    Mini-batch (DistDGL): a crashed worker's step is retried
    ``max_retries`` times with exponential backoff
    (``backoff_base_seconds * backoff_factor**attempt``); when the
    worker stays dead the epoch degrades gracefully to the surviving
    workers, and the dead trainer restarts (re-loading its partition)
    at the next epoch boundary.
    """

    checkpoint_every: int = 5
    max_retries: int = 3
    backoff_base_seconds: float = 0.05
    backoff_factor: float = 2.0
    detection_timeout_seconds: float = 0.25

    def __post_init__(self) -> None:
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base_seconds < 0:
            raise ValueError("backoff_base_seconds must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.detection_timeout_seconds < 0:
            raise ValueError(
                "detection_timeout_seconds must be non-negative"
            )

    def backoff_seconds(self) -> float:
        """Total wait across all retry attempts for one crashed step."""
        return float(
            sum(
                self.backoff_base_seconds * self.backoff_factor ** attempt
                for attempt in range(self.max_retries)
            )
        )


@dataclass
class FaultSummary:
    """Counters an engine fills in while simulating a faulty run.

    The *time* cost of recovery is not duplicated here: it is charged to
    the cluster timeline as phases named ``fault-*`` (detection, backoff,
    restore, restart, retransmit), ``replay:*`` (re-executed epochs) and
    ``checkpoint``, and read back via
    :meth:`repro.cluster.Timeline.recovery_seconds` /
    :meth:`repro.cluster.Timeline.checkpoint_seconds`.
    """

    crashes: int = 0
    slowdowns: int = 0
    lost_messages: int = 0
    retries: int = 0
    degraded_steps: int = 0
    reexecuted_epochs: int = 0
    checkpoints: int = 0

    @property
    def total_faults(self) -> int:
        """Total injected events across crashes, slowdowns and losses."""
        return self.crashes + self.slowdowns + self.lost_messages
