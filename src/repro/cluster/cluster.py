"""The simulated compute cluster tying machines, network and timeline."""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..costmodel import DEFAULT_COST_MODEL, CostModel
from ..obs import api as obs
from .machine import Machine
from .network import NetworkFabric
from .timeline import Timeline

__all__ = ["Cluster", "OutOfMemoryError"]


class OutOfMemoryError(RuntimeError):
    """Raised when a machine's footprint exceeds the memory budget.

    Mirrors the paper's observation that random partitioning makes some
    graph/cluster combinations untrainable (DI could never be processed
    under random partitioning) while better partitioners fit.
    """

    def __init__(self, machine_id: int, needed: float, budget: float) -> None:
        super().__init__(
            f"machine {machine_id} needs {needed / 1e6:.1f} MB "
            f"but the budget is {budget / 1e6:.1f} MB"
        )
        self.machine_id = machine_id
        self.needed = needed
        self.budget = budget


class Cluster:
    """``num_machines`` workers, a shared fabric, and a BSP timeline."""

    def __init__(
        self,
        num_machines: int,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        machine_speeds: np.ndarray | None = None,
    ) -> None:
        """``machine_speeds`` (optional) gives each machine a relative
        compute speed (1.0 = nominal, 0.5 = half speed). Used to inject
        stragglers/heterogeneity into otherwise balanced workloads.
        """
        if num_machines <= 0:
            raise ValueError("need at least one machine")
        self.cost_model = cost_model
        if machine_speeds is None:
            machine_speeds = np.ones(num_machines)
        machine_speeds = np.asarray(machine_speeds, dtype=np.float64)
        if machine_speeds.shape != (num_machines,):
            raise ValueError("need one speed factor per machine")
        if (machine_speeds <= 0).any():
            raise ValueError("speed factors must be positive")
        self.machine_speeds = machine_speeds
        self.machines: List[Machine] = [
            Machine(i) for i in range(num_machines)
        ]
        self.fabric = NetworkFabric(num_machines, cost_model)
        self.timeline = Timeline()
        #: Prepended to every phase name recorded through the cluster;
        #: the fault layer sets it to ``"replay:"`` while re-executing
        #: epochs after a restore, so recovery work is distinguishable
        #: in the timeline and Chrome trace.
        self.phase_prefix = ""
        #: Per-phase memory watermark: for every phase name recorded
        #: through :meth:`add_phase`, the per-machine ledger totals
        #: observed when the phase ran (elementwise max over
        #: occurrences). Bounded by (#phase names x machines); with
        #: engines that allocate only at construction the timeline is
        #: flat, but it captures any per-phase allocate/free churn.
        self._memory_watermarks: Dict[str, np.ndarray] = {}

    @property
    def num_machines(self) -> int:
        """Number of machines in the cluster."""
        return len(self.machines)

    # ------------------------------------------------------------------
    # Phase execution
    # ------------------------------------------------------------------
    def add_phase(
        self,
        name: str,
        per_machine_seconds: np.ndarray,
        interrupted: bool = False,
    ) -> float:
        """Record a raw timeline phase under the current phase prefix."""
        full_name = self.phase_prefix + name
        totals = np.array(
            [machine.memory.total_bytes for machine in self.machines]
        )
        watermark = self._memory_watermarks.get(full_name)
        if watermark is None:
            self._memory_watermarks[full_name] = totals
        else:
            np.maximum(watermark, totals, out=watermark)
        return self.timeline.add_phase(
            full_name, per_machine_seconds, interrupted
        )

    def run_compute_phase(
        self, name: str, per_machine_seconds: np.ndarray
    ) -> float:
        """Record a barrier-separated compute phase; returns its duration.

        ``per_machine_seconds`` is at nominal speed; heterogeneous
        machines stretch their share by ``1 / speed``.
        """
        per_machine_seconds = (
            np.asarray(per_machine_seconds, dtype=np.float64)
            / self.machine_speeds
        )
        for machine, seconds in zip(self.machines, per_machine_seconds):
            machine.add_compute(float(seconds))
        return self.add_phase(name, per_machine_seconds)

    def record_traffic(
        self,
        name: str,
        sent_per_machine: np.ndarray,
        received_per_machine: np.ndarray,
        messages_per_machine: np.ndarray | None = None,
        matrix: np.ndarray | None = None,
    ) -> None:
        """Record phase traffic on the fabric and machine ledgers.

        No time is charged — callers that model their own phase timing
        (e.g. the mini-batch engine, whose phases mix compute and
        communication) use this to keep the byte ledgers and the
        ``src x dst`` matrix consistent with what they simulated. The
        phase name is recorded under the current :attr:`phase_prefix`.
        """
        sent = np.asarray(sent_per_machine, dtype=np.float64)
        received = np.asarray(received_per_machine, dtype=np.float64)
        self.fabric.transfer_bulk(sent, received, messages_per_machine)
        for machine, s, r in zip(self.machines, sent, received):
            machine.bytes_sent += float(s)
            machine.bytes_received += float(r)
        if matrix is not None:
            self.fabric.record_matrix(self.phase_prefix + name, matrix)

    def run_comm_phase(
        self,
        name: str,
        sent_per_machine: np.ndarray,
        received_per_machine: np.ndarray,
        messages_per_machine: np.ndarray | None = None,
        matrix: np.ndarray | None = None,
    ) -> float:
        """Record a communication phase: traffic plus straggler time.

        ``matrix`` (optional, ``src x dst`` bytes) attributes the same
        traffic pairwise for the fabric's per-phase matrices; it never
        affects the returned duration.
        """
        sent = np.asarray(sent_per_machine, dtype=np.float64)
        received = np.asarray(received_per_machine, dtype=np.float64)
        self.record_traffic(
            name, sent, received, messages_per_machine, matrix
        )
        # Per-machine port bound, floored by the fabric's bisection bound:
        # with every machine communicating concurrently the shared fabric
        # sustains ~k/2 concurrent full-rate transfers, so a phase cannot
        # finish faster than 2 * total / (k * bandwidth). Mild imbalance is
        # therefore absorbed; extreme imbalance (a dominant port) stalls
        # the barrier, as the paper observes for 2PS-L.
        if self.cost_model.fabric_model == "bisection":
            bisection_floor = (
                2.0 * float(sent.sum()) / max(self.num_machines, 1)
            )
        else:  # pure per-port model (ablation)
            bisection_floor = 0.0
        per_machine_seconds = np.array(
            [
                self.cost_model.transfer_seconds(
                    max(s, r, bisection_floor),
                    int(messages_per_machine[i])
                    if messages_per_machine is not None
                    else 1,
                )
                if max(s, r, bisection_floor) > 0
                else 0.0
                for i, (s, r) in enumerate(zip(sent, received))
            ]
        )
        return self.add_phase(name, per_machine_seconds)

    def check_traffic_invariant(self, tolerance: float = 1e-6) -> None:
        """Assert fabric totals equal the per-machine byte ledgers.

        The invariant: ``fabric.total_bytes`` == sum of per-machine
        ``bytes_sent`` (and the received side likewise), because every
        phase records both through :meth:`record_traffic`. Injected lost
        messages are pure *counts* — the dropped payload is charged to
        neither ledger, and retransmitted bytes re-enter both sides when
        actually resent — so they can never skew this balance. Raises
        ``RuntimeError`` on mismatch (an accounting bug).
        """
        fabric_sent = float(self.fabric.sent.sum())
        fabric_received = float(self.fabric.received.sum())
        machine_sent = sum(m.bytes_sent for m in self.machines)
        machine_received = sum(m.bytes_received for m in self.machines)
        for side, fabric_total, machine_total in (
            ("sent", fabric_sent, machine_sent),
            ("received", fabric_received, machine_received),
        ):
            bound = tolerance * max(abs(fabric_total), 1.0)
            if abs(fabric_total - machine_total) > bound:
                raise RuntimeError(
                    f"traffic ledger mismatch ({side}): fabric total "
                    f"{fabric_total} != per-machine sum {machine_total}"
                )

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def allocate(
        self, machine_id: int, category: str, num_bytes: float
    ) -> None:
        """Record a memory allocation on one machine's ledger."""
        self.machines[machine_id].memory.allocate(category, num_bytes)

    def check_memory_budget(self) -> None:
        """Raise :class:`OutOfMemoryError` if any machine is over budget."""
        budget = self.cost_model.memory_budget_bytes
        for machine in self.machines:
            obs.gauge(
                "cluster.memory_peak_bytes",
                machine.memory.peak_bytes,
                machine=machine.machine_id,
            )
            if machine.memory.peak_bytes > budget:
                raise OutOfMemoryError(
                    machine.machine_id, machine.memory.peak_bytes, budget
                )

    def memory_per_machine(self) -> np.ndarray:
        """Per-machine peak memory in bytes, indexed by machine id."""
        return np.array(
            [machine.memory.peak_bytes for machine in self.machines]
        )

    def memory_utilization_balance(self) -> float:
        """max/mean of per-machine peak memory (paper Figure 5)."""
        peaks = self.memory_per_machine()
        mean = peaks.mean()
        return float(peaks.max() / mean) if mean > 0 else 1.0

    def memory_watermark_timeline(self) -> Dict[str, np.ndarray]:
        """Per-phase memory watermark: phase name -> per-machine bytes.

        For each phase name recorded through :meth:`add_phase`, the
        elementwise max of the per-machine ledger totals observed when
        the phase ran, in first-occurrence order (copies).
        """
        return {
            phase: watermark.copy()
            for phase, watermark in self._memory_watermarks.items()
        }

    def memory_category_peaks(self) -> Dict[str, List[float]]:
        """Per-category peak bytes per machine: category -> [bytes, ...].

        Categories are the union across machines, sorted; a machine
        without the category contributes 0.0.
        """
        per_machine = [
            machine.memory.peak_by_category() for machine in self.machines
        ]
        categories = sorted(set().union(*per_machine)) if per_machine else []
        return {
            category: [float(peaks.get(category, 0.0))
                       for peaks in per_machine]
            for category in categories
        }

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def emit_resource_metrics(self) -> None:
        """Emit memory/traffic depth gauges and counters into obs.

        Called once per run (not per phase) so the hot path stays clean:
        per-machine per-category memory peaks, the per-phase memory
        watermark, and the nonzero entries of the total ``src x dst``
        traffic matrix. No-op when observability is disabled.
        """
        if not obs.enabled():
            return
        for category, peaks in self.memory_category_peaks().items():
            for machine, peak in enumerate(peaks):
                if peak:
                    obs.gauge(
                        "cluster.memory_category_peak_bytes",
                        peak,
                        machine=machine,
                        category=category,
                    )
        for phase, watermark in self._memory_watermarks.items():
            for machine, level in enumerate(watermark):
                if level:
                    obs.gauge(
                        "cluster.memory_watermark_bytes",
                        float(level),
                        machine=machine,
                        phase=phase,
                    )
        matrix = self.fabric.traffic_matrix()
        for src, dst in zip(*np.nonzero(matrix)):
            obs.count(
                "cluster.traffic_matrix_bytes",
                float(matrix[src, dst]),
                src=int(src),
                dst=int(dst),
            )
