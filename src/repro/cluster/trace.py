"""Export a simulated timeline as a Chrome trace (chrome://tracing).

Each machine becomes a trace thread (labeled via ``thread_name``
metadata) and each phase occurrence a complete event, so a whole
simulated epoch can be inspected visually — stragglers show up as the
long bars that delay every barrier. Phases a fault interrupted are
flagged in their event ``args`` and colored, and timeline marks (crash,
recovery, checkpoint) become instant events.

Writes are atomic: the trace is rendered to a temporary file in the
destination directory and moved into place, so a crash mid-export can
never leave a truncated, unparseable trace behind.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Union

from .timeline import Timeline

__all__ = ["timeline_to_chrome_trace", "save_chrome_trace"]


def _num_machines(timeline: Timeline) -> int:
    machines = max(
        (record.per_machine_seconds.size for record in timeline.records),
        default=0,
    )
    for mark in timeline.marks:
        if mark.machine is not None:
            machines = max(machines, mark.machine + 1)
    return machines


def timeline_to_chrome_trace(timeline: Timeline) -> str:
    """Serialize the timeline in the Chrome trace-event JSON format.

    Barrier semantics are made explicit: every phase starts when the
    previous phase's *slowest* machine finished.
    """
    events = []
    clock_us = 0.0
    for record in timeline.records:
        for machine, seconds in enumerate(record.per_machine_seconds):
            event = {
                "name": record.name,
                "ph": "X",  # complete event
                "ts": clock_us,
                "dur": float(seconds) * 1e6,
                "pid": 0,
                "tid": machine,
                "args": {"seconds": float(seconds)},
            }
            if record.interrupted:
                event["args"]["interrupted"] = True
                event["cname"] = "terrible"
            events.append(event)
        clock_us += record.duration * 1e6
    for mark in timeline.marks:
        events.append(
            {
                "name": mark.name,
                "ph": "i",  # instant event
                "ts": mark.at_seconds * 1e6,
                "pid": 0,
                "tid": mark.machine if mark.machine is not None else 0,
                # Thread-scoped when pinned to a machine, else global.
                "s": "g" if mark.machine is None else "t",
                "args": {"kind": mark.kind},
            }
        )
    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "args": {"name": "simulated-cluster"},
        }
    ]
    for machine in range(_num_machines(timeline)):
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": machine,
                "args": {"name": f"machine-{machine}"},
            }
        )
        # Viewers sort threads lexically by name without this, putting
        # machine-10 before machine-2; pin the numeric order explicitly.
        metadata.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": 0,
                "tid": machine,
                "args": {"sort_index": machine},
            }
        )
    return json.dumps({"traceEvents": metadata + events}, indent=1)


def save_chrome_trace(
    timeline: Timeline, path: Union[str, "os.PathLike[str]"]
) -> None:
    """Atomically write :func:`timeline_to_chrome_trace` output to ``path``."""
    path = os.fspath(path)
    payload = timeline_to_chrome_trace(timeline)
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(payload)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
