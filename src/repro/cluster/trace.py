"""Export a simulated timeline as a Chrome trace (chrome://tracing).

Each machine becomes a trace thread and each phase occurrence a complete
event, so a whole simulated epoch can be inspected visually — stragglers
show up as the long bars that delay every barrier.
"""

from __future__ import annotations

import json
import os
from typing import Union

from .timeline import Timeline

__all__ = ["timeline_to_chrome_trace", "save_chrome_trace"]


def timeline_to_chrome_trace(timeline: Timeline) -> str:
    """Serialize the timeline in the Chrome trace-event JSON format.

    Barrier semantics are made explicit: every phase starts when the
    previous phase's *slowest* machine finished.
    """
    events = []
    clock_us = 0.0
    for record in timeline.records:
        for machine, seconds in enumerate(record.per_machine_seconds):
            events.append(
                {
                    "name": record.name,
                    "ph": "X",  # complete event
                    "ts": clock_us,
                    "dur": float(seconds) * 1e6,
                    "pid": 0,
                    "tid": machine,
                    "args": {"seconds": float(seconds)},
                }
            )
        clock_us += record.duration * 1e6
    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "args": {"name": "simulated-cluster"},
        }
    ]
    return json.dumps({"traceEvents": metadata + events}, indent=1)


def save_chrome_trace(
    timeline: Timeline, path: Union[str, "os.PathLike[str]"]
) -> None:
    """Write :func:`timeline_to_chrome_trace` output to ``path``."""
    with open(path, "w") as handle:
        handle.write(timeline_to_chrome_trace(timeline))
