"""Simulated machine: memory ledger and compute accounting."""

from __future__ import annotations

from typing import Dict

__all__ = ["MemoryLedger", "Machine"]


class MemoryLedger:
    """Tracks bytes allocated per category, with a peak watermark.

    Categories mirror the footprint breakdown the paper discusses: graph
    structure, features, activations (intermediate representations),
    replicas, model/optimizer state, communication buffers.
    """

    def __init__(self) -> None:
        self._current: Dict[str, float] = {}
        self._peak_total = 0.0

    def allocate(self, category: str, num_bytes: float) -> None:
        """Add ``num_bytes`` to ``category`` and update the peak."""
        if num_bytes < 0:
            raise ValueError("allocate takes non-negative sizes; use free")
        self._current[category] = self._current.get(category, 0.0) + num_bytes
        self._peak_total = max(self._peak_total, self.total_bytes)

    def free(self, category: str, num_bytes: float) -> None:
        """Release ``num_bytes`` previously allocated under ``category``."""
        held = self._current.get(category, 0.0)
        if num_bytes > held + 1e-6:
            raise ValueError(
                f"freeing {num_bytes} bytes of {category!r} "
                f"but only {held} allocated"
            )
        self._current[category] = held - num_bytes

    @property
    def total_bytes(self) -> float:
        """Bytes currently allocated across all categories."""
        return sum(self._current.values())

    @property
    def peak_bytes(self) -> float:
        """High-water mark of total allocated bytes."""
        return self._peak_total

    def by_category(self) -> Dict[str, float]:
        """Current allocation per category (a copy)."""
        return dict(self._current)


class Machine:
    """One worker of the simulated cluster."""

    def __init__(self, machine_id: int) -> None:
        self.machine_id = machine_id
        self.memory = MemoryLedger()
        self.compute_seconds = 0.0
        self.bytes_sent = 0.0
        self.bytes_received = 0.0
        self.crashes = 0
        self.restarts = 0

    def add_compute(self, seconds: float) -> None:
        """Accumulate ``seconds`` of busy compute time."""
        if seconds < 0:
            raise ValueError("compute time must be non-negative")
        self.compute_seconds += seconds

    def record_crash(self) -> None:
        """Count an injected crash of this machine."""
        self.crashes += 1

    def record_restart(self) -> None:
        """Count a recovery restart of this machine."""
        self.restarts += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Machine({self.machine_id}, mem={self.memory.total_bytes:.0f}B, "
            f"cpu={self.compute_seconds:.3f}s)"
        )
