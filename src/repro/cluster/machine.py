"""Simulated machine: memory ledger and compute accounting."""

from __future__ import annotations

from typing import Dict

__all__ = ["MemoryLedger", "Machine"]

#: Residual bytes below this are float noise from allocate/free pairs;
#: a category that drops under it is removed from the ledger entirely.
_ZERO_BYTES = 1e-9


class MemoryLedger:
    """Tracks bytes allocated per category, with peak watermarks.

    Categories mirror the footprint breakdown the paper discusses: graph
    structure, features, activations (intermediate representations),
    replicas, model/optimizer state, communication buffers. Both the
    total and every category keep a high-water mark, so transient
    allocations remain visible after they are freed.
    """

    def __init__(self) -> None:
        self._current: Dict[str, float] = {}
        self._peak_total = 0.0
        self._peak_by_category: Dict[str, float] = {}

    def allocate(self, category: str, num_bytes: float) -> None:
        """Add ``num_bytes`` to ``category`` and update the peaks."""
        if num_bytes < 0:
            raise ValueError("allocate takes non-negative sizes; use free")
        held = self._current.get(category, 0.0) + num_bytes
        self._current[category] = held
        if held > self._peak_by_category.get(category, 0.0):
            self._peak_by_category[category] = held
        self._peak_total = max(self._peak_total, self.total_bytes)

    def free(self, category: str, num_bytes: float) -> None:
        """Release ``num_bytes`` previously allocated under ``category``.

        A category freed back to zero is removed from the current
        ledger (its peak watermark is kept), so :meth:`by_category`
        only ever reports live allocations.
        """
        held = self._current.get(category, 0.0)
        if num_bytes > held + 1e-6:
            raise ValueError(
                f"freeing {num_bytes} bytes of {category!r} "
                f"but only {held} allocated"
            )
        remaining = held - num_bytes
        if remaining <= _ZERO_BYTES:
            self._current.pop(category, None)
        else:
            self._current[category] = remaining

    @property
    def total_bytes(self) -> float:
        """Bytes currently allocated across all categories."""
        return sum(self._current.values())

    @property
    def peak_bytes(self) -> float:
        """High-water mark of total allocated bytes."""
        return self._peak_total

    def by_category(self) -> Dict[str, float]:
        """Current allocation per category (a copy)."""
        return dict(self._current)

    def peak_by_category(self) -> Dict[str, float]:
        """High-water mark per category (a copy).

        Unlike :attr:`peak_bytes` these are per-category maxima, so they
        need not sum to the total peak (categories can peak at different
        times).
        """
        return dict(self._peak_by_category)


class Machine:
    """One worker of the simulated cluster."""

    def __init__(self, machine_id: int) -> None:
        self.machine_id = machine_id
        self.memory = MemoryLedger()
        self.compute_seconds = 0.0
        self.bytes_sent = 0.0
        self.bytes_received = 0.0
        self.crashes = 0
        self.restarts = 0

    def add_compute(self, seconds: float) -> None:
        """Accumulate ``seconds`` of busy compute time."""
        if seconds < 0:
            raise ValueError("compute time must be non-negative")
        self.compute_seconds += seconds

    def record_crash(self) -> None:
        """Count an injected crash of this machine."""
        self.crashes += 1

    def record_restart(self) -> None:
        """Count a recovery restart of this machine."""
        self.restarts += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Machine({self.machine_id}, mem={self.memory.total_bytes:.0f}B, "
            f"cpu={self.compute_seconds:.3f}s)"
        )
