"""Bulk-synchronous timeline with per-phase straggler accounting.

Distributed GNN training (both systems in the paper) proceeds in
barrier-separated phases; a phase lasts as long as its slowest worker.
The timeline records, per phase occurrence, both the straggler duration
and the full per-machine vector, so balance analyses (paper Figures 5, 14,
17) can be computed afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

__all__ = ["PhaseRecord", "Timeline"]


@dataclass(frozen=True)
class PhaseRecord:
    name: str
    per_machine_seconds: np.ndarray

    @property
    def duration(self) -> float:
        """Straggler time: the barrier releases when the slowest finishes."""
        return float(self.per_machine_seconds.max())


@dataclass
class Timeline:
    records: List[PhaseRecord] = field(default_factory=list)

    def add_phase(
        self, name: str, per_machine_seconds: np.ndarray
    ) -> float:
        per_machine_seconds = np.asarray(per_machine_seconds, dtype=np.float64)
        if (per_machine_seconds < 0).any():
            raise ValueError("phase times must be non-negative")
        record = PhaseRecord(name, per_machine_seconds)
        self.records.append(record)
        return record.duration

    @property
    def total_seconds(self) -> float:
        return sum(record.duration for record in self.records)

    def phase_totals(self) -> Dict[str, float]:
        """Total straggler seconds per phase name."""
        totals: Dict[str, float] = {}
        for record in self.records:
            totals[record.name] = totals.get(record.name, 0.0) + record.duration
        return totals

    def straggler_phase_totals(self) -> Dict[str, float]:
        """Paper Section 5.3 methodology: per occurrence, take the slowest
        worker's time in each phase, then sum over occurrences per phase.
        (With barrier semantics this equals :meth:`phase_totals`.)
        """
        return self.phase_totals()

    def per_machine_totals(self) -> np.ndarray:
        """Summed busy time per machine (for balance plots)."""
        if not self.records:
            return np.zeros(0)
        total = np.zeros_like(self.records[0].per_machine_seconds)
        for record in self.records:
            total += record.per_machine_seconds
        return total
