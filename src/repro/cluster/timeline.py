"""Bulk-synchronous timeline with per-phase straggler accounting.

Distributed GNN training (both systems in the paper) proceeds in
barrier-separated phases; a phase lasts as long as its slowest worker.
The timeline records, per phase occurrence, both the straggler duration
and the full per-machine vector, so balance analyses (paper Figures 5, 14,
17) can be computed afterwards.

Fault sweeps add two things on top: phases can be flagged *interrupted*
(a fault cut them short — the recorded vector is the stall the cluster
actually paid), and the timeline carries instant *marks* (crash,
recovery, checkpoint events) that the Chrome-trace exporter renders as
instant events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..obs import api as obs

__all__ = ["PhaseRecord", "TimelineMark", "Timeline"]

#: Phases whose durations are pure recovery overhead: failure handling
#: (``fault-*``) and re-executed epochs after a restore (``replay:*``).
RECOVERY_PHASE_PREFIXES = ("fault-", "replay:")


@dataclass(frozen=True)
class PhaseRecord:
    """One named phase: per-machine busy seconds plus the straggler bound."""
    name: str
    per_machine_seconds: np.ndarray
    interrupted: bool = False

    def __post_init__(self) -> None:
        arr = np.asarray(self.per_machine_seconds, dtype=np.float64)
        if arr.ndim != 1:
            raise ValueError(
                f"phase {self.name!r}: per_machine_seconds must be 1-D, "
                f"got shape {arr.shape}"
            )
        if arr.size == 0:
            raise ValueError(
                f"phase {self.name!r}: per_machine_seconds is empty — a "
                "phase needs at least one machine"
            )
        # Defensive copy, then freeze: the dataclass is frozen, so the
        # array it holds must not be writable through an outside alias.
        arr = arr.copy()
        arr.setflags(write=False)
        object.__setattr__(self, "per_machine_seconds", arr)

    @property
    def duration(self) -> float:
        """Straggler time: the barrier releases when the slowest finishes."""
        return float(self.per_machine_seconds.max())


@dataclass(frozen=True)
class TimelineMark:
    """An instant event on the timeline (fault, recovery, checkpoint)."""

    name: str
    kind: str
    at_seconds: float
    machine: Optional[int] = None


@dataclass
class Timeline:
    """Ordered log of phase records and point-in-time marks for one run."""
    records: List[PhaseRecord] = field(default_factory=list)
    marks: List[TimelineMark] = field(default_factory=list)

    def add_phase(
        self,
        name: str,
        per_machine_seconds: np.ndarray,
        interrupted: bool = False,
    ) -> float:
        """Append a phase record and return its straggler-bound duration."""
        per_machine_seconds = np.asarray(per_machine_seconds, dtype=np.float64)
        if (per_machine_seconds < 0).any():
            raise ValueError("phase times must be non-negative")
        record = PhaseRecord(name, per_machine_seconds, interrupted)
        self.records.append(record)
        if obs.enabled():
            obs.observe(
                "cluster.phase_seconds", record.duration, phase=name
            )
            for machine, seconds in enumerate(record.per_machine_seconds):
                obs.count(
                    "cluster.machine_busy_seconds",
                    float(seconds),
                    machine=machine,
                )
            obs.event(
                "phase", name,
                seconds=record.duration, interrupted=interrupted,
            )
        return record.duration

    def add_mark(
        self,
        name: str,
        kind: str = "fault",
        machine: Optional[int] = None,
    ) -> TimelineMark:
        """Stamp an instant event at the current end of the timeline."""
        mark = TimelineMark(name, kind, self.total_seconds, machine)
        self.marks.append(mark)
        if obs.enabled():
            obs.count("cluster.marks", kind=kind)
            obs.event(
                "mark", name,
                kind=kind, at_seconds=mark.at_seconds, machine=machine,
            )
        return mark

    @property
    def total_seconds(self) -> float:
        """Sum of all phase durations (the simulated makespan)."""
        return sum(record.duration for record in self.records)

    def phase_totals(self) -> Dict[str, float]:
        """Total straggler seconds per phase name."""
        totals: Dict[str, float] = {}
        for record in self.records:
            totals[record.name] = totals.get(record.name, 0.0) + record.duration
        return totals

    def straggler_phase_totals(self) -> Dict[str, float]:
        """Paper Section 5.3 methodology: per occurrence, take the slowest
        worker's time in each phase, then sum over occurrences per phase.
        (With barrier semantics this equals :meth:`phase_totals`.)
        """
        return self.phase_totals()

    def interrupted_records(self) -> List[PhaseRecord]:
        """Phases a fault cut short."""
        return [record for record in self.records if record.interrupted]

    def recovery_seconds(self) -> float:
        """Straggler seconds spent on failure handling and replay."""
        return sum(
            record.duration
            for record in self.records
            if record.name.startswith(RECOVERY_PHASE_PREFIXES)
        )

    def checkpoint_seconds(self) -> float:
        """Straggler seconds spent writing checkpoints."""
        return self.phase_totals().get("checkpoint", 0.0)

    def per_machine_totals(self) -> np.ndarray:
        """Summed busy time per machine (for balance plots)."""
        if not self.records:
            return np.zeros(0)
        total = np.zeros_like(self.records[0].per_machine_seconds)
        for record in self.records:
            total += record.per_machine_seconds
        return total
