"""Simulated cluster substrate: machines, network fabric, BSP timeline."""

from .cluster import Cluster, OutOfMemoryError
from .machine import Machine, MemoryLedger
from .network import NetworkFabric
from .timeline import PhaseRecord, Timeline
from .trace import save_chrome_trace, timeline_to_chrome_trace

__all__ = [
    "Cluster",
    "OutOfMemoryError",
    "Machine",
    "MemoryLedger",
    "NetworkFabric",
    "PhaseRecord",
    "Timeline",
    "timeline_to_chrome_trace",
    "save_chrome_trace",
]
