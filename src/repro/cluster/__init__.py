"""Simulated cluster substrate: machines, network fabric, BSP timeline,
fault injection and recovery."""

from .cluster import Cluster, OutOfMemoryError
from .faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    FaultSummary,
    RecoveryPolicy,
)
from .machine import Machine, MemoryLedger
from .network import NetworkFabric
from .timeline import PhaseRecord, Timeline, TimelineMark
from .trace import save_chrome_trace, timeline_to_chrome_trace

__all__ = [
    "Cluster",
    "OutOfMemoryError",
    "Machine",
    "MemoryLedger",
    "NetworkFabric",
    "PhaseRecord",
    "TimelineMark",
    "Timeline",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultSummary",
    "RecoveryPolicy",
    "timeline_to_chrome_trace",
    "save_chrome_trace",
]
