"""Network fabric: per-machine traffic accounting.

Traffic is what the paper measures ("network communication"); the fabric
accumulates sent/received bytes per machine and converts a communication
phase into seconds under the cost model (bandwidth is per machine port, so
the phase lasts as long as its busiest port).
"""

from __future__ import annotations

import numpy as np

from ..costmodel import CostModel
from ..obs import api as obs

__all__ = ["NetworkFabric"]


class NetworkFabric:
    """Per-machine sent/received/message counters plus phase timing."""

    def __init__(self, num_machines: int, cost_model: CostModel) -> None:
        self.num_machines = num_machines
        self.cost_model = cost_model
        self.sent = np.zeros(num_machines, dtype=np.float64)
        self.received = np.zeros(num_machines, dtype=np.float64)
        self.messages = np.zeros(num_machines, dtype=np.int64)
        self.lost_messages = np.zeros(num_machines, dtype=np.int64)

    def record_lost_message(self, machine: int) -> None:
        """Count an injected lost message on ``machine``'s port."""
        self.lost_messages[machine] += 1
        obs.count("cluster.lost_messages", machine=machine)

    def transfer(self, src: int, dst: int, num_bytes: float) -> None:
        """Record a point-to-point transfer (no time accounting)."""
        if src == dst:
            return  # local, free
        self.sent[src] += num_bytes
        self.received[dst] += num_bytes
        self.messages[src] += 1

    def transfer_bulk(
        self,
        sent_per_machine: np.ndarray,
        received_per_machine: np.ndarray,
        messages_per_machine: np.ndarray | None = None,
    ) -> None:
        """Record aggregate per-machine traffic for one phase."""
        self.sent += sent_per_machine
        self.received += received_per_machine
        if messages_per_machine is not None:
            self.messages += messages_per_machine
        if obs.enabled():
            for machine in range(self.num_machines):
                if sent_per_machine[machine]:
                    obs.count(
                        "cluster.bytes_sent",
                        float(sent_per_machine[machine]),
                        machine=machine,
                    )
                if received_per_machine[machine]:
                    obs.count(
                        "cluster.bytes_received",
                        float(received_per_machine[machine]),
                        machine=machine,
                    )

    def phase_seconds(
        self,
        sent_per_machine: np.ndarray,
        received_per_machine: np.ndarray,
        messages_per_machine: np.ndarray | None = None,
    ) -> float:
        """Duration of a communication phase: busiest port wins."""
        port_bytes = np.maximum(sent_per_machine, received_per_machine)
        busiest = float(port_bytes.max()) if port_bytes.size else 0.0
        num_msgs = 1
        if messages_per_machine is not None and messages_per_machine.size:
            num_msgs = int(messages_per_machine.max())
        if busiest <= 0:
            return 0.0
        return self.cost_model.transfer_seconds(busiest, num_msgs)

    @property
    def total_bytes(self) -> float:
        """Total bytes sent over the fabric."""
        return float(self.sent.sum())
