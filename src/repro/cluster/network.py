"""Network fabric: per-machine traffic accounting.

Traffic is what the paper measures ("network communication"); the fabric
accumulates sent/received bytes per machine and converts a communication
phase into seconds under the cost model (bandwidth is per machine port, so
the phase lasts as long as its busiest port).

Beyond the per-port vectors, the fabric keeps a ``src x dst`` traffic
matrix per phase name (who talked to whom, in bytes) — the resource
profile the live monitor and the dashboard heatmap render. The matrices
are pure bookkeeping: they never influence phase timing, which stays a
function of the per-port vectors alone.

Ledger convention: injected *lost messages* are pure counts
(:attr:`NetworkFabric.lost_messages`); the dropped payload is charged to
**neither** side's byte ledger. Bytes only enter the ledgers when they
are (re)transmitted, so ``total_bytes`` always equals the sum of
per-machine sent bytes (see ``Cluster.check_traffic_invariant``).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..costmodel import CostModel
from ..obs import api as obs

__all__ = ["NetworkFabric"]


class NetworkFabric:
    """Per-machine sent/received/message counters plus phase timing."""

    def __init__(self, num_machines: int, cost_model: CostModel) -> None:
        self.num_machines = num_machines
        self.cost_model = cost_model
        self.sent = np.zeros(num_machines, dtype=np.float64)
        self.received = np.zeros(num_machines, dtype=np.float64)
        self.messages = np.zeros(num_machines, dtype=np.int64)
        self.lost_messages = np.zeros(num_machines, dtype=np.int64)
        #: ``src x dst`` byte matrices keyed by phase name, accumulated
        #: by :meth:`record_matrix` (insertion order = first occurrence).
        self._matrix_by_phase: Dict[str, np.ndarray] = {}

    def record_lost_message(self, machine: int) -> None:
        """Count an injected lost message on ``machine``'s port.

        Only the count is recorded: the lost payload's bytes are dropped
        from both ledgers (they show up again if a retransmit re-sends
        them), so the sent/received totals stay consistent.
        """
        self.lost_messages[machine] += 1
        obs.count("cluster.lost_messages", machine=machine)

    def transfer(self, src: int, dst: int, num_bytes: float) -> None:
        """Record a point-to-point transfer (no time accounting)."""
        if src == dst:
            return  # local, free
        self.sent[src] += num_bytes
        self.received[dst] += num_bytes
        self.messages[src] += 1

    def transfer_bulk(
        self,
        sent_per_machine: np.ndarray,
        received_per_machine: np.ndarray,
        messages_per_machine: np.ndarray | None = None,
    ) -> None:
        """Record aggregate per-machine traffic for one phase."""
        self.sent += sent_per_machine
        self.received += received_per_machine
        if messages_per_machine is not None:
            self.messages += messages_per_machine
        if obs.enabled():
            for machine in range(self.num_machines):
                if sent_per_machine[machine]:
                    obs.count(
                        "cluster.bytes_sent",
                        float(sent_per_machine[machine]),
                        machine=machine,
                    )
                if received_per_machine[machine]:
                    obs.count(
                        "cluster.bytes_received",
                        float(received_per_machine[machine]),
                        machine=machine,
                    )

    def record_matrix(self, phase: str, matrix: np.ndarray) -> None:
        """Accumulate a ``src x dst`` byte matrix under ``phase``.

        Bookkeeping only — the matrix never affects phase timing, and
        its row/column sums are expected (and test-enforced for the
        engines) to match the sent/received vectors of the same phase.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        k = self.num_machines
        if matrix.shape != (k, k):
            raise ValueError(
                f"traffic matrix must be ({k}, {k}), got {matrix.shape}"
            )
        existing = self._matrix_by_phase.get(phase)
        if existing is None:
            self._matrix_by_phase[phase] = matrix.copy()
        else:
            existing += matrix

    def traffic_matrix(self, phase: Optional[str] = None) -> np.ndarray:
        """``src x dst`` byte matrix for ``phase`` (or all phases summed).

        Returns a zero matrix for a phase that recorded no traffic.
        """
        k = self.num_machines
        if phase is not None:
            matrix = self._matrix_by_phase.get(phase)
            return (
                matrix.copy() if matrix is not None
                else np.zeros((k, k), dtype=np.float64)
            )
        total = np.zeros((k, k), dtype=np.float64)
        for matrix in self._matrix_by_phase.values():
            total += matrix
        return total

    def traffic_matrix_phases(self) -> Dict[str, np.ndarray]:
        """Per-phase ``src x dst`` matrices (copies), in recording order."""
        return {
            phase: matrix.copy()
            for phase, matrix in self._matrix_by_phase.items()
        }

    def phase_seconds(
        self,
        sent_per_machine: np.ndarray,
        received_per_machine: np.ndarray,
        messages_per_machine: np.ndarray | None = None,
    ) -> float:
        """Duration of a communication phase: busiest port wins."""
        port_bytes = np.maximum(sent_per_machine, received_per_machine)
        busiest = float(port_bytes.max()) if port_bytes.size else 0.0
        num_msgs = 1
        if messages_per_machine is not None and messages_per_machine.size:
            num_msgs = int(messages_per_machine.max())
        if busiest <= 0:
            return 0.0
        return self.cost_model.transfer_seconds(busiest, num_msgs)

    @property
    def total_bytes(self) -> float:
        """Total bytes sent over the fabric."""
        return float(self.sent.sum())
