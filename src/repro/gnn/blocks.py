"""Message-flow blocks: the unit of GNN computation.

A :class:`Block` is a bipartite message-passing structure from source
vertices to destination vertices, exactly like DGL's message-flow graphs
(MFGs): mini-batch training builds one block per layer via sampling, while
full-batch training uses one block covering the whole (local) graph per
layer.

Convention (as in DGL): the destination vertices are a *prefix* of the
source vertices, i.e. ``src_ids[:num_dst] == dst_ids``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph import Graph

__all__ = ["Block", "full_graph_block"]


@dataclass(frozen=True)
class Block:
    """One layer's message-passing structure.

    Attributes
    ----------
    src_ids:
        Global vertex ids of source (input) vertices; the first
        ``num_dst`` entries are the destination vertices.
    num_dst:
        Number of destination (output) vertices.
    edge_src / edge_dst:
        Local indices (into ``src_ids`` / the dst prefix) of each message.
    """

    src_ids: np.ndarray
    num_dst: int
    edge_src: np.ndarray
    edge_dst: np.ndarray

    def __post_init__(self) -> None:
        if self.num_dst > self.src_ids.shape[0]:
            raise ValueError("num_dst exceeds number of source vertices")
        if self.edge_src.shape != self.edge_dst.shape:
            raise ValueError("edge arrays must be parallel")
        if self.edge_src.size:
            if self.edge_src.max() >= self.src_ids.shape[0]:
                raise ValueError("edge_src index out of range")
            if self.edge_dst.max() >= self.num_dst:
                raise ValueError("edge_dst index out of range")

    @property
    def num_src(self) -> int:
        """Number of source (input) vertices of the block."""
        return int(self.src_ids.shape[0])

    @property
    def num_edges(self) -> int:
        """Number of edges in the block."""
        return int(self.edge_src.shape[0])

    def in_degrees(self) -> np.ndarray:
        """Messages per destination vertex (for mean aggregation)."""
        return np.bincount(self.edge_dst, minlength=self.num_dst)


def full_graph_block(graph: Graph) -> Block:
    """A block covering the entire graph (full-batch training).

    Every vertex is both source and destination; messages flow along the
    symmetric adjacency, as GNN frameworks do for undirected learning.
    """
    indptr, indices = graph.symmetric_csr()
    n = graph.num_vertices
    edge_dst = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    return Block(
        src_ids=np.arange(n, dtype=np.int64),
        num_dst=n,
        edge_src=indices.astype(np.int64),
        edge_dst=edge_dst,
    )
