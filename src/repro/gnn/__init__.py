"""GNN substrate: layers, models, loss, optimizers, sampling."""

from .activations import leaky_relu, relu, softmax
from .blocks import Block, full_graph_block
from .layers import GatLayer, GcnLayer, GraphLayer, SageLayer
from .loss import accuracy, softmax_cross_entropy
from .models import ARCHITECTURES, GnnModel, build_model
from .optim import Adam, Sgd
from .sampling import MiniBatch, default_fanouts, sample_blocks

__all__ = [
    "relu",
    "leaky_relu",
    "softmax",
    "Block",
    "full_graph_block",
    "GraphLayer",
    "SageLayer",
    "GcnLayer",
    "GatLayer",
    "softmax_cross_entropy",
    "accuracy",
    "GnnModel",
    "build_model",
    "ARCHITECTURES",
    "Sgd",
    "Adam",
    "MiniBatch",
    "sample_blocks",
    "default_fanouts",
]
