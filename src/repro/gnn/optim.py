"""Optimizers updating (parameter, gradient) pairs in place."""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

__all__ = ["Sgd", "Adam"]

ParamGrad = Tuple[np.ndarray, np.ndarray]


class Sgd:
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, lr: float = 0.01, momentum: float = 0.0) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.momentum = momentum
        self._velocity: List[np.ndarray] | None = None

    def step(self, params: Iterable[ParamGrad]) -> None:
        """Apply one (optionally momentum-accelerated) SGD update in place."""
        pairs = list(params)
        if self.momentum > 0 and self._velocity is None:
            self._velocity = [np.zeros_like(p) for p, _ in pairs]
        for i, (param, grad) in enumerate(pairs):
            if self.momentum > 0:
                assert self._velocity is not None
                self._velocity[i] *= self.momentum
                self._velocity[i] += grad
                param -= self.lr * self._velocity[i]
            else:
                param -= self.lr * grad


class Adam:
    """Adam (Kingma and Ba, 2015)."""

    def __init__(
        self,
        lr: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._step = 0
        self._m: List[np.ndarray] | None = None
        self._v: List[np.ndarray] | None = None

    def step(self, params: Iterable[ParamGrad]) -> None:
        """Apply one bias-corrected Adam update in place."""
        pairs = list(params)
        if self._m is None:
            self._m = [np.zeros_like(p) for p, _ in pairs]
            self._v = [np.zeros_like(p) for p, _ in pairs]
        assert self._m is not None and self._v is not None
        self._step += 1
        bias1 = 1.0 - self.beta1**self._step
        bias2 = 1.0 - self.beta2**self._step
        for i, (param, grad) in enumerate(pairs):
            self._m[i] = self.beta1 * self._m[i] + (1 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1 - self.beta2) * grad**2
            m_hat = self._m[i] / bias1
            v_hat = self._v[i] / bias2
            param -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
