"""Activation functions with explicit gradients."""

from __future__ import annotations

import numpy as np

__all__ = ["relu", "relu_grad", "leaky_relu", "leaky_relu_grad", "softmax"]


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit, elementwise."""
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray, upstream: np.ndarray) -> np.ndarray:
    """Gradient of relu evaluated at pre-activation ``x``."""
    return upstream * (x > 0.0)


def leaky_relu(x: np.ndarray, slope: float = 0.2) -> np.ndarray:
    """Leaky ReLU with the given negative slope, elementwise."""
    return np.where(x > 0.0, x, slope * x)


def leaky_relu_grad(
    x: np.ndarray, upstream: np.ndarray, slope: float = 0.2
) -> np.ndarray:
    """Backward pass of :func:`leaky_relu` given the upstream gradient."""
    return upstream * np.where(x > 0.0, 1.0, slope)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)
